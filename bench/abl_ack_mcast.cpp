// Ablation: the paper's §2 comparison of reliability strategies.
//
//   scout-binary / scout-linear — readiness is guaranteed *before* the data
//       is sent (the paper's contribution);
//   ack-mcast — ORNL/PVM style: send first, retransmit whole payloads until
//       everyone ACKs ("did not produce improvement in performance");
//   sequencer — Orca-style ordered multicast with NACK recovery (related
//       work; wins in steady state, pays on cold starts).
//
// Two experiments: (a) a well-synchronized broadcast sweep, (b) the same
// broadcast with one receiver entering `--stagger_us` late — the case that
// makes the ACK protocol retransmit full payloads while scouts just wait.
#include "coll/ack_mcast.hpp"
#include "coll/sequencer.hpp"

#include <map>

#include "bench_util.hpp"
#include "common/bytes.hpp"

namespace {

using namespace mcmpi;

struct AblationResult {
  double median_us = 0;
  std::uint64_t data_frames = 0;
  std::uint64_t retransmissions = 0;
};

AblationResult run_case(const std::string& algo, int procs, int payload,
                        SimTime stagger, int reps, std::uint64_t seed) {
  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kSwitch;
  config.seed = seed;
  cluster::Cluster cluster(config);
  cluster::ExperimentConfig exp;
  exp.reps = reps;
  // Give retransmission timers room: laggard + protocol recovery per rep.
  exp.rep_interval = milliseconds(80);
  std::uint64_t retransmissions = 0;
  const auto result = cluster::measure_collective(
      cluster, exp,
      [&algo, payload, stagger, procs, &retransmissions](mpi::Proc& p, int) {
        if (p.rank() == procs - 1 && stagger > kTimeZero) {
          p.self().delay(stagger);  // the laggard
        }
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(1, static_cast<std::size_t>(payload));
        }
        p.comm_world().coll().bcast(data, 0, algo);
        if (algo == "ack-mcast" && p.rank() == 0) {
          retransmissions =
              coll::ack_mcast_stats(p, p.comm_world()).retransmissions;
        }
      });
  return AblationResult{result.latencies_us.median(),
                        result.net_delta.host_tx_data_frames, retransmissions};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  Flags flags(argc, argv);
  const auto reps = static_cast<int>(flags.get_int("reps", 15, "reps/point"));
  const auto seed = static_cast<std::uint64_t>(
      flags.get_int("seed", 2000, "simulation seed"));
  // Default lateness exceeds the ACK protocol's 5 ms retransmit timeout, so
  // the root re-multicasts full payloads every repetition.
  const auto stagger_us = flags.get_int(
      "stagger_us", 8000, "how late the slow receiver enters (microseconds)");
  const bool csv = flags.get_bool("csv", false, "emit CSV");
  if (flags.help_requested()) {
    std::cout << flags.usage("Ablation: scout vs ACK vs sequencer multicast");
    return 0;
  }
  flags.check_unknown();
  BenchOptions options;
  options.reps = reps;
  options.seed = seed;
  options.csv = csv;

  constexpr int kProcs = 6;
  // Every registered multicast-based broadcast (the reliability-strategy
  // design space); the point-to-point baselines are outside this ablation.
  std::vector<std::string> algos;
  for (const std::string& name : registry_bcast_algos()) {
    if (name != "mpich" && name != "scatter-allgather") {
      algos.push_back(name);
    }
  }

  // (a) synchronized broadcasts.
  Table sync_table({"algorithm", "bytes", "median us", "data frames/rep"});
  std::map<std::string, double> sync_median_at_2k;
  for (const std::string& algo : algos) {
    for (int payload : {0, 2000, 5000}) {
      const auto r =
          run_case(algo, kProcs, payload, kTimeZero, reps, seed);
      if (payload == 2000) {
        sync_median_at_2k[algo] = r.median_us;
      }
      sync_table.add_row({algo, std::to_string(payload),
                          Table::num(r.median_us),
                          Table::num(static_cast<double>(r.data_frames) /
                                     reps)});
    }
  }
  print_table("Ablation (a): synchronized broadcast, 6 procs, switch",
              sync_table, options);

  // (b) one late receiver.
  Table late_table(
      {"algorithm", "median us", "data frames/rep", "ack retransmissions"});
  std::map<std::string, AblationResult> late;
  for (const std::string& algo : algos) {
    const auto r = run_case(algo, kProcs, 2000, microseconds(stagger_us),
                            reps, seed);
    late[algo] = r;
    late_table.add_row({algo, Table::num(r.median_us),
                        Table::num(static_cast<double>(r.data_frames) / reps),
                        algo == "ack-mcast" ? std::to_string(r.retransmissions)
                                            : "-"});
  }
  print_table("Ablation (b): same broadcast, one receiver " +
                  std::to_string(stagger_us) + " us late",
              late_table, options);

  shape_check(
      sync_median_at_2k["ack-mcast"] > sync_median_at_2k["mcast-linear"] * 0.8,
      "ACK-multicast does not beat scouts even when synchronized (the "
      "ORNL result)");
  shape_check(sync_median_at_2k["sequencer"] <
                  sync_median_at_2k["mcast-binary"],
              "sequencer wins in steady state (no per-bcast readiness "
              "handshake)");
  shape_check(late["ack-mcast"].retransmissions >=
                  static_cast<std::uint64_t>(reps),
              "the late receiver forces the ACK protocol to re-multicast "
              "every repetition");
  shape_check(static_cast<double>(late["ack-mcast"].data_frames) >=
                  1.8 * static_cast<double>(late["mcast-binary"].data_frames),
              "ACK-multicast burns ~2x the payload bandwidth of scouts when "
              "a receiver lags (scouts wait; it retransmits)");
  return 0;
}
