// Ablation: the eagle cluster is heterogeneous (four 500 MHz Compaqs, five
// 450 MHz Gateways).  Collective latency is a maximum over ranks, so the
// slowest machine sets the pace; this bench quantifies how much of the
// measured latency is the slow hosts' doing by comparing the real mix
// against hypothetical all-500 MHz and all-450 MHz clusters.
#include "bench_util.hpp"
#include "common/bytes.hpp"

namespace {

using namespace mcmpi;
using namespace mcmpi::bench;

double run_mix(const std::vector<cluster::HostSpec>& hosts, int procs,
               const std::string& algo, int payload,
               const BenchOptions& options) {
  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kSwitch;
  config.seed = options.seed;
  config.hosts = hosts;
  cluster::Cluster cluster(config);
  cluster::ExperimentConfig exp;
  exp.reps = options.reps;
  const auto result = cluster::measure_collective(
      cluster, exp, [&algo, payload](mpi::Proc& p, int) {
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(1, static_cast<std::size_t>(payload));
        }
        p.comm_world().coll().bcast(data, 0, algo);
      });
  return result.latencies_us.median();
}

std::vector<cluster::HostSpec> uniform_hosts(double mhz, int n) {
  std::vector<cluster::HostSpec> hosts(
      static_cast<std::size_t>(n), cluster::HostSpec{mhz, "uniform"});
  return hosts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Ablation — heterogeneous hosts: eagle mix vs uniform clusters");

  constexpr int kProcs = 9;
  const std::vector<cluster::HostSpec> eagle(
      cluster::kEagleHosts, cluster::kEagleHosts + cluster::kMaxEagleHosts);

  Table table({"bytes", "algo", "all-500MHz us", "eagle mix us",
               "all-450MHz us"});
  bool ordered_everywhere = true;
  for (int payload : {0, 2000, 5000}) {
    for (const std::string& algo : {"mpich", "mcast-binary"}) {
      const double fast =
          run_mix(uniform_hosts(500.0, kProcs), kProcs, algo, payload, options);
      const double mixed = run_mix(eagle, kProcs, algo, payload, options);
      const double slow =
          run_mix(uniform_hosts(450.0, kProcs), kProcs, algo, payload, options);
      ordered_everywhere =
          ordered_everywhere && fast <= mixed && mixed <= slow;
      table.add_row({std::to_string(payload), algo, Table::num(fast),
                     Table::num(mixed), Table::num(slow)});
    }
  }
  print_table("Broadcast latency vs host mix (9 procs, switch)", table,
              options);

  shape_check(ordered_everywhere,
              "all-fast <= eagle mix <= all-slow for every size and "
              "algorithm (the slowest rank paces the collective)");
  return 0;
}
