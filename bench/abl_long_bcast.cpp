// Ablation: the long-message broadcast design space.  The paper compares
// multicast against MPICH's binomial tree; later MPI implementations
// answered long-message broadcast with van de Geijn's scatter + ring
// allgather (each byte crosses ~2x instead of N-1 times).  How close does
// the best point-to-point algorithm get to one IP multicast?
#include "bench_util.hpp"
#include "common/bytes.hpp"

namespace {

using namespace mcmpi;
using namespace mcmpi::bench;

struct LongBcastResult {
  double median_us = 0;
  std::uint64_t data_frames = 0;
};

LongBcastResult run(int procs, int payload, const std::string& algo,
                    const BenchOptions& options) {
  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kSwitch;
  config.seed = options.seed;
  cluster::Cluster cluster(config);
  cluster::ExperimentConfig exp;
  exp.reps = options.reps;
  const auto result = cluster::measure_collective(
      cluster, exp, [payload, &algo](mpi::Proc& p, int) {
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(1, static_cast<std::size_t>(payload));
        }
        p.comm_world().coll().bcast(data, 0, algo);
      });
  return LongBcastResult{result.latencies_us.median(),
                         result.net_delta.host_tx_data_frames /
                             static_cast<std::uint64_t>(options.reps)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Ablation — long-message broadcast: binomial vs van de Geijn vs "
      "IP multicast (switch)");

  Table table({"procs", "bytes", "binomial us", "binomial frames",
               "scatter-allgather us", "s-a frames", "mcast-binary us",
               "mcast frames"});
  double vdg9 = 0;
  double tree9 = 0;
  double mcast9 = 0;
  std::uint64_t vdg_frames = 0;
  std::uint64_t mcast_frames = 0;
  for (int procs : {4, 9}) {
    for (int payload : {5000, 20000, 60000}) {
      const auto tree = run(procs, payload, "mpich", options);
      const auto vdg = run(procs, payload, "scatter-allgather", options);
      const auto mcast = run(procs, payload, "mcast-binary", options);
      if (procs == 9 && payload == 60000) {
        tree9 = tree.median_us;
        vdg9 = vdg.median_us;
        mcast9 = mcast.median_us;
        vdg_frames = vdg.data_frames;
        mcast_frames = mcast.data_frames;
      }
      table.add_row({std::to_string(procs), std::to_string(payload),
                     Table::num(tree.median_us),
                     std::to_string(tree.data_frames),
                     Table::num(vdg.median_us),
                     std::to_string(vdg.data_frames),
                     Table::num(mcast.median_us),
                     std::to_string(mcast.data_frames)});
    }
  }
  print_table("Long-message broadcast designs (latency + data frames/op)",
              table, options);

  shape_check(vdg9 < tree9,
              "scatter+allgather beats the binomial tree for long messages "
              "(why MPI implementations adopted it)");
  shape_check(mcast9 < vdg9,
              "one IP multicast still beats the best point-to-point "
              "algorithm (" + Table::num(mcast9) + " vs " + Table::num(vdg9) +
                  " us at 9 procs x 60 kB)");
  shape_check(mcast_frames * 2 <= vdg_frames,
              "the frame economics: one multicast moves each byte once in "
              "total; scatter+allgather wins on critical path but moves "
              "more frames than even the tree");
  return 0;
}
