// Ablation: where does the crossover go as per-message software overhead
// shrinks?  The paper's future work points at low-latency stacks (VIA):
// "low latency protocols ... typically require a receive descriptor to be
// posted before a message arrives.  This is similar to the requirement in
// IP multicast that the receiver be ready."
//
// We sweep a scale factor over all three software-cost tiers and report the
// MPICH-vs-multicast crossover size for a 4-process broadcast on the
// switch.  As overheads fall toward VIA territory the scouts get cheap and
// the crossover moves toward zero: the multicast design wins almost
// everywhere on a low-latency fabric — the paper's closing conjecture.
#include "bench_util.hpp"
#include "common/bytes.hpp"

namespace {

using namespace mcmpi;
using namespace mcmpi::bench;

cluster::CostParams scaled_costs(double scale) {
  cluster::CostParams base;
  base.mpi_send_base = SimTime{static_cast<std::int64_t>(
      static_cast<double>(base.mpi_send_base.count()) * scale)};
  base.mpi_recv_base = base.mpi_send_base;
  base.raw_send_base = SimTime{static_cast<std::int64_t>(
      static_cast<double>(base.raw_send_base.count()) * scale)};
  base.raw_recv_base = base.raw_send_base;
  base.mcast_data_send_base = SimTime{static_cast<std::int64_t>(
      static_cast<double>(base.mcast_data_send_base.count()) * scale)};
  base.mcast_data_recv_base = base.mcast_data_send_base;
  return base;
}

std::vector<Point> sweep(double scale, const std::string& algo,
                         const std::vector<int>& sizes,
                         const BenchOptions& options) {
  std::vector<Point> points;
  for (int size : sizes) {
    cluster::ClusterConfig config;
    config.num_procs = 4;
    config.network = cluster::NetworkType::kSwitch;
    config.seed = options.seed;
    config.costs = scaled_costs(scale);
    cluster::Cluster cluster(config);
    cluster::ExperimentConfig exp;
    exp.reps = options.reps;
    const auto result = cluster::measure_collective(
        cluster, exp, [&algo, size](mpi::Proc& p, int) {
          Buffer data;
          if (p.rank() == 0) {
            data = pattern_payload(1, static_cast<std::size_t>(size));
          }
          p.comm_world().coll().bcast(data, 0, algo);
        });
    points.push_back(Point{result.latencies_us.median(),
                           result.latencies_us.min(),
                           result.latencies_us.max()});
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Ablation — crossover size vs software overhead scale (VIA outlook)");

  const std::vector<int> sizes = paper_sizes(125);
  const std::vector<double> scales = {1.0, 0.5, 0.25, 0.1, 0.05};

  Table table({"overhead scale", "mpich @0B us", "mcast @0B us",
               "crossover bytes"});
  std::vector<int> crossovers;
  for (double scale : scales) {
    const auto mpich = sweep(scale, "mpich", sizes, options);
    const auto mcast = sweep(scale, "mcast-binary", sizes, options);
    const int cross = crossover_size(sizes, mcast, mpich);
    crossovers.push_back(cross);
    table.add_row({Table::num(scale), Table::num(mpich.front().median_us),
                   Table::num(mcast.front().median_us),
                   cross < 0 ? "never" : std::to_string(cross)});
  }
  print_table(
      "Crossover vs per-message overhead (4 procs, switch, scouts+data "
      "scaled together)",
      table, options);

  shape_check(crossovers.front() > crossovers.back(),
              "shrinking software overhead moves the crossover toward 0 — "
              "on a VIA-class fabric multicast wins almost everywhere");
  bool monotone_non_increasing = true;
  for (std::size_t i = 1; i < crossovers.size(); ++i) {
    monotone_non_increasing =
        monotone_non_increasing && crossovers[i] <= crossovers[i - 1];
  }
  shape_check(monotone_non_increasing,
              "crossover shrinks monotonically with overhead scale");
  return 0;
}
