// Ablation: the paper's §5 concern, measured — "While we have not observed
// buffer overflow due to a set of fast senders overrunning a single
// receiver, it is possible this may occur in many-to-many communications
// and needs to be examined further."
//
// We examine it.  An 8-rank multicast allgather runs in two pacings:
// lockstep (one sender at a time — readiness implied, never loses) and
// blast (all senders at once — fast, but N-1 blocks converge on each
// receiver's socket buffer).  Sweeping the receive buffer size maps exactly
// where blast starts dropping blocks, while lockstep stays lossless at any
// buffer size, at a quantifiable latency premium.
#include "bench_util.hpp"
#include "common/bytes.hpp"

namespace {

using namespace mcmpi;

struct OverrunPoint {
  double median_us = 0;
  double missing_per_op = 0;  // blocks lost per operation, worst rank
  std::uint64_t drops = 0;    // UDP buffer-full drops over the run
};

OverrunPoint run_allgather(const std::string& algo, int procs, int block,
                           std::size_t rcvbuf, int reps, std::uint64_t seed) {
  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kSwitch;
  config.seed = seed;
  config.mcast_rcvbuf_bytes = rcvbuf;
  cluster::Cluster cluster(config);
  cluster::ExperimentConfig exp;
  exp.reps = reps;
  exp.rep_interval = milliseconds(80);

  std::vector<std::int64_t> missing(static_cast<std::size_t>(procs), 0);
  const auto result = cluster::measure_collective(
      cluster, exp, [&algo, block, &missing](mpi::Proc& p, int) {
        const Buffer mine = pattern_payload(
            static_cast<std::uint64_t>(p.rank()),
            static_cast<std::size_t>(block));
        const auto blocks = p.comm_world().coll().allgather(mine, algo);
        // A lossy pacing leaves blocks it never received empty.
        for (const Buffer& b : blocks) {
          if (b.empty()) {
            ++missing[static_cast<std::size_t>(p.rank())];
          }
        }
      });

  std::int64_t worst = 0;
  for (std::int64_t m : missing) {
    worst = std::max(worst, m);
  }
  std::uint64_t drops = 0;
  for (int r = 0; r < procs; ++r) {
    drops += cluster.udp(r).stats().buffer_full_drops;
  }
  const int total_ops = reps + exp.warmup_reps;
  return OverrunPoint{result.latencies_us.median(),
                      static_cast<double>(worst) / total_ops, drops};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Ablation — many-to-many overrun: blast vs lockstep allgather vs "
      "receive-buffer size");

  // Small blocks arrive every ~50 us of wire time but cost the receiver
  // ~200 us each to process — the receiver falls behind and the socket
  // buffer must absorb the difference.  (Big blocks cannot overrun: the
  // wire paces them slower than the receiver drains them.)  Buffers below
  // one datagram would starve even lockstep, so the sweep starts at 1 KiB.
  constexpr int kProcs = 8;
  constexpr int kBlock = 512;
  const std::vector<std::size_t> buffers = {1024, 2048, 4096, 65536};

  Table table({"rcvbuf bytes", "blast us", "blast missing/op", "udp drops",
               "lockstep us", "lockstep missing/op"});
  bool lockstep_always_clean = true;
  bool blast_drops_when_small = false;
  bool blast_clean_when_large = false;
  double blast_large_us = 0;
  double lockstep_large_us = 0;

  for (std::size_t rcvbuf : buffers) {
    const auto blast = run_allgather("mcast-blast", kProcs, kBlock, rcvbuf,
                                     options.reps, options.seed);
    const auto lockstep = run_allgather("mcast-lockstep", kProcs, kBlock,
                                        rcvbuf, options.reps, options.seed);
    lockstep_always_clean =
        lockstep_always_clean && lockstep.missing_per_op == 0;
    if (rcvbuf <= 2048 && blast.missing_per_op > 0) {
      blast_drops_when_small = true;
    }
    if (rcvbuf == 65536) {
      blast_clean_when_large = blast.missing_per_op == 0;
      blast_large_us = blast.median_us;
      lockstep_large_us = lockstep.median_us;
    }
    table.add_row({std::to_string(rcvbuf), Table::num(blast.median_us),
                   Table::num(blast.missing_per_op),
                   std::to_string(blast.drops), Table::num(lockstep.median_us),
                   Table::num(lockstep.missing_per_op)});
  }
  print_table("Many-to-many allgather, 8 procs x 512 B blocks, switch",
              table, options);

  shape_check(blast_drops_when_small,
              "blast pacing loses blocks once the receive buffer is small — "
              "the paper's overrun hazard is real");
  shape_check(lockstep_always_clean,
              "lockstep pacing never loses a block at any buffer size");
  shape_check(blast_clean_when_large,
              "a large receive buffer absorbs the blast (why the paper "
              "never observed the overrun)");
  shape_check(blast_clean_when_large && blast_large_us < lockstep_large_us,
              "when it survives, blast is faster than lockstep (" +
                  Table::num(blast_large_us) + " vs " +
                  Table::num(lockstep_large_us) + " us)");
  return 0;
}
