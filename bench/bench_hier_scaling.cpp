// Hierarchical-collective scaling: the fig12-style rank sweep taken across
// SEGMENTED topologies — mpich (binomial point-to-point) vs the flat
// multicast tree (mcast-binary) vs the hierarchical bcast (hier-mcast) at
// 64-1024 ranks spread over {2, 4, 8} switch segments joined by a routed
// trunk mesh (2 ms per hop — a routed/WAN backbone, the regime the
// hierarchy targets).
//
// What the records claim (and tools/bench_diff.py enforces):
//   * every simulated median is deterministic against the committed
//     baseline, like any other bench record;
//   * with --min-hier-speedup R, hier-mcast's simulated median must be
//     >= R x faster than flat mcast-binary on every group at >= 4
//     segments and >= 256 ranks — the paper-style crossover: the flat
//     tree's ack/scout rounds cross the slow trunks O(log N) times where
//     the hierarchy pays each trunk once (deterministic, never hw-gated).
#include <chrono>

#include "bench_util.hpp"
#include "common/bytes.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Hierarchical bcast scaling — 64-1024 ranks over 2/4/8 switch "
      "segments, mpich vs flat multicast vs hier-mcast");

  struct SweepPoint {
    int ranks;
    int segments;
  };
  // The full 64->1024 rank ladder, each rank count at the segment counts
  // where the comparison is interesting; the big points keep the sweep's
  // wall time bounded by appearing once.
  const std::vector<SweepPoint> sweep = {
      {64, 2}, {64, 4}, {64, 8}, {256, 4}, {256, 8}, {1024, 8},
  };
  const std::vector<std::string> algos = {"mpich", "mcast-binary",
                                          "hier-mcast"};
  constexpr int kBytes = 2048;

  struct Measured {
    int ranks;
    int segments;
    std::string algo;
    double median_us;
  };
  std::vector<Measured> measured;

  Table table({"ranks", "segments", "algo", "median us", "wall ms",
               "events"});
  for (const SweepPoint& point : sweep) {
    for (const std::string& algo : algos) {
      cluster::ClusterConfig config;
      config.network = cluster::NetworkType::kSwitch;
      config.num_procs = point.ranks;
      config.num_segments = point.segments;
      config.shard_driver = sim::ShardDriver::kParallel;
      config.seed = options.seed;
      config.hosts = cluster::make_uniform_hosts(point.ranks);
      // A routed-backbone trunk mesh: crossing a trunk costs 2 ms, so the
      // sweep measures exactly what the hierarchy optimises — how often
      // each algorithm pays that hop.
      config.trunk_latency = microseconds_f(2000.0);
      cluster::Cluster cluster(config);

      cluster::ExperimentConfig exp;
      exp.reps = options.reps;
      // Wide spacing: the very first (warmup) repetition pays comm-splits,
      // RDP channel establishment and the pre-scoping multicast flood all
      // at once, and at 1024 ranks that backlog drains for ~200 ms of
      // virtual time.  Reps must not start on top of it — 250 ms keeps
      // every measured rep in steady state.
      exp.rep_interval = milliseconds(250);

      const auto wall_start = std::chrono::steady_clock::now();
      const auto result = cluster::measure_collective(
          cluster, exp, [&algo](mpi::Proc& p, int rep) {
            Buffer data;
            if (p.rank() == 0) {
              data = pattern_payload(static_cast<std::uint64_t>(rep), kBytes);
            }
            p.comm_world().coll().bcast(data, 0, algo);
          });
      const auto wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - wall_start)
              .count();

      const double median = result.latencies_us.median();
      measured.push_back(
          Measured{point.ranks, point.segments, algo, median});
      table.add_row({std::to_string(point.ranks),
                     std::to_string(point.segments), algo,
                     Table::num(median), Table::num(wall_ms),
                     std::to_string(cluster.simulator().events_scheduled())});
      record_bench(BenchRecord{
          .op = "bcast",
          .algo = algo,
          .network = "switch",
          .ranks = point.ranks,
          .bytes = kBytes,
          .sim_time_us = median,
          .wall_time_ms = wall_ms,
          .events_scheduled = cluster.simulator().events_scheduled(),
          .handoffs = cluster.simulator().handoffs(),
          .segments = point.segments,
      });
    }
  }
  print_table(
      "Hierarchical bcast scaling (2 KiB, switch segments, 2 ms trunks)",
      table, options);

  // Shape checks: the crossover claim — past 4 segments / 256 ranks the
  // hierarchy must beat the flat multicast tree (and mpich, which pays the
  // trunk on nearly every binomial edge, must trail both).
  for (const SweepPoint& point : sweep) {
    double mpich = 0;
    double flat = 0;
    double hier = 0;
    for (const Measured& m : measured) {
      if (m.ranks != point.ranks || m.segments != point.segments) {
        continue;
      }
      if (m.algo == "mpich") {
        mpich = m.median_us;
      } else if (m.algo == "mcast-binary") {
        flat = m.median_us;
      } else if (m.algo == "hier-mcast") {
        hier = m.median_us;
      }
    }
    const std::string label = std::to_string(point.ranks) + " ranks / " +
                              std::to_string(point.segments) + " segments";
    if (point.segments >= 4 && point.ranks >= 256) {
      shape_check(hier < flat,
                  "hier-mcast (" + Table::num(hier) +
                      " us) beats flat mcast-binary (" + Table::num(flat) +
                      " us) at " + label);
    }
    shape_check(hier < mpich, "hier-mcast (" + Table::num(hier) +
                                  " us) beats mpich (" + Table::num(mpich) +
                                  " us) at " + label);
  }
  return 0;
}
