// Jumbo-message broadcast sweep: the segmented/pipelined/striped multicast
// engine (coll/segmented.hpp) against the MPICH point-to-point baseline at
// payloads far past the single-datagram ceiling.
//
// Two topologies: the paper's 9-machine switched segment, and a 16-machine
// two-segment switched fabric joined by a trunk.  Three payloads
// {1, 4, 16 MiB} x {mpich, mcast-segmented at window 1 (lockstep) and
// window 4 (pipelined)} x lane counts {1, 2, 4}.  The machine-readable
// records carry the window/lane knobs and the engine's chunk counters, so
// the bench_diff gate can enforce that pipelining beats lockstep
// (--min-pipeline-speedup) and that striping strictly helps at window 1.
#include <cstdint>
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "coll/segmented.hpp"
#include "common/bytes.hpp"

namespace mcmpi::bench {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

/// One measured variant: a registry algorithm, plus the segmented knobs
/// (window = 0 marks a non-segmented baseline algorithm).
struct Variant {
  std::string label;
  std::string algo;
  int window = 0;
  int lanes = 0;
};

struct Topology {
  std::string title;
  int procs = 9;
  int segments = 1;
};

struct Measured {
  Point point;
  sim::SchedCounters sched;
};

Measured measure_jumbo(const Topology& topo, const Variant& v,
                       std::size_t bytes, const BenchOptions& options) {
  ClusterConfig config;
  config.network = NetworkType::kSwitch;
  config.num_procs = topo.procs;
  config.num_segments = topo.segments;
  config.seed = options.seed;
  if (topo.procs > 9) {
    config.hosts = cluster::make_uniform_hosts(topo.procs);
  }
  Cluster cluster(config);
  cluster::ExperimentConfig exp;
  exp.reps = options.reps;
  // Jumbo operations run for whole simulated seconds; keep every
  // repetition's pre-agreed start after the previous one finishes so the
  // measured latency is the operation itself, not accumulated overrun.
  exp.rep_interval = milliseconds(12000);

  const PayloadCounters payload_before = payload_counters();
  const auto wall_start = std::chrono::steady_clock::now();
  const auto result = cluster::measure_collective(
      cluster, exp, [&v, bytes](mpi::Proc& p, int) {
        if (v.window > 0) {
          coll::SegmentedConfig cfg;
          cfg.window = v.window;
          cfg.lanes = v.lanes;
          coll::set_segmented_config(p, p.comm_world(), cfg);
        }
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(0xB0CA57, bytes);
        }
        p.comm_world().coll().bcast(data, 0, v.algo);
      });
  const auto wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  const PayloadCounters payload_delta = payload_counters().since(payload_before);

  Measured m;
  m.point = Point{result.latencies_us.median(), result.latencies_us.min(),
                  result.latencies_us.max()};
  m.sched = cluster.simulator().sched_counters();
  record_bench(BenchRecord{
      .op = "jumbo-bcast",
      .algo = v.algo,
      .network = cluster::to_string(config.network),
      .ranks = topo.procs,
      .bytes = static_cast<std::int64_t>(bytes),
      .sim_time_us = m.point.median_us,
      .wall_time_ms = wall_ms,
      .events_scheduled = cluster.simulator().events_scheduled(),
      .handoffs = cluster.simulator().handoffs(),
      .payload_allocs = payload_delta.buffer_allocs,
      .payload_copies = payload_delta.byte_copies,
      .window = v.window,
      .lanes = v.lanes,
      .chunk_sent = m.sched.chunk_sent,
      .chunk_acked = m.sched.chunk_acked,
      .chunk_retried = m.sched.chunk_retried,
      .chunk_peak_window = m.sched.chunk_peak_window,
  });
  return m;
}

int run(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Jumbo broadcast: segmented/pipelined/striped multicast vs MPICH "
      "point-to-point at 1-16 MiB");

  const std::vector<std::size_t> sizes = {1u << 20, 4u << 20, 16u << 20};
  const std::vector<Variant> variants = {
      {"mpich", "mpich", 0, 0},
      {"seg w1 l1", "mcast-segmented", 1, 1},
      {"seg w1 l4", "mcast-segmented", 1, 4},
      {"seg w4 l1", "mcast-segmented", 4, 1},
      {"seg w4 l2", "mcast-segmented", 4, 2},
      {"seg w4 l4", "mcast-segmented", 4, 4},
  };
  const Topology switch9{"switch, 9 procs, 1 segment", 9, 1};
  // The two-segment fabric only needs the headline comparison.
  const Topology dual16{"switch, 16 procs, 2 segments", 16, 2};
  const std::vector<Variant> dual_variants = {variants[0], variants[1],
                                              variants[3]};

  // Indexed [variant][size] for the shape checks below.
  std::vector<std::vector<Measured>> nine;
  for (const Variant& v : variants) {
    std::vector<Measured> row;
    for (std::size_t bytes : sizes) {
      row.push_back(measure_jumbo(switch9, v, bytes, options));
    }
    nine.push_back(std::move(row));
  }

  std::vector<std::string> columns{"MiB"};
  for (const Variant& v : variants) {
    columns.push_back(v.label + " us");
  }
  Table table(columns);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row{std::to_string(sizes[i] >> 20)};
    for (std::size_t s = 0; s < variants.size(); ++s) {
      row.push_back(Table::num(nine[s][i].point.median_us));
    }
    table.add_row(std::move(row));
  }
  print_table("jumbo bcast — " + switch9.title, table, options);

  std::vector<Measured> dual;
  for (const Variant& v : dual_variants) {
    dual.push_back(measure_jumbo(dual16, v, sizes.back(), options));
  }
  Table dual_table({"MiB", "mpich us", "seg w1 l1 us", "seg w4 l1 us"});
  dual_table.add_row({std::to_string(sizes.back() >> 20),
                      Table::num(dual[0].point.median_us),
                      Table::num(dual[1].point.median_us),
                      Table::num(dual[2].point.median_us)});
  print_table("jumbo bcast — " + dual16.title, dual_table, options);

  // The qualitative claims the ISSUE's perf gate rests on, checked at the
  // largest payload (chunk count dwarfs the fixed scout/ack overheads).
  const std::size_t last = sizes.size() - 1;
  const double w1 = nine[1][last].point.median_us;   // seg w1 l1
  const double w1l4 = nine[2][last].point.median_us; // seg w1 l4
  const double w4 = nine[3][last].point.median_us;   // seg w4 l1
  shape_check(w4 * 1.3 <= w1,
              "pipelining beats lockstep >= 1.3x at 16 MiB (w1 " +
                  Table::num(w1) + " us vs w4 " + Table::num(w4) + " us)");
  shape_check(w1l4 < w1,
              "4 lanes strictly beat 1 lane at window 1, 16 MiB (" +
                  Table::num(w1l4) + " us vs " + Table::num(w1) + " us)");
  shape_check(nine[3][last].sched.chunk_peak_window > 1,
              "window-4 run overlaps chunks in flight (peak window " +
                  std::to_string(nine[3][last].sched.chunk_peak_window) + ")");
  shape_check(dual[2].point.median_us < dual[1].point.median_us,
              "pipelining also wins across the two-segment trunk");
  return 0;
}

}  // namespace
}  // namespace mcmpi::bench

int main(int argc, char** argv) { return mcmpi::bench::run(argc, argv); }
