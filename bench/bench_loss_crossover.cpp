// Loss-crossover sweep: the recovery schemes of every loss-tolerant
// single-datagram broadcast against rising link loss.
//
// Six protocols — ack-mcast (sender-initiated, ORNL style), nack-mcast
// (receiver-driven SRM style), the sequencer (token-ordered with NACK
// recovery), the segmented pipeline (per-chunk acks, window 4) and the
// FEC-coded multicast at two parity overheads (1/8 and 1/4) — each
// measured at five link-fault profiles: a clean wire, 0.1%, 1% and 5%
// independent loss, and a Gilbert–Elliott bursty profile.  Two topologies
// per rank count (9 and 16 switched hosts): the paper's single switch, and
// a 2-segment cluster joined by a 2 ms trunk — the high-latency regime
// where any recovery round trip costs four orders of magnitude more than a
// LAN hop.  The machine-readable records carry the loss label, the
// fault/recovery counters and the FEC parity counters, so the bench_diff
// gate can enforce both headline claims: receiver-driven NACK recovery
// overtakes sender-side ACK collection as loss rises
// (--min-loss-advantage), and zero-round-trip FEC recovery overtakes the
// NACK protocol on the slow trunk once loss is heavy enough to make NACK
// round trips routine (--min-fec-advantage).  The zero-loss records pin
// the fault path's zero-overhead default — and FEC's deterministic parity
// cost (parity_sent > 0, parity_used == 0 on a clean wire).
#include <algorithm>
#include <cstdint>
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "coll/ack_mcast.hpp"
#include "coll/fec.hpp"
#include "coll/nack_mcast.hpp"
#include "coll/segmented.hpp"
#include "common/bytes.hpp"

namespace mcmpi::bench {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

constexpr std::size_t kPayloadBytes = 16 * 1024;

struct LossProfile {
  std::string label;
  net::fault::FaultProfile profile;
};

struct Variant {
  std::string label;
  /// Record/baseline algorithm name ("fec-mcast-1/8" distinguishes the two
  /// parity configurations of the one engine).
  std::string algo;
  /// Registry engine name the bcast actually dispatches to.
  std::string engine;
  /// FEC parity ratio for fec-mcast variants; 0 for everything else.
  double fec_overhead = 0.0;
};

/// One network shape: the paper's single segment, or two segments behind a
/// slow trunk (the regime where recovery round trips dominate).
struct Topology {
  std::string label;
  int segments = 1;
  SimTime trunk_latency = SimTime{};
};

struct Measured {
  Point point;
  sim::SchedCounters sched;
};

std::vector<LossProfile> loss_profiles() {
  std::vector<LossProfile> profiles;
  profiles.push_back({"0", {}});
  profiles.push_back({"0.1%", {.loss = 0.001}});
  profiles.push_back({"1%", {.loss = 0.01}});
  profiles.push_back({"5%", {.loss = 0.05}});
  // Bursty: ~7% of frames land in the bad state (0.02 / (0.02 + 0.25)),
  // where half of them drop — a ~3.7% mean rate arriving in clumps, the
  // regime that separates NACK schemes from ACK schemes.
  profiles.push_back({"bursty",
                      {.ge_good_to_bad = 0.02, .ge_bad_to_good = 0.25,
                       .ge_loss_bad = 0.5}});
  return profiles;
}

/// Per-communicator recovery knobs tuned for a lossy wire: exponential
/// backoff everywhere (a fixed timer livelocks under sustained loss) and
/// finite retry caps so an impossible run dies with a diagnosis instead of
/// hanging the bench.  `silence` is the base timer before any recovery
/// action — it must clear the topology's worst-case delivery delay, or the
/// remote segment's receivers fire spurious NACKs on a clean wire (2 ms of
/// trunk makes the protocols' 2 ms LAN defaults exactly too tight).
/// Idempotent; called at the top of every repetition.
void configure_recovery(mpi::Proc& p, const Variant& v, SimTime silence) {
  if (v.engine == "ack-mcast") {
    coll::AckMcastParams params;
    params.retransmit_timeout = silence;
    params.backoff = 2.0;
    params.timeout_cap = milliseconds(80);
    params.max_retries = 200;
    coll::set_ack_mcast_params(p, p.comm_world(), params);
  } else if (v.engine == "nack-mcast") {
    coll::NackMcastParams params;
    params.nack_timeout = silence;
    coll::set_nack_mcast_params(p, p.comm_world(), params);
  } else if (v.engine == "mcast-segmented") {
    coll::SegmentedConfig config;
    config.chunk_bytes = 4096;
    config.window = 4;
    config.retransmit_timeout = silence;
    config.retransmit_backoff = 2.0;
    config.retransmit_timeout_cap = milliseconds(400);
    config.max_retries = 50;
    coll::set_segmented_config(p, p.comm_world(), config);
  } else if (v.engine == "fec-mcast") {
    coll::FecConfig config;
    config.overhead = v.fec_overhead;
    config.fallback_timeout = silence;
    config.fallback_backoff = 2.0;
    config.fallback_timeout_cap = milliseconds(400);
    config.max_fallback_retries = 50;
    coll::set_fec_config(p, p.comm_world(), config);
  }
  // The sequencer already defaults to a backed-off, capped NACK timer.
}

Measured measure_loss(int procs, const Topology& topo, const LossProfile& lp,
                      const Variant& v, const BenchOptions& options) {
  ClusterConfig config;
  config.network = NetworkType::kSwitch;
  config.num_procs = procs;
  config.seed = options.seed;
  config.faults.link = lp.profile;
  if (topo.segments > 1) {
    config.num_segments = topo.segments;
    config.trunk_latency = topo.trunk_latency;
  }
  if (procs > 9) {
    config.hosts = cluster::make_uniform_hosts(procs);
  }
  Cluster cluster(config);
  cluster::ExperimentConfig exp;
  exp.reps = options.reps;
  // Recovery under 5% loss can back off into tens of milliseconds; keep
  // each repetition's pre-agreed start clear of the previous one's tail.
  exp.rep_interval = milliseconds(2000);

  // Clear the worst-case delivery delay: on the trunk topology a remote
  // receiver sees nothing until the blast crosses the 2 ms trunk, so the
  // LAN-tuned 2 ms silence timer would NACK spuriously on a clean wire.
  const SimTime silence = topo.segments > 1
                              ? topo.trunk_latency * 3
                              : milliseconds(2);

  const PayloadCounters payload_before = payload_counters();
  const auto wall_start = std::chrono::steady_clock::now();
  const auto result = cluster::measure_collective(
      cluster, exp, [&v, silence](mpi::Proc& p, int) {
        configure_recovery(p, v, silence);
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(0xB0CA57, kPayloadBytes);
        }
        p.comm_world().coll().bcast(data, 0, v.engine);
      });
  const auto wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  const PayloadCounters payload_delta =
      payload_counters().since(payload_before);

  Measured m;
  m.point = Point{result.latencies_us.median(), result.latencies_us.min(),
                  result.latencies_us.max()};
  m.sched = cluster.simulator().sched_counters();
  record_bench(BenchRecord{
      .op = "loss-bcast",
      .algo = v.algo,
      .network = cluster::to_string(config.network),
      .ranks = procs,
      .bytes = static_cast<std::int64_t>(kPayloadBytes),
      .sim_time_us = m.point.median_us,
      .wall_time_ms = wall_ms,
      .events_scheduled = cluster.simulator().events_scheduled(),
      .handoffs = cluster.simulator().handoffs(),
      .payload_allocs = payload_delta.buffer_allocs,
      .payload_copies = payload_delta.byte_copies,
      // Single-segment records keep segments = 0 (field omitted from the
      // JSON), so the pre-trunk baseline rows' keys are unchanged.
      .segments = topo.segments > 1 ? topo.segments : 0,
      .loss = lp.label,
      .frames_dropped = m.sched.frames_dropped,
      .frames_duplicated = m.sched.frames_duplicated,
      .frames_reordered = m.sched.frames_reordered,
      .nacks_sent = m.sched.nacks_sent,
      .nacks_suppressed = m.sched.nacks_suppressed,
      .retransmits = m.sched.retransmits,
      .parity_sent = m.sched.parity_sent,
      .parity_used = m.sched.parity_used,
      .fec_decodes = m.sched.fec_decodes,
      .fec_fallbacks = m.sched.fec_fallbacks,
  });
  return m;
}

int run(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Loss crossover: ack-mcast vs nack-mcast vs sequencer vs segmented "
      "vs fec-mcast broadcast under rising link loss");

  const std::vector<LossProfile> profiles = loss_profiles();
  const std::vector<Variant> variants = {
      {"ack-mcast", "ack-mcast", "ack-mcast"},
      {"nack-mcast", "nack-mcast", "nack-mcast"},
      {"sequencer", "sequencer", "sequencer"},
      {"seg w4", "mcast-segmented", "mcast-segmented"},
      {"fec 1/8", "fec-mcast-1/8", "fec-mcast", 0.125},
      {"fec 1/4", "fec-mcast-1/4", "fec-mcast", 0.25},
  };
  const std::vector<Topology> topologies = {
      {"switch", 1, SimTime{}},
      {"2seg 2ms trunk", 2, milliseconds(2)},
  };
  const std::vector<int> rank_counts = {9, 16};

  // Indexed [topology][rank_count][profile][variant] for the shape checks.
  std::vector<std::vector<std::vector<std::vector<Measured>>>> all;
  for (const Topology& topo : topologies) {
    std::vector<std::vector<std::vector<Measured>>> by_ranks;
    for (int procs : rank_counts) {
      std::vector<std::vector<Measured>> by_profile;
      for (const LossProfile& lp : profiles) {
        std::vector<Measured> row;
        for (const Variant& v : variants) {
          row.push_back(measure_loss(procs, topo, lp, v, options));
        }
        by_profile.push_back(std::move(row));
      }
      by_ranks.push_back(std::move(by_profile));

      std::vector<std::string> columns{"loss"};
      for (const Variant& v : variants) {
        columns.push_back(v.label + " us");
      }
      Table table(columns);
      for (std::size_t i = 0; i < profiles.size(); ++i) {
        std::vector<std::string> row{profiles[i].label};
        for (std::size_t s = 0; s < variants.size(); ++s) {
          row.push_back(Table::num(by_ranks.back()[i][s].point.median_us));
        }
        table.add_row(std::move(row));
      }
      print_table("loss crossover — " + topo.label + ", " +
                      std::to_string(procs) + " procs, 16 KiB bcast",
                  table, options);
    }
    all.push_back(std::move(by_ranks));
  }

  constexpr std::size_t kAck = 0, kNack = 1, kFec8 = 4, kFec4 = 5;

  // Zero-loss sanity: the fault path's default really is zero faults,
  // nack-mcast's clean-wire claim (no control traffic at all) holds, and
  // FEC's deterministic cost shows as parity sent but never consumed.
  bool clean = true;
  bool fec_idle = true;
  for (std::size_t g = 0; g < topologies.size(); ++g) {
    for (std::size_t t = 0; t < rank_counts.size(); ++t) {
      for (std::size_t s = 0; s < variants.size(); ++s) {
        const auto& m = all[g][t][0][s];
        clean = clean && m.sched.frames_dropped == 0 &&
                m.sched.frames_duplicated == 0 &&
                m.sched.frames_reordered == 0;
      }
      clean = clean && all[g][t][0][kNack].sched.nacks_sent == 0;
      for (std::size_t s : {kFec8, kFec4}) {
        const auto& m = all[g][t][0][s];
        fec_idle = fec_idle && m.sched.parity_sent > 0 &&
                   m.sched.parity_used == 0 && m.sched.fec_decodes == 0 &&
                   m.sched.fec_fallbacks == 0;
      }
    }
  }
  shape_check(clean, "zero-loss profile injects no faults and nack-mcast "
                     "sends no NACKs on a clean wire");
  shape_check(fec_idle, "clean-wire fec-mcast pays its parity bandwidth "
                        "(parity_sent > 0) but never decodes");

  // Faults actually bite: at 5% loss the injector drops frames, every
  // recovery scheme retransmits or decodes, and the FEC windows actually
  // consume parity.
  bool bites = true;
  bool fec_decodes = true;
  for (std::size_t g = 0; g < topologies.size(); ++g) {
    for (std::size_t t = 0; t < rank_counts.size(); ++t) {
      const auto& row = all[g][t][3];
      for (const Measured& m : row) {
        bites = bites && m.sched.frames_dropped > 0;
      }
      bites = bites && row[kAck].sched.retransmits > 0 &&
              row[kNack].sched.nacks_sent > 0 &&
              row[kNack].sched.retransmits > 0;
      for (std::size_t s : {kFec8, kFec4}) {
        fec_decodes = fec_decodes && row[s].sched.fec_decodes > 0 &&
                      row[s].sched.parity_used > 0;
      }
    }
  }
  shape_check(bites,
              "5% loss drops frames on every run and drives retransmissions");
  shape_check(fec_decodes,
              "5% loss drives in-window FEC decodes that consume parity");

  // The headline crossovers.  First the paper pair: receiver-driven NACK
  // recovery is no slower than sender-side ACK collection once loss
  // reaches 1%, on the paper's single-segment testbed (the bench_diff gate
  // re-checks this from the records; on the trunk topology the claim only
  // re-emerges at heavy loss, so that sweep is gated on the FEC claim
  // below instead).
  for (std::size_t t = 0; t < rank_counts.size(); ++t) {
    for (std::size_t i : {std::size_t{2}, std::size_t{3}}) {
      const double ack = all[0][t][i][kAck].point.median_us;
      const double nack = all[0][t][i][kNack].point.median_us;
      shape_check(nack <= ack,
                  "nack-mcast <= ack-mcast at " + profiles[i].label +
                      " loss, switch, " + std::to_string(rank_counts[t]) +
                      " procs (" + Table::num(nack) + " vs " +
                      Table::num(ack) + " us)");
    }
  }
  // Then the FEC claim: on the 2 ms trunk at 5% loss, zero-round-trip
  // in-window recovery beats waiting out a NACK round trip — the
  // best-configured FEC variant is no slower than nack-mcast (bench_diff
  // re-checks via --min-fec-advantage).
  for (std::size_t t = 0; t < rank_counts.size(); ++t) {
    const auto& row = all[1][t][3];
    const double nack = row[kNack].point.median_us;
    const double fec = std::min(row[kFec8].point.median_us,
                                row[kFec4].point.median_us);
    shape_check(fec <= nack,
                "fec-mcast <= nack-mcast at 5% loss on the 2 ms trunk, " +
                    std::to_string(rank_counts[t]) + " procs (" +
                    Table::num(fec) + " vs " + Table::num(nack) + " us)");
  }
  return 0;
}

}  // namespace
}  // namespace mcmpi::bench

int main(int argc, char** argv) { return mcmpi::bench::run(argc, argv); }
