// Loss-crossover sweep: the recovery schemes of every loss-tolerant
// single-datagram broadcast against rising link loss.
//
// Four protocols — ack-mcast (sender-initiated, ORNL style), nack-mcast
// (receiver-driven SRM style), the sequencer (token-ordered with NACK
// recovery) and the segmented pipeline (per-chunk acks, window 4) — each
// measured at five link-fault profiles: a clean wire, 0.1%, 1% and 5%
// independent loss, and a Gilbert–Elliott bursty profile.  Two topologies
// (9 and 16 switched hosts).  The machine-readable records carry the loss
// label and the fault/recovery counters, so the bench_diff gate can enforce
// the headline claim: receiver-driven NACK recovery overtakes sender-side
// ACK collection as loss rises (--min-loss-advantage), while the zero-loss
// records pin the fault path's zero-overhead default.
#include <cstdint>
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "coll/ack_mcast.hpp"
#include "coll/nack_mcast.hpp"
#include "coll/segmented.hpp"
#include "common/bytes.hpp"

namespace mcmpi::bench {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

constexpr std::size_t kPayloadBytes = 16 * 1024;

struct LossProfile {
  std::string label;
  net::fault::FaultProfile profile;
};

struct Variant {
  std::string label;
  std::string algo;
};

struct Measured {
  Point point;
  sim::SchedCounters sched;
};

std::vector<LossProfile> loss_profiles() {
  std::vector<LossProfile> profiles;
  profiles.push_back({"0", {}});
  profiles.push_back({"0.1%", {.loss = 0.001}});
  profiles.push_back({"1%", {.loss = 0.01}});
  profiles.push_back({"5%", {.loss = 0.05}});
  // Bursty: ~7% of frames land in the bad state (0.02 / (0.02 + 0.25)),
  // where half of them drop — a ~3.7% mean rate arriving in clumps, the
  // regime that separates NACK schemes from ACK schemes.
  profiles.push_back({"bursty",
                      {.ge_good_to_bad = 0.02, .ge_bad_to_good = 0.25,
                       .ge_loss_bad = 0.5}});
  return profiles;
}

/// Per-communicator recovery knobs tuned for a lossy wire: exponential
/// backoff everywhere (a fixed timer livelocks under sustained loss) and
/// finite retry caps so an impossible run dies with a diagnosis instead of
/// hanging the bench.  Idempotent; called at the top of every repetition.
void configure_recovery(mpi::Proc& p, const std::string& algo) {
  if (algo == "ack-mcast") {
    coll::AckMcastParams params;
    params.retransmit_timeout = milliseconds(2);
    params.backoff = 2.0;
    params.timeout_cap = milliseconds(80);
    params.max_retries = 200;
    coll::set_ack_mcast_params(p, p.comm_world(), params);
  } else if (algo == "mcast-segmented") {
    coll::SegmentedConfig config;
    config.chunk_bytes = 4096;
    config.window = 4;
    config.retransmit_timeout = milliseconds(2);
    config.retransmit_backoff = 2.0;
    config.retransmit_timeout_cap = milliseconds(400);
    config.max_retries = 50;
    coll::set_segmented_config(p, p.comm_world(), config);
  }
  // nack-mcast and the sequencer already default to backed-off, capped
  // NACK timers.
}

Measured measure_loss(int procs, const LossProfile& lp, const Variant& v,
                      const BenchOptions& options) {
  ClusterConfig config;
  config.network = NetworkType::kSwitch;
  config.num_procs = procs;
  config.seed = options.seed;
  config.faults.link = lp.profile;
  if (procs > 9) {
    config.hosts = cluster::make_uniform_hosts(procs);
  }
  Cluster cluster(config);
  cluster::ExperimentConfig exp;
  exp.reps = options.reps;
  // Recovery under 5% loss can back off into tens of milliseconds; keep
  // each repetition's pre-agreed start clear of the previous one's tail.
  exp.rep_interval = milliseconds(2000);

  const PayloadCounters payload_before = payload_counters();
  const auto wall_start = std::chrono::steady_clock::now();
  const auto result = cluster::measure_collective(
      cluster, exp, [&v](mpi::Proc& p, int) {
        configure_recovery(p, v.algo);
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(0xB0CA57, kPayloadBytes);
        }
        p.comm_world().coll().bcast(data, 0, v.algo);
      });
  const auto wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  const PayloadCounters payload_delta =
      payload_counters().since(payload_before);

  Measured m;
  m.point = Point{result.latencies_us.median(), result.latencies_us.min(),
                  result.latencies_us.max()};
  m.sched = cluster.simulator().sched_counters();
  record_bench(BenchRecord{
      .op = "loss-bcast",
      .algo = v.algo,
      .network = cluster::to_string(config.network),
      .ranks = procs,
      .bytes = static_cast<std::int64_t>(kPayloadBytes),
      .sim_time_us = m.point.median_us,
      .wall_time_ms = wall_ms,
      .events_scheduled = cluster.simulator().events_scheduled(),
      .handoffs = cluster.simulator().handoffs(),
      .payload_allocs = payload_delta.buffer_allocs,
      .payload_copies = payload_delta.byte_copies,
      .loss = lp.label,
      .frames_dropped = m.sched.frames_dropped,
      .frames_duplicated = m.sched.frames_duplicated,
      .frames_reordered = m.sched.frames_reordered,
      .nacks_sent = m.sched.nacks_sent,
      .nacks_suppressed = m.sched.nacks_suppressed,
      .retransmits = m.sched.retransmits,
  });
  return m;
}

int run(int argc, char** argv) {
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Loss crossover: ack-mcast vs nack-mcast vs sequencer vs segmented "
      "broadcast under rising link loss");

  const std::vector<LossProfile> profiles = loss_profiles();
  const std::vector<Variant> variants = {
      {"ack-mcast", "ack-mcast"},
      {"nack-mcast", "nack-mcast"},
      {"sequencer", "sequencer"},
      {"seg w4", "mcast-segmented"},
  };
  const std::vector<int> rank_counts = {9, 16};

  // Indexed [rank_count][profile][variant] for the shape checks below.
  std::vector<std::vector<std::vector<Measured>>> all;
  for (int procs : rank_counts) {
    std::vector<std::vector<Measured>> by_profile;
    for (const LossProfile& lp : profiles) {
      std::vector<Measured> row;
      for (const Variant& v : variants) {
        row.push_back(measure_loss(procs, lp, v, options));
      }
      by_profile.push_back(std::move(row));
    }
    all.push_back(std::move(by_profile));

    std::vector<std::string> columns{"loss"};
    for (const Variant& v : variants) {
      columns.push_back(v.label + " us");
    }
    Table table(columns);
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      std::vector<std::string> row{profiles[i].label};
      for (std::size_t s = 0; s < variants.size(); ++s) {
        row.push_back(Table::num(all.back()[i][s].point.median_us));
      }
      table.add_row(std::move(row));
    }
    print_table("loss crossover — switch, " + std::to_string(procs) +
                    " procs, 16 KiB bcast",
                table, options);
  }

  // Zero-loss sanity: the fault path's default really is zero faults, and
  // nack-mcast's clean-wire claim (no control traffic at all) holds.
  bool clean = true;
  for (std::size_t t = 0; t < rank_counts.size(); ++t) {
    for (std::size_t s = 0; s < variants.size(); ++s) {
      const auto& m = all[t][0][s];
      clean = clean && m.sched.frames_dropped == 0 &&
              m.sched.frames_duplicated == 0 && m.sched.frames_reordered == 0;
    }
    clean = clean && all[t][0][1].sched.nacks_sent == 0;
  }
  shape_check(clean, "zero-loss profile injects no faults and nack-mcast "
                     "sends no NACKs on a clean wire");

  // Faults actually bite: at 5% loss the injector drops frames and every
  // recovery scheme retransmits.
  bool bites = true;
  for (std::size_t t = 0; t < rank_counts.size(); ++t) {
    const auto& row = all[t][3];
    for (const Measured& m : row) {
      bites = bites && m.sched.frames_dropped > 0;
    }
    bites = bites && row[0].sched.retransmits > 0 &&
            row[1].sched.nacks_sent > 0 && row[1].sched.retransmits > 0;
  }
  shape_check(bites,
              "5% loss drops frames on every run and drives retransmissions");

  // The headline crossover: receiver-driven NACK recovery is no slower
  // than sender-side ACK collection once loss reaches 1%, at every
  // topology (the bench_diff gate re-checks this from the records).
  for (std::size_t t = 0; t < rank_counts.size(); ++t) {
    for (std::size_t i : {std::size_t{2}, std::size_t{3}}) {
      const double ack = all[t][i][0].point.median_us;
      const double nack = all[t][i][1].point.median_us;
      shape_check(nack <= ack,
                  "nack-mcast <= ack-mcast at " + profiles[i].label +
                      " loss, " + std::to_string(rank_counts[t]) +
                      " procs (" + Table::num(nack) + " vs " +
                      Table::num(ack) + " us)");
    }
  }
  return 0;
}

}  // namespace
}  // namespace mcmpi::bench

int main(int argc, char** argv) { return mcmpi::bench::run(argc, argv); }
