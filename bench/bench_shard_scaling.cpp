// Sharded-simulator scaling: wall-clock and merged scheduler counters for
// the SAME simulation run with 1, 2 and 4 shards on the parallel driver.
//
// Topology: 16 ranks in 4 switch segments joined by a full trunk mesh —
// the fig12-style scaling shape, one shard per segment at the top end.
// The workload (multicast broadcast + allreduce per repetition) floods
// every segment, so all four shards stay busy.
//
// What the records claim (and tools/bench_diff.py enforces):
//   * records differing only in `shards` have IDENTICAL simulated medians
//     — sharded execution is bit-exact against the serial/1-shard result;
//   * against the committed baseline, per-shard-count events/handoffs are
//     deterministic like any other bench record;
//   * with >= 4 hardware threads, wall(1 shard) / wall(4 shards) >= the
//     gate's --min-shard-speedup (the run records hw_threads, so the gate
//     self-disables on hosts that cannot physically run shards in
//     parallel, e.g. single-core CI runners).
#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "common/bytes.hpp"
#include "net/counters.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Sharded-simulator scaling — 16 ranks, 4 switch segments, shards "
      "1/2/4");

  constexpr int kProcs = 16;
  constexpr int kSegments = 4;
  const int hw_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> sizes = {16 * 1024, 64 * 1024};

  struct Measured {
    int shards;
    int bytes;
    double median_us;
    double wall_ms;
  };
  std::vector<Measured> measured;

  Table table({"bytes", "shards", "median us", "wall ms", "events",
               "handoffs"});
  for (const int size : sizes) {
    for (const unsigned shards : {1u, 2u, 4u}) {
      cluster::ClusterConfig config;
      config.num_procs = kProcs;
      config.num_segments = kSegments;
      config.sim_shards = shards;
      config.shard_driver = sim::ShardDriver::kParallel;
      config.network = cluster::NetworkType::kSwitch;
      config.seed = options.seed;
      config.hosts = cluster::make_uniform_hosts(kProcs);
      // A routed-backbone trunk: the larger lookahead widens the
      // conservative windows, so the parallel driver pays fewer barrier
      // rounds per simulated millisecond.
      config.trunk_latency = microseconds_f(100.0);
      cluster::Cluster cluster(config);

      cluster::ExperimentConfig exp;
      exp.reps = options.reps;
      exp.rep_interval = milliseconds(30);

      const auto bytes = static_cast<std::size_t>(size);
      const PayloadCounters payload_before = payload_counters();
      const auto wall_start = std::chrono::steady_clock::now();
      const auto result = cluster::measure_collective(
          cluster, exp, [bytes](mpi::Proc& p, int rep) {
            const mpi::Comm comm = p.comm_world();
            Buffer data(bytes, 0);
            const int root = rep % comm.size();
            if (p.rank() == root) {
              data = pattern_payload(static_cast<std::uint64_t>(rep), bytes);
            }
            comm.coll().bcast(data, root, "mcast-binary");
            const Buffer mine(256, static_cast<std::uint8_t>(p.rank()));
            (void)comm.coll().allreduce(mine, mpi::Op::kMax,
                                        mpi::Datatype::kByte);
          });
      const auto wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - wall_start)
              .count();
      const PayloadCounters payload_delta =
          payload_counters().since(payload_before);

      const double median = result.latencies_us.median();
      measured.push_back(Measured{static_cast<int>(shards), size, median,
                                  wall_ms});
      table.add_row({std::to_string(size), std::to_string(shards),
                     Table::num(median), Table::num(wall_ms),
                     std::to_string(cluster.simulator().events_scheduled()),
                     std::to_string(cluster.simulator().handoffs())});
      record_bench(BenchRecord{
          .op = "bcast+allreduce",
          .network = "switch",
          .ranks = kProcs,
          .bytes = size,
          .sim_time_us = median,
          .wall_time_ms = wall_ms,
          .events_scheduled = cluster.simulator().events_scheduled(),
          .handoffs = cluster.simulator().handoffs(),
          .payload_allocs = payload_delta.buffer_allocs,
          .payload_copies = payload_delta.byte_copies,
          .shards = static_cast<int>(shards),
          .hw_threads = hw_threads,
      });
    }
  }
  print_table("Sharded-simulator scaling (16 ranks, 4 switch segments)",
              table, options);

  // Shape checks: determinism across shard counts always; the speedup
  // claim only where the host can actually run the shards in parallel.
  for (const int size : sizes) {
    double median1 = 0;
    bool identical = true;
    double wall1 = 0;
    double wall4 = 0;
    for (const Measured& m : measured) {
      if (m.bytes != size) {
        continue;
      }
      if (m.shards == 1) {
        median1 = m.median_us;
        wall1 = m.wall_ms;
      }
      if (m.shards == 4) {
        wall4 = m.wall_ms;
      }
    }
    for (const Measured& m : measured) {
      identical = identical && (m.bytes != size || m.median_us == median1);
    }
    shape_check(identical,
                "simulated medians at " + std::to_string(size) +
                    " B are bit-identical across 1/2/4 shards");
    if (hw_threads >= 4) {
      shape_check(wall4 * 2.0 <= wall1,
                  "4 shards at least halve wall time at " +
                      std::to_string(size) + " B (" + Table::num(wall1) +
                      " -> " + Table::num(wall4) + " ms, " +
                      std::to_string(hw_threads) + " hw threads)");
    } else {
      std::cout << "SHAPE CHECK skip — speedup needs >= 4 hardware threads "
                   "(host has "
                << hw_threads << ")\n";
    }
  }
  return 0;
}
