#include "bench_util.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/bytes.hpp"

namespace mcmpi::bench {

namespace {

/// Registry for the machine-readable dump; flushed at exit.
struct BenchJsonState {
  std::string name = "bench";
  std::vector<BenchRecord> records;
};

BenchJsonState& json_state() {
  static BenchJsonState state;
  return state;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

void set_bench_name_from_argv0(const char* argv0) {
  std::string name(argv0 != nullptr ? argv0 : "bench");
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (!name.empty()) {
    json_state().name = name;
  }
}

}  // namespace

void record_bench(BenchRecord record) {
  json_state().records.push_back(std::move(record));
}

void flush_bench_json() {
  BenchJsonState& state = json_state();
  if (state.records.empty()) {
    return;
  }
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < state.records.size(); ++i) {
    const BenchRecord& r = state.records[i];
    os << "  {\"bench\": \"" << json_escape(state.name) << "\""
       << ", \"op\": \"" << json_escape(r.op) << "\"";
    if (!r.algo.empty()) {
      // Only algorithm sweeps key records by algo; older benches fold the
      // algorithm into op, and their baselines stay byte-identical.
      os << ", \"algo\": \"" << json_escape(r.algo) << "\"";
    }
    os << ", \"network\": \"" << json_escape(r.network) << "\""
       << ", \"ranks\": " << r.ranks << ", \"bytes\": " << r.bytes;
    if (r.shards > 0) {
      // Only the shard-scaling sweeps key records by shard count; other
      // benches' baselines stay byte-identical.
      os << ", \"shards\": " << r.shards
         << ", \"hw_threads\": " << r.hw_threads;
    }
    if (r.segments > 0) {
      // Only the topology-scaling sweeps key records by segment count;
      // other benches' baselines stay byte-identical.
      os << ", \"segments\": " << r.segments;
    }
    if (!r.driver.empty()) {
      // Only throughput-mode benches key records by driver; other benches'
      // baselines stay byte-identical.
      os << ", \"driver\": \"" << json_escape(r.driver) << "\""
         << ", \"p99_us\": " << r.p99_us
         << ", \"coll_per_sec\": " << r.coll_per_sec
         << ", \"collectives\": " << r.collectives
         << ", \"event_pool_hits\": " << r.event_pool_hits
         << ", \"event_pool_misses\": " << r.event_pool_misses;
    }
    if (r.window > 0) {
      // Only the segmented-pipeline sweeps key records by window/lane;
      // other benches' baselines stay byte-identical.
      os << ", \"window\": " << r.window << ", \"lanes\": " << r.lanes
         << ", \"chunk_sent\": " << r.chunk_sent
         << ", \"chunk_acked\": " << r.chunk_acked
         << ", \"chunk_retried\": " << r.chunk_retried
         << ", \"chunk_peak_window\": " << r.chunk_peak_window;
    }
    if (!r.loss.empty()) {
      // Only the fault-injection sweeps key records by loss profile; other
      // benches' baselines stay byte-identical.
      os << ", \"loss\": \"" << json_escape(r.loss) << "\""
         << ", \"frames_dropped\": " << r.frames_dropped
         << ", \"frames_duplicated\": " << r.frames_duplicated
         << ", \"frames_reordered\": " << r.frames_reordered
         << ", \"nacks_sent\": " << r.nacks_sent
         << ", \"nacks_suppressed\": " << r.nacks_suppressed
         << ", \"retransmits\": " << r.retransmits
         << ", \"parity_sent\": " << r.parity_sent
         << ", \"parity_used\": " << r.parity_used
         << ", \"fec_decodes\": " << r.fec_decodes
         << ", \"fec_fallbacks\": " << r.fec_fallbacks;
    }
    os << ", \"sim_time_us\": " << r.sim_time_us
       << ", \"wall_time_ms\": " << r.wall_time_ms
       << ", \"events_scheduled\": " << r.events_scheduled
       << ", \"handoffs\": " << r.handoffs
       << ", \"payload_allocs\": " << r.payload_allocs
       << ", \"payload_copies\": " << r.payload_copies << "}"
       << (i + 1 < state.records.size() ? "," : "") << "\n";
  }
  os << "]\n";
  std::ofstream out("BENCH_" + state.name + ".json");
  out << os.str();
}

BenchOptions BenchOptions::parse(int argc, char** argv,
                                 const std::string& description) {
  set_bench_name_from_argv0(argc > 0 ? argv[0] : nullptr);
  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit(flush_bench_json);
  }
  Flags flags(argc, argv);
  BenchOptions options;
  options.reps = static_cast<int>(
      flags.get_int("reps", options.reps, "repetitions per point (paper: 20-30)"));
  options.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(options.seed),
                    "simulation seed"));
  options.csv = flags.get_bool("csv", false, "emit CSV instead of ASCII");
  options.spread =
      flags.get_bool("spread", false, "add min/max scatter columns");
  if (flags.help_requested()) {
    std::cout << flags.usage(description);
    std::exit(0);
  }
  flags.check_unknown();
  return options;
}

namespace {
cluster::ClusterConfig cluster_config(cluster::NetworkType network, int procs,
                                      std::uint64_t seed) {
  cluster::ClusterConfig config;
  config.network = network;
  config.num_procs = procs;
  config.seed = seed;
  return config;
}

Point to_point(const Sample& sample) {
  return Point{sample.median(), sample.min(), sample.max()};
}
}  // namespace

std::vector<std::string> registry_bcast_algos(const std::string& substring) {
  std::vector<std::string> out;
  for (const std::string& name :
       coll::Registry::instance().names(coll::CollOp::kBcast)) {
    if (substring.empty() || name.find(substring) != std::string::npos) {
      out.push_back(name);
    }
  }
  return out;
}

std::vector<Point> measure_bcast_series(const BcastSeries& series,
                                        const std::vector<int>& sizes,
                                        const BenchOptions& options) {
  std::vector<Point> points;
  points.reserve(sizes.size());
  for (int size : sizes) {
    // A fresh cluster per point, same seed: every point and series starts
    // from the identical deterministic state (fair comparisons).
    cluster::Cluster cluster(
        cluster_config(series.network, series.procs, options.seed));
    cluster::ExperimentConfig exp;
    exp.reps = options.reps;
    const PayloadCounters payload_before = payload_counters();
    const auto wall_start = std::chrono::steady_clock::now();
    const auto result = cluster::measure_collective(
        cluster, exp, [&series, size](mpi::Proc& p, int) {
          Buffer data;
          if (p.rank() == 0) {
            data = pattern_payload(0xB0CA57, static_cast<std::size_t>(size));
          }
          p.comm_world().coll().bcast(data, 0, series.algo);
        });
    const auto wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    const PayloadCounters payload_delta =
        payload_counters().since(payload_before);
    points.push_back(to_point(result.latencies_us));
    record_bench(BenchRecord{
        .op = series.label,
        .network = cluster::to_string(series.network),
        .ranks = series.procs,
        .bytes = size,
        .sim_time_us = points.back().median_us,
        .wall_time_ms = wall_ms,
        .events_scheduled = cluster.simulator().events_scheduled(),
        .handoffs = cluster.simulator().handoffs(),
        .payload_allocs = payload_delta.buffer_allocs,
        .payload_copies = payload_delta.byte_copies,
    });
  }
  return points;
}

std::vector<Point> measure_barrier_series(cluster::NetworkType network,
                                          const std::string& algo,
                                          const std::vector<int>& proc_counts,
                                          const BenchOptions& options) {
  std::vector<Point> points;
  points.reserve(proc_counts.size());
  for (int procs : proc_counts) {
    cluster::Cluster cluster(cluster_config(network, procs, options.seed));
    cluster::ExperimentConfig exp;
    exp.reps = options.reps;
    const PayloadCounters payload_before = payload_counters();
    const auto wall_start = std::chrono::steady_clock::now();
    const auto result = cluster::measure_collective(
        cluster, exp, [&algo](mpi::Proc& p, int) {
          p.comm_world().coll().barrier(algo);
        });
    const auto wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    const PayloadCounters payload_delta =
        payload_counters().since(payload_before);
    points.push_back(to_point(result.latencies_us));
    record_bench(BenchRecord{
        .op = "barrier/" + algo,
        .network = cluster::to_string(network),
        .ranks = procs,
        .bytes = -1,
        .sim_time_us = points.back().median_us,
        .wall_time_ms = wall_ms,
        .events_scheduled = cluster.simulator().events_scheduled(),
        .handoffs = cluster.simulator().handoffs(),
        .payload_allocs = payload_delta.buffer_allocs,
        .payload_copies = payload_delta.byte_copies,
    });
  }
  return points;
}

Table make_figure_table(const std::string& x_name, const std::vector<int>& xs,
                        const std::vector<BcastSeries>& series,
                        const std::vector<std::vector<Point>>& points,
                        bool spread) {
  std::vector<std::string> columns{x_name};
  for (const BcastSeries& s : series) {
    columns.push_back(s.label + " us");
    if (spread) {
      columns.push_back(s.label + " min");
      columns.push_back(s.label + " max");
    }
  }
  Table table(columns);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row{std::to_string(xs[i])};
    for (std::size_t s = 0; s < series.size(); ++s) {
      row.push_back(Table::num(points[s][i].median_us));
      if (spread) {
        row.push_back(Table::num(points[s][i].min_us));
        row.push_back(Table::num(points[s][i].max_us));
      }
    }
    table.add_row(std::move(row));
  }
  return table;
}

void print_table(const std::string& title, const Table& table,
                 const BenchOptions& options) {
  if (options.csv) {
    table.print_csv(std::cout);
    return;
  }
  std::cout << "== " << title << " ==\n";
  table.print_ascii(std::cout);
}

void shape_check(bool ok, const std::string& text) {
  std::cout << "SHAPE CHECK " << (ok ? "ok  " : "FAIL") << " — " << text
            << '\n';
}

std::vector<int> paper_sizes(int step) {
  std::vector<int> sizes;
  for (int s = 0; s <= 5000; s += step) {
    sizes.push_back(s);
  }
  return sizes;
}

int crossover_size(const std::vector<int>& sizes, const std::vector<Point>& a,
                   const std::vector<Point>& b) {
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (a[i].median_us < b[i].median_us) {
      return sizes[i];
    }
  }
  return -1;
}

}  // namespace mcmpi::bench
