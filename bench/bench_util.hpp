#pragma once
/// \file bench_util.hpp
/// Shared machinery for the figure-reproduction binaries.
///
/// Every binary reproduces one table or figure from the paper: it sweeps
/// message size (or process count), measures each configured series with
/// the paper's methodology (cluster/experiment.hpp), prints the series as
/// an aligned table (median of 20-30 reps per point, like the paper's
/// median lines), and finishes with SHAPE CHECK lines — the qualitative
/// claims the figure makes, evaluated against the fresh numbers.

#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "coll/facade.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace mcmpi::bench {

/// One plotted line: an algorithm (registry name, coll/registry.hpp) on a
/// network with a process count.
struct BcastSeries {
  std::string label;
  cluster::NetworkType network;
  int procs;
  std::string algo;
};

/// Registered bcast algorithm names, optionally filtered to those
/// containing `substring` — how sweep benches enumerate the registry
/// instead of hardcoding algorithm lists.
std::vector<std::string> registry_bcast_algos(
    const std::string& substring = "");

/// One machine-readable measurement, dumped to BENCH_<binary>.json at exit
/// so the perf trajectory (simulated latency, host wall time, event and
/// payload-copy counts) is tracked across PRs.
struct BenchRecord {
  std::string op;        ///< series label / operation name
  std::string algo;      ///< registry algorithm name ("" when folded into op)
  std::string network;   ///< "hub", "switch", or "" when not applicable
  int ranks = 0;
  std::int64_t bytes = -1;           ///< payload bytes; -1 if n/a
  double sim_time_us = 0;            ///< median simulated latency
  double wall_time_ms = 0;           ///< host wall-clock for the whole point
  std::uint64_t events_scheduled = 0;
  std::uint64_t handoffs = 0;        ///< scheduler->process control transfers
  std::uint64_t payload_allocs = 0;  ///< PayloadRef backing allocations
  std::uint64_t payload_copies = 0;  ///< explicit payload byte copies
  /// Simulator shard count for sharded-scaling sweeps; 0 everywhere else
  /// (the fields below are then omitted from the JSON and old baselines
  /// stay byte-identical).  Records differing only in `shards` must agree
  /// on sim_time_us — bench_diff.py enforces it.
  int shards = 0;
  /// Segment count for topology-scaling sweeps (bench_hier_scaling); joins
  /// the record key so the same (op, algo, ranks, bytes) point can appear
  /// once per topology.  0 everywhere else — the field is then omitted from
  /// the JSON and old baselines stay byte-identical.  Groups carrying both
  /// a hierarchical and a flat algorithm feed the --min-hier-speedup gate.
  int segments = 0;
  /// std::thread::hardware_concurrency() at run time; lets the bench_diff
  /// speedup gate skip hosts that cannot physically run the shards in
  /// parallel.
  int hw_threads = 0;
  /// Throughput-mode fields (bench/throughput_mixed.cpp): the shard driver
  /// name ("serial"/"parallel").  Empty everywhere else — the fields below
  /// are then omitted from the JSON and old baselines stay byte-identical.
  /// For throughput records sim_time_us carries the p50 completion latency.
  std::string driver;
  double p99_us = 0;           ///< p99 completion latency
  double coll_per_sec = 0;     ///< collectives per virtual second
  std::uint64_t collectives = 0;
  std::uint64_t event_pool_hits = 0;    ///< recycled event-slot/node takes
  std::uint64_t event_pool_misses = 0;  ///< fresh event-slot/node allocations
  /// Segmented-pipeline fields (bench/bench_jumbo_bcast.cpp): the sliding
  /// window and lane count the point ran with, plus the engine's chunk
  /// counters (sim/sched_counters.hpp).  window = 0 everywhere else — the
  /// fields below are then omitted from the JSON and old baselines stay
  /// byte-identical.
  int window = 0;
  int lanes = 0;
  std::uint64_t chunk_sent = 0;
  std::uint64_t chunk_acked = 0;
  std::uint64_t chunk_retried = 0;
  std::uint64_t chunk_peak_window = 0;
  /// Fault-injection fields (bench/bench_loss_crossover.cpp): the loss
  /// profile label the point ran under ("0", "1%", "bursty", ...) plus the
  /// fault and recovery counters (sim/sched_counters.hpp).  Empty
  /// everywhere else — the fields below are then omitted from the JSON and
  /// old baselines stay byte-identical.
  std::string loss;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_reordered = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_suppressed = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t parity_sent = 0;      ///< FEC parity frames multicast
  std::uint64_t parity_used = 0;      ///< FEC parity rows consumed decoding
  std::uint64_t fec_decodes = 0;      ///< FEC windows reconstructed
  std::uint64_t fec_fallbacks = 0;    ///< FEC windows past parity -> NACK
};

/// Appends a record to the JSON dump (measure_* helpers call this for every
/// point automatically; benches may add their own records).
void record_bench(BenchRecord record);

/// Writes BENCH_<name>.json with all records so far.  Registered atexit by
/// BenchOptions::parse; safe to call explicitly.
void flush_bench_json();

/// Common CLI for every figure binary (--reps, --seed, --csv, --spread).
struct BenchOptions {
  int reps = 25;
  std::uint64_t seed = 2000;
  bool csv = false;
  bool spread = false;  // add min/max columns per series

  /// Parses the shared flags; exits(0) on --help.
  static BenchOptions parse(int argc, char** argv,
                            const std::string& description);
};

/// Measured median (and extremes) for one point of one series.
struct Point {
  double median_us = 0;
  double min_us = 0;
  double max_us = 0;
};

/// Measures one broadcast series over the given payload sizes.
std::vector<Point> measure_bcast_series(const BcastSeries& series,
                                        const std::vector<int>& sizes,
                                        const BenchOptions& options);

/// Measures a barrier algorithm (registry name) across process counts.
std::vector<Point> measure_barrier_series(cluster::NetworkType network,
                                          const std::string& algo,
                                          const std::vector<int>& proc_counts,
                                          const BenchOptions& options);

/// Builds the standard figure table: first column = x value, then one
/// column per series ("<label> us", plus min/max when spread is on).
Table make_figure_table(const std::string& x_name,
                        const std::vector<int>& xs,
                        const std::vector<BcastSeries>& series,
                        const std::vector<std::vector<Point>>& points,
                        bool spread);

/// Prints the table (ASCII or CSV per options) with a title banner.
void print_table(const std::string& title, const Table& table,
                 const BenchOptions& options);

/// Emits one qualitative-claim verdict line: "SHAPE CHECK <ok|FAIL> — text".
void shape_check(bool ok, const std::string& text);

/// Payload sizes the paper sweeps: 0..5000 in steps of 250.
std::vector<int> paper_sizes(int step = 250);

/// First size at which `a` becomes cheaper than `b` (both indexed by the
/// same size vector); -1 if never.
int crossover_size(const std::vector<int>& sizes, const std::vector<Point>& a,
                   const std::vector<Point>& b);

}  // namespace mcmpi::bench
