// Reproduces Fig. 7: "MPI_Bcast with 4 processes over Fast Ethernet Hub".
// Series: MPICH (binomial over p2p), multicast-linear, multicast-binary;
// x = message size 0..5000 B; y = latency (median of N reps in µs).
//
// Expected shape (paper): both multicast variants beat MPICH for messages
// larger than ~1000 B; below that the scout cost makes them slower.  Hub
// collisions produce run-to-run variance (visible with --spread).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv, "Fig. 7 — MPI_Bcast, 4 processes, Fast Ethernet hub");

  const std::vector<int> sizes = paper_sizes();
  const std::vector<BcastSeries> series = {
      {"mpich/hub", cluster::NetworkType::kHub, 4, "mpich"},
      {"mcast-linear/hub", cluster::NetworkType::kHub, 4, "mcast-linear"},
      {"mcast-binary/hub", cluster::NetworkType::kHub, 4, "mcast-binary"},
  };

  std::vector<std::vector<Point>> points;
  for (const BcastSeries& s : series) {
    points.push_back(measure_bcast_series(s, sizes, options));
  }
  print_table("Fig. 7: MPI_Bcast, 4 procs, hub (latency in usec)",
              make_figure_table("bytes", sizes, series, points,
                                options.spread),
              options);

  const int cross_linear = crossover_size(sizes, points[1], points[0]);
  const int cross_binary = crossover_size(sizes, points[2], points[0]);
  shape_check(points[0].front().median_us < points[1].front().median_us &&
                  points[0].front().median_us < points[2].front().median_us,
              "MPICH wins at 0 bytes (scout overhead dominates)");
  shape_check(points[1].back().median_us < points[0].back().median_us &&
                  points[2].back().median_us < points[0].back().median_us,
              "both multicast variants win at 5000 bytes");
  shape_check(cross_linear > 0 && cross_linear <= 2000,
              "linear crossover near ~1000 B (measured " +
                  std::to_string(cross_linear) + " B)");
  shape_check(cross_binary > 0 && cross_binary <= 2000,
              "binary crossover near ~1000 B (measured " +
                  std::to_string(cross_binary) + " B)");
  return 0;
}
