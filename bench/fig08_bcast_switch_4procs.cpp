// Reproduces Fig. 8: "MPI_Bcast with 4 processes over Fast Ethernet Switch".
// Same series as Fig. 7 on the store-and-forward switch: the crossover
// shifts slightly right (the switch adds per-frame latency to the single
// multicast too), variance is smaller (no collisions).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv, "Fig. 8 — MPI_Bcast, 4 processes, Fast Ethernet switch");

  const std::vector<int> sizes = paper_sizes();
  const std::vector<BcastSeries> series = {
      {"mpich/switch", cluster::NetworkType::kSwitch, 4, "mpich"},
      {"mcast-linear/switch", cluster::NetworkType::kSwitch, 4,
       "mcast-linear"},
      {"mcast-binary/switch", cluster::NetworkType::kSwitch, 4,
       "mcast-binary"},
  };

  std::vector<std::vector<Point>> points;
  for (const BcastSeries& s : series) {
    points.push_back(measure_bcast_series(s, sizes, options));
  }
  print_table("Fig. 8: MPI_Bcast, 4 procs, switch (latency in usec)",
              make_figure_table("bytes", sizes, series, points,
                                options.spread),
              options);

  shape_check(points[0].front().median_us < points[1].front().median_us,
              "MPICH wins at 0 bytes");
  shape_check(points[1].back().median_us < points[0].back().median_us &&
                  points[2].back().median_us < points[0].back().median_us,
              "both multicast variants win at 5000 bytes");
  const int cross = crossover_size(sizes, points[2], points[0]);
  shape_check(cross > 0 && cross <= 2500,
              "crossover at a large-enough message size (measured " +
                  std::to_string(cross) + " B)");
  return 0;
}
