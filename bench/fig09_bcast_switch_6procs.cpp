// Reproduces Fig. 9: "MPI_Bcast with 6 processes over Fast Ethernet Switch".
// The paper singles out 6 processes because the binary scout tree makes two
// children forward to the root back-to-back, which on the hub causes
// collisions and on both networks adds serialization at the root.  The
// multicast advantage over MPICH grows relative to 4 processes.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv, "Fig. 9 — MPI_Bcast, 6 processes, Fast Ethernet switch");

  const std::vector<int> sizes = paper_sizes();
  const std::vector<BcastSeries> series = {
      {"mpich/switch", cluster::NetworkType::kSwitch, 6, "mpich"},
      {"mcast-linear/switch", cluster::NetworkType::kSwitch, 6,
       "mcast-linear"},
      {"mcast-binary/switch", cluster::NetworkType::kSwitch, 6,
       "mcast-binary"},
  };

  std::vector<std::vector<Point>> points;
  for (const BcastSeries& s : series) {
    points.push_back(measure_bcast_series(s, sizes, options));
  }
  print_table("Fig. 9: MPI_Bcast, 6 procs, switch (latency in usec)",
              make_figure_table("bytes", sizes, series, points,
                                options.spread),
              options);

  shape_check(points[1].back().median_us < points[0].back().median_us,
              "multicast-linear wins at 5000 bytes");
  shape_check(points[2].back().median_us < points[0].back().median_us,
              "multicast-binary wins at 5000 bytes");
  return 0;
}
