// Reproduces Fig. 10: "MPI_Bcast with 9 processes over Fast Ethernet
// Switch" — the full eagle cluster.  MPICH now sends every payload eight
// times; the multicast data still crosses once, so the large-message gap is
// the widest of Figs. 7-10.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv, "Fig. 10 — MPI_Bcast, 9 processes, Fast Ethernet switch");

  const std::vector<int> sizes = paper_sizes();
  const std::vector<BcastSeries> series = {
      {"mpich/switch", cluster::NetworkType::kSwitch, 9, "mpich"},
      {"mcast-linear/switch", cluster::NetworkType::kSwitch, 9,
       "mcast-linear"},
      {"mcast-binary/switch", cluster::NetworkType::kSwitch, 9,
       "mcast-binary"},
  };

  std::vector<std::vector<Point>> points;
  for (const BcastSeries& s : series) {
    points.push_back(measure_bcast_series(s, sizes, options));
  }
  print_table("Fig. 10: MPI_Bcast, 9 procs, switch (latency in usec)",
              make_figure_table("bytes", sizes, series, points,
                                options.spread),
              options);

  shape_check(points[1].back().median_us < points[0].back().median_us &&
                  points[2].back().median_us < points[0].back().median_us,
              "multicast wins at 5000 bytes with 9 processes");
  const double gap9 =
      points[0].back().median_us - points[2].back().median_us;
  shape_check(gap9 > 0,
              "9-process large-message gap is positive (" +
                  Table::num(gap9) + " us)");
  return 0;
}
