// Reproduces Fig. 11: "Performance Comparison with MPI_Bcast over hub and
// switch for 4 processes".
//
// Expected shapes (paper): with multicast, the hub is faster than the
// switch at every size (one transmission, no store-and-forward penalty);
// with MPICH, the hub is faster for small messages but falls behind the
// switch past ~3000 B, where the shared medium saturates under MPICH's
// extra copies and the ACK back-traffic while the switch gains spatial
// reuse from full-duplex dedicated links.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv, "Fig. 11 — MPI_Bcast hub vs switch, 4 processes");

  const std::vector<int> sizes = paper_sizes();
  const std::vector<BcastSeries> series = {
      {"mpich/hub", cluster::NetworkType::kHub, 4, "mpich"},
      {"mpich/switch", cluster::NetworkType::kSwitch, 4, "mpich"},
      {"mcast-binary/switch", cluster::NetworkType::kSwitch, 4,
       "mcast-binary"},
      {"mcast-binary/hub", cluster::NetworkType::kHub, 4, "mcast-binary"},
  };

  std::vector<std::vector<Point>> points;
  for (const BcastSeries& s : series) {
    points.push_back(measure_bcast_series(s, sizes, options));
  }
  print_table("Fig. 11: MPI_Bcast hub vs switch, 4 procs (latency in usec)",
              make_figure_table("bytes", sizes, series, points,
                                options.spread),
              options);

  // Multicast: hub <= switch across the sweep (count the exceptions).
  int hub_wins = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (points[3][i].median_us < points[2][i].median_us) {
      ++hub_wins;
    }
  }
  shape_check(hub_wins >= static_cast<int>(sizes.size()) - 2,
              "multicast over hub beats multicast over switch at "
              "essentially every size (" +
                  std::to_string(hub_wins) + "/" +
                  std::to_string(sizes.size()) + " points)");

  // MPICH: hub better small, worse past ~3000 B.
  shape_check(points[0].front().median_us < points[1].front().median_us,
              "MPICH over hub is faster at small sizes");
  shape_check(points[0].back().median_us > points[1].back().median_us,
              "MPICH over hub is slower at 5000 B (medium saturates)");

  // Multicast beats MPICH for messages bigger than one Ethernet frame
  // (allowing one sweep step of quantization past the 1472 B boundary).
  std::size_t one_frame_idx = 0;
  while (one_frame_idx < sizes.size() && sizes[one_frame_idx] <= 1472 + 250) {
    ++one_frame_idx;
  }
  bool mcast_wins_past_frame = true;
  for (std::size_t i = one_frame_idx; i < sizes.size(); ++i) {
    mcast_wins_past_frame = mcast_wins_past_frame &&
                            points[3][i].median_us < points[0][i].median_us;
  }
  shape_check(mcast_wins_past_frame,
              "multicast beats MPICH for sizes beyond one Ethernet frame");
  return 0;
}
