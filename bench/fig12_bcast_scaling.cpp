// Reproduces Fig. 12: "Performance Comparison with MPI_Bcast over 3, 6, and
// 9 processes over Fast Ethernet switch" — MPICH vs the linear multicast
// algorithm.
//
// Expected shape (paper): the linear algorithm scales well up to 9
// processes; its extra cost per added process is nearly constant with
// respect to message size (a scout is a scout, whatever the payload), while
// MPICH's extra cost per process grows with the message size (each new
// process is another full copy of the payload).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv, "Fig. 12 — MPI_Bcast scaling over 3/6/9 processes, switch");

  const std::vector<int> sizes = paper_sizes();
  std::vector<BcastSeries> series;
  for (int procs : {3, 6, 9}) {
    series.push_back({"mpich(" + std::to_string(procs) + "p)",
                      cluster::NetworkType::kSwitch, procs, "mpich"});
  }
  for (int procs : {3, 6, 9}) {
    series.push_back({"linear(" + std::to_string(procs) + "p)",
                      cluster::NetworkType::kSwitch, procs, "mcast-linear"});
  }

  std::vector<std::vector<Point>> points;
  for (const BcastSeries& s : series) {
    points.push_back(measure_bcast_series(s, sizes, options));
  }
  print_table(
      "Fig. 12: MPI_Bcast scaling, MPICH vs linear multicast (usec)",
      make_figure_table("bytes", sizes, series, points, options.spread),
      options);

  // Extra cost of going 3 -> 9 processes, at 0 B and 5000 B.
  const double mpich_small = points[2].front().median_us -
                             points[0].front().median_us;
  const double mpich_large = points[2].back().median_us -
                             points[0].back().median_us;
  const double linear_small = points[5].front().median_us -
                              points[3].front().median_us;
  const double linear_large = points[5].back().median_us -
                              points[3].back().median_us;

  shape_check(points[5].back().median_us < points[2].back().median_us,
              "linear multicast with 9 procs beats MPICH with 9 procs at "
              "5000 B");
  shape_check((linear_large - linear_small) * 2 <
                  (mpich_large - mpich_small),
              "linear's 3->9 extra cost is nearly size-independent (" +
                  Table::num(linear_small) + " -> " +
                  Table::num(linear_large) + " us) while MPICH's grows (" +
                  Table::num(mpich_small) + " -> " + Table::num(mpich_large) +
                  " us)");
  return 0;
}
