// Reproduces Fig. 13: "Comparison of MPI_Barrier over Fast Ethernet hub" —
// latency vs number of processes (2..9) for the MPICH three-phase barrier
// and the multicast barrier (scout reduction + one multicast release).
//
// Expected shape (paper): multicast wins at every process count and the
// gap grows with N — MPICH pays 2(N-K) + K log2 K full MPI messages, the
// multicast barrier (N-1) bare scouts and one release frame.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv, "Fig. 13 — MPI_Barrier over Fast Ethernet hub, N = 2..9");

  const std::vector<int> procs = {2, 3, 4, 5, 6, 7, 8, 9};
  const auto mpich = measure_barrier_series(cluster::NetworkType::kHub,
                                            "mpich", procs, options);
  const auto mcast = measure_barrier_series(cluster::NetworkType::kHub,
                                            "mcast", procs, options);

  std::vector<std::string> columns{"procs", "MPICH us", "multicast us"};
  if (options.spread) {
    columns.insert(columns.end(), {"MPICH min", "MPICH max", "mcast min",
                                   "mcast max"});
  }
  Table table(columns);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    std::vector<std::string> row{std::to_string(procs[i]),
                                 Table::num(mpich[i].median_us),
                                 Table::num(mcast[i].median_us)};
    if (options.spread) {
      row.push_back(Table::num(mpich[i].min_us));
      row.push_back(Table::num(mpich[i].max_us));
      row.push_back(Table::num(mcast[i].min_us));
      row.push_back(Table::num(mcast[i].max_us));
    }
    table.add_row(std::move(row));
  }
  print_table("Fig. 13: MPI_Barrier over hub (latency in usec)", table,
              options);

  bool mcast_always_wins = true;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    mcast_always_wins =
        mcast_always_wins && mcast[i].median_us < mpich[i].median_us;
  }
  shape_check(mcast_always_wins,
              "multicast barrier wins at every process count");
  const double gap_small = mpich.front().median_us - mcast.front().median_us;
  const double gap_large = mpich.back().median_us - mcast.back().median_us;
  shape_check(gap_large > gap_small,
              "the gap grows with N (" + Table::num(gap_small) + " us at 2 -> " +
                  Table::num(gap_large) + " us at 9)");
  return 0;
}
