// google-benchmark wall-clock cost of simulating each collective algorithm
// (how expensive reproduction experiments are to run, per algorithm).
#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "coll/allreduce.hpp"
#include "coll/coll.hpp"
#include "coll/mpich.hpp"
#include "common/bytes.hpp"

namespace {

using namespace mcmpi;

void run_bcast_batch(coll::BcastAlgo algo, int procs, int payload,
                     int iterations) {
  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kSwitch;
  cluster::Cluster cluster(config);
  cluster.world().run([&](mpi::Proc& p) {
    for (int i = 0; i < iterations; ++i) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(static_cast<std::uint64_t>(i),
                               static_cast<std::size_t>(payload));
      }
      coll::bcast(p, p.comm_world(), data, 0, algo);
    }
  });
}

void BM_BcastAlgorithm(benchmark::State& state) {
  const auto algo = static_cast<coll::BcastAlgo>(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  constexpr int kBatch = 20;
  for (auto _ : state) {
    run_bcast_batch(algo, procs, 2000, kBatch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
  state.SetLabel(coll::to_string(algo) + "/" + std::to_string(procs) + "p");
}
BENCHMARK(BM_BcastAlgorithm)
    ->Args({static_cast<long>(coll::BcastAlgo::kMpichBinomial), 4})
    ->Args({static_cast<long>(coll::BcastAlgo::kMcastBinary), 4})
    ->Args({static_cast<long>(coll::BcastAlgo::kMcastLinear), 4})
    ->Args({static_cast<long>(coll::BcastAlgo::kAckMcast), 4})
    ->Args({static_cast<long>(coll::BcastAlgo::kSequencer), 4})
    ->Args({static_cast<long>(coll::BcastAlgo::kMpichBinomial), 9})
    ->Args({static_cast<long>(coll::BcastAlgo::kMcastBinary), 9})
    ->Unit(benchmark::kMillisecond);

void BM_BarrierAlgorithm(benchmark::State& state) {
  const auto algo = static_cast<coll::BarrierAlgo>(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  constexpr int kBatch = 20;
  for (auto _ : state) {
    cluster::ClusterConfig config;
    config.num_procs = procs;
    config.network = cluster::NetworkType::kHub;
    cluster::Cluster cluster(config);
    cluster.world().run([&](mpi::Proc& p) {
      for (int i = 0; i < kBatch; ++i) {
        coll::barrier(p, p.comm_world(), algo);
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
  state.SetLabel(coll::to_string(algo) + "/" + std::to_string(procs) + "p");
}
BENCHMARK(BM_BarrierAlgorithm)
    ->Args({static_cast<long>(coll::BarrierAlgo::kMpich), 9})
    ->Args({static_cast<long>(coll::BarrierAlgo::kMcast), 9})
    ->Unit(benchmark::kMillisecond);

void BM_AllreduceStack(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  constexpr int kBatch = 10;
  for (auto _ : state) {
    cluster::ClusterConfig config;
    config.num_procs = procs;
    config.network = cluster::NetworkType::kSwitch;
    cluster::Cluster cluster(config);
    cluster.world().run([&](mpi::Proc& p) {
      std::vector<double> values(64, 1.0 * p.rank());
      Buffer bytes(values.size() * sizeof(double));
      std::memcpy(bytes.data(), values.data(), bytes.size());
      for (int i = 0; i < kBatch; ++i) {
        benchmark::DoNotOptimize(
            coll::allreduce(p, p.comm_world(), bytes, mpi::Op::kSum,
                            mpi::Datatype::kDouble,
                            coll::BcastAlgo::kMcastBinary));
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_AllreduceStack)->Arg(4)->Arg(9)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
