// google-benchmark wall-clock cost of simulating each collective algorithm
// (how expensive reproduction experiments are to run, per algorithm).
// Broadcast cases enumerate the algorithm registry, so a newly registered
// algorithm is benchmarked for free.
#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"

namespace {

using namespace mcmpi;

const std::vector<std::string>& bcast_algos() {
  static const std::vector<std::string> algos =
      coll::Registry::instance().names(coll::CollOp::kBcast);
  return algos;
}

const std::vector<std::string>& reduce_algos() {
  static const std::vector<std::string> algos =
      coll::Registry::instance().names(coll::CollOp::kReduce);
  return algos;
}

const std::vector<std::string>& scatter_algos() {
  static const std::vector<std::string> algos =
      coll::Registry::instance().names(coll::CollOp::kScatter);
  return algos;
}

void run_bcast_batch(const std::string& algo, int procs, int payload,
                     int iterations) {
  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kSwitch;
  cluster::Cluster cluster(config);
  cluster.world().run([&](mpi::Proc& p) {
    for (int i = 0; i < iterations; ++i) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(static_cast<std::uint64_t>(i),
                               static_cast<std::size_t>(payload));
      }
      p.comm_world().coll().bcast(data, 0, algo);
    }
  });
}

void BM_BcastAlgorithm(benchmark::State& state) {
  const std::string& algo =
      bcast_algos().at(static_cast<std::size_t>(state.range(0)));
  const int procs = static_cast<int>(state.range(1));
  constexpr int kBatch = 20;
  for (auto _ : state) {
    run_bcast_batch(algo, procs, 2000, kBatch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
  state.SetLabel(algo + "/" + std::to_string(procs) + "p");
}
// Every registered bcast algorithm at 4 procs, plus the paper's headline
// pair at 9.
BENCHMARK(BM_BcastAlgorithm)
    ->Apply([](benchmark::internal::Benchmark* b) {
      for (std::size_t i = 0; i < bcast_algos().size(); ++i) {
        b->Args({static_cast<long>(i), 4});
      }
      for (const char* name : {"mpich", "mcast-binary"}) {
        for (std::size_t i = 0; i < bcast_algos().size(); ++i) {
          if (bcast_algos()[i] == name) {
            b->Args({static_cast<long>(i), 9});
          }
        }
      }
    })
    ->Unit(benchmark::kMillisecond);

void BM_BarrierAlgorithm(benchmark::State& state) {
  const std::string algo = state.range(0) == 0 ? "mpich" : "mcast";
  const int procs = static_cast<int>(state.range(1));
  constexpr int kBatch = 20;
  for (auto _ : state) {
    cluster::ClusterConfig config;
    config.num_procs = procs;
    config.network = cluster::NetworkType::kHub;
    cluster::Cluster cluster(config);
    cluster.world().run([&](mpi::Proc& p) {
      for (int i = 0; i < kBatch; ++i) {
        p.comm_world().coll().barrier(algo);
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
  state.SetLabel(algo + "/" + std::to_string(procs) + "p");
}
BENCHMARK(BM_BarrierAlgorithm)
    ->Args({0, 9})
    ->Args({1, 9})
    ->Unit(benchmark::kMillisecond);

void BM_ReduceAlgorithm(benchmark::State& state) {
  const std::string& algo =
      reduce_algos().at(static_cast<std::size_t>(state.range(0)));
  const int procs = static_cast<int>(state.range(1));
  constexpr int kBatch = 20;
  for (auto _ : state) {
    cluster::ClusterConfig config;
    config.num_procs = procs;
    config.network = cluster::NetworkType::kSwitch;
    cluster::Cluster cluster(config);
    cluster.world().run([&](mpi::Proc& p) {
      for (int i = 0; i < kBatch; ++i) {
        const Buffer mine = pattern_payload(
            static_cast<std::uint64_t>(i + p.rank()), 2000);
        benchmark::DoNotOptimize(p.comm_world().coll().reduce(
            mine, mpi::Op::kMax, mpi::Datatype::kByte, 0, algo));
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
  state.SetLabel(algo + "/" + std::to_string(procs) + "p");
}
// Every registered reduce algorithm at 4 procs — a new registry entry is
// benchmarked for free.
BENCHMARK(BM_ReduceAlgorithm)
    ->Apply([](benchmark::internal::Benchmark* b) {
      for (std::size_t i = 0; i < reduce_algos().size(); ++i) {
        b->Args({static_cast<long>(i), 4});
      }
    })
    ->Unit(benchmark::kMillisecond);

void BM_ScatterAlgorithm(benchmark::State& state) {
  const std::string& algo =
      scatter_algos().at(static_cast<std::size_t>(state.range(0)));
  const int procs = static_cast<int>(state.range(1));
  constexpr int kBatch = 20;
  constexpr std::size_t kChunk = 2000;
  for (auto _ : state) {
    cluster::ClusterConfig config;
    config.num_procs = procs;
    config.network = cluster::NetworkType::kSwitch;
    cluster::Cluster cluster(config);
    cluster.world().run([&](mpi::Proc& p) {
      for (int i = 0; i < kBatch; ++i) {
        std::vector<Buffer> chunks;
        if (p.rank() == 0) {
          for (int r = 0; r < procs; ++r) {
            chunks.push_back(
                pattern_payload(static_cast<std::uint64_t>(i + r), kChunk));
          }
        }
        benchmark::DoNotOptimize(
            p.comm_world().coll().scatter(chunks, 0, kChunk, algo));
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
  state.SetLabel(algo + "/" + std::to_string(procs) + "p");
}
BENCHMARK(BM_ScatterAlgorithm)
    ->Apply([](benchmark::internal::Benchmark* b) {
      for (std::size_t i = 0; i < scatter_algos().size(); ++i) {
        b->Args({static_cast<long>(i), 4});
      }
    })
    ->Unit(benchmark::kMillisecond);

void BM_AllreduceStack(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  constexpr int kBatch = 10;
  for (auto _ : state) {
    cluster::ClusterConfig config;
    config.num_procs = procs;
    config.network = cluster::NetworkType::kSwitch;
    cluster::Cluster cluster(config);
    cluster.world().run([&](mpi::Proc& p) {
      std::vector<double> values(64, 1.0 * p.rank());
      Buffer bytes(values.size() * sizeof(double));
      std::memcpy(bytes.data(), values.data(), bytes.size());
      for (int i = 0; i < kBatch; ++i) {
        benchmark::DoNotOptimize(p.comm_world().coll().allreduce(
            bytes, mpi::Op::kSum, mpi::Datatype::kDouble, "mcast-binary"));
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_AllreduceStack)->Arg(4)->Arg(9)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
