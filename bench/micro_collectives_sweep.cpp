// Deterministic reduce/scatter algorithm sweep for the bench_diff perf
// gate: every applicable registry entry for the widened collective surface
// is measured at small and large payloads on an 8-rank switch, and its
// simulated median, events, handoffs and payload-copy counts are tracked
// across PRs (bench/baselines/BENCH_micro_collectives_sweep.json).  Records
// are keyed by (op, algo, ranks, bytes), so a newly registered reduce or
// scatter algorithm shows up as a new record without failing the gate,
// while a semantics change to an existing one fails it.
#include <chrono>

#include "bench_util.hpp"
#include "common/bytes.hpp"
#include "mpi/group.hpp"
#include "net/counters.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Reduce/scatter algorithm sweep — 8 processes, switch, perf-gate");

  constexpr int kProcs = 8;
  const std::vector<int> sizes = {1024, 16 * 1024};
  // A Proc-less communicator handle: predicates that consult per-rank state
  // (eager threshold, socket buffers) pass, which is what we want here —
  // the chosen sizes are comfortably inside every default limit.
  const mpi::Comm shape(
      std::make_shared<mpi::CommInfo>(0, mpi::Group::world(kProcs)), 0);

  Table table({"op", "algorithm", "bytes", "median us", "wall ms"});
  for (const coll::CollOp op : {coll::CollOp::kReduce, coll::CollOp::kScatter}) {
    for (const int size : sizes) {
      const auto bytes = static_cast<std::size_t>(size);
      for (const std::string& algo : coll::Registry::instance()
               .applicable_names(op, shape, bytes)) {
        cluster::ClusterConfig config;
        config.num_procs = kProcs;
        config.network = cluster::NetworkType::kSwitch;
        config.seed = options.seed;
        cluster::Cluster cluster(config);
        cluster::ExperimentConfig exp;
        exp.reps = options.reps;

        const PayloadCounters payload_before = payload_counters();
        const auto wall_start = std::chrono::steady_clock::now();
        const auto result = cluster::measure_collective(
            cluster, exp, [op, bytes, &algo](mpi::Proc& p, int rep) {
              const mpi::Comm comm = p.comm_world();
              if (op == coll::CollOp::kReduce) {
                const Buffer mine = pattern_payload(
                    static_cast<std::uint64_t>(rep + p.rank()), bytes);
                (void)comm.coll().reduce(mine, mpi::Op::kMax,
                                         mpi::Datatype::kByte, /*root=*/0,
                                         algo);
              } else {
                std::vector<Buffer> chunks;
                if (p.rank() == 0) {
                  for (int r = 0; r < kProcs; ++r) {
                    chunks.push_back(pattern_payload(
                        static_cast<std::uint64_t>(rep + r), bytes));
                  }
                }
                (void)comm.coll().scatter(chunks, /*root=*/0, bytes, algo);
              }
            });
        const auto wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        const PayloadCounters payload_delta =
            payload_counters().since(payload_before);

        table.add_row({coll::to_string(op), algo, std::to_string(size),
                       Table::num(result.latencies_us.median()),
                       Table::num(wall_ms)});
        record_bench(BenchRecord{
            .op = coll::to_string(op),
            .algo = algo,
            .network = "switch",
            .ranks = kProcs,
            .bytes = size,
            .sim_time_us = result.latencies_us.median(),
            .wall_time_ms = wall_ms,
            .events_scheduled = cluster.simulator().events_scheduled(),
            .handoffs = cluster.simulator().handoffs(),
            .payload_allocs = payload_delta.buffer_allocs,
            .payload_copies = payload_delta.byte_copies,
        });
      }
    }
  }
  print_table("Reduce/scatter algorithm sweep: 8 procs, switch", table,
              options);
  return 0;
}
