// google-benchmark microbenchmarks for the simulation kernel itself:
// event-queue throughput, process context-switch cost, and whole-stack
// simulated-collective throughput.  These guard the harness's own
// performance (a slow simulator caps experiment sizes), not the paper's
// results.
#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/wait.hpp"

namespace {

using namespace mcmpi;

void BM_EventQueueScheduleFire(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      queue.schedule(SimTime{static_cast<std::int64_t>(i * 97 % 1000)},
                     [] {});
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop().time);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(1000)->Arg(10000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(queue.schedule(SimTime{i}, [] {}));
    }
    for (int i = 0; i < 1000; i += 2) {
      queue.cancel(ids[static_cast<std::size_t>(i)]);
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop().time);
    }
  }
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_ProcessContextSwitch(benchmark::State& state) {
  // Two processes ping-pong through a predicate-guarded wait queue;
  // measures the full scheduler handoff (two semaphore hops per switch).
  constexpr int kTurns = 200;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    sim::WaitQueue queue;
    int turn = 0;
    sim.spawn("ping", [&](sim::SimProcess& self) {
      for (int i = 0; i < kTurns; ++i) {
        sim::wait_for(self, queue, [&] { return turn % 2 == 0; });
        ++turn;
        queue.notify_all();
      }
    });
    sim.spawn("pong", [&](sim::SimProcess& self) {
      for (int i = 0; i < kTurns; ++i) {
        sim::wait_for(self, queue, [&] { return turn % 2 == 1; });
        ++turn;
        queue.notify_all();
      }
    });
    state.ResumeTiming();
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kTurns);
}
BENCHMARK(BM_ProcessContextSwitch);

void BM_SimulatedBcast(benchmark::State& state) {
  // Wall-clock cost of simulating one multicast broadcast end to end
  // (cluster construction amortized across reps inside one run()).
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    cluster::ClusterConfig config;
    config.num_procs = procs;
    config.network = cluster::NetworkType::kSwitch;
    cluster::Cluster cluster(config);
    cluster::ExperimentConfig exp;
    exp.reps = 20;
    exp.warmup_reps = 1;
    state.ResumeTiming();
    const auto result = cluster::measure_collective(
        cluster, exp, [](mpi::Proc& p, int) {
          Buffer data;
          if (p.rank() == 0) {
            data = pattern_payload(1, 2000);
          }
          p.comm_world().coll().bcast(data, 0, "mcast-binary");
        });
    benchmark::DoNotOptimize(result.latencies_us.median());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 20);
}
BENCHMARK(BM_SimulatedBcast)->Arg(4)->Arg(9)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
