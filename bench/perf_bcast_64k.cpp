// Scheduler-cost benchmark: the 9-rank 64 KiB switch broadcast that the
// perf trajectory tracks across PRs (CHANGES.md).  Large fragmented
// payloads make scheduler overhead — process handoffs and per-event heap
// traffic — the dominant wall-clock cost, so this is the workload that
// shows whether the fiber scheduler, delay coalescing and batched fan-out
// actually pay.  Simulated medians must never move (the scheduler refactors
// are semantics-preserving); wall time and handoffs must only go down.
#include "bench_util.hpp"
#include "common/bytes.hpp"
#include "net/counters.hpp"

#include <chrono>

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv, "Scheduler cost — MPI_Bcast of 64 KiB, 9 processes, switch");

  constexpr int kProcs = 9;
  constexpr int kBytes = 64 * 1024;
  // The scout-multicast family from the registry (this bench tracks the
  // scheduler cost of the paper's contribution; other registered bcast
  // algorithms have their own benches).
  const std::vector<std::string> algos = registry_bcast_algos("mcast-");

  Table table({"algorithm", "median us", "wall ms", "handoffs/coll",
               "events/coll"});
  for (const std::string& label : algos) {
    cluster::ClusterConfig config;
    config.num_procs = kProcs;
    config.network = cluster::NetworkType::kSwitch;
    config.seed = options.seed;
    cluster::Cluster cluster(config);
    cluster::ExperimentConfig exp;
    exp.reps = options.reps;
    const int total_reps = exp.warmup_reps + exp.reps;

    const PayloadCounters payload_before = payload_counters();
    const auto wall_start = std::chrono::steady_clock::now();
    const auto result = cluster::measure_collective(
        cluster, exp, [&label](mpi::Proc& p, int) {
          Buffer data;
          if (p.rank() == 0) {
            data = pattern_payload(0xB0CA57, kBytes);
          }
          p.comm_world().coll().bcast(data, 0, label);
        });
    const auto wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    const PayloadCounters payload_delta =
        payload_counters().since(payload_before);

    // SchedCounters reaches benches through net/counters.hpp, next to the
    // frame and payload counters it is reported alongside.
    const net::SchedCounters& sched = cluster.simulator().sched_counters();
    const std::uint64_t handoffs_per_coll =
        sched.handoffs / static_cast<std::uint64_t>(total_reps);
    table.add_row({label, Table::num(result.latencies_us.median()),
                   Table::num(wall_ms),
                   std::to_string(handoffs_per_coll),
                   std::to_string(sched.events_executed /
                                  static_cast<std::uint64_t>(total_reps))});
    record_bench(BenchRecord{
        .op = label + "/64KiB",
        .network = "switch",
        .ranks = kProcs,
        .bytes = kBytes,
        .sim_time_us = result.latencies_us.median(),
        .wall_time_ms = wall_ms,
        .events_scheduled = cluster.simulator().events_scheduled(),
        .handoffs = cluster.simulator().handoffs(),
        .payload_allocs = payload_delta.buffer_allocs,
        .payload_copies = payload_delta.byte_copies,
    });
  }
  print_table("Scheduler cost: 64 KiB MPI_Bcast, 9 procs, switch", table,
              options);
  return 0;
}
