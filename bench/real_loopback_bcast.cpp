// Real-socket companion to Fig. 7: wall-clock broadcast latency over
// loopback with genuine IP multicast (IP_ADD_MEMBERSHIP), comparing the
// paper's binary/linear scout algorithms against a point-to-point binomial
// tree emulating MPICH — all on real Berkeley sockets, rank threads on one
// machine.
//
// Loopback has none of Fast Ethernet's wire costs, so absolute numbers are
// microseconds and the crossover sits elsewhere; what carries over is the
// frame economics: the multicast sends each payload once, the tree N-1
// times.  Skips cleanly (exit 0) where the sandbox forbids multicast.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "common/bytes.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "posix/real_cluster.hpp"
#include "posix/socket.hpp"

namespace {

using namespace mcmpi;
using Clock = std::chrono::steady_clock;

// Binomial-tree broadcast over the p2p sockets (the MPICH pattern).
void bcast_tree(posix::RealRank& r, std::vector<std::uint8_t>& data,
                int root) {
  const int size = r.size();
  const int rel = (r.rank() - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if (rel & mask) {
      data = r.recv_p2p(((rel - mask) + root) % size);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < size) {
      r.send_p2p(((rel + mask) + root) % size, data);
    }
    mask >>= 1;
  }
}

double measure(posix::RealCluster& cluster, int bytes, int reps, int which) {
  Sample sample;
  cluster.run([&](posix::RealRank& r) {
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<std::uint8_t> data;
      if (r.rank() == 0) {
        data = pattern_payload(static_cast<std::uint64_t>(rep),
                               static_cast<std::size_t>(bytes));
      }
      r.barrier();
      const auto start = Clock::now();
      switch (which) {
        case 0:
          bcast_tree(r, data, 0);
          break;
        case 1:
          r.bcast_binary(data, 0);
          break;
        default:
          r.bcast_linear(data, 0);
          break;
      }
      const double us =
          static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  Clock::now() - start)
                                  .count()) /
          1000.0;
      if (!check_pattern(static_cast<std::uint64_t>(rep), data)) {
        throw std::runtime_error("corrupt broadcast payload");
      }
      // One timing sample per rep: the slowest rank defines completion, and
      // the post-barrier of the next rep bounds it; rank 0's view is a fair
      // median proxy on loopback.
      if (r.rank() == 0) {
        sample.add(us);
      }
    }
  });
  return sample.median();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto ranks = static_cast<int>(flags.get_int("ranks", 6, "rank threads"));
  const auto reps = static_cast<int>(flags.get_int("reps", 15, "reps per size"));
  const bool csv = flags.get_bool("csv", false, "emit CSV");
  if (flags.help_requested()) {
    std::cout << flags.usage("real loopback broadcast latency");
    return 0;
  }
  flags.check_unknown();

  if (!posix::RealUdpSocket::loopback_multicast_available()) {
    std::cout << "real_loopback_bcast: loopback multicast unavailable in "
                 "this environment; skipping (simulated benches cover the "
                 "figures).\n";
    return 0;
  }

  Table table({"bytes", "p2p-tree us", "mcast-binary us", "mcast-linear us"});
  for (int bytes : {0, 1000, 5000, 20000}) {
    double medians[3];
    for (int which = 0; which < 3; ++which) {
      posix::RealClusterConfig config;
      config.num_ranks = ranks;
      config.mcast_group = 0xEF0101E0u + static_cast<std::uint32_t>(which);
      posix::RealCluster cluster(config);
      medians[which] = measure(cluster, bytes, reps, which);
    }
    table.add_row({std::to_string(bytes), Table::num(medians[0]),
                   Table::num(medians[1]), Table::num(medians[2])});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    std::cout << "== Real loopback broadcast (wall-clock, " << ranks
              << " rank threads) ==\n";
    table.print_ascii(std::cout);
    std::cout << "note: loopback wall-clock is scheduler-noisy; the "
                 "deterministic figures come from the simulator benches.\n";
  }
  return 0;
}
