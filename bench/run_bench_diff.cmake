# CTest driver for the bench_diff perf gate: runs the quick scheduler bench
# fresh, then diffs its BENCH_*.json against the committed baselines.
#
# Invoked as:
#   cmake -DBENCH_EXES=<exe1;exe2> -DBENCH_ARGS=--reps=10 -DPYTHON=...
#         -DDIFF_SCRIPT=... -DBASELINE_DIR=... -DWORK_DIR=...
#         -P run_bench_diff.cmake
#
# A BENCH_EXES entry may carry per-bench arguments after "::" separators
# (e.g. "path/micro_collectives_sweep::--reps=12"), appended after the
# shared BENCH_ARGS — sweeps whose baselines were taken at a different rep
# count than the figure benches declare it here.

file(MAKE_DIRECTORY ${WORK_DIR})

set(BENCH_EXE_PATHS)
foreach(exe ${BENCH_EXES})
  string(REPLACE "::" ";" exe_parts "${exe}")
  list(POP_FRONT exe_parts exe_path)
  list(APPEND BENCH_EXE_PATHS ${exe_path})
  # Twice: the first run warms the page cache and allocator, the second
  # overwrites BENCH_*.json with representative wall times.
  foreach(pass RANGE 1)
    execute_process(
      COMMAND ${exe_path} ${BENCH_ARGS} ${exe_parts}
      WORKING_DIRECTORY ${WORK_DIR}
      RESULT_VARIABLE bench_rc
      OUTPUT_QUIET)
    if(NOT bench_rc EQUAL 0)
      message(FATAL_ERROR "bench run failed (${exe_path}): rc=${bench_rc}")
    endif()
  endforeach()
endforeach()

# Wall baselines are taken on the reference machine (bench/baselines/
# README.md); a slower host can widen the gate without losing the exact
# deterministic checks (medians, event/handoff/copy counts).
if(DEFINED ENV{MCMPI_BENCH_WALL_TOLERANCE})
  set(wall_tolerance $ENV{MCMPI_BENCH_WALL_TOLERANCE})
else()
  set(wall_tolerance 0.10)
endif()

# Every bench the gate runs must have produced its JSON (bench name =
# executable name).
set(require_args)
foreach(exe ${BENCH_EXE_PATHS})
  get_filename_component(exe_name ${exe} NAME)
  list(APPEND require_args --require BENCH_${exe_name}.json)
endforeach()

# Sharded-scaling gate: require this wall speedup at the highest shard
# count (the diff script skips the check on hosts without enough hardware
# threads; determinism checks always run).
set(speedup_args)
if(DEFINED MIN_SHARD_SPEEDUP)
  set(speedup_args --min-shard-speedup ${MIN_SHARD_SPEEDUP})
endif()
# Throughput-mode gate: the parallel shard driver must clear this ratio of
# the serial driver's wall-clock collectives/sec (hw-gated the same way).
if(DEFINED MIN_DRIVER_SPEEDUP)
  list(APPEND speedup_args --min-driver-speedup ${MIN_DRIVER_SPEEDUP})
endif()
# Segmented-pipeline gate: the pipelined (largest-window) run must beat the
# lockstep one by this simulated-median ratio, and striping must strictly
# help at window 1 (deterministic — never hw-gated).
if(DEFINED MIN_PIPELINE_SPEEDUP)
  list(APPEND speedup_args --min-pipeline-speedup ${MIN_PIPELINE_SPEEDUP})
endif()
# Loss-crossover gate: at >= 1% injected loss the NACK protocol's simulated
# median must be no worse than this ratio of the ACK protocol's
# (deterministic — never hw-gated).
if(DEFINED MIN_LOSS_ADVANTAGE)
  list(APPEND speedup_args --min-loss-advantage ${MIN_LOSS_ADVANTAGE})
endif()
# FEC-crossover gate: at >= 5% injected loss behind a multi-segment trunk
# the best fec-mcast variant's simulated median must be within 1/R of
# nack-mcast's (deterministic — never hw-gated).
if(DEFINED MIN_FEC_ADVANTAGE)
  list(APPEND speedup_args --min-fec-advantage ${MIN_FEC_ADVANTAGE})
endif()
# Hierarchical-crossover gate: past 4 segments / 256 ranks the hierarchical
# bcast's simulated median must beat the flat multicast tree's by this
# ratio (deterministic — never hw-gated).
if(DEFINED MIN_HIER_SPEEDUP)
  list(APPEND speedup_args --min-hier-speedup ${MIN_HIER_SPEEDUP})
endif()

execute_process(
  COMMAND ${PYTHON} ${DIFF_SCRIPT}
          --baseline ${BASELINE_DIR} --fresh ${WORK_DIR}
          --wall-tolerance ${wall_tolerance}
          ${require_args} ${speedup_args}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "bench_diff reported a regression (rc=${diff_rc})")
endif()
