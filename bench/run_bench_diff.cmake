# CTest driver for the bench_diff perf gate: runs the quick scheduler bench
# fresh, then diffs its BENCH_*.json against the committed baselines.
#
# Invoked as:
#   cmake -DBENCH_EXES=<exe1;exe2> -DBENCH_ARGS=--reps=10 -DPYTHON=...
#         -DDIFF_SCRIPT=... -DBASELINE_DIR=... -DWORK_DIR=...
#         -P run_bench_diff.cmake

file(MAKE_DIRECTORY ${WORK_DIR})

foreach(exe ${BENCH_EXES})
  # Twice: the first run warms the page cache and allocator, the second
  # overwrites BENCH_*.json with representative wall times.
  foreach(pass RANGE 1)
    execute_process(
      COMMAND ${exe} ${BENCH_ARGS}
      WORKING_DIRECTORY ${WORK_DIR}
      RESULT_VARIABLE bench_rc
      OUTPUT_QUIET)
    if(NOT bench_rc EQUAL 0)
      message(FATAL_ERROR "bench run failed (${exe}): rc=${bench_rc}")
    endif()
  endforeach()
endforeach()

# Wall baselines are taken on the reference machine (bench/baselines/
# README.md); a slower host can widen the gate without losing the exact
# deterministic checks (medians, event/handoff/copy counts).
if(DEFINED ENV{MCMPI_BENCH_WALL_TOLERANCE})
  set(wall_tolerance $ENV{MCMPI_BENCH_WALL_TOLERANCE})
else()
  set(wall_tolerance 0.10)
endif()

# Every bench the gate runs must have produced its JSON (bench name =
# executable name).
set(require_args)
foreach(exe ${BENCH_EXES})
  get_filename_component(exe_name ${exe} NAME)
  list(APPEND require_args --require BENCH_${exe_name}.json)
endforeach()

execute_process(
  COMMAND ${PYTHON} ${DIFF_SCRIPT}
          --baseline ${BASELINE_DIR} --fresh ${WORK_DIR}
          --wall-tolerance ${wall_tolerance}
          ${require_args}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "bench_diff reported a regression (rc=${diff_rc})")
endif()
