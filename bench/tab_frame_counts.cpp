// Reproduces the paper's §3.1/§3.2 analytic frame counts as a table, and
// verifies the simulator hits them exactly.
//
//   broadcast, MPICH:      (floor(M/T)+1) * (N-1)        [T = 1472 B]
//   broadcast, multicast:  (N-1) scouts + floor(M/T)+1
//   barrier, MPICH:        2*(N-K) + K*log2(K)           [K = 2^floor(lg N)]
//   barrier, multicast:    (N-1) scouts + 1 release
//
// Counted frames exclude transport ACKs, as the paper's formulas do.
#include "bench_util.hpp"
#include "common/bytes.hpp"

namespace {

using namespace mcmpi;

net::NetCounters run_bcast(int procs, int payload, const std::string& algo,
                           std::uint64_t seed) {
  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kSwitch;
  config.seed = seed;
  cluster::Cluster cluster(config);
  auto op = [payload, &algo](mpi::Proc& p) {
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(1, static_cast<std::size_t>(payload));
    }
    p.comm_world().coll().bcast(data, 0, algo);
  };
  return cluster::count_frames(cluster, op, op);
}

net::NetCounters run_barrier(int procs, const std::string& algo,
                             std::uint64_t seed) {
  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kSwitch;
  config.seed = seed;
  cluster::Cluster cluster(config);
  auto op = [&algo](mpi::Proc& p) {
    p.comm_world().coll().barrier(algo);
  };
  return cluster::count_frames(cluster, op, op);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Analytic frame counts (paper §3.1/§3.2) vs simulator counters");

  bool all_match = true;

  // ---------------------------------------------------------- broadcast
  Table bcast_table({"procs", "bytes", "frames/msg", "mpich formula",
                     "mpich measured", "mcast formula", "mcast measured"});
  for (int procs : {2, 4, 6, 9}) {
    for (int payload : {0, 100, 1472, 3000, 5000}) {
      const auto n = static_cast<std::uint64_t>(procs);
      const std::uint64_t fpm = static_cast<std::uint64_t>(payload) / 1472 + 1;
      const std::uint64_t mpich_formula = fpm * (n - 1);
      const std::uint64_t mcast_formula = (n - 1) + fpm;
      const auto mpich = run_bcast(procs, payload, "mpich", options.seed);
      const auto mcast =
          run_bcast(procs, payload, "mcast-binary", options.seed);
      all_match = all_match && mpich.formula_frames() == mpich_formula &&
                  mcast.formula_frames() == mcast_formula;
      bcast_table.add_row({std::to_string(procs), std::to_string(payload),
                           std::to_string(fpm), std::to_string(mpich_formula),
                           std::to_string(mpich.formula_frames()),
                           std::to_string(mcast_formula),
                           std::to_string(mcast.formula_frames())});
    }
  }
  print_table("Broadcast frame counts: (M/T+1)(N-1) vs (N-1)+(M/T+1)",
              bcast_table, options);

  // ------------------------------------------------------------ barrier
  Table barrier_table({"procs", "K", "mpich formula", "mpich measured",
                       "mcast formula", "mcast measured"});
  for (int procs = 2; procs <= 9; ++procs) {
    const auto n = static_cast<std::uint64_t>(procs);
    std::uint64_t k = 1;
    std::uint64_t log2k = 0;
    while (k * 2 <= n) {
      k *= 2;
      ++log2k;
    }
    const std::uint64_t mpich_formula = 2 * (n - k) + k * log2k;
    const std::uint64_t mcast_formula = (n - 1) + 1;
    const auto mpich = run_barrier(procs, "mpich", options.seed);
    const auto mcast = run_barrier(procs, "mcast", options.seed);
    all_match = all_match && mpich.formula_frames() == mpich_formula &&
                mcast.formula_frames() == mcast_formula;
    barrier_table.add_row(
        {std::to_string(procs), std::to_string(k),
         std::to_string(mpich_formula), std::to_string(mpich.formula_frames()),
         std::to_string(mcast_formula),
         std::to_string(mcast.formula_frames())});
  }
  print_table("Barrier message counts: 2(N-K)+K*log2(K) vs (N-1)+1",
              barrier_table, options);

  shape_check(all_match, "every measured frame count equals the paper's "
                         "closed-form expression");
  return all_match ? 0 : 1;
}
