// Throughput-mode engine bench: a multi-tenant mixed-collective workload
// (cluster/workload.hpp) over 16 ranks in 4 switch segments, swept across
// shard driver x shard count, with payload pooling on (plus one unpooled
// reference run).
//
// What the records claim (and tools/bench_diff.py enforces):
//   * per-collective completion latencies — and therefore the p50/p99
//     figures — are bit-identical across BOTH drivers and 1/2/4 shards
//     (the workload schedule is a pure function of the seed, and the
//     sharded simulator is bit-exact against the serial reference);
//   * payload pooling does not change virtual timing, only allocation:
//     the "no-pool" record agrees on every latency while its
//     payload_allocs figure is strictly larger than the pooled runs';
//   * with >= 4 hardware threads, the parallel driver at 4 shards clears
//     --min-driver-speedup x the serial driver's wall-clock collectives/sec
//     (coll_per_sec is collectives per WALL second — it is compared within
//     one run only, never against the committed baseline).
#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "cluster/workload.hpp"
#include "common/bytes.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  using namespace mcmpi::bench;
  const BenchOptions options = BenchOptions::parse(
      argc, argv,
      "Throughput-mode engine — multi-tenant mixed collectives, 16 ranks, "
      "4 switch segments, driver x shards sweep");

  constexpr int kProcs = 16;
  constexpr int kSegments = 4;
  const int hw_threads =
      static_cast<int>(std::thread::hardware_concurrency());

  cluster::WorkloadConfig workload;
  workload.tenants = 4;
  // --reps scales the stream length so the gate lane can run a shorter
  // sweep than the default standalone invocation.
  workload.collectives_per_tenant = std::max(8, options.reps);
  workload.mean_gap = microseconds_f(300.0);
  workload.min_bytes = 16;
  workload.max_bytes = 16 * 1024;
  workload.seed = options.seed;

  struct Measured {
    std::string driver;
    int shards = 0;
    bool pooled = true;
    cluster::WorkloadResult result;
    double wall_ms = 0;
    double wall_coll_per_sec = 0;
    std::uint64_t payload_allocs = 0;
  };
  std::vector<Measured> measured;

  Table table({"driver", "shards", "pool", "p50 us", "p99 us", "wall ms",
               "payload allocs", "event pool hits"});
  const auto run_one = [&](sim::ShardDriver driver, unsigned shards,
                           bool pooled) {
    cluster::ClusterConfig config;
    config.num_procs = kProcs;
    config.num_segments = kSegments;
    config.sim_shards = shards;
    config.shard_driver = driver;
    config.payload_pool = pooled;
    config.network = cluster::NetworkType::kSwitch;
    config.seed = options.seed;
    config.hosts = cluster::make_uniform_hosts(kProcs);
    // Routed-backbone trunk latency = the conservative lookahead; wide
    // windows keep barrier rounds cheap relative to useful work.
    config.trunk_latency = microseconds_f(100.0);
    cluster::Cluster cluster(config);

    const PayloadCounters payload_before = payload_counters();
    const auto wall_start = std::chrono::steady_clock::now();
    const cluster::WorkloadResult result =
        cluster::run_workload(cluster, workload);
    const auto wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    const PayloadCounters payload_delta =
        payload_counters().since(payload_before);
    const sim::SchedCounters sched = cluster.simulator().sched_counters();

    Measured m;
    m.driver = driver == sim::ShardDriver::kParallel ? "parallel" : "serial";
    m.shards = static_cast<int>(shards);
    m.pooled = pooled;
    m.result = result;
    m.wall_ms = wall_ms;
    m.wall_coll_per_sec = wall_ms > 0.0
                              ? static_cast<double>(result.collectives) /
                                    (wall_ms / 1000.0)
                              : 0.0;
    m.payload_allocs = payload_delta.buffer_allocs;
    measured.push_back(m);

    table.add_row({m.driver, std::to_string(m.shards),
                   pooled ? "on" : "off", Table::num(result.p50_us),
                   Table::num(result.p99_us), Table::num(wall_ms),
                   std::to_string(m.payload_allocs),
                   std::to_string(sched.event_pool_hits)});
    record_bench(BenchRecord{
        .op = "mixed",
        .algo = pooled ? "pooled" : "no-pool",
        .network = "switch",
        .ranks = kProcs,
        .bytes = -1,
        .sim_time_us = result.p50_us,
        .wall_time_ms = wall_ms,
        .events_scheduled = cluster.simulator().events_scheduled(),
        .handoffs = cluster.simulator().handoffs(),
        .payload_allocs = payload_delta.buffer_allocs,
        .payload_copies = payload_delta.byte_copies,
        .shards = m.shards,
        .hw_threads = hw_threads,
        .driver = m.driver,
        .p99_us = result.p99_us,
        .coll_per_sec = m.wall_coll_per_sec,
        .collectives = result.collectives,
        .event_pool_hits = sched.event_pool_hits,
        .event_pool_misses = sched.event_pool_misses,
    });
  };

  for (const auto driver :
       {sim::ShardDriver::kSerial, sim::ShardDriver::kParallel}) {
    for (const unsigned shards : {1u, 2u, 4u}) {
      run_one(driver, shards, /*pooled=*/true);
    }
  }
  // Unpooled reference: same workload, same timing, more allocations.
  run_one(sim::ShardDriver::kSerial, 1u, /*pooled=*/false);

  print_table(
      "Throughput-mode engine (16 ranks, 4 switch segments, mixed ops)",
      table, options);

  // Shape checks.  Determinism first: every run (both drivers, all shard
  // counts, pool on or off) must reproduce the reference run's
  // per-collective latencies exactly.
  const Measured& reference = measured.front();
  bool identical = true;
  for (const Measured& m : measured) {
    identical =
        identical && m.result.latencies_us == reference.result.latencies_us;
  }
  shape_check(identical,
              "per-collective latencies bit-identical across drivers, "
              "shard counts and pooling");

  const Measured* no_pool = nullptr;
  for (const Measured& m : measured) {
    if (!m.pooled) {
      no_pool = &m;
    }
  }
  bool pool_reduces = no_pool != nullptr;
  for (const Measured& m : measured) {
    if (m.pooled && no_pool != nullptr) {
      pool_reduces = pool_reduces && m.payload_allocs < no_pool->payload_allocs;
    }
  }
  shape_check(pool_reduces,
              "payload pooling strictly reduces payload buffer allocations");

  const auto find = [&](const std::string& driver,
                        int shards) -> const Measured* {
    for (const Measured& m : measured) {
      if (m.pooled && m.driver == driver && m.shards == shards) {
        return &m;
      }
    }
    return nullptr;
  };
  const Measured* serial4 = find("serial", 4);
  const Measured* parallel4 = find("parallel", 4);
  if (hw_threads >= 4 && serial4 != nullptr && parallel4 != nullptr) {
    shape_check(
        parallel4->wall_coll_per_sec >= 1.5 * serial4->wall_coll_per_sec,
        "parallel driver clears 1.5x serial wall-clock collectives/sec at "
        "4 shards (" +
            Table::num(serial4->wall_coll_per_sec) + " -> " +
            Table::num(parallel4->wall_coll_per_sec) + " coll/s, " +
            std::to_string(hw_threads) + " hw threads)");
  } else {
    std::cout << "SHAPE CHECK skip — driver speedup needs >= 4 hardware "
                 "threads (host has "
              << hw_threads << ")\n";
  }
  return 0;
}
