// Example: 1-D heat diffusion with halo exchange — the classic SPMD stencil.
// Point-to-point sendrecv moves the halos each step; every `check_every`
// steps the ranks agree on convergence through an allreduce whose broadcast
// stage can ride IP multicast.  Shows the mini-MPI used the way real codes
// use MPI: mixed p2p + collectives in a time loop.
//
//   $ ./heat1d_halo [--procs=6] [--cells=1200] [--steps=400]
//                   [--check_every=50] [--algo=mcast-binary]
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"
#include "common/flags.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  Flags flags(argc, argv);
  const auto procs = static_cast<int>(flags.get_int("procs", 6, "ranks"));
  const auto cells =
      static_cast<int>(flags.get_int("cells", 1200, "total grid cells"));
  const auto steps = static_cast<int>(flags.get_int("steps", 400, "max steps"));
  const auto check_every = static_cast<int>(
      flags.get_int("check_every", 50, "steps between convergence checks"));
  const std::string algo_name =
      flags.get_string("algo", "mcast-binary", "allreduce broadcast stage");
  if (flags.help_requested()) {
    std::cout << flags.usage("1-D heat diffusion with halo exchange");
    return 0;
  }
  flags.check_unknown();
  // Any registered allreduce entry (or "auto"); fail on typos up front.
  if (algo_name != coll::kAuto) {
    (void)coll::Registry::instance().get(coll::CollOp::kAllreduce, algo_name);
  }

  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kSwitch;
  cluster::Cluster cluster(config);

  const int local = cells / procs;
  std::vector<double> final_profile(static_cast<std::size_t>(procs), 0.0);
  int steps_taken = 0;
  SimTime finished{};

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    const int rank = p.rank();
    const int left = rank - 1;
    const int right = rank + 1;

    // Local slab with two ghost cells; a hot spike in the middle rank.
    std::vector<double> u(static_cast<std::size_t>(local) + 2, 0.0);
    if (rank == procs / 2) {
      u[static_cast<std::size_t>(local) / 2 + 1] = 1000.0;
    }
    std::vector<double> next = u;

    constexpr mpi::Tag kHaloLeft = 100;
    constexpr mpi::Tag kHaloRight = 101;
    double change = 1e30;
    int step = 0;
    for (; step < steps && change > 1e-6; ++step) {
      // Halo exchange: send my edge cells, receive neighbours' ghosts.
      Buffer left_edge(sizeof(double));
      std::memcpy(left_edge.data(), &u[1], sizeof(double));
      Buffer right_edge(sizeof(double));
      std::memcpy(right_edge.data(), &u[static_cast<std::size_t>(local)],
                  sizeof(double));

      if (left >= 0 && right < procs) {
        const Buffer from_right = p.sendrecv(comm, right, kHaloRight,
                                             right_edge, right, kHaloLeft);
        const Buffer from_left =
            p.sendrecv(comm, left, kHaloLeft, left_edge, left, kHaloRight);
        std::memcpy(&u[static_cast<std::size_t>(local) + 1],
                    from_right.data(), sizeof(double));
        std::memcpy(&u[0], from_left.data(), sizeof(double));
      } else if (right < procs) {  // leftmost rank
        const Buffer from_right = p.sendrecv(comm, right, kHaloRight,
                                             right_edge, right, kHaloLeft);
        std::memcpy(&u[static_cast<std::size_t>(local) + 1],
                    from_right.data(), sizeof(double));
      } else if (left >= 0) {  // rightmost rank
        const Buffer from_left =
            p.sendrecv(comm, left, kHaloLeft, left_edge, left, kHaloRight);
        std::memcpy(&u[0], from_left.data(), sizeof(double));
      }

      // Jacobi update.
      double local_change = 0;
      for (int i = 1; i <= local; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        next[idx] = u[idx] + 0.25 * (u[idx - 1] - 2 * u[idx] + u[idx + 1]);
        local_change = std::max(local_change, std::abs(next[idx] - u[idx]));
      }
      u.swap(next);

      // Periodic global convergence check (allreduce max).
      if ((step + 1) % check_every == 0) {
        Buffer bytes(sizeof local_change);
        std::memcpy(bytes.data(), &local_change, sizeof local_change);
        const Buffer reduced = comm.coll().allreduce(
            bytes, mpi::Op::kMax, mpi::Datatype::kDouble, algo_name);
        std::memcpy(&change, reduced.data(), sizeof change);
      }
    }

    // Gather a temperature sample per rank for the report.
    double mid = u[static_cast<std::size_t>(local) / 2 + 1];
    Buffer sample(sizeof mid);
    std::memcpy(sample.data(), &mid, sizeof mid);
    const auto gathered = comm.coll().gather(sample, /*root=*/0);
    if (rank == 0) {
      for (int r = 0; r < procs; ++r) {
        std::memcpy(&final_profile[static_cast<std::size_t>(r)],
                    gathered[static_cast<std::size_t>(r)].data(),
                    sizeof(double));
      }
      steps_taken = step;
      finished = p.self().now();
    }
  });

  std::cout << "heat1d: " << procs << " ranks x " << local << " cells, "
            << steps_taken << " steps, allreduce bcast=" << algo_name << "\n";
  std::cout << "mid-slab temperatures:";
  for (double t : final_profile) {
    std::cout << ' ' << t;
  }
  std::cout << "\nvirtual time: " << to_milliseconds(finished) << " ms\n"
            << "frames on the wire: "
            << cluster.network().counters().host_tx_frames << "\n";
  return 0;
}
