// Example: nonblocking broadcast overlapping with compute.
//
// Every iteration, rank 0 broadcasts a 64 KiB model table while all ranks
// crunch local work.  Blocking code pays compute + broadcast back to back;
// with comm.coll().ibcast() the broadcast progresses on a helper fiber
// while the rank computes, so the wall of the iteration approaches
// max(compute, broadcast).  The payload is bit-identical either way — the
// request completes via Proc::wait.
//
// The tuned kAuto policy resolves the algorithm: at 64 KiB the table picks
// "mcast-binary" (large messages ride IP multicast).  Note the kAuto rule:
// selection keys on buffer.size(), so receivers pre-size their buffers —
// the same all-ranks-agree requirement as MPI_Bcast's count argument.
//
//   $ ./ibcast_overlap [--procs=9] [--iters=6] [--compute_us=9000]
#include <iostream>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"
#include "common/flags.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  Flags flags(argc, argv);
  const auto procs = static_cast<int>(flags.get_int("procs", 9, "ranks"));
  const auto iters = static_cast<int>(flags.get_int("iters", 6, "iterations"));
  const auto compute_us = flags.get_int(
      "compute_us", 9000, "local compute per iteration (microseconds)");
  if (flags.help_requested()) {
    std::cout << flags.usage("nonblocking broadcast/compute overlap");
    return 0;
  }
  flags.check_unknown();

  constexpr std::size_t kBytes = 64 * 1024;

  // Same cluster build, same seed, two programs: blocking then nonblocking.
  auto run = [&](bool nonblocking) {
    cluster::ClusterConfig config;
    config.num_procs = procs;
    config.network = cluster::NetworkType::kSwitch;
    cluster::Cluster cluster(config);
    SimTime finished{};
    std::uint64_t payload_hash = 0;
    cluster.world().run([&](mpi::Proc& p) {
      const mpi::Comm comm = p.comm_world();
      for (int i = 0; i < iters; ++i) {
        Buffer table(kBytes);  // pre-sized on every rank (kAuto rule)
        if (p.rank() == 0) {
          table = pattern_payload(static_cast<std::uint64_t>(i), kBytes);
        }
        if (nonblocking) {
          // Start the broadcast, compute while it progresses, then wait.
          auto request = comm.coll().ibcast(table, 0);
          p.self().delay(microseconds(compute_us));
          p.wait(request);
        } else {
          p.self().delay(microseconds(compute_us));
          comm.coll().bcast(table, 0);
        }
        // Fold the delivered bytes into a digest so both variants can be
        // compared bit for bit.
        std::uint64_t h = payload_hash;
        for (std::uint8_t b : table) {
          h = (h ^ b) * 1099511628211ULL;
        }
        payload_hash = h;
      }
      if (p.rank() == 0) {
        finished = p.self().now();
      }
    });
    return std::pair<double, std::uint64_t>(to_microseconds(finished),
                                            payload_hash);
  };

  const auto [blocking_us, blocking_hash] = run(false);
  const auto [overlap_us, overlap_hash] = run(true);

  std::cout << "ibcast overlap: " << procs << " ranks, " << iters
            << " iterations of " << compute_us << " us compute + " << kBytes
            << " B broadcast (kAuto)\n"
            << "blocking    : " << blocking_us << " us virtual\n"
            << "ibcast+wait : " << overlap_us << " us virtual ("
            << (blocking_us - overlap_us) / static_cast<double>(iters)
            << " us hidden per iteration)\n"
            << "payloads bit-identical: "
            << (blocking_hash == overlap_hash ? "yes" : "NO") << "\n";
  return blocking_hash == overlap_hash && overlap_us < blocking_us ? 0 : 1;
}
