// Example: distributed k-means — the broadcast-heavy iterative workload
// that motivates multicast collectives.  Every iteration the root
// broadcasts the current centroids (k * dims doubles) to all workers; each
// worker assigns its local points and the partial sums come back through a
// reduce.  With MPICH-style broadcast the centroid table crosses the
// network once per worker per iteration; with IP multicast it crosses
// once, full stop.
//
//   $ ./kmeans_broadcast [--procs=8] [--points=3000] [--k=8] [--iters=12]
//                        [--algo=auto|mcast-binary|mcast-linear|mpich|...]
//
// --algo accepts any registered broadcast algorithm (coll/registry.hpp);
// "auto" lets the tuning table pick per message size.
#include <cstring>
#include <iostream>
#include <vector>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace {

using namespace mcmpi;

constexpr int kDims = 8;

struct Point {
  double x[kDims];
};

// Deterministic synthetic clusters: points scatter around k true centers.
std::vector<Point> make_points(int count, int k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points(static_cast<std::size_t>(count));
  for (auto& p : points) {
    const auto center = static_cast<double>(rng.below(static_cast<std::uint64_t>(k)));
    for (double& coordinate : p.x) {
      coordinate = center * 10.0 + rng.uniform(-1.0, 1.0);
    }
  }
  return points;
}

double squared_distance(const Point& a, std::span<const double> center) {
  double d = 0;
  for (int i = 0; i < kDims; ++i) {
    const double diff = a.x[i] - center[static_cast<std::size_t>(i)];
    d += diff * diff;
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto procs = static_cast<int>(flags.get_int("procs", 8, "ranks"));
  const auto total_points =
      static_cast<int>(flags.get_int("points", 3000, "total points"));
  const auto k = static_cast<int>(flags.get_int("k", 8, "clusters"));
  const auto iters = static_cast<int>(flags.get_int("iters", 12, "iterations"));
  const std::string algo_name = flags.get_string(
      "algo", "mcast-binary", "broadcast algorithm for the centroid table");
  if (flags.help_requested()) {
    std::cout << flags.usage("distributed k-means over mcmpi collectives");
    return 0;
  }
  flags.check_unknown();
  if (algo_name != coll::kAuto) {
    // Fail on a typo before the simulation starts.
    (void)coll::Registry::instance().get(coll::CollOp::kBcast, algo_name);
  }

  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kSwitch;
  cluster::Cluster cluster(config);

  const int per_rank = total_points / procs;
  std::vector<double> final_inertia(1, 0.0);
  SimTime finished{};

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    const auto points =
        make_points(per_rank, k, 1234 + static_cast<std::uint64_t>(p.rank()));

    // Centroid table: k rows of kDims doubles (+1 count slot per row when
    // reducing).  Root seeds centroids from its first k points.
    std::vector<double> centroids(static_cast<std::size_t>(k) * kDims);
    if (p.rank() == 0) {
      for (int c = 0; c < k; ++c) {
        std::memcpy(&centroids[static_cast<std::size_t>(c) * kDims],
                    points[static_cast<std::size_t>(c)].x,
                    sizeof(double) * kDims);
      }
    }

    for (int iter = 0; iter < iters; ++iter) {
      // Broadcast the centroid table — the multicast-friendly step.
      Buffer table(centroids.size() * sizeof(double));
      if (p.rank() == 0) {
        std::memcpy(table.data(), centroids.data(), table.size());
      }
      comm.coll().bcast(table, 0, algo_name);
      std::memcpy(centroids.data(), table.data(), table.size());

      // Local assignment + partial sums: k * (dims + 1) accumulators.
      std::vector<double> partial(static_cast<std::size_t>(k) * (kDims + 1),
                                  0.0);
      for (const Point& point : points) {
        int best = 0;
        double best_d = squared_distance(
            point, std::span<const double>(centroids).subspan(0, kDims));
        for (int c = 1; c < k; ++c) {
          const double d = squared_distance(
              point, std::span<const double>(centroids)
                         .subspan(static_cast<std::size_t>(c) * kDims, kDims));
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
        auto* row = &partial[static_cast<std::size_t>(best) * (kDims + 1)];
        for (int i = 0; i < kDims; ++i) {
          row[i] += point.x[i];
        }
        row[kDims] += 1.0;
      }

      // Reduce partial sums to the root, which recomputes centroids.
      Buffer bytes(partial.size() * sizeof(double));
      std::memcpy(bytes.data(), partial.data(), bytes.size());
      const Buffer summed = comm.coll().reduce(bytes, mpi::Op::kSum,
                                               mpi::Datatype::kDouble, 0);
      if (p.rank() == 0) {
        std::vector<double> sums(partial.size());
        std::memcpy(sums.data(), summed.data(), summed.size());
        for (int c = 0; c < k; ++c) {
          const double count =
              sums[static_cast<std::size_t>(c) * (kDims + 1) + kDims];
          if (count > 0) {
            for (int i = 0; i < kDims; ++i) {
              centroids[static_cast<std::size_t>(c) * kDims +
                        static_cast<std::size_t>(i)] =
                  sums[static_cast<std::size_t>(c) * (kDims + 1) +
                       static_cast<std::size_t>(i)] /
                  count;
            }
          }
        }
      }
    }

    // Final quality metric: local inertia, allreduced so everyone agrees.
    double inertia = 0;
    for (const Point& point : points) {
      double best_d = squared_distance(
          point, std::span<const double>(centroids).subspan(0, kDims));
      for (int c = 1; c < k; ++c) {
        best_d = std::min(
            best_d,
            squared_distance(point, std::span<const double>(centroids)
                                        .subspan(static_cast<std::size_t>(c) *
                                                     kDims,
                                                 kDims)));
      }
      inertia += best_d;
    }
    Buffer bytes(sizeof inertia);
    std::memcpy(bytes.data(), &inertia, sizeof inertia);
    const Buffer total = comm.coll().allreduce(bytes, mpi::Op::kSum,
                                               mpi::Datatype::kDouble);
    if (p.rank() == 0) {
      std::memcpy(final_inertia.data(), total.data(), sizeof(double));
      finished = p.self().now();
    }
  });

  const auto& counters = cluster.network().counters();
  std::cout << "k-means: " << procs << " ranks, " << per_rank
            << " points/rank, k=" << k << ", " << iters << " iterations, "
            << "bcast algo=" << algo_name << "\n"
            << "final inertia: " << final_inertia[0] << "\n"
            << "virtual time: " << to_milliseconds(finished) << " ms\n"
            << "frames on the wire: " << counters.host_tx_frames << " (data "
            << counters.host_tx_data_frames << ")\n";
  return 0;
}
