// Example: Monte-Carlo estimation of pi — the canonical first MPI program,
// here with the work parameters broadcast via IP multicast and the hit
// counts combined with a reduce.  Also demonstrates communicator splitting:
// the ranks form two teams on sub-communicators, each team estimates pi
// independently, and the teams' results are averaged on COMM_WORLD.
//
//   $ ./pi_monte_carlo [--procs=8] [--samples=200000]
#include <cstring>
#include <iostream>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  Flags flags(argc, argv);
  const auto procs = static_cast<int>(flags.get_int("procs", 8, "ranks"));
  const auto samples = static_cast<std::int64_t>(
      flags.get_int("samples", 200'000, "total samples across all ranks"));
  if (flags.help_requested()) {
    std::cout << flags.usage("Monte-Carlo pi over mcmpi");
    return 0;
  }
  flags.check_unknown();

  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kHub;
  cluster::Cluster cluster(config);

  double team_estimates[2] = {0, 0};

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm world = p.comm_world();

    // Rank 0 multicasts the work order: {samples per rank, base seed}.
    Buffer order(16);
    if (p.rank() == 0) {
      ByteWriter w(order);
      order.clear();
      w.i64(samples / procs);
      w.u64(0xCAFEBABE);
    }
    world.coll().bcast(order, 0, "mcast-binary");
    ByteReader r(order);
    const std::int64_t my_samples = r.i64();
    const std::uint64_t base_seed = r.u64();

    // Two teams via comm split (even/odd), each with its own multicast
    // group — "two or more multicast groups" per the paper's §4.
    const int team = p.rank() % 2;
    const mpi::Comm team_comm = p.split(world, team, p.rank());

    Rng rng(base_seed + static_cast<std::uint64_t>(p.rank()) * 7919);
    std::int64_t hits = 0;
    for (std::int64_t i = 0; i < my_samples; ++i) {
      const double x = rng.uniform();
      const double y = rng.uniform();
      if (x * x + y * y <= 1.0) {
        ++hits;
      }
    }

    Buffer mine(sizeof hits);
    std::memcpy(mine.data(), &hits, sizeof hits);
    const Buffer team_hits = team_comm.coll().reduce(
        mine, mpi::Op::kSum, mpi::Datatype::kInt64, /*root=*/0);
    if (team_comm.rank() == 0) {
      std::int64_t total = 0;
      std::memcpy(&total, team_hits.data(), sizeof total);
      team_estimates[team] =
          4.0 * static_cast<double>(total) /
          static_cast<double>(my_samples * team_comm.size());
    }
    // Everyone meets again on the world barrier before the program ends.
    world.coll().barrier("mcast");
  });

  std::cout << "pi (team even) = " << team_estimates[0] << "\n"
            << "pi (team odd)  = " << team_estimates[1] << "\n"
            << "pi (mean)      = "
            << (team_estimates[0] + team_estimates[1]) / 2 << "\n";
  return 0;
}
