// Quickstart: build a simulated 4-node Fast Ethernet cluster, broadcast a
// message with the paper's binary scout algorithm, synchronize with the
// multicast barrier, and print what happened — including the frame counts
// that make IP multicast worthwhile.
//
//   $ ./quickstart
//
// The public API in four steps:
//   1. cluster::Cluster      — the simulated testbed (hub or switch)
//   2. Cluster::world().run  — SPMD launch: the lambda is rank code
//   3. comm.coll()           — the collective facade: tuned auto-selection
//                              by default, any registry algorithm by name
//   4. Network counters      — what actually crossed the wire
#include <cstring>
#include <iostream>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"

int main() {
  using namespace mcmpi;

  // 1. A 4-node cluster on a shared Fast Ethernet hub (the paper's Fig. 7
  //    testbed).  NetworkType::kSwitch gives the HP-ProCurve-style switch.
  cluster::ClusterConfig config;
  config.num_procs = 4;
  config.network = cluster::NetworkType::kHub;
  cluster::Cluster cluster(config);

  const char kMessage[] = "hello from rank 0 via IP multicast";

  // 2. SPMD: this lambda runs once per rank, as in MPI.
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();

    // 3a. Broadcast: rank 0 provides the payload, everyone receives it.
    Buffer data;
    if (p.rank() == 0) {
      data.assign(kMessage, kMessage + sizeof kMessage);
    }
    comm.coll().bcast(data, /*root=*/0, "mcast-binary");

    std::cout << "rank " << p.rank() << " @ " << to_microseconds(p.self().now())
              << " us: received \""
              << std::string(data.begin(), data.end() - 1) << "\"\n";

    // 3b. Barrier: scout reduction + one multicast release.
    comm.coll().barrier();  // kAuto: the tuning table picks "mcast"
  });

  // 4. The whole point, in numbers: one data frame crossed the shared wire
  //    for the broadcast (plus 3 zero-data scouts), where MPICH would have
  //    sent the payload 3 times.
  const net::NetCounters& counters = cluster.network().counters();
  std::cout << "\nframes on the wire: " << counters.host_tx_frames
            << " (data " << counters.host_tx_data_frames << ", control "
            << counters.host_tx_control_frames << ", transport acks "
            << counters.host_tx_ack_frames << ")\n"
            << "collisions on the hub: " << counters.collisions << "\n";
  return 0;
}
