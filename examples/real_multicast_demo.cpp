// Example: the paper's mechanism on REAL sockets — four rank threads on
// loopback, point-to-point UDP scouts, and a genuine IP multicast
// (IP_ADD_MEMBERSHIP / class-D destination) carrying the broadcast payload.
// This is the code path the paper's implementation used, minus the
// machine room.
//
// Exits cleanly with a note if the sandbox forbids loopback multicast.
//
//   $ ./real_multicast_demo [--ranks=4] [--rounds=3] [--bytes=2000]
#include <chrono>
#include <iostream>
#include <mutex>

#include "common/bytes.hpp"
#include "common/flags.hpp"
#include "posix/real_cluster.hpp"
#include "posix/socket.hpp"

int main(int argc, char** argv) {
  using namespace mcmpi;
  Flags flags(argc, argv);
  const auto ranks = static_cast<int>(flags.get_int("ranks", 4, "rank threads"));
  const auto rounds = static_cast<int>(flags.get_int("rounds", 3, "broadcast rounds"));
  const auto bytes = static_cast<int>(flags.get_int("bytes", 2000, "payload size"));
  if (flags.help_requested()) {
    std::cout << flags.usage("real loopback IP multicast demo");
    return 0;
  }
  flags.check_unknown();

  if (!posix::RealUdpSocket::loopback_multicast_available()) {
    std::cout << "loopback multicast is not available in this environment; "
                 "nothing to demo (the simulated backend covers the "
                 "experiments).\n";
    return 0;
  }

  posix::RealClusterConfig config;
  config.num_ranks = ranks;
  posix::RealCluster cluster(config);
  std::mutex print_mutex;

  cluster.run([&](posix::RealRank& r) {
    using Clock = std::chrono::steady_clock;
    for (int round = 0; round < rounds; ++round) {
      const int root = round % r.size();
      std::vector<std::uint8_t> data;
      if (r.rank() == root) {
        data = pattern_payload(static_cast<std::uint64_t>(round),
                               static_cast<std::size_t>(bytes));
      }
      const auto start = Clock::now();
      // Alternate the paper's two synchronization schemes.
      if (round % 2 == 0) {
        r.bcast_binary(data, root);
      } else {
        r.bcast_linear(data, root);
      }
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          Clock::now() - start)
                          .count();
      const bool ok =
          check_pattern(static_cast<std::uint64_t>(round), data) &&
          data.size() == static_cast<std::size_t>(bytes);
      {
        std::scoped_lock lock(print_mutex);
        std::cout << "round " << round << " ("
                  << (round % 2 == 0 ? "binary" : "linear") << ", root "
                  << root << "): rank " << r.rank() << " "
                  << (ok ? "ok" : "CORRUPT") << " in " << us << " us\n";
      }
      r.barrier();
    }
  });

  std::cout << "real multicast demo complete: " << ranks << " ranks, "
            << rounds << " rounds of " << bytes << "-byte broadcasts over "
            << "239.1.1.254 on loopback\n";
  return 0;
}
