// Example: a replicated key-value log over sequencer-ordered multicast —
// the Orca-style usage the paper's related work points at.  Every rank
// issues updates; the sequencer (rank 0) stamps a total order and
// multicasts once; every replica applies the same operations in the same
// order, so all replicas converge to identical state without any
// per-update readiness handshake.
//
//   $ ./replicated_log [--procs=5] [--updates=4]
#include <cstring>
#include <iostream>
#include <map>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "coll/sequencer.hpp"
#include "common/bytes.hpp"
#include "common/flags.hpp"

namespace {

using namespace mcmpi;

struct Update {
  std::int32_t key;
  std::int32_t value;
};

Buffer encode(const Update& u) {
  Buffer b;
  ByteWriter w(b);
  w.i32(u.key);
  w.i32(u.value);
  return b;
}

Update decode(const Buffer& b) {
  ByteReader r(b);
  Update u;
  u.key = r.i32();
  u.value = r.i32();
  return u;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto procs = static_cast<int>(flags.get_int("procs", 5, "replicas"));
  const auto updates =
      static_cast<int>(flags.get_int("updates", 4, "updates per replica"));
  if (flags.help_requested()) {
    std::cout << flags.usage("replicated KV log over sequencer multicast");
    return 0;
  }
  flags.check_unknown();

  cluster::ClusterConfig config;
  config.num_procs = procs;
  config.network = cluster::NetworkType::kSwitch;
  cluster::Cluster cluster(config);

  // Each replica's final state, hashed for the convergence check.
  std::vector<std::uint64_t> state_hash(static_cast<std::size_t>(procs), 0);
  std::vector<std::size_t> state_size(static_cast<std::size_t>(procs), 0);

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    std::map<std::int32_t, std::int32_t> kv;

    // Round-robin issuing: in round i, replica (i % procs) broadcasts its
    // next update through the sequencer.  Every replica — including the
    // issuer — applies updates in sequencer order.
    const int total_rounds = procs * updates;
    for (int round = 0; round < total_rounds; ++round) {
      const int issuer = round % procs;
      Buffer op;
      if (p.rank() == issuer) {
        // Writers overlap on keys (key space smaller than update count),
        // so ordering actually matters for convergence.
        op = encode(Update{static_cast<std::int32_t>(round % 7),
                           static_cast<std::int32_t>(p.rank() * 1000 + round)});
      }
      comm.coll().bcast(op, issuer, "sequencer");
      const Update u = decode(op);
      kv[u.key] = u.value;
    }

    // Convergence digest.
    std::uint64_t h = 14695981039346656037ULL;
    for (const auto& [k, v] : kv) {
      h = (h ^ static_cast<std::uint64_t>(k)) * 1099511628211ULL;
      h = (h ^ static_cast<std::uint64_t>(v)) * 1099511628211ULL;
    }
    state_hash[static_cast<std::size_t>(p.rank())] = h;
    state_size[static_cast<std::size_t>(p.rank())] = kv.size();
  });

  bool converged = true;
  for (int r = 1; r < procs; ++r) {
    converged = converged &&
                state_hash[static_cast<std::size_t>(r)] == state_hash[0];
  }
  const auto& counters = cluster.network().counters();
  std::cout << "replicated log: " << procs << " replicas x " << updates
            << " updates each, " << procs * updates << " total operations\n"
            << "replicas converged: " << (converged ? "yes" : "NO") << " ("
            << state_size[0] << " keys)\n"
            << "data frames on the wire: " << counters.host_tx_data_frames
            << " (1 handoff + 1 multicast per update issued by a "
               "non-sequencer replica)\n";
  return converged ? 0 : 1;
}
