#pragma once
/// \file calibration.hpp
/// Era constants: what a 1999 commodity cluster costs per message.
///
/// The paper's testbed: four 500 MHz Compaq and five 450 MHz Gateway
/// Pentium-III machines, Fast Ethernet (100 Mb/s), a 3Com SuperStack II hub
/// and an HP ProCurve managed switch, Linux, MPICH over TCP (ch_p4).
///
/// Our absolute calibration (documented here, asserted nowhere — the
/// *shapes* are what the reproduction must get right):
///
///   wire               100 Mb/s = 80 ns/byte; Ethernet framing overhead
///                      38 B/frame (preamble 8 + header 14 + FCS 4 + IFG 12),
///                      64 B minimum frame, 1500 B MTU.  A full UDP frame
///                      carries 1472 B of user payload (paper's "T").
///   host software      three-tier per-message costs (see CostParams below
///                      for the derivation): ~100 µs per MPICH p2p message,
///                      ~40 µs per raw-UDP control message, ~200 µs per
///                      multicast data message, each plus ~10 ns per payload
///                      byte, scaled by 500/MHz for the slower hosts, with
///                      ±10% uniform jitter (OS scheduling noise).  These
///                      land small-message MPICH broadcast latency at
///                      4 procs in the paper's ~400 µs range, put the
///                      MPICH-vs-multicast crossover near one Ethernet frame
///                      of payload (Figs. 7-10), and make the multicast
///                      barrier win at every N (Fig. 13).
///   switch             ~10 µs store-and-forward + lookup (measured values
///                      for late-90s managed Fast Ethernet switches), 0.5 µs
///                      port latency.  This is why the paper's hub beats the
///                      switch for multicast (Fig. 11).
///   hub                ~1 µs repeater latency; CSMA/CD slot 5.12 µs,
///                      jam 3.2 µs, truncated BEB (IEEE 802.3).
///   start skew         ranks enter a collective within ~20 µs of each
///                      other (loosely synchronized SPMD loop).

#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "mpi/types.hpp"

namespace mcmpi::cluster {

/// One physical machine.
struct HostSpec {
  double cpu_mhz = 500.0;
  const char* model = "generic";
};

/// The paper's nine-node "eagle" cluster: ranks are assigned to hosts in
/// this order (experiments with N procs use the first N).
inline constexpr HostSpec kEagleHosts[] = {
    {500.0, "compaq-p3-500"}, {500.0, "compaq-p3-500"},
    {500.0, "compaq-p3-500"}, {500.0, "compaq-p3-500"},
    {450.0, "gateway-p3-450"}, {450.0, "gateway-p3-450"},
    {450.0, "gateway-p3-450"}, {450.0, "gateway-p3-450"},
    {450.0, "gateway-p3-450"},
};
inline constexpr int kMaxEagleHosts =
    static_cast<int>(sizeof(kEagleHosts) / sizeof(kEagleHosts[0]));

/// `n` identical reference-speed machines — for topologies beyond the
/// paper's nine-node testbed (the multi-segment scaling sweeps).  Pass as
/// ClusterConfig::hosts explicitly; the default host table stays the eagle
/// mix and its nine-machine bound.
inline std::vector<HostSpec> make_uniform_hosts(int n) {
  return std::vector<HostSpec>(static_cast<std::size_t>(n),
                               HostSpec{500.0, "uniform-p3-500"});
}

/// Tunable software-overhead model (per host, before CPU scaling).
///
/// Why three tiers: the paper's multicast layer bypasses every MPICH layer
/// (Fig. 1), so its scouts/ACKs/releases are bare sendto/recvfrom calls
/// (~40 µs), while the MPICH baseline pays TCP + ADI + request machinery
/// per message (~100 µs).  The multicast *data* delivery pays a heavier
/// per-message cost (~200 µs: kernel multicast handling plus the new
/// layer's buffer management).  This asymmetry is forced by the paper's own
/// data — Fig. 7 (4-proc broadcast, 0 bytes: multicast ≈ 600 µs LOSES to
/// MPICH ≈ 450 µs) and Fig. 13 (4-proc barrier: multicast ≈ 250 µs WINS
/// against MPICH ≈ 400 µs) describe nearly identical message structures, so
/// no single per-message cost can produce both; the barrier's release is a
/// bare zero-data multicast while the broadcast's data path is not.
struct CostParams {
  SimTime mpi_send_base = microseconds_f(100.0);   // MPICH p2p path
  SimTime mpi_recv_base = microseconds_f(100.0);
  SimTime raw_send_base = microseconds_f(40.0);    // bare UDP control path
  SimTime raw_recv_base = microseconds_f(40.0);
  SimTime mcast_data_send_base = microseconds_f(200.0);  // mcast data path
  SimTime mcast_data_recv_base = microseconds_f(200.0);
  double per_byte_ns = 10.0;   // copies/checksums, each direction
  double jitter_frac = 0.10;   // ±10% uniform (OS scheduling noise)
  double reference_mhz = 500.0;
};

/// Calibrated per-host cost model (implements mpi::SoftwareCosts).
class CalibratedCosts final : public mpi::SoftwareCosts {
 public:
  CalibratedCosts(const CostParams& params, double cpu_mhz, Rng rng)
      : params_(params),
        scale_(params.reference_mhz / cpu_mhz),
        rng_(rng) {}

  SimTime send_overhead(std::int64_t bytes, mpi::CostTier tier) override {
    return jittered(send_base(tier), bytes);
  }
  SimTime recv_overhead(std::int64_t bytes, mpi::CostTier tier) override {
    return jittered(recv_base(tier), bytes);
  }

 private:
  SimTime send_base(mpi::CostTier tier) const {
    switch (tier) {
      case mpi::CostTier::kMpi:
        return params_.mpi_send_base;
      case mpi::CostTier::kRaw:
        return params_.raw_send_base;
      case mpi::CostTier::kMcastData:
        return params_.mcast_data_send_base;
    }
    return params_.mpi_send_base;
  }
  SimTime recv_base(mpi::CostTier tier) const {
    switch (tier) {
      case mpi::CostTier::kMpi:
        return params_.mpi_recv_base;
      case mpi::CostTier::kRaw:
        return params_.raw_recv_base;
      case mpi::CostTier::kMcastData:
        return params_.mcast_data_recv_base;
    }
    return params_.mpi_recv_base;
  }

  SimTime jittered(SimTime base, std::int64_t bytes) {
    const double raw =
        (static_cast<double>(base.count()) +
         params_.per_byte_ns * static_cast<double>(bytes)) *
        scale_;
    const double jitter =
        rng_.uniform(1.0 - params_.jitter_frac, 1.0 + params_.jitter_frac);
    return SimTime{static_cast<std::int64_t>(raw * jitter)};
  }

  CostParams params_;
  double scale_;
  Rng rng_;
};

}  // namespace mcmpi::cluster
