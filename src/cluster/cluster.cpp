#include "cluster/cluster.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "coll/hier.hpp"
#include "coll/nack_mcast.hpp"
#include "coll/tuning.hpp"
#include "common/assert.hpp"

namespace mcmpi::cluster {

std::string to_string(NetworkType type) {
  return type == NetworkType::kHub ? "hub" : "switch";
}

NetworkType parse_network(const std::string& name) {
  if (name == "hub") {
    return NetworkType::kHub;
  }
  if (name == "switch") {
    return NetworkType::kSwitch;
  }
  throw std::invalid_argument("unknown network type: " + name);
}

unsigned default_sim_shards() {
  static const unsigned cached = [] {
    const char* env = std::getenv("MCMPI_SIM_SHARDS");
    if (env != nullptr && *env != '\0') {
      const long value = std::strtol(env, nullptr, 10);
      if (value >= 1 && value <= 0xFFFF) {
        return static_cast<unsigned>(value);
      }
    }
    return 1u;
  }();
  return cached;
}

int Cluster::segment_of_rank(int rank) const {
  MC_EXPECTS(rank >= 0 && rank < config_.num_procs);
  // Contiguous blocks, first segments one host larger on uneven splits.
  const auto r = static_cast<std::int64_t>(rank);
  return static_cast<int>(r * config_.num_segments / config_.num_procs);
}

unsigned Cluster::shard_of_segment(int segment) const {
  MC_EXPECTS(segment >= 0 && segment < config_.num_segments);
  // Identity: one logical shard per segment (workers multiplex them), so
  // scheduler counters and timings are a pure function of the topology.
  return static_cast<unsigned>(segment);
}

SimTime Cluster::trunk_latency(int seg_a, int seg_b) const {
  MC_EXPECTS(seg_a != seg_b);
  MC_EXPECTS(seg_a >= 0 && seg_a < config_.num_segments);
  MC_EXPECTS(seg_b >= 0 && seg_b < config_.num_segments);
  if (config_.trunk_latency_of) {
    // Latency is symmetric; query with the canonical (low, high) order so
    // asymmetric user callbacks cannot desynchronize the two directions.
    const SimTime t = config_.trunk_latency_of(std::min(seg_a, seg_b),
                                               std::max(seg_a, seg_b));
    if (t > kTimeZero) {
      return t;
    }
  }
  return config_.trunk_latency;
}

net::NetCounters Cluster::net_counters() const {
  net::NetCounters total;
  for (const auto& network : networks_) {
    total += network->counters();
  }
  return total;
}

void Cluster::reset_net_counters() {
  for (const auto& network : networks_) {
    network->reset_counters();
  }
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  MC_EXPECTS_MSG(config_.num_procs >= 1, "need at least one process");
  MC_EXPECTS_MSG(config_.num_segments >= 1 &&
                     config_.num_segments <= config_.num_procs,
                 "segments must be between 1 and the process count");
  MC_EXPECTS_MSG(config_.sim_shards >= 1, "need at least one shard");
  MC_EXPECTS_MSG(config_.num_segments == 1 ||
                     config_.trunk_latency > kTimeZero,
                 "multi-segment topologies need a positive trunk latency");
  if (config_.hosts.empty()) {
    config_.hosts.assign(kEagleHosts, kEagleHosts + kMaxEagleHosts);
  }
  MC_EXPECTS_MSG(
      config_.num_procs <= static_cast<int>(config_.hosts.size()),
      "more processes than hosts (one process per machine, as in the paper)");
  if (!config_.faults.enabled()) {
    config_.faults = net::fault::FaultConfig::from_env();
  }
  const net::fault::FaultConfig& faults = config_.faults;
  fault_seed_ =
      faults.seed != 0 ? faults.seed : config_.seed ^ 0xFA017ULL;

  // One logical shard per segment; `sim_shards` only sizes the worker pool
  // the parallel driver multiplexes those shards onto.  Per-pair trunk
  // latencies (when configured) become the simulator's lookahead matrix so
  // one slow trunk does not throttle unrelated shard pairs.
  const auto num_shards = static_cast<unsigned>(config_.num_segments);
  sim::ShardingConfig sharding{num_shards, config_.trunk_latency,
                               config_.shard_driver, config_.payload_pool};
  sharding.workers = std::min(config_.sim_shards, num_shards);
  if (config_.num_segments > 1 && config_.trunk_latency_of) {
    sharding.lookahead_matrix.assign(
        static_cast<std::size_t>(num_shards) * num_shards, kTimeZero);
    for (int a = 0; a < config_.num_segments; ++a) {
      for (int b = a + 1; b < config_.num_segments; ++b) {
        const SimTime t = trunk_latency(a, b);
        const auto ab = static_cast<std::size_t>(a) * num_shards +
                        static_cast<std::size_t>(b);
        const auto ba = static_cast<std::size_t>(b) * num_shards +
                        static_cast<std::size_t>(a);
        sharding.lookahead_matrix[ab] = t;
        sharding.lookahead_matrix[ba] = t;
      }
    }
  }
  sim_ = std::make_unique<sim::Simulator>(config_.seed, config_.sim_backend,
                                          std::move(sharding));

  // One network per segment.  Multi-segment hubs get private per-device
  // backoff streams keyed by (seed, segment): with several collision
  // domains live, drawing from the executing shard's RNG would make
  // timings a function of the shard layout.  Single-segment hubs keep the
  // legacy shard-0 stream the committed baselines pin.
  for (int s = 0; s < config_.num_segments; ++s) {
    if (config_.network == NetworkType::kHub) {
      auto hub = std::make_unique<net::Hub>(*sim_, config_.hub);
      if (config_.num_segments > 1) {
        hub->seed_backoff_stream(config_.seed, static_cast<std::uint64_t>(s));
      }
      networks_.push_back(std::move(hub));
    } else {
      networks_.push_back(
          std::make_unique<net::Switch>(*sim_, config_.switch_params));
    }
  }

  Rng host_seeds(config_.seed ^ 0xC1A55D00DULL);
  std::vector<mpi::World::RankResources> resources;
  for (int i = 0; i < config_.num_procs; ++i) {
    const HostSpec& spec = config_.hosts[static_cast<std::size_t>(i)];
    const int segment = segment_of_rank(i);
    auto host = std::make_unique<Host>();
    const inet::IpAddr addr = inet::IpAddr::host(static_cast<std::uint32_t>(i));
    const net::MacAddr mac = net::MacAddr::host(static_cast<std::uint32_t>(i));
    arp_.add(addr, mac);
    mac_segments_.emplace(mac, segment);
    host->nic = std::make_unique<net::Nic>(*sim_, mac,
                                           "eagle" + std::to_string(i + 1));
    host->nic->set_segment(static_cast<std::uint16_t>(segment));
    host->nic->attach_to(network(segment));
    host->ip = std::make_unique<inet::IpStack>(*sim_, *host->nic, addr, arp_);
    host->udp = std::make_unique<inet::UdpStack>(*host->ip);
    host->rdp = std::make_unique<inet::RdpEndpoint>(*host->udp);
    // Per-host speed skew: a deterministic ±skew fraction on the spec'd
    // clock, drawn from (fault seed, host index) so the same seed always
    // yields the same heterogeneous cluster.
    double cpu_mhz = spec.cpu_mhz;
    if (faults.host_speed_skew > 0.0) {
      cpu_mhz *= 1.0 + faults.host_speed_skew *
                           (2.0 * net::fault::hash_unit(
                                      fault_seed_,
                                      0x5EED0000ULL +
                                          static_cast<std::uint64_t>(i)) -
                            1.0);
    }
    host->costs = std::make_unique<CalibratedCosts>(
        config_.costs, cpu_mhz, host_seeds.fork(static_cast<std::uint64_t>(i)));
    resources.push_back(mpi::World::RankResources{
        host->udp.get(), host->rdp.get(), host->costs.get(), addr,
        shard_of_segment(segment), segment});
    hosts_.push_back(std::move(host));
  }

  // Full trunk mesh between segments; the static destination table reads
  // the host map built above (stable for the cluster's lifetime).  O(1)
  // lookup: every promiscuous bridge port consults it once per unicast
  // frame on its segment.
  const auto* mac_segments = &mac_segments_;
  const net::Bridge::SegmentOf segment_of = [mac_segments](net::MacAddr mac) {
    const auto it = mac_segments->find(mac);
    return it != mac_segments->end() ? it->second : -1;
  };
  std::uint32_t bridge_index = 0;
  for (int a = 0; a < config_.num_segments; ++a) {
    for (int b = a + 1; b < config_.num_segments; ++b) {
      const std::string label =
          "trunk" + std::to_string(a) + "-" + std::to_string(b);
      net::Bridge::PortConfig port_a{
          &network(a), static_cast<std::uint16_t>(a), shard_of_segment(a),
          net::MacAddr::host(0xB0000000u + bridge_index * 2),
          label + "/seg" + std::to_string(a)};
      net::Bridge::PortConfig port_b{
          &network(b), static_cast<std::uint16_t>(b), shard_of_segment(b),
          net::MacAddr::host(0xB0000001u + bridge_index * 2),
          label + "/seg" + std::to_string(b)};
      bridges_.push_back(std::make_unique<net::Bridge>(
          *sim_, port_a, port_b, trunk_latency(a, b), segment_of));
      ++bridge_index;
    }
  }

  // Attach the fault plane to every delivery edge.  The plane is shared
  // and immutable; each network / bridge port grows its own per-link model
  // bank on its own shard.
  if (faults.link.active() || faults.trunk.active()) {
    fault_plane_ = std::make_unique<net::fault::FaultPlane>(
        net::fault::FaultPlane{faults.link, faults.trunk, fault_seed_});
    for (auto& network : networks_) {
      network->set_fault_plane(fault_plane_.get());
    }
    for (auto& bridge : bridges_) {
      bridge->set_fault_plane(fault_plane_.get());
    }
  }

  world_ = std::make_unique<mpi::World>(*sim_, resources);
  // nack-mcast history bound: explicit config beats MCMPI_NACK_HISTORY
  // beats the protocol default (64), mirroring the coll_tuning precedence.
  std::size_t nack_history = config_.nack_history_frames;
  if (nack_history == 0) {
    if (const char* env = std::getenv("MCMPI_NACK_HISTORY");
        env != nullptr && *env != '\0') {
      const long value = std::strtol(env, nullptr, 10);
      if (value < 1) {
        throw std::invalid_argument(
            "MCMPI_NACK_HISTORY must be a positive frame count, got '" +
            std::string(env) + "'");
      }
      nack_history = static_cast<std::size_t>(value);
    } else {
      nack_history = coll::NackMcastParams{}.history_frames;
    }
  }
  for (int i = 0; i < config_.num_procs; ++i) {
    world_->proc(i).engine().set_eager_threshold(config_.eager_threshold);
    world_->proc(i).set_mcast_recv_buffer(config_.mcast_rcvbuf_bytes);
    world_->proc(i).set_network_lossy(faults.lossy());
    world_->proc(i).set_nack_history_frames(nack_history);
  }
  if (!config_.coll_tuning.empty()) {
    world_->set_coll_tuning(coll::TuningTable::parse(config_.coll_tuning));
  }
  if (config_.num_segments > 1) {
    // Snooping-bridge multicast scoping: when a derived communicator's
    // members all live on one segment, tell every trunk bridge to stop
    // flooding its multicast group off that segment.  The marks land via a
    // simulator event on the owning segment's shard — bridge port state is
    // shard-private — delayed by the SLOWEST trunk so the hop satisfies the
    // cross-shard lookahead bound from whichever shard the creating rank
    // runs on (any direct trunk is at least the closure lookahead).  Until
    // the event lands the group floods exactly as before: slower, never
    // incorrect, and deterministic either way.
    SimTime max_trunk = kTimeZero;
    for (int a = 0; a < config_.num_segments; ++a) {
      for (int b = a + 1; b < config_.num_segments; ++b) {
        max_trunk = std::max(max_trunk, trunk_latency(a, b));
      }
    }
    world_->set_group_scope_hook(
        [this, max_trunk](const mpi::CommInfo& info, int segment) {
          const net::MacAddr group =
              net::MacAddr::ip_multicast(info.mcast_addr().bits());
          const auto seg = static_cast<std::uint16_t>(segment);
          sim_->schedule_cross(shard_of_segment(segment),
                               sim_->now() + max_trunk, [this, group, seg] {
                                 for (auto& bridge : bridges_) {
                                   bridge->scope_group(group, seg);
                                 }
                               });
        });
  }
  if (config_.num_segments > 1) {
    // Topology knob for the hierarchical algorithms' analytic cost hints:
    // one trunk crossing in units of intra-segment frame times (~125 us
    // per full frame at 100 Mb/s).  Advisory only — never semantics.
    const double trunk_us =
        static_cast<double>(config_.trunk_latency.count()) / 1000.0;
    coll::set_hier_cost_hint(config_.num_segments,
                             std::max(1.0, trunk_us / 125.0));
  }

  // Background cross-traffic flows: pure wire load, paced by a forked
  // deterministic RNG, aimed at a port nobody listens on (the receiver's
  // no_socket_drops counts them).  Bounded frame counts keep every run
  // terminating.
  for (int flow = 0; flow < faults.cross_flows; ++flow) {
    const int src = flow % config_.num_procs;
    const int dst = (src + 1 + flow / config_.num_procs) % config_.num_procs;
    if (dst == src) {
      continue;  // single-process cluster: nothing to cross
    }
    auto socket = hosts_[static_cast<std::size_t>(src)]->udp->open(0);
    inet::UdpSocket* sock = socket.get();
    cross_sockets_.push_back(std::move(socket));
    const auto dst_addr = inet::IpAddr::host(static_cast<std::uint32_t>(dst));
    const auto dst_port =
        static_cast<std::uint16_t>(40000 + (flow & 0x3FF));
    Rng rng(fault_seed_ ^ (0xCF000000ULL + static_cast<std::uint64_t>(flow)));
    const int frames = faults.cross_frames;
    const std::size_t bytes = faults.cross_bytes;
    const SimTime interval = faults.cross_interval;
    sim_->spawn_on(
        shard_of_segment(segment_of_rank(src)),
        "xflow" + std::to_string(flow),
        [sock, dst_addr, dst_port, rng, frames, bytes,
         interval](sim::SimProcess& self) mutable {
          const Buffer payload(bytes, std::uint8_t{0xCF});
          for (int k = 0; k < frames; ++k) {
            const double jitter = rng.uniform(0.5, 1.5);
            self.delay(SimTime{static_cast<std::int64_t>(
                static_cast<double>(interval.count()) * jitter)});
            sock->sendto(dst_addr, dst_port, payload);
          }
        });
  }
}

}  // namespace mcmpi::cluster
