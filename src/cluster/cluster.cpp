#include "cluster/cluster.hpp"

#include <stdexcept>

#include "coll/tuning.hpp"
#include "common/assert.hpp"

namespace mcmpi::cluster {

std::string to_string(NetworkType type) {
  return type == NetworkType::kHub ? "hub" : "switch";
}

NetworkType parse_network(const std::string& name) {
  if (name == "hub") {
    return NetworkType::kHub;
  }
  if (name == "switch") {
    return NetworkType::kSwitch;
  }
  throw std::invalid_argument("unknown network type: " + name);
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  MC_EXPECTS_MSG(config_.num_procs >= 1, "need at least one process");
  if (config_.hosts.empty()) {
    config_.hosts.assign(kEagleHosts, kEagleHosts + kMaxEagleHosts);
  }
  MC_EXPECTS_MSG(
      config_.num_procs <= static_cast<int>(config_.hosts.size()),
      "more processes than hosts (one process per machine, as in the paper)");

  sim_ = std::make_unique<sim::Simulator>(config_.seed, config_.sim_backend);

  if (config_.network == NetworkType::kHub) {
    network_ = std::make_unique<net::Hub>(*sim_, config_.hub);
  } else {
    network_ = std::make_unique<net::Switch>(*sim_, config_.switch_params);
  }

  Rng host_seeds(config_.seed ^ 0xC1A55D00DULL);
  std::vector<mpi::World::RankResources> resources;
  for (int i = 0; i < config_.num_procs; ++i) {
    const HostSpec& spec = config_.hosts[static_cast<std::size_t>(i)];
    auto host = std::make_unique<Host>();
    const inet::IpAddr addr = inet::IpAddr::host(static_cast<std::uint32_t>(i));
    const net::MacAddr mac = net::MacAddr::host(static_cast<std::uint32_t>(i));
    arp_.add(addr, mac);
    host->nic = std::make_unique<net::Nic>(*sim_, mac,
                                           "eagle" + std::to_string(i + 1));
    host->nic->attach_to(*network_);
    host->ip = std::make_unique<inet::IpStack>(*sim_, *host->nic, addr, arp_);
    host->udp = std::make_unique<inet::UdpStack>(*host->ip);
    host->rdp = std::make_unique<inet::RdpEndpoint>(*host->udp);
    host->costs = std::make_unique<CalibratedCosts>(
        config_.costs, spec.cpu_mhz, host_seeds.fork(static_cast<std::uint64_t>(i)));
    resources.push_back(mpi::World::RankResources{
        host->udp.get(), host->rdp.get(), host->costs.get(), addr});
    hosts_.push_back(std::move(host));
  }

  world_ = std::make_unique<mpi::World>(*sim_, resources);
  for (int i = 0; i < config_.num_procs; ++i) {
    world_->proc(i).engine().set_eager_threshold(config_.eager_threshold);
    world_->proc(i).set_mcast_recv_buffer(config_.mcast_rcvbuf_bytes);
  }
  if (!config_.coll_tuning.empty()) {
    world_->set_coll_tuning(coll::TuningTable::parse(config_.coll_tuning));
  }
}

}  // namespace mcmpi::cluster
