#include "cluster/cluster.hpp"

#include <cstdlib>
#include <stdexcept>

#include "coll/tuning.hpp"
#include "common/assert.hpp"

namespace mcmpi::cluster {

std::string to_string(NetworkType type) {
  return type == NetworkType::kHub ? "hub" : "switch";
}

NetworkType parse_network(const std::string& name) {
  if (name == "hub") {
    return NetworkType::kHub;
  }
  if (name == "switch") {
    return NetworkType::kSwitch;
  }
  throw std::invalid_argument("unknown network type: " + name);
}

unsigned default_sim_shards() {
  static const unsigned cached = [] {
    const char* env = std::getenv("MCMPI_SIM_SHARDS");
    if (env != nullptr && *env != '\0') {
      const long value = std::strtol(env, nullptr, 10);
      if (value >= 1 && value <= 0xFFFF) {
        return static_cast<unsigned>(value);
      }
    }
    return 1u;
  }();
  return cached;
}

int Cluster::segment_of_rank(int rank) const {
  MC_EXPECTS(rank >= 0 && rank < config_.num_procs);
  // Contiguous blocks, first segments one host larger on uneven splits.
  const auto r = static_cast<std::int64_t>(rank);
  return static_cast<int>(r * config_.num_segments / config_.num_procs);
}

unsigned Cluster::shard_of_segment(int segment) const {
  MC_EXPECTS(segment >= 0 && segment < config_.num_segments);
  return static_cast<unsigned>(segment) % config_.sim_shards;
}

net::NetCounters Cluster::net_counters() const {
  net::NetCounters total;
  for (const auto& network : networks_) {
    total += network->counters();
  }
  return total;
}

void Cluster::reset_net_counters() {
  for (const auto& network : networks_) {
    network->reset_counters();
  }
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  MC_EXPECTS_MSG(config_.num_procs >= 1, "need at least one process");
  MC_EXPECTS_MSG(config_.num_segments >= 1 &&
                     config_.num_segments <= config_.num_procs,
                 "segments must be between 1 and the process count");
  MC_EXPECTS_MSG(config_.sim_shards >= 1, "need at least one shard");
  MC_EXPECTS_MSG(config_.num_segments == 1 ||
                     config_.trunk_latency > kTimeZero,
                 "multi-segment topologies need a positive trunk latency");
  if (config_.hosts.empty()) {
    config_.hosts.assign(kEagleHosts, kEagleHosts + kMaxEagleHosts);
  }
  MC_EXPECTS_MSG(
      config_.num_procs <= static_cast<int>(config_.hosts.size()),
      "more processes than hosts (one process per machine, as in the paper)");
  if (!config_.faults.enabled()) {
    config_.faults = net::fault::FaultConfig::from_env();
  }
  const net::fault::FaultConfig& faults = config_.faults;
  fault_seed_ =
      faults.seed != 0 ? faults.seed : config_.seed ^ 0xFA017ULL;

  sim_ = std::make_unique<sim::Simulator>(
      config_.seed, config_.sim_backend,
      sim::ShardingConfig{config_.sim_shards, config_.trunk_latency,
                          config_.shard_driver, config_.payload_pool});

  // One network per segment.
  for (int s = 0; s < config_.num_segments; ++s) {
    if (config_.network == NetworkType::kHub) {
      networks_.push_back(std::make_unique<net::Hub>(*sim_, config_.hub));
    } else {
      networks_.push_back(
          std::make_unique<net::Switch>(*sim_, config_.switch_params));
    }
  }

  Rng host_seeds(config_.seed ^ 0xC1A55D00DULL);
  std::vector<mpi::World::RankResources> resources;
  for (int i = 0; i < config_.num_procs; ++i) {
    const HostSpec& spec = config_.hosts[static_cast<std::size_t>(i)];
    const int segment = segment_of_rank(i);
    auto host = std::make_unique<Host>();
    const inet::IpAddr addr = inet::IpAddr::host(static_cast<std::uint32_t>(i));
    const net::MacAddr mac = net::MacAddr::host(static_cast<std::uint32_t>(i));
    arp_.add(addr, mac);
    mac_segments_.emplace(mac, segment);
    host->nic = std::make_unique<net::Nic>(*sim_, mac,
                                           "eagle" + std::to_string(i + 1));
    host->nic->set_segment(static_cast<std::uint16_t>(segment));
    host->nic->attach_to(network(segment));
    host->ip = std::make_unique<inet::IpStack>(*sim_, *host->nic, addr, arp_);
    host->udp = std::make_unique<inet::UdpStack>(*host->ip);
    host->rdp = std::make_unique<inet::RdpEndpoint>(*host->udp);
    // Per-host speed skew: a deterministic ±skew fraction on the spec'd
    // clock, drawn from (fault seed, host index) so the same seed always
    // yields the same heterogeneous cluster.
    double cpu_mhz = spec.cpu_mhz;
    if (faults.host_speed_skew > 0.0) {
      cpu_mhz *= 1.0 + faults.host_speed_skew *
                           (2.0 * net::fault::hash_unit(
                                      fault_seed_,
                                      0x5EED0000ULL +
                                          static_cast<std::uint64_t>(i)) -
                            1.0);
    }
    host->costs = std::make_unique<CalibratedCosts>(
        config_.costs, cpu_mhz, host_seeds.fork(static_cast<std::uint64_t>(i)));
    resources.push_back(mpi::World::RankResources{
        host->udp.get(), host->rdp.get(), host->costs.get(), addr,
        shard_of_segment(segment)});
    hosts_.push_back(std::move(host));
  }

  // Full trunk mesh between segments; the static destination table reads
  // the host map built above (stable for the cluster's lifetime).  O(1)
  // lookup: every promiscuous bridge port consults it once per unicast
  // frame on its segment.
  const auto* mac_segments = &mac_segments_;
  const net::Bridge::SegmentOf segment_of = [mac_segments](net::MacAddr mac) {
    const auto it = mac_segments->find(mac);
    return it != mac_segments->end() ? it->second : -1;
  };
  std::uint32_t bridge_index = 0;
  for (int a = 0; a < config_.num_segments; ++a) {
    for (int b = a + 1; b < config_.num_segments; ++b) {
      const std::string label =
          "trunk" + std::to_string(a) + "-" + std::to_string(b);
      net::Bridge::PortConfig port_a{
          &network(a), static_cast<std::uint16_t>(a), shard_of_segment(a),
          net::MacAddr::host(0xB0000000u + bridge_index * 2),
          label + "/seg" + std::to_string(a)};
      net::Bridge::PortConfig port_b{
          &network(b), static_cast<std::uint16_t>(b), shard_of_segment(b),
          net::MacAddr::host(0xB0000001u + bridge_index * 2),
          label + "/seg" + std::to_string(b)};
      bridges_.push_back(std::make_unique<net::Bridge>(
          *sim_, port_a, port_b, config_.trunk_latency, segment_of));
      ++bridge_index;
    }
  }

  // Attach the fault plane to every delivery edge.  The plane is shared
  // and immutable; each network / bridge port grows its own per-link model
  // bank on its own shard.
  if (faults.link.active() || faults.trunk.active()) {
    fault_plane_ = std::make_unique<net::fault::FaultPlane>(
        net::fault::FaultPlane{faults.link, faults.trunk, fault_seed_});
    for (auto& network : networks_) {
      network->set_fault_plane(fault_plane_.get());
    }
    for (auto& bridge : bridges_) {
      bridge->set_fault_plane(fault_plane_.get());
    }
  }

  world_ = std::make_unique<mpi::World>(*sim_, resources);
  for (int i = 0; i < config_.num_procs; ++i) {
    world_->proc(i).engine().set_eager_threshold(config_.eager_threshold);
    world_->proc(i).set_mcast_recv_buffer(config_.mcast_rcvbuf_bytes);
    world_->proc(i).set_network_lossy(faults.lossy());
  }
  if (!config_.coll_tuning.empty()) {
    world_->set_coll_tuning(coll::TuningTable::parse(config_.coll_tuning));
  }

  // Background cross-traffic flows: pure wire load, paced by a forked
  // deterministic RNG, aimed at a port nobody listens on (the receiver's
  // no_socket_drops counts them).  Bounded frame counts keep every run
  // terminating.
  for (int flow = 0; flow < faults.cross_flows; ++flow) {
    const int src = flow % config_.num_procs;
    const int dst = (src + 1 + flow / config_.num_procs) % config_.num_procs;
    if (dst == src) {
      continue;  // single-process cluster: nothing to cross
    }
    auto socket = hosts_[static_cast<std::size_t>(src)]->udp->open(0);
    inet::UdpSocket* sock = socket.get();
    cross_sockets_.push_back(std::move(socket));
    const auto dst_addr = inet::IpAddr::host(static_cast<std::uint32_t>(dst));
    const auto dst_port =
        static_cast<std::uint16_t>(40000 + (flow & 0x3FF));
    Rng rng(fault_seed_ ^ (0xCF000000ULL + static_cast<std::uint64_t>(flow)));
    const int frames = faults.cross_frames;
    const std::size_t bytes = faults.cross_bytes;
    const SimTime interval = faults.cross_interval;
    sim_->spawn_on(
        shard_of_segment(segment_of_rank(src)),
        "xflow" + std::to_string(flow),
        [sock, dst_addr, dst_port, rng, frames, bytes,
         interval](sim::SimProcess& self) mutable {
          const Buffer payload(bytes, std::uint8_t{0xCF});
          for (int k = 0; k < frames; ++k) {
            const double jitter = rng.uniform(0.5, 1.5);
            self.delay(SimTime{static_cast<std::int64_t>(
                static_cast<double>(interval.count()) * jitter)});
            sock->sendto(dst_addr, dst_port, payload);
          }
        });
  }
}

}  // namespace mcmpi::cluster
