#pragma once
/// \file cluster.hpp
/// One-call construction of a simulated testbed: N hosts on a hub or a
/// switch, full protocol stacks, and an MPI world on top.

#include <memory>
#include <string>
#include <vector>

#include "cluster/calibration.hpp"
#include "inet/rdp.hpp"
#include "inet/udp.hpp"
#include "mpi/world.hpp"
#include "net/hub.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::cluster {

enum class NetworkType { kHub, kSwitch };

std::string to_string(NetworkType type);
NetworkType parse_network(const std::string& name);

struct ClusterConfig {
  int num_procs = 4;
  NetworkType network = NetworkType::kHub;
  std::uint64_t seed = 1;
  /// Process model for the simulator: fibers by default, threads as the
  /// fallback/oracle (both produce bit-identical runs; see
  /// docs/ARCHITECTURE.md).  Honors MCMPI_SIM_BACKEND unless overridden.
  sim::ExecutionBackend sim_backend = sim::default_execution_backend();
  CostParams costs;
  net::Hub::Params hub;
  net::Switch::Params switch_params;
  std::int64_t eager_threshold = 64 * 1024;
  /// Multicast-channel receive buffer per rank (SO_RCVBUF analogue).
  std::size_t mcast_rcvbuf_bytes = 256 * 1024;
  /// Collective auto-selection rules (coll/tuning.hpp rule syntax).  Empty
  /// defers to MCMPI_COLL_TUNING, then to the paper-crossover defaults.
  std::string coll_tuning;
  /// Host table; defaults to the paper's eagle cluster mix.
  std::vector<HostSpec> hosts;
};

/// A complete simulated cluster.  Builds (bottom-up): simulator, network,
/// per-host NIC + IP + UDP + RDP + cost model, then the MPI world.
///
/// Member declaration order is load-bearing: the simulator is declared
/// last so it is destroyed FIRST — tearing it down unwinds any still-parked
/// rank processes while the sockets and stacks their stacks reference are
/// still alive.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  sim::Simulator& simulator() { return *sim_; }
  net::Network& network() { return *network_; }
  mpi::World& world() { return *world_; }
  int num_procs() const { return config_.num_procs; }

  /// Host stack access for tests.
  inet::UdpStack& udp(int rank) { return *hosts_.at(static_cast<std::size_t>(rank))->udp; }
  inet::IpStack& ip(int rank) { return *hosts_.at(static_cast<std::size_t>(rank))->ip; }
  net::Nic& nic(int rank) { return *hosts_.at(static_cast<std::size_t>(rank))->nic; }

 private:
  struct Host {
    std::unique_ptr<net::Nic> nic;
    std::unique_ptr<inet::IpStack> ip;
    std::unique_ptr<inet::UdpStack> udp;
    std::unique_ptr<inet::RdpEndpoint> rdp;
    std::unique_ptr<CalibratedCosts> costs;
  };

  ClusterConfig config_;
  inet::ArpTable arp_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<mpi::World> world_;
  std::unique_ptr<sim::Simulator> sim_;  // destroyed first — see class doc
};

}  // namespace mcmpi::cluster
