#pragma once
/// \file cluster.hpp
/// One-call construction of a simulated testbed: N hosts on one or more
/// hub/switch segments (joined by fixed-latency trunks), full protocol
/// stacks, and an MPI world on top.

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/calibration.hpp"
#include "inet/rdp.hpp"
#include "inet/udp.hpp"
#include "mpi/world.hpp"
#include "net/bridge.hpp"
#include "net/fault.hpp"
#include "net/hub.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::cluster {

enum class NetworkType { kHub, kSwitch };

std::string to_string(NetworkType type);
NetworkType parse_network(const std::string& name);

/// Simulator shard count from MCMPI_SIM_SHARDS (default 1).  Read once.
unsigned default_sim_shards();

struct ClusterConfig {
  int num_procs = 4;
  NetworkType network = NetworkType::kHub;
  std::uint64_t seed = 1;
  /// Process model for the simulator: fibers by default, threads as the
  /// fallback/oracle (both produce bit-identical runs; see
  /// docs/ARCHITECTURE.md).  Honors MCMPI_SIM_BACKEND unless overridden.
  sim::ExecutionBackend sim_backend = sim::default_execution_backend();
  /// Number of network segments (each its own hub or switch, all of
  /// `network` type) joined by a full mesh of trunks.  Hosts are assigned
  /// to segments in contiguous blocks.  1 = the paper's single-segment
  /// testbed.
  int num_segments = 1;
  /// Trunk hop latency between segments (backbone store-and-forward +
  /// propagation).  Doubles as the sharded simulator's conservative
  /// lookahead (per-pair when trunk_latency_of refines it).
  SimTime trunk_latency = microseconds_f(30.0);
  /// Optional per-pair trunk latency: called once per segment pair (a < b)
  /// at construction; returning a non-positive time falls back to
  /// trunk_latency.  Null = uniform trunk_latency.  Feeds both the bridges
  /// and the simulator's per-pair lookahead matrix, so a slow WAN trunk
  /// between two segments no longer throttles every other shard's window.
  std::function<SimTime(int, int)> trunk_latency_of;
  /// Worker threads the sharded simulator multiplexes the segments onto
  /// (the simulator always creates one LOGICAL shard per segment, so
  /// timings and scheduler counters are a pure function of the topology —
  /// never of this count).  Honors MCMPI_SIM_SHARDS unless overridden;
  /// clamped to the segment count.  A single-segment cluster always
  /// behaves exactly like an unsharded one.
  unsigned sim_shards = default_sim_shards();
  /// Thread model executing a multi-shard simulation's rounds.  The serial
  /// driver is the determinism reference; the parallel driver must be (and
  /// is tested to be) bit-identical.  Honors MCMPI_SIM_SHARD_DRIVER.
  sim::ShardDriver shard_driver = sim::default_shard_driver();
  /// Per-shard payload buffer pooling (see sim::ShardingConfig).  Off by
  /// default so committed bench baselines keep their payload_allocs pins;
  /// throughput-mode runs opt in.
  bool payload_pool = false;
  CostParams costs;
  net::Hub::Params hub;
  net::Switch::Params switch_params;
  std::int64_t eager_threshold = 64 * 1024;
  /// Multicast-channel receive buffer per rank (SO_RCVBUF analogue).
  std::size_t mcast_rcvbuf_bytes = 256 * 1024;
  /// Default nack-mcast retransmission-history bound: framed broadcasts a
  /// root retains to serve NACKs (coll/nack_mcast.hpp history_frames).  0
  /// defers to the MCMPI_NACK_HISTORY environment variable, then to the
  /// protocol default (64).  Per-communicator set_nack_mcast_params wins
  /// over either.
  std::size_t nack_history_frames = 0;
  /// Collective auto-selection rules (coll/tuning.hpp rule syntax).  Empty
  /// defers to MCMPI_COLL_TUNING, then to the paper-crossover defaults.
  std::string coll_tuning;
  /// Adversarial-network fault injection (per-link loss/burst/dup/reorder,
  /// per-host speed skew, background cross traffic).  Disabled by default;
  /// a disabled config defers to the MCMPI_FAULTS environment variable.
  /// When loss or reorder is configured, every proc is flagged
  /// network-lossy and kAuto restricts itself to loss-tolerant algorithms.
  net::fault::FaultConfig faults;
  /// Host table; defaults to the paper's eagle cluster mix (nine machines —
  /// pass make_uniform_hosts(n) explicitly for bigger topologies).
  std::vector<HostSpec> hosts;
};

/// A complete simulated cluster.  Builds (bottom-up): simulator (sharded
/// when configured), per-segment network, trunk bridges, per-host NIC + IP
/// + UDP + RDP + cost model, then the MPI world with every rank pinned to
/// its segment's shard.
///
/// Member declaration order is load-bearing: the simulator is declared
/// last so it is destroyed FIRST — tearing it down unwinds any still-parked
/// rank processes while the sockets and stacks their stacks reference are
/// still alive.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  sim::Simulator& simulator() { return *sim_; }
  mpi::World& world() { return *world_; }
  int num_procs() const { return config_.num_procs; }

  int num_segments() const { return config_.num_segments; }
  /// Segment a rank's host sits on (contiguous blocks).
  int segment_of_rank(int rank) const;
  /// Simulator shard owning a segment.  Identity: the cluster always
  /// creates one logical shard per segment and multiplexes them onto
  /// `sim_shards` workers, so the event schedule never depends on the
  /// worker count.
  unsigned shard_of_segment(int segment) const;
  /// Trunk latency between two distinct segments (trunk_latency_of when
  /// set and positive, else the uniform trunk_latency).
  SimTime trunk_latency(int seg_a, int seg_b) const;

  /// Segment 0's network — the whole network of a single-segment cluster.
  net::Network& network() { return *networks_.front(); }
  net::Network& network(int segment) {
    return *networks_.at(static_cast<std::size_t>(segment));
  }
  /// Trunks, in (a, b) pair order over segments (empty when single-segment).
  const std::vector<std::unique_ptr<net::Bridge>>& bridges() const {
    return bridges_;
  }

  /// Frame counters summed over every segment (equals network().counters()
  /// on a single-segment cluster).
  net::NetCounters net_counters() const;
  void reset_net_counters();

  /// The attached fault plane, or nullptr when fault injection is off.
  const net::fault::FaultPlane* fault_plane() const {
    return fault_plane_.get();
  }
  /// The seed the fault models (and speed skew) actually used.
  std::uint64_t fault_seed() const { return fault_seed_; }

  /// Host stack access for tests.
  inet::UdpStack& udp(int rank) { return *hosts_.at(static_cast<std::size_t>(rank))->udp; }
  inet::IpStack& ip(int rank) { return *hosts_.at(static_cast<std::size_t>(rank))->ip; }
  net::Nic& nic(int rank) { return *hosts_.at(static_cast<std::size_t>(rank))->nic; }

 private:
  struct Host {
    std::unique_ptr<net::Nic> nic;
    std::unique_ptr<inet::IpStack> ip;
    std::unique_ptr<inet::UdpStack> udp;
    std::unique_ptr<inet::RdpEndpoint> rdp;
    std::unique_ptr<CalibratedCosts> costs;
  };

  ClusterConfig config_;
  /// Shared by every network and bridge (const pointer); declared right
  /// after the config so it outlives all of them.
  std::unique_ptr<net::fault::FaultPlane> fault_plane_;
  std::uint64_t fault_seed_ = 0;
  inet::ArpTable arp_;
  /// MAC -> segment table the trunk bridges route unicast with; declared
  /// before the bridges that capture it.
  std::unordered_map<net::MacAddr, int> mac_segments_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<net::Network>> networks_;  // one per segment
  std::vector<std::unique_ptr<net::Bridge>> bridges_;
  /// Sender sockets of the background cross-traffic flows; destroyed after
  /// the simulator (which unwinds the flow processes using them).
  std::vector<std::unique_ptr<inet::UdpSocket>> cross_sockets_;
  std::unique_ptr<mpi::World> world_;
  std::unique_ptr<sim::Simulator> sim_;  // destroyed first — see class doc
};

}  // namespace mcmpi::cluster
