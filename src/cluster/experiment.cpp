#include "cluster/experiment.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mcmpi::cluster {

ExperimentResult measure_collective(
    Cluster& cluster, const ExperimentConfig& config,
    const std::function<void(mpi::Proc&, int rep)>& op) {
  MC_EXPECTS(config.reps >= 1);
  const int n = cluster.num_procs();
  const int total_reps = config.warmup_reps + config.reps;

  sim::Simulator& sim = cluster.simulator();
  const SimTime base = sim.now() + config.rep_interval;
  std::vector<SimTime> starts(static_cast<std::size_t>(total_reps));
  for (int r = 0; r < total_reps; ++r) {
    starts[static_cast<std::size_t>(r)] = base + config.rep_interval * r;
  }

  std::vector<std::vector<SimTime>> ends(
      static_cast<std::size_t>(total_reps),
      std::vector<SimTime>(static_cast<std::size_t>(n), kTimeZero));

  // Counter snapshot just before the first measured repetition begins.
  // One event per segment, planted pre-run on the shard that owns it, so a
  // sharded run reads each segment's counters from its own shard (and a
  // single-segment cluster still schedules exactly one event, as before).
  std::vector<net::NetCounters> before(
      static_cast<std::size_t>(cluster.num_segments()));
  const SimTime snapshot_at =
      starts[static_cast<std::size_t>(config.warmup_reps)] - microseconds(1);
  for (int seg = 0; seg < cluster.num_segments(); ++seg) {
    net::NetCounters* slot = &before[static_cast<std::size_t>(seg)];
    sim.schedule_on_shard_at(
        cluster.shard_of_segment(seg), snapshot_at,
        [slot, seg, &cluster] { *slot = cluster.network(seg).counters(); });
  }

  cluster.world().run([&](mpi::Proc& p) {
    for (int r = 0; r < total_reps; ++r) {
      // Loosely synchronized entry: per-rank, per-rep random skew, fused
      // into the start sleep (one wake-up per rank per rep, identical
      // timing: nothing happens between start and start+skew).  The max
      // keeps the always-sleep-the-skew semantics of the unfused two-step
      // form when a slow rep overruns the next start.
      const auto skew_ns = static_cast<std::int64_t>(p.self().rng().below(
          static_cast<std::uint64_t>(config.max_skew.count()) + 1));
      p.self().delay_until(
          std::max(p.self().now(), starts[static_cast<std::size_t>(r)]) +
          SimTime{skew_ns});
      op(p, r);
      ends[static_cast<std::size_t>(r)][static_cast<std::size_t>(p.rank())] =
          p.self().now();
    }
  });

  ExperimentResult result;
  for (int seg = 0; seg < cluster.num_segments(); ++seg) {
    result.net_delta += cluster.network(seg).counters().since(
        before[static_cast<std::size_t>(seg)]);
  }
  for (int r = config.warmup_reps; r < total_reps; ++r) {
    const auto& row = ends[static_cast<std::size_t>(r)];
    const SimTime latest = *std::max_element(row.begin(), row.end());
    result.latencies_us.add(
        to_microseconds(latest - starts[static_cast<std::size_t>(r)]));
  }
  return result;
}

net::NetCounters count_frames(Cluster& cluster,
                              const std::function<void(mpi::Proc&)>& warmup,
                              const std::function<void(mpi::Proc&)>& op) {
  cluster.world().run([&](mpi::Proc& p) { warmup(p); });
  // run() drains every event (delayed transport ACKs included), so the
  // counter delta below contains exactly the measured operation.
  cluster.reset_net_counters();
  cluster.world().run([&](mpi::Proc& p) { op(p); });
  return cluster.net_counters();
}

}  // namespace mcmpi::cluster
