#pragma once
/// \file experiment.hpp
/// The paper's measurement methodology, §4:
///
///   "The performance of the MPI collective operations is measured as the
///    longest completion time of the collective operation among all
///    processes.  For each message size, 20 to 30 different experiments
///    were run.  The graphs show the measured time for all experiments
///    with a line through the median of the times."
///
/// Each repetition starts at a pre-agreed virtual instant; every rank then
/// adds its own random skew (loosely synchronized SPMD processes) before
/// entering the operation.  The repetition's latency is the latest finish
/// time minus the common start.  Results are returned as a full Sample so
/// callers can report median and scatter exactly as the paper plots them.

#include <functional>

#include "cluster/cluster.hpp"
#include "common/stats.hpp"
#include "net/counters.hpp"

namespace mcmpi::cluster {

struct ExperimentConfig {
  int reps = 25;          // the paper ran 20-30 per point
  int warmup_reps = 2;    // excluded: ARP-free but FDB/channel warm-up
  SimTime rep_interval = milliseconds(50);
  SimTime max_skew = microseconds(20);
};

struct ExperimentResult {
  Sample latencies_us;          // one entry per measured repetition
  net::NetCounters net_delta;   // counters over the measured reps only
};

/// Runs `op` (a collective call, e.g. a bcast with fixed algorithm/root)
/// `config.reps` times on all ranks of `cluster` and measures it.
/// `op` receives the rank's Proc and the repetition index.
ExperimentResult measure_collective(
    Cluster& cluster, const ExperimentConfig& config,
    const std::function<void(mpi::Proc&, int rep)>& op);

/// Runs `op` exactly once (no skew, after one warmup) and returns the
/// frame-counter delta — used by the analytic frame-count reproduction.
net::NetCounters count_frames(
    Cluster& cluster, const std::function<void(mpi::Proc&)>& warmup,
    const std::function<void(mpi::Proc&)>& op);

}  // namespace mcmpi::cluster
