#include "cluster/workload.hpp"

#include <algorithm>
#include <cmath>

#include "coll/facade.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace mcmpi::cluster {

std::string to_string(WorkloadOp op) {
  switch (op) {
    case WorkloadOp::kBcast:
      return "bcast";
    case WorkloadOp::kAllreduce:
      return "allreduce";
    case WorkloadOp::kAllgather:
      return "allgather";
    case WorkloadOp::kReduce:
      return "reduce";
    case WorkloadOp::kBarrier:
      return "barrier";
  }
  return "?";
}

namespace {

/// Weighted op mix (percent).  Rooted multicast traffic dominates, matching
/// the paper's emphasis; barriers keep pure-synchronization pressure in.
WorkloadOp pick_op(Rng& rng) {
  const std::uint64_t roll = rng.below(100);
  if (roll < 35) {
    return WorkloadOp::kBcast;
  }
  if (roll < 60) {
    return WorkloadOp::kAllreduce;
  }
  if (roll < 75) {
    return WorkloadOp::kAllgather;
  }
  if (roll < 90) {
    return WorkloadOp::kReduce;
  }
  return WorkloadOp::kBarrier;
}

/// Log-uniform in [min_bytes, max_bytes]: small messages stay frequent
/// while the tail still exercises fragmentation and rendezvous paths.
std::size_t pick_bytes(Rng& rng, const WorkloadConfig& config) {
  MC_EXPECTS(config.min_bytes >= 1 && config.max_bytes >= config.min_bytes);
  const double lo = std::log(static_cast<double>(config.min_bytes));
  const double hi = std::log(static_cast<double>(config.max_bytes));
  const double picked = std::exp(rng.uniform(lo, hi));
  return std::clamp(static_cast<std::size_t>(picked), config.min_bytes,
                    config.max_bytes);
}

/// Every member executes the item on its tenant communicator.  Payload
/// contents are a fixed pattern: the driver measures timing, and identical
/// bytes on every rank make reduction results independent of rank count.
void execute(coll::Coll& coll, const mpi::Comm& comm,
             const WorkloadItem& item, std::size_t index) {
  const auto fill = static_cast<std::uint8_t>(index * 31 + 7);
  switch (item.op) {
    case WorkloadOp::kBcast: {
      Buffer buffer(item.bytes, fill);
      coll.bcast(buffer, item.root);
      return;
    }
    case WorkloadOp::kAllreduce: {
      const Buffer data(item.bytes, fill);
      (void)coll.allreduce(data, mpi::Op::kSum, mpi::Datatype::kByte);
      return;
    }
    case WorkloadOp::kAllgather: {
      // Per-member contribution so the gathered total tracks item.bytes.
      const std::size_t share = std::max<std::size_t>(
          1, item.bytes / static_cast<std::size_t>(comm.size()));
      const Buffer data(share, fill);
      (void)coll.allgather(data);
      return;
    }
    case WorkloadOp::kReduce: {
      const Buffer data(item.bytes, fill);
      (void)coll.reduce(data, mpi::Op::kSum, mpi::Datatype::kByte, item.root);
      return;
    }
    case WorkloadOp::kBarrier:
      coll.barrier();
      return;
  }
  MC_ASSERT_MSG(false, "unknown workload op");
}

}  // namespace

std::vector<WorkloadItem> tenant_schedule(const WorkloadConfig& config,
                                          int tenant, int tenant_size) {
  MC_EXPECTS(tenant >= 0 && tenant_size >= 1);
  MC_EXPECTS(config.collectives_per_tenant >= 1);
  MC_EXPECTS(config.mean_gap > kTimeZero);
  // Stream seed mixes (seed, tenant) through SplitMix64 so neighboring
  // tenants get uncorrelated streams.
  std::uint64_t mix = config.seed;
  (void)splitmix64(mix);
  mix ^= 0x7e4a17u * static_cast<std::uint64_t>(tenant + 1);
  Rng rng(splitmix64(mix));

  std::vector<WorkloadItem> items;
  items.reserve(static_cast<std::size_t>(config.collectives_per_tenant));
  SimTime at = kTimeZero;
  const double mean_ns = static_cast<double>(config.mean_gap.count());
  for (int i = 0; i < config.collectives_per_tenant; ++i) {
    // Exponential inter-arrival gap (Poisson process), floored at 1 ns so
    // arrivals are strictly ordered.
    const double u = rng.uniform();
    const double gap_ns = -mean_ns * std::log1p(-u);
    at += SimTime{std::max<std::int64_t>(1, static_cast<std::int64_t>(gap_ns))};
    WorkloadItem item;
    item.issue_at = at;
    item.op = pick_op(rng);
    item.bytes = pick_bytes(rng, config);
    item.root = static_cast<int>(rng.below(static_cast<std::uint64_t>(
        tenant_size)));
    items.push_back(item);
  }
  return items;
}

WorkloadResult run_workload(Cluster& cluster, const WorkloadConfig& config) {
  const int n = cluster.num_procs();
  MC_EXPECTS_MSG(config.tenants >= 1 && config.tenants <= n,
                 "tenants must fit in the process count");

  const int tenants = config.tenants;
  std::vector<int> tenant_size(static_cast<std::size_t>(tenants), 0);
  for (int r = 0; r < n; ++r) {
    ++tenant_size[static_cast<std::size_t>(r % tenants)];
  }

  std::vector<std::vector<WorkloadItem>> schedules(
      static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    schedules[static_cast<std::size_t>(t)] =
        tenant_schedule(config, t, tenant_size[static_cast<std::size_t>(t)]);
  }

  sim::Simulator& sim = cluster.simulator();
  const SimTime base = sim.now() + config.start_at;

  // ends[tenant][item][member]: each member writes only its own slot during
  // the run; the max over members is taken afterwards.
  std::vector<std::vector<std::vector<SimTime>>> ends(
      static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    ends[static_cast<std::size_t>(t)].assign(
        schedules[static_cast<std::size_t>(t)].size(),
        std::vector<SimTime>(
            static_cast<std::size_t>(tenant_size[static_cast<std::size_t>(t)]),
            kTimeZero));
  }

  cluster.world().run([&](mpi::Proc& p) {
    const int tenant = p.rank() % tenants;
    // Key = world rank: tenant comm ranks ascend in world-rank order, so
    // item.root always lands on the same world rank for a fixed seed.
    mpi::Comm comm = p.split(p.comm_world(), tenant, p.rank());
    coll::Coll coll = comm.coll();
    const auto& items = schedules[static_cast<std::size_t>(tenant)];
    auto& my_ends = ends[static_cast<std::size_t>(tenant)];
    const auto me = static_cast<std::size_t>(comm.rank());
    for (std::size_t i = 0; i < items.size(); ++i) {
      const WorkloadItem& item = items[i];
      // Open-loop arrival: enter at the scheduled instant, or immediately
      // if the tenant's previous collective overran it (the overrun shows
      // up as queueing delay in this item's latency).
      p.self().delay_until(std::max(p.self().now(), base + item.issue_at));
      execute(coll, comm, item, i);
      my_ends[i][me] = p.self().now();
    }
  });

  WorkloadResult result;
  Sample sample;
  SimTime last_end = base;
  for (int t = 0; t < tenants; ++t) {
    const auto& items = schedules[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < items.size(); ++i) {
      const auto& row = ends[static_cast<std::size_t>(t)][i];
      const SimTime end = *std::max_element(row.begin(), row.end());
      last_end = std::max(last_end, end);
      const double latency_us = to_microseconds(end - (base + items[i].issue_at));
      result.latencies_us.push_back(latency_us);
      sample.add(latency_us);
    }
  }
  result.collectives = sample.size();
  result.p50_us = sample.percentile(50.0);
  result.p99_us = sample.percentile(99.0);
  result.makespan_us = to_microseconds(last_end - base);
  if (result.makespan_us > 0.0) {
    result.coll_per_sec =
        static_cast<double>(result.collectives) / (result.makespan_us * 1e-6);
  }
  return result;
}

}  // namespace mcmpi::cluster
