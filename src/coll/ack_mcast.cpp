#include "coll/ack_mcast.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "coll/mcast.hpp"
#include "common/assert.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

namespace {
struct AckState {
  AckMcastParams params;
  AckMcastStats stats;
};

SimTime backed_off(SimTime timeout, const AckMcastParams& params) {
  const auto scaled = static_cast<std::int64_t>(
      static_cast<double>(timeout.count()) * params.backoff);
  return std::min(SimTime{scaled}, params.timeout_cap);
}
}  // namespace

void set_ack_mcast_params(Proc& p, const Comm& comm,
                          const AckMcastParams& params) {
  if (params.retransmit_timeout <= kTimeZero) {
    throw std::invalid_argument("ack-mcast: retransmit_timeout must be > 0");
  }
  if (params.backoff < 1.0) {
    throw std::invalid_argument("ack-mcast: backoff must be >= 1");
  }
  if (params.timeout_cap < params.retransmit_timeout) {
    throw std::invalid_argument(
        "ack-mcast: timeout_cap must be >= retransmit_timeout");
  }
  if (params.max_retries < 0) {
    throw std::invalid_argument("ack-mcast: max_retries must be >= 0");
  }
  p.coll_state<AckState>(comm).params = params;
}

const AckMcastParams& ack_mcast_params(Proc& p, const Comm& comm) {
  return p.coll_state<AckState>(comm).params;
}

void bcast_ack_mcast(Proc& p, const Comm& comm, Buffer& buffer, int root) {
  bcast_ack_mcast(p, comm, buffer, root,
                  p.coll_state<AckState>(comm).params);
}

void bcast_ack_mcast(Proc& p, const Comm& comm, Buffer& buffer, int root,
                     const AckMcastParams& params) {
  MC_EXPECTS(root >= 0 && root < comm.size());
  if (comm.size() == 1) {
    return;
  }
  mpi::McastChannel& ch = p.mcast_channel(comm);
  AckState& state = p.coll_state<AckState>(comm);

  if (comm.rank() != root) {
    // Receive (first transmission or a retransmission — framed receive
    // drops stale duplicates), then acknowledge over the raw path.
    const std::uint64_t seq = ch.expected_seq();
    buffer = mcast_recv_framed(p, comm, root);
    Buffer ack;
    ByteWriter w(ack);
    w.u64(seq);
    p.send(comm, root, mpi::kTagAckMcast, ack, net::FrameKind::kControl,
           mpi::CostTier::kRaw);
    return;
  }

  // Root: blast first, ask questions later.
  const std::uint64_t seq = ch.expected_seq();
  mcast_send_framed(p, comm, buffer, root, net::FrameKind::kData);

  int pending = comm.size() - 1;
  int retries = 0;
  SimTime timeout = params.retransmit_timeout;
  auto request = p.irecv(comm, mpi::kAnySource, mpi::kTagAckMcast);
  SimTime deadline = p.self().now() + timeout;
  while (pending > 0) {
    const auto ack =
        p.wait_until(request, deadline, nullptr, mpi::CostTier::kRaw);
    if (ack.has_value()) {
      ByteReader r(*ack);
      MC_ASSERT_MSG(r.u64() == seq, "ACK for a different broadcast");
      --pending;
      if (pending > 0) {
        request = p.irecv(comm, mpi::kAnySource, mpi::kTagAckMcast);
      }
      continue;
    }
    // Timeout: somebody was not ready — re-multicast the whole payload.
    if (params.max_retries > 0 && retries >= params.max_retries) {
      std::ostringstream os;
      os << "ack-mcast: root rank " << root << " gave up on seq " << seq
         << " after " << retries << " retransmissions ("
         << pending << " of " << comm.size() - 1
         << " ACKs still outstanding) — loss rate exceeds what the ACK "
            "protocol can absorb; raise max_retries or pick nack-mcast / "
            "mcast-segmented";
      throw std::runtime_error(os.str());
    }
    ++retries;
    ++state.stats.retransmissions;
    ++p.self().shard().counters().retransmits;
    // The channel sequence already advanced, so rebuild the header with the
    // original sequence number and gather-send it with the (unchanged)
    // payload through the socket directly.
    Buffer header;
    header.reserve(16);
    ByteWriter w(header);
    w.u32(comm.context());
    w.i32(comm.world_rank_of(root));
    w.u64(seq);
    p.self().delay(p.costs().send_overhead(
        static_cast<std::int64_t>(buffer.size()), mpi::CostTier::kMcastData));
    ch.send(header, buffer, net::FrameKind::kData);
    timeout = backed_off(timeout, params);
    deadline = p.self().now() + timeout;
  }
}

const AckMcastStats& ack_mcast_stats(Proc& p, const Comm& comm) {
  return p.coll_state<AckState>(comm).stats;
}

}  // namespace mcmpi::coll
