#pragma once
/// \file ack_mcast.hpp
/// Sender-initiated reliable multicast (ORNL PVM style) — the cited
/// negative baseline.
///
/// Paper §2: "In research done at Oak Ridge National Laboratory, parallel
/// collective operations in PVM were implemented over IP multicast.  In
/// that work, reliability was ensured by the sender repeatedly sending the
/// same message until ack's were received from all receivers.  This
/// approach did not produce improvement in performance."
///
/// The root multicasts the payload immediately (no readiness handshake),
/// then blocks until every receiver has acknowledged, re-multicasting the
/// full payload whenever the ACK timer expires.  Receivers that were not
/// ready for the first transmission pick up a retransmission.  The ablation
/// bench (abl_ack_mcast) shows why this loses to scouts: ACK collection is
/// as serial as linear scouts, and any slow receiver costs whole-payload
/// retransmissions instead of a cheap wait.

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

struct AckMcastParams {
  /// How long the root waits for outstanding ACKs before re-multicasting.
  SimTime retransmit_timeout = milliseconds(5);
  /// Timeout multiplier applied after every retransmission (1.0 keeps the
  /// historical fixed timer).  Under sustained loss a fixed timer livelocks:
  /// retransmissions collide with the ACKs they provoked.
  double backoff = 1.0;
  /// Backed-off timeout ceiling.
  SimTime timeout_cap = milliseconds(200);
  /// Give up after this many retransmissions of one broadcast (0 = retry
  /// forever, the historical behavior).  Exceeding the cap throws — the
  /// collective cannot complete and silence would hang every rank.
  int max_retries = 0;
};

struct AckMcastStats {
  std::uint64_t retransmissions = 0;
};

/// Sets the ACK protocol parameters used by the parameterless overload on
/// `comm` (per-communicator, like set_segmented_config).  Throws
/// std::invalid_argument on nonpositive timeout, backoff < 1, or negative
/// retry cap.
void set_ack_mcast_params(mpi::Proc& p, const mpi::Comm& comm,
                          const AckMcastParams& params);
const AckMcastParams& ack_mcast_params(mpi::Proc& p, const mpi::Comm& comm);

/// Broadcast with sender-initiated reliability.  `buffer` is input at root,
/// output elsewhere.  The two-argument form uses the communicator's
/// configured params; the explicit form overrides them for this call.
void bcast_ack_mcast(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                     int root);
void bcast_ack_mcast(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                     int root, const AckMcastParams& params);

/// Cumulative retransmission count on this rank (root-side statistic).
const AckMcastStats& ack_mcast_stats(mpi::Proc& p, const mpi::Comm& comm);

}  // namespace mcmpi::coll
