#pragma once
/// \file ack_mcast.hpp
/// Sender-initiated reliable multicast (ORNL PVM style) — the cited
/// negative baseline.
///
/// Paper §2: "In research done at Oak Ridge National Laboratory, parallel
/// collective operations in PVM were implemented over IP multicast.  In
/// that work, reliability was ensured by the sender repeatedly sending the
/// same message until ack's were received from all receivers.  This
/// approach did not produce improvement in performance."
///
/// The root multicasts the payload immediately (no readiness handshake),
/// then blocks until every receiver has acknowledged, re-multicasting the
/// full payload whenever the ACK timer expires.  Receivers that were not
/// ready for the first transmission pick up a retransmission.  The ablation
/// bench (abl_ack_mcast) shows why this loses to scouts: ACK collection is
/// as serial as linear scouts, and any slow receiver costs whole-payload
/// retransmissions instead of a cheap wait.

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

struct AckMcastParams {
  /// How long the root waits for outstanding ACKs before re-multicasting.
  SimTime retransmit_timeout = milliseconds(5);
};

struct AckMcastStats {
  std::uint64_t retransmissions = 0;
};

/// Broadcast with sender-initiated reliability.  `buffer` is input at root,
/// output elsewhere.
void bcast_ack_mcast(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                     int root, const AckMcastParams& params = {});

/// Cumulative retransmission count on this rank (root-side statistic).
const AckMcastStats& ack_mcast_stats(mpi::Proc& p, const mpi::Comm& comm);

}  // namespace mcmpi::coll
