#include "coll/allreduce.hpp"

#include "coll/mpich.hpp"

namespace mcmpi::coll {

Buffer allreduce(mpi::Proc& p, const mpi::Comm& comm,
                 std::span<const std::uint8_t> data, mpi::Op op,
                 mpi::Datatype type, BcastAlgo bcast_algo) {
  Buffer result = reduce_mpich(p, comm, data, op, type, /*root=*/0);
  if (comm.rank() != 0) {
    result.clear();
  }
  bcast(p, comm, result, /*root=*/0, bcast_algo);
  return result;
}

}  // namespace mcmpi::coll
