#include "coll/allreduce.hpp"

#include "coll/mpich.hpp"
#include "coll/registry.hpp"

namespace mcmpi::coll {

Buffer allreduce(mpi::Proc& p, const mpi::Comm& comm,
                 std::span<const std::uint8_t> data, mpi::Op op,
                 mpi::Datatype type, BcastAlgo bcast_algo) {
  const std::string stage = to_string(bcast_algo);
  // Registry entries exist for the stages the tuning table uses; any other
  // enum value still works by composing reduce + the named broadcast.
  if (const CollAlgorithm* entry =
          Registry::instance().find(CollOp::kAllreduce, stage)) {
    return entry->allreduce(p, comm, data, op, type);
  }
  Buffer result = reduce_mpich(p, comm, data, op, type, /*root=*/0);
  if (comm.rank() != 0) {
    result.clear();
  }
  Registry::instance().get(CollOp::kBcast, stage).bcast(p, comm, result, 0);
  return result;
}

}  // namespace mcmpi::coll
