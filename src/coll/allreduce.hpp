#pragma once
/// \file allreduce.hpp
/// DEPRECATED enum-based allreduce entry point — migration shim.
///
/// Use comm.coll().allreduce(data, op, type[, algo]) instead: the registry
/// carries one allreduce entry per broadcast stage ("mpich",
/// "mcast-binary", "mcast-linear"), and kAuto picks the stage from the
/// tuning table.  This shim survives for ONE PR.

#include "coll/coll.hpp"
#include "mpi/datatype.hpp"

namespace mcmpi::coll {

/// DEPRECATED: use comm.coll().allreduce(...).  Returns the reduced vector
/// on every rank (reduce to rank 0, then the selected broadcast).
Buffer allreduce(mpi::Proc& p, const mpi::Comm& comm,
                 std::span<const std::uint8_t> data, mpi::Op op,
                 mpi::Datatype type,
                 BcastAlgo bcast_algo = BcastAlgo::kMpichBinomial);

}  // namespace mcmpi::coll
