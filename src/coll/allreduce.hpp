#pragma once
/// \file allreduce.hpp
/// Allreduce built the MPICH-1.x way (reduce to rank 0, then broadcast) —
/// with the broadcast stage selectable, so the multicast win compounds into
/// a second collective (an extension the paper's future work anticipates).

#include "coll/coll.hpp"
#include "mpi/datatype.hpp"

namespace mcmpi::coll {

/// Returns the reduced vector on every rank.
Buffer allreduce(mpi::Proc& p, const mpi::Comm& comm,
                 std::span<const std::uint8_t> data, mpi::Op op,
                 mpi::Datatype type,
                 BcastAlgo bcast_algo = BcastAlgo::kMpichBinomial);

}  // namespace mcmpi::coll
