#include "coll/coll.hpp"

#include <stdexcept>

#include "coll/ack_mcast.hpp"
#include "coll/mcast.hpp"
#include "coll/mpich.hpp"
#include "coll/sequencer.hpp"

namespace mcmpi::coll {

std::string to_string(BcastAlgo algo) {
  switch (algo) {
    case BcastAlgo::kMpichBinomial:
      return "mpich";
    case BcastAlgo::kMcastBinary:
      return "mcast-binary";
    case BcastAlgo::kMcastLinear:
      return "mcast-linear";
    case BcastAlgo::kAckMcast:
      return "ack-mcast";
    case BcastAlgo::kSequencer:
      return "sequencer";
  }
  return "?";
}

std::string to_string(BarrierAlgo algo) {
  switch (algo) {
    case BarrierAlgo::kMpich:
      return "mpich";
    case BarrierAlgo::kMcast:
      return "mcast";
  }
  return "?";
}

BcastAlgo parse_bcast_algo(const std::string& name) {
  for (BcastAlgo algo :
       {BcastAlgo::kMpichBinomial, BcastAlgo::kMcastBinary,
        BcastAlgo::kMcastLinear, BcastAlgo::kAckMcast, BcastAlgo::kSequencer}) {
    if (to_string(algo) == name) {
      return algo;
    }
  }
  throw std::invalid_argument("unknown broadcast algorithm: " + name);
}

BarrierAlgo parse_barrier_algo(const std::string& name) {
  for (BarrierAlgo algo : {BarrierAlgo::kMpich, BarrierAlgo::kMcast}) {
    if (to_string(algo) == name) {
      return algo;
    }
  }
  throw std::invalid_argument("unknown barrier algorithm: " + name);
}

void bcast(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer, int root,
           BcastAlgo algo) {
  switch (algo) {
    case BcastAlgo::kMpichBinomial:
      bcast_mpich(p, comm, buffer, root);
      return;
    case BcastAlgo::kMcastBinary:
      bcast_mcast_binary(p, comm, buffer, root);
      return;
    case BcastAlgo::kMcastLinear:
      bcast_mcast_linear(p, comm, buffer, root);
      return;
    case BcastAlgo::kAckMcast:
      bcast_ack_mcast(p, comm, buffer, root);
      return;
    case BcastAlgo::kSequencer:
      bcast_sequencer(p, comm, buffer, root);
      return;
  }
  MC_ASSERT_MSG(false, "unknown broadcast algorithm");
}

void barrier(mpi::Proc& p, const mpi::Comm& comm, BarrierAlgo algo) {
  switch (algo) {
    case BarrierAlgo::kMpich:
      barrier_mpich(p, comm);
      return;
    case BarrierAlgo::kMcast:
      barrier_mcast(p, comm);
      return;
  }
  MC_ASSERT_MSG(false, "unknown barrier algorithm");
}

}  // namespace mcmpi::coll
