#include "coll/coll.hpp"

#include <stdexcept>

#include "coll/registry.hpp"

namespace mcmpi::coll {

std::string to_string(BcastAlgo algo) {
  switch (algo) {
    case BcastAlgo::kMpichBinomial:
      return "mpich";
    case BcastAlgo::kMcastBinary:
      return "mcast-binary";
    case BcastAlgo::kMcastLinear:
      return "mcast-linear";
    case BcastAlgo::kAckMcast:
      return "ack-mcast";
    case BcastAlgo::kSequencer:
      return "sequencer";
  }
  return "?";
}

std::string to_string(BarrierAlgo algo) {
  switch (algo) {
    case BarrierAlgo::kMpich:
      return "mpich";
    case BarrierAlgo::kMcast:
      return "mcast";
  }
  return "?";
}

BcastAlgo parse_bcast_algo(const std::string& name) {
  for (BcastAlgo algo :
       {BcastAlgo::kMpichBinomial, BcastAlgo::kMcastBinary,
        BcastAlgo::kMcastLinear, BcastAlgo::kAckMcast, BcastAlgo::kSequencer}) {
    if (to_string(algo) == name) {
      return algo;
    }
  }
  throw std::invalid_argument("unknown broadcast algorithm: " + name);
}

BarrierAlgo parse_barrier_algo(const std::string& name) {
  for (BarrierAlgo algo : {BarrierAlgo::kMpich, BarrierAlgo::kMcast}) {
    if (to_string(algo) == name) {
      return algo;
    }
  }
  throw std::invalid_argument("unknown barrier algorithm: " + name);
}

void bcast(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer, int root,
           BcastAlgo algo) {
  Registry::instance()
      .get(CollOp::kBcast, to_string(algo))
      .bcast(p, comm, buffer, root);
}

void barrier(mpi::Proc& p, const mpi::Comm& comm, BarrierAlgo algo) {
  Registry::instance()
      .get(CollOp::kBarrier, to_string(algo))
      .barrier(p, comm);
}

}  // namespace mcmpi::coll
