#pragma once
/// \file coll.hpp
/// DEPRECATED enum-based collective entry points — thin shims over the
/// algorithm registry.
///
/// The collective API now lives behind the communicator-scoped facade
/// (coll/facade.hpp): `comm.coll().bcast(buffer, root)` dispatches through
/// the string-keyed registry (coll/registry.hpp) with tuned auto-selection
/// (coll/tuning.hpp) and nonblocking variants.  The free functions and
/// enums below survive for ONE PR as migration shims and will be removed;
/// new code must use the facade.  Enum values map to registry names:
///
///   BcastAlgo::kMpichBinomial -> "mpich"        (Fig. 2 baseline)
///   BcastAlgo::kMcastBinary   -> "mcast-binary" (Fig. 3)
///   BcastAlgo::kMcastLinear   -> "mcast-linear" (Fig. 4)
///   BcastAlgo::kAckMcast      -> "ack-mcast"    (ORNL/PVM negative result)
///   BcastAlgo::kSequencer     -> "sequencer"    (Orca-style related work)
///   BarrierAlgo::kMpich       -> "mpich"        (Fig. 5)
///   BarrierAlgo::kMcast       -> "mcast"        (§3.2)

#include <string>

#include "common/bytes.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

enum class BcastAlgo {
  kMpichBinomial,
  kMcastBinary,
  kMcastLinear,
  kAckMcast,
  kSequencer,
};

enum class BarrierAlgo {
  kMpich,
  kMcast,
};

/// Registry names of the enum values (usable with comm.coll() directly).
std::string to_string(BcastAlgo algo);
std::string to_string(BarrierAlgo algo);
/// Parses the names printed by to_string; throws std::invalid_argument.
BcastAlgo parse_bcast_algo(const std::string& name);
BarrierAlgo parse_barrier_algo(const std::string& name);

/// DEPRECATED: use comm.coll().bcast(buffer, root, to_string(algo)).
void bcast(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer, int root,
           BcastAlgo algo);

/// DEPRECATED: use comm.coll().barrier(to_string(algo)).
void barrier(mpi::Proc& p, const mpi::Comm& comm, BarrierAlgo algo);

}  // namespace mcmpi::coll
