#pragma once
/// \file coll.hpp
/// Collective operations — unified entry points and algorithm selection.
///
/// The paper's comparison is between MPICH's point-to-point collective
/// algorithms and IP-multicast-based replacements.  Every algorithm is
/// available behind one dispatcher so benches and tests can sweep them:
///
///   Broadcast:
///     kMpichBinomial — MPICH's tree over point-to-point (Fig. 2 baseline)
///     kMcastBinary   — binary-tree scout gather, then one multicast (Fig. 3)
///     kMcastLinear   — linear scout gather, then one multicast (Fig. 4)
///     kAckMcast      — ORNL/PVM style: multicast immediately, resend until
///                      every receiver ACKs (the cited negative result)
///     kSequencer     — Orca-style: a sequencer rank orders and multicasts;
///                      receivers NACK gaps (related-work ablation)
///   Barrier:
///     kMpichBarrier  — MPICH's three-phase point-to-point exchange (Fig. 5)
///     kMcastBarrier  — scout reduction + one multicast release (§3.2)

#include <string>

#include "common/bytes.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

enum class BcastAlgo {
  kMpichBinomial,
  kMcastBinary,
  kMcastLinear,
  kAckMcast,
  kSequencer,
};

enum class BarrierAlgo {
  kMpich,
  kMcast,
};

std::string to_string(BcastAlgo algo);
std::string to_string(BarrierAlgo algo);
/// Parses the names printed by to_string; throws std::invalid_argument.
BcastAlgo parse_bcast_algo(const std::string& name);
BarrierAlgo parse_barrier_algo(const std::string& name);

/// Broadcast `buffer` (input at root, output elsewhere) over `comm`.
void bcast(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer, int root,
           BcastAlgo algo);

/// Synchronize all ranks of `comm`.
void barrier(mpi::Proc& p, const mpi::Comm& comm, BarrierAlgo algo);

}  // namespace mcmpi::coll
