#include "coll/facade.hpp"

#include <utility>

#include "common/assert.hpp"
#include "mpi/world.hpp"

namespace mcmpi::coll {

Coll::Coll(mpi::Proc& p, mpi::Comm comm) : p_(p), comm_(std::move(comm)) {
  MC_EXPECTS_MSG(comm_.valid(), "collective on an invalid communicator");
}

std::string Coll::resolve(CollOp op, std::size_t bytes,
                          const std::string& algo) const {
  if (algo == kAuto) {
    return p_.world().coll_tuning().select(op, bytes, comm_.size(), comm_);
  }
  (void)Registry::instance().get(op, algo);  // validate eagerly
  return algo;
}

const CollAlgorithm& Coll::entry(CollOp op, std::size_t bytes,
                                 const std::string& algo) const {
  const CollAlgorithm& a =
      Registry::instance().get(op, resolve(op, bytes, algo));
  MC_EXPECTS_MSG(!a.applicable || a.applicable(comm_, bytes),
                 "algorithm '" + a.name + "' is not applicable here");
  return a;
}

// NOTE on kAuto and broadcast sizes: selection keys on buffer.size(), and
// every rank must resolve to the SAME algorithm — so under kAuto all ranks
// must pass equal-sized buffers (receivers pre-size theirs), mirroring
// MPI's rule that the count argument of MPI_Bcast match on all ranks.
// Explicitly named algorithms have no such requirement.

void Coll::bcast(Buffer& buffer, int root, const std::string& algo) {
  MC_EXPECTS(root >= 0 && root < comm_.size());
  entry(CollOp::kBcast, buffer.size(), algo).bcast(p_, comm_, buffer, root);
}

void Coll::barrier(const std::string& algo) {
  entry(CollOp::kBarrier, 0, algo).barrier(p_, comm_);
}

Buffer Coll::allreduce(std::span<const std::uint8_t> data, mpi::Op op,
                       mpi::Datatype type, const std::string& algo) {
  return entry(CollOp::kAllreduce, data.size(), algo)
      .allreduce(p_, comm_, data, op, type);
}

std::vector<Buffer> Coll::allgather(std::span<const std::uint8_t> data,
                                    const std::string& algo) {
  return entry(CollOp::kAllgather, data.size(), algo)
      .allgather(p_, comm_, data);
}

Buffer Coll::reduce(std::span<const std::uint8_t> data, mpi::Op op,
                    mpi::Datatype type, int root, const std::string& algo) {
  MC_EXPECTS(root >= 0 && root < comm_.size());
  return entry(CollOp::kReduce, data.size(), algo)
      .reduce(p_, comm_, data, op, type, root);
}

std::vector<Buffer> Coll::gather(std::span<const std::uint8_t> data, int root,
                                 const std::string& algo) {
  MC_EXPECTS(root >= 0 && root < comm_.size());
  return entry(CollOp::kGather, data.size(), algo)
      .gather(p_, comm_, data, root);
}

Buffer Coll::scatter(const std::vector<Buffer>& chunks, int root,
                     std::size_t chunk_bytes, const std::string& algo) {
  MC_EXPECTS(root >= 0 && root < comm_.size());
  return entry(CollOp::kScatter, chunk_bytes, algo)
      .scatter(p_, comm_, chunks, root);
}

Buffer Coll::scan(std::span<const std::uint8_t> data, mpi::Op op,
                  mpi::Datatype type, const std::string& algo) {
  return entry(CollOp::kScan, data.size(), algo)
      .scan(p_, comm_, data, op, type);
}

std::vector<Buffer> Coll::alltoall(const std::vector<Buffer>& to_each,
                                   std::size_t block_bytes,
                                   const std::string& algo) {
  return entry(CollOp::kAlltoall, block_bytes, algo)
      .alltoall(p_, comm_, to_each);
}

std::shared_ptr<CollRequest> Coll::spawn_helper(
    const std::string& label, std::function<void(CollRequest&)> body) {
  auto request = std::make_shared<CollRequest>();
  mpi::Proc* proc = &p_;
  // The helper starts at the current virtual instant and runs whenever the
  // rank's main fiber blocks or sleeps — overlap with compute for free.
  p_.self().simulator().spawn(
      "rank" + std::to_string(p_.rank()) + "/" + label,
      [proc, request, body = std::move(body)](sim::SimProcess& helper) {
        const mpi::Proc::HelperScope scope(*proc, helper);
        body(*request);
        request->finish(helper.now());
      });
  return request;
}

std::shared_ptr<CollRequest> Coll::ibcast(Buffer& buffer, int root,
                                          const std::string& algo) {
  MC_EXPECTS(root >= 0 && root < comm_.size());
  // Resolve on the caller's fiber; copy the run function so later registry
  // growth cannot invalidate the reference.
  auto run = entry(CollOp::kBcast, buffer.size(), algo).bcast;
  mpi::Proc* proc = &p_;
  return spawn_helper(
      "ibcast", [run = std::move(run), proc, comm = comm_, buf = &buffer,
                 root](CollRequest&) { run(*proc, comm, *buf, root); });
}

std::shared_ptr<CollRequest> Coll::ibarrier(const std::string& algo) {
  auto run = entry(CollOp::kBarrier, 0, algo).barrier;
  mpi::Proc* proc = &p_;
  return spawn_helper("ibarrier",
                      [run = std::move(run), proc,
                       comm = comm_](CollRequest&) { run(*proc, comm); });
}

std::shared_ptr<CollRequest> Coll::iallreduce(
    std::span<const std::uint8_t> data, mpi::Op op, mpi::Datatype type,
    const std::string& algo) {
  auto run = entry(CollOp::kAllreduce, data.size(), algo).allreduce;
  mpi::Proc* proc = &p_;
  Buffer copy(data.begin(), data.end());
  return spawn_helper(
      "iallreduce", [run = std::move(run), proc, comm = comm_,
                     copy = std::move(copy), op, type](CollRequest& request) {
        request.result() = run(*proc, comm, copy, op, type);
      });
}

std::shared_ptr<CollRequest> Coll::ireduce(std::span<const std::uint8_t> data,
                                           mpi::Op op, mpi::Datatype type,
                                           int root, const std::string& algo) {
  MC_EXPECTS(root >= 0 && root < comm_.size());
  auto run = entry(CollOp::kReduce, data.size(), algo).reduce;
  mpi::Proc* proc = &p_;
  Buffer copy(data.begin(), data.end());
  return spawn_helper("ireduce",
                      [run = std::move(run), proc, comm = comm_,
                       copy = std::move(copy), op, type,
                       root](CollRequest& request) {
                        request.result() = run(*proc, comm, copy, op, type,
                                               root);
                      });
}

std::shared_ptr<CollRequest> Coll::igather(std::span<const std::uint8_t> data,
                                           int root, const std::string& algo) {
  MC_EXPECTS(root >= 0 && root < comm_.size());
  auto run = entry(CollOp::kGather, data.size(), algo).gather;
  mpi::Proc* proc = &p_;
  Buffer copy(data.begin(), data.end());
  return spawn_helper("igather",
                      [run = std::move(run), proc, comm = comm_,
                       copy = std::move(copy), root](CollRequest& request) {
                        request.blocks() = run(*proc, comm, copy, root);
                      });
}

std::shared_ptr<CollRequest> Coll::iscatter(const std::vector<Buffer>& chunks,
                                            int root, std::size_t chunk_bytes,
                                            const std::string& algo) {
  MC_EXPECTS(root >= 0 && root < comm_.size());
  auto run = entry(CollOp::kScatter, chunk_bytes, algo).scatter;
  mpi::Proc* proc = &p_;
  return spawn_helper("iscatter",
                      [run = std::move(run), proc, comm = comm_,
                       chunks = chunks, root](CollRequest& request) {
                        request.result() = run(*proc, comm, chunks, root);
                      });
}

std::shared_ptr<CollRequest> Coll::ialltoall(
    const std::vector<Buffer>& to_each, std::size_t block_bytes,
    const std::string& algo) {
  auto run = entry(CollOp::kAlltoall, block_bytes, algo).alltoall;
  mpi::Proc* proc = &p_;
  return spawn_helper("ialltoall",
                      [run = std::move(run), proc, comm = comm_,
                       to_each = to_each](CollRequest& request) {
                        request.blocks() = run(*proc, comm, to_each);
                      });
}

}  // namespace mcmpi::coll

namespace mcmpi::mpi {

coll::Coll Comm::coll() const {
  MC_EXPECTS_MSG(proc_ != nullptr,
                 "comm.coll() needs a Proc-bound communicator handle "
                 "(comm_world / dup / split)");
  return coll::Coll(*proc_, *this);
}

}  // namespace mcmpi::mpi
