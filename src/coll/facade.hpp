#pragma once
/// \file facade.hpp
/// Coll — the communicator-scoped collective facade.
///
/// The one entry point application code programs against:
///
///     comm.coll().bcast(data, /*root=*/0);            // tuned auto pick
///     comm.coll().bcast(data, 0, "mcast-binary");     // explicit algorithm
///     comm.coll().barrier();
///     auto sum = comm.coll().allreduce(bytes, mpi::Op::kSum,
///                                      mpi::Datatype::kInt64);
///     auto req = comm.coll().ibcast(data, 0);         // nonblocking
///     ...compute...
///     p.wait(req);
///
/// Algorithms are resolved by name through coll::Registry; the default
/// (kAuto) consults the communicator's tuning table (World::coll_tuning —
/// ClusterConfig / MCMPI_COLL_TUNING overridable), which encodes the
/// paper's message-size × group-size crossover points.  The facade carries
/// the full collective surface: bcast / barrier / allreduce / allgather /
/// reduce / gather / scatter / scan, with nonblocking i-variants.  The
/// per-algorithm headers (mcast.hpp, mpich.hpp, ...) remain the
/// implementation layer for primitives and custom protocol knobs.

#include <memory>
#include <string>
#include <vector>

#include "coll/registry.hpp"
#include "coll/request.hpp"
#include "coll/tuning.hpp"

namespace mcmpi::coll {

class Coll {
 public:
  /// Usually obtained as comm.coll(); constructible directly for callers
  /// holding a Proc (e.g. the legacy shims).
  Coll(mpi::Proc& p, mpi::Comm comm);

  // ------------------------------------------------------------ blocking
  /// Broadcast `buffer` (input at root, output elsewhere).
  void bcast(Buffer& buffer, int root, const std::string& algo = kAuto);

  /// Synchronize all ranks.
  void barrier(const std::string& algo = kAuto);

  /// Returns the reduced vector on every rank.  `data` holds elements of
  /// `type`.
  Buffer allreduce(std::span<const std::uint8_t> data, mpi::Op op,
                   mpi::Datatype type, const std::string& algo = kAuto);

  /// Returns comm.size() blocks indexed by comm rank (blocks[r] is rank
  /// r's contribution).  A lossy algorithm (mcast-blast) may leave blocks
  /// it failed to receive empty.
  std::vector<Buffer> allgather(std::span<const std::uint8_t> data,
                                const std::string& algo = kAuto);

  /// Returns the reduced vector at `root` (empty elsewhere).  Operands are
  /// combined in communicator rank order, so non-commutative custom ops
  /// (mpi::Op::kCustom) see MPI's canonical reduction order on every
  /// algorithm.
  Buffer reduce(std::span<const std::uint8_t> data, mpi::Op op,
                mpi::Datatype type, int root, const std::string& algo = kAuto);

  /// Returns comm.size() blocks at `root` (indexed by comm rank), an empty
  /// vector elsewhere.  Under kAuto every rank must pass equal-sized data
  /// (MPI's matching-count rule; the kAuto size rule above).
  std::vector<Buffer> gather(std::span<const std::uint8_t> data, int root,
                             const std::string& algo = kAuto);

  /// Scatters `chunks` (root-only input, comm.size() entries; ignored
  /// elsewhere) and returns this rank's chunk.  `chunk_bytes` is the
  /// per-rank chunk size every rank agrees on — the MPI recvcount analogue
  /// and the size kAuto keys on; explicitly named algorithms may pass 0.
  Buffer scatter(const std::vector<Buffer>& chunks, int root,
                 std::size_t chunk_bytes = 0, const std::string& algo = kAuto);

  /// Inclusive prefix reduction (MPI_Scan): rank r gets op over ranks 0..r.
  Buffer scan(std::span<const std::uint8_t> data, mpi::Op op,
              mpi::Datatype type, const std::string& algo = kAuto);

  /// Personalized all-to-all (MPI_Alltoall): `to_each[i]` goes to comm rank
  /// i (comm.size() entries); returns comm.size() blocks, block r being
  /// what rank r sent to this rank.  `block_bytes` is the per-destination
  /// block size every rank agrees on — the MPI sendcount analogue and the
  /// size kAuto keys on; explicitly named algorithms may pass 0.
  std::vector<Buffer> alltoall(const std::vector<Buffer>& to_each,
                               std::size_t block_bytes = 0,
                               const std::string& algo = kAuto);

  // --------------------------------------------------------- nonblocking
  /// Starts the broadcast on a helper fiber and returns immediately (in
  /// virtual time).  `buffer` must stay alive and untouched until the
  /// returned request completes via Proc::wait.  Until then the caller
  /// must not run conflicting traffic on this communicator (the collective
  /// uses the communicator's context, as MPI's ordering rules assume).
  std::shared_ptr<CollRequest> ibcast(Buffer& buffer, int root,
                                      const std::string& algo = kAuto);

  std::shared_ptr<CollRequest> ibarrier(const std::string& algo = kAuto);

  /// Result delivered in request->result() (and returned by Proc::wait).
  /// `data` is copied at call time, so it need not outlive the call.
  std::shared_ptr<CollRequest> iallreduce(std::span<const std::uint8_t> data,
                                          mpi::Op op, mpi::Datatype type,
                                          const std::string& algo = kAuto);

  /// Root's result in request->result() (empty elsewhere); `data` is
  /// copied at call time.
  std::shared_ptr<CollRequest> ireduce(std::span<const std::uint8_t> data,
                                       mpi::Op op, mpi::Datatype type,
                                       int root,
                                       const std::string& algo = kAuto);

  /// Root's blocks in request->blocks() (empty elsewhere); `data` is
  /// copied at call time.
  std::shared_ptr<CollRequest> igather(std::span<const std::uint8_t> data,
                                       int root,
                                       const std::string& algo = kAuto);

  /// This rank's chunk in request->result(); `chunks` is copied at call
  /// time.
  std::shared_ptr<CollRequest> iscatter(const std::vector<Buffer>& chunks,
                                        int root, std::size_t chunk_bytes = 0,
                                        const std::string& algo = kAuto);

  /// Received blocks in request->blocks(); `to_each` is copied at call
  /// time.
  std::shared_ptr<CollRequest> ialltoall(const std::vector<Buffer>& to_each,
                                         std::size_t block_bytes = 0,
                                         const std::string& algo = kAuto);

  // ----------------------------------------------------------- selection
  /// The algorithm `algo` resolves to for a payload of `bytes` — kAuto goes
  /// through the tuning table, anything else is validated against the
  /// registry and returned as-is.  Exposed so tests and benches can assert
  /// on the tuned pick without running the collective.
  std::string resolve(CollOp op, std::size_t bytes,
                      const std::string& algo = kAuto) const;

 private:
  const CollAlgorithm& entry(CollOp op, std::size_t bytes,
                             const std::string& algo) const;
  std::shared_ptr<CollRequest> spawn_helper(
      const std::string& label,
      std::function<void(CollRequest&)> body);

  mpi::Proc& p_;
  mpi::Comm comm_;
};

}  // namespace mcmpi::coll
