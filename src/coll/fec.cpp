#include "coll/fec.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "coll/gf256.hpp"
#include "coll/limits.hpp"
#include "coll/mcast.hpp"
#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

namespace {

/// FEC sub-header, after the common 16 B (context, root, seq) framing:
///   u32 index   — data: stream chunk index; parity: 0x80000000 | row
///   u32 window  — FEC window index within the operation
///   u32 kw      — data chunks in this window
///   u32 rw      — parity chunks in this window
///   u32 chunk   — nominal full chunk length (geometry is derivable from
///                 any single frame: no setup handshake, adaptive r needs
///                 no agreement round)
///   u64 total   — operation payload bytes
///   u64 op_base — channel sequence of the operation's first frame (frames
///                 self-identify their operation, so a receiver still
///                 draining operation n classifies early frames of n+1
///                 without guessing at sequence ranges)
constexpr std::size_t kFecHeaderBytes = 36;
constexpr std::size_t kFecCombinedHeaderBytes =
    kMcastFrameHeaderBytes + kFecHeaderBytes;
constexpr std::uint32_t kParityBit = 0x80000000u;

struct FecHeader {
  std::uint32_t index = 0;
  std::uint32_t window = 0;
  std::uint32_t kw = 0;
  std::uint32_t rw = 0;
  std::uint32_t chunk = 0;
  std::uint64_t total = 0;
  std::uint64_t op_base = 0;

  bool parity() const { return (index & kParityBit) != 0; }
  int parity_row() const { return static_cast<int>(index & ~kParityBit); }
};

FecHeader parse_fec_header(ByteReader& r) {
  FecHeader h;
  h.index = r.u32();
  h.window = r.u32();
  h.kw = r.u32();
  h.rw = r.u32();
  h.chunk = r.u32();
  h.total = r.u64();
  h.op_base = r.u64();
  return h;
}

struct Stashed {
  FecHeader h;
  PayloadRef body;
};

struct FecState {
  FecConfig config;
  // Root side: NACK-fallback service state.
  bool sink_installed = false;
  std::map<std::uint64_t, PayloadRef> history;
  std::map<std::uint64_t, SimTime> last_resend;
  // Receiver side: frames ahead of the current window / operation.
  std::map<std::uint64_t, Stashed> stash;
  FecStats stats;
  // Adaptive ratchet (root side).
  bool primed = false;
  std::uint64_t last_dropped = 0;
  int calm = 0;
  double working = -1.0;  // < 0: not yet initialized from config
};

int parity_rows(int kw, double overhead) {
  const int want = static_cast<int>(
      std::ceil(static_cast<double>(kw) * std::max(overhead, 0.0)));
  return std::clamp(want, 1, gf256::max_parity(kw));
}

/// The working overhead for the NEXT root-side encode, applying the
/// adaptive ratchet against the shard's frames_dropped counter.  The shard
/// is this rank's — one logical shard per segment, so the reading is a
/// pure function of the simulation, never of worker-thread timing.
double update_working_overhead(Proc& p, FecState& state) {
  const FecConfig& cfg = state.config;
  if (state.working < 0.0) {
    state.working = cfg.overhead;
  }
  if (!cfg.adaptive) {
    state.working = cfg.overhead;
    return state.working;
  }
  const std::uint64_t dropped = p.self().shard().counters().frames_dropped;
  if (!state.primed) {
    state.primed = true;
    state.last_dropped = dropped;
    return state.working;
  }
  const std::uint64_t delta = dropped - state.last_dropped;
  state.last_dropped = dropped;
  if (delta >= cfg.raise_threshold) {
    const double raised = std::min(state.working * 2.0, cfg.max_overhead);
    if (raised > state.working) {
      ++state.stats.overhead_raises;
    }
    state.working = raised;
    state.calm = 0;
  } else if (++state.calm >= cfg.calm_ops) {
    state.working = std::max(state.working / 2.0, cfg.overhead);
    state.calm = 0;
  }
  return state.working;
}

void write_headers(ByteWriter& w, std::uint32_t context,
                   std::int32_t root_world, std::uint64_t seq,
                   const FecHeader& h) {
  w.u32(context);
  w.i32(root_world);
  w.u64(seq);
  w.u32(h.index);
  w.u32(h.window);
  w.u32(h.kw);
  w.u32(h.rw);
  w.u32(h.chunk);
  w.u64(h.total);
  w.u64(h.op_base);
}

/// Root-side fallback service: kernel-level (uncharged), alive for the
/// communicator's lifetime — exactly like the nack-mcast sink, so the root
/// can return from the broadcast without waiting for anyone.
void install_sink(Proc& p, const Comm& comm, FecState& state) {
  if (state.sink_installed) {
    return;
  }
  state.sink_installed = true;
  mpi::McastChannel* channel = &p.mcast_channel(comm);
  FecState* st = &state;
  sim::Shard* shard = &p.self().shard();
  p.engine().set_sink(
      comm.context(), mpi::kTagFecNack,
      [channel, st, shard](mpi::Rank /*src*/, PayloadRef data) {
        ByteReader r(data);
        const std::uint32_t count = r.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::uint64_t wanted = r.u64();
          const auto it = st->history.find(wanted);
          if (it == st->history.end()) {
            ++st->stats.nacks_unserved;
            continue;
          }
          const SimTime now = shard->now();
          const auto last = st->last_resend.find(wanted);
          if (last != st->last_resend.end() &&
              now - last->second < st->config.aggregation_window) {
            ++st->stats.nacks_suppressed;
            ++shard->counters().nacks_suppressed;
            continue;
          }
          st->last_resend[wanted] = now;
          ++st->stats.nacks_served;
          ++shard->counters().retransmits;
          channel->send(it->second, net::FrameKind::kData);
        }
      });
}

void retain(FecState& state, std::uint64_t seq, PayloadRef framed) {
  state.history.emplace(seq, std::move(framed));
  while (state.history.size() > state.config.history_frames) {
    state.last_resend.erase(state.history.begin()->first);
    state.history.erase(state.history.begin());
  }
}

void send_root(Proc& p, const Comm& comm, FecState& state, Buffer& buffer,
               int root) {
  const FecConfig& cfg = state.config;
  mpi::McastChannel& ch = p.mcast_channel(comm);
  install_sink(p, comm, state);
  const double overhead = update_working_overhead(p, state);

  const std::size_t total = buffer.size();
  const FecPlan plan = fec_plan(total, cfg);
  const std::size_t chunk = plan.chunk_bytes;
  const int n_data = plan.n_data;
  const std::uint32_t context = comm.context();
  const std::int32_t root_world = comm.world_rank_of(root);
  const std::uint64_t op_base = ch.expected_seq();
  sim::Shard& shard = p.self().shard();

  for (int w = 0; w < plan.windows; ++w) {
    const int chunks_before = w * cfg.k;
    const int kw = std::min(cfg.k, n_data - chunks_before);
    const int rw = parity_rows(kw, overhead);
    FecHeader h;
    h.window = static_cast<std::uint32_t>(w);
    h.kw = static_cast<std::uint32_t>(kw);
    h.rw = static_cast<std::uint32_t>(rw);
    h.chunk = static_cast<std::uint32_t>(chunk);
    h.total = total;
    h.op_base = op_base;

    // Data frames: each framed into one owned allocation shared between
    // the outgoing multicast and the retransmission history.
    std::vector<std::span<const std::uint8_t>> dspans;
    dspans.reserve(static_cast<std::size_t>(kw));
    for (int jj = 0; jj < kw; ++jj) {
      const int j = chunks_before + jj;
      const std::size_t off = static_cast<std::size_t>(j) * chunk;
      const std::size_t len = std::min(chunk, total - std::min(off, total));
      const std::span<const std::uint8_t> span{buffer.data() + off, len};
      dspans.push_back(span);
      const std::uint64_t seq = ch.expected_seq();
      h.index = static_cast<std::uint32_t>(j);
      PooledBuffer out = acquire_payload_buffer(kFecCombinedHeaderBytes + len);
      ByteWriter fw(out.bytes);
      write_headers(fw, context, root_world, seq, h);
      fw.bytes(span);
      PayloadRef framed = PayloadRef::adopt(std::move(out));
      retain(state, seq, framed);
      p.self().delay(p.costs().send_overhead(
          static_cast<std::int64_t>(kFecHeaderBytes + len),
          mpi::CostTier::kMcastData));
      ch.send(std::move(framed), net::FrameKind::kData);
      ch.advance_seq();
    }

    // Parity frames: encoded straight into their framed wire buffers (the
    // parity scratch is the payload pool's).
    const std::size_t plen = dspans.front().size();
    std::vector<PooledBuffer> pbufs;
    std::vector<std::span<std::uint8_t>> pspans;
    pbufs.reserve(static_cast<std::size_t>(rw));
    pspans.reserve(static_cast<std::size_t>(rw));
    const std::uint64_t parity_base = ch.expected_seq();
    for (int i = 0; i < rw; ++i) {
      h.index = kParityBit | static_cast<std::uint32_t>(i);
      PooledBuffer out = acquire_payload_buffer(kFecCombinedHeaderBytes + plen);
      ByteWriter fw(out.bytes);
      write_headers(fw, context, root_world,
                    parity_base + static_cast<std::uint64_t>(i), h);
      out.bytes.resize(kFecCombinedHeaderBytes + plen, 0);
      pbufs.push_back(std::move(out));
      pspans.emplace_back(pbufs.back().bytes.data() + kFecCombinedHeaderBytes,
                          plen);
    }
    gf256::encode_parity(dspans, pspans);
    for (int i = 0; i < rw; ++i) {
      const std::uint64_t seq = ch.expected_seq();
      PayloadRef framed =
          PayloadRef::adopt(std::move(pbufs[static_cast<std::size_t>(i)]));
      retain(state, seq, framed);
      p.self().delay(p.costs().send_overhead(
          static_cast<std::int64_t>(kFecHeaderBytes + plen),
          mpi::CostTier::kMcastData));
      ch.send(std::move(framed), net::FrameKind::kData);
      ch.advance_seq();
      ++state.stats.parity_sent;
      ++shard.counters().parity_sent;
    }
    ++state.stats.windows_sent;
  }
  // No waiting: parity absorbs up to rw losses per window in-window, and
  // the sink serves anything beyond that from here on.
}

/// Per-window receive state.
struct WindowState {
  bool known = false;  // geometry (kw/rw) learned from some frame
  int kw = 0;
  int rw = 0;
  std::vector<PayloadRef> data;                     // by window-local row
  std::vector<std::pair<int, PayloadRef>> parity;   // (row, bytes)
  int data_have = 0;

  void learn(const FecHeader& h) {
    if (known) {
      return;
    }
    known = true;
    kw = static_cast<int>(h.kw);
    rw = static_cast<int>(h.rw);
    data.assign(static_cast<std::size_t>(kw), PayloadRef{});
  }
  bool complete() const {
    return known && data_have + static_cast<int>(parity.size()) >= kw;
  }
};

Buffer recv_fec(Proc& p, const Comm& comm, FecState& state, int root) {
  const FecConfig& cfg = state.config;
  mpi::McastChannel& ch = p.mcast_channel(comm);
  const std::uint64_t op_base = ch.expected_seq();
  sim::Shard& shard = p.self().shard();

  bool geom = false;
  std::size_t total = 0;
  std::size_t chunk = 1;
  int n_data = 0;
  Buffer out;

  int cur_window = 0;
  int chunks_before = 0;
  std::uint64_t win_base = op_base;
  WindowState win;

  const SimTime start = p.self().now();
  SimTime timeout = cfg.fallback_timeout;
  int retries = 0;

  const auto learn_geometry = [&](const FecHeader& h) {
    if (geom) {
      return;
    }
    geom = true;
    total = h.total;
    chunk = std::max<std::size_t>(h.chunk, 1);
    n_data = static_cast<int>(
        total == 0 ? 1 : (total + chunk - 1) / chunk);
    out.assign(total, 0);
  };
  const auto chunk_len = [&](int j) {
    const std::size_t off = static_cast<std::size_t>(j) * chunk;
    return std::min(chunk, total - std::min(off, total));
  };
  // Absorb a frame of the CURRENT window; pays the receive overhead when
  // the socket wake did not already charge it (stashed/early frames).
  const auto absorb = [&](const FecHeader& h, PayloadRef body, bool charged) {
    learn_geometry(h);
    win.learn(h);
    bool fresh = false;
    if (h.parity()) {
      const int row = h.parity_row();
      const bool dup =
          std::any_of(win.parity.begin(), win.parity.end(),
                      [row](const auto& pr) { return pr.first == row; });
      if (!dup) {
        win.parity.emplace_back(row, std::move(body));
        fresh = true;
      }
    } else {
      const int jj = static_cast<int>(h.index) - chunks_before;
      MC_EXPECTS(jj >= 0 && jj < win.kw);
      if (win.data[static_cast<std::size_t>(jj)].empty() &&
          chunk_len(static_cast<int>(h.index)) > 0) {
        win.data[static_cast<std::size_t>(jj)] = std::move(body);
        ++win.data_have;
        fresh = true;
      } else if (chunk_len(static_cast<int>(h.index)) == 0 &&
                 win.data_have <= jj) {
        // Zero-length chunk (empty broadcast): nothing to store, but the
        // row is accounted for.
        ++win.data_have;
        fresh = true;
      }
    }
    if (fresh && !charged) {
      p.self().delay(p.costs().recv_overhead(
          static_cast<std::int64_t>(kFecHeaderBytes + body.size()),
          mpi::CostTier::kMcastData));
    }
  };

  for (;;) {
    // Serve the current window from the persistent stash first: NACK
    // retransmissions and frames that arrived while a previous window was
    // being decoded land there.
    for (auto it = state.stash.begin(); it != state.stash.end();) {
      const FecHeader& h = it->second.h;
      if (h.op_base < op_base ||
          (h.op_base == op_base &&
           h.window < static_cast<std::uint32_t>(cur_window))) {
        it = state.stash.erase(it);  // stale operation or finished window
        continue;
      }
      if (h.op_base == op_base &&
          h.window == static_cast<std::uint32_t>(cur_window)) {
        absorb(h, std::move(it->second.body), /*charged=*/false);
        it = state.stash.erase(it);
        continue;
      }
      ++it;
    }

    if (win.complete()) {
      // Reconstruct the missing rows from the parity (pure function of the
      // delivered-chunk set: parity rows are consumed in ascending row
      // order, gf256::decode is deterministic).
      std::vector<int> missing;
      for (int jj = 0; jj < win.kw; ++jj) {
        const int j = chunks_before + jj;
        if (win.data[static_cast<std::size_t>(jj)].empty() &&
            chunk_len(j) > 0) {
          missing.push_back(jj);
        }
      }
      if (!missing.empty()) {
        std::sort(win.parity.begin(), win.parity.end(),
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        std::vector<std::span<const std::uint8_t>> dspans(
            static_cast<std::size_t>(win.kw));
        for (int jj = 0; jj < win.kw; ++jj) {
          dspans[static_cast<std::size_t>(jj)] =
              win.data[static_cast<std::size_t>(jj)].view();
        }
        std::vector<gf256::ParityRow> prows;
        prows.reserve(win.parity.size());
        for (const auto& [row, bytes] : win.parity) {
          prows.push_back({row, bytes.view()});
        }
        std::vector<std::span<std::uint8_t>> outs;
        outs.reserve(missing.size());
        for (const int jj : missing) {
          const int j = chunks_before + jj;
          outs.emplace_back(out.data() + static_cast<std::size_t>(j) * chunk,
                            chunk_len(j));
        }
        gf256::decode(dspans, prows, missing, outs);
        ++state.stats.decodes;
        ++shard.counters().fec_decodes;
        state.stats.parity_used += missing.size();
        shard.counters().parity_used += missing.size();
      }
      for (int jj = 0; jj < win.kw; ++jj) {
        const int j = chunks_before + jj;
        const PayloadRef& body = win.data[static_cast<std::size_t>(jj)];
        if (!body.empty()) {
          body.copy_to({out.data() + static_cast<std::size_t>(j) * chunk,
                        chunk_len(j)});
        }
      }
      const std::uint64_t win_end =
          win_base + static_cast<std::uint64_t>(win.kw + win.rw);
      while (ch.expected_seq() < win_end) {
        ch.advance_seq();
      }
      chunks_before += win.kw;
      ++cur_window;
      win_base = win_end;
      win = WindowState{};
      timeout = cfg.fallback_timeout;
      retries = 0;
      if (chunks_before >= n_data) {
        return out;
      }
      continue;
    }

    auto datagram = ch.socket().recv_until_charged(
        p.self(), p.self().now() + timeout,
        [&](const inet::UdpDatagram& dg) -> SimTime {
          ByteReader peek(dg.data);
          (void)peek.u32();  // context
          (void)peek.i32();  // root
          (void)peek.u64();  // seq (FEC frames route by header, not seq)
          if (peek.remaining() < kFecHeaderBytes) {
            return kTimeZero;
          }
          const FecHeader h = parse_fec_header(peek);
          if (h.op_base != op_base ||
              h.window != static_cast<std::uint32_t>(cur_window)) {
            return kTimeZero;  // stale, early, or foreign: uncharged wake
          }
          // Charge only frames that advance the current window.
          if (h.parity()) {
            const int row = h.parity_row();
            if (std::any_of(win.parity.begin(), win.parity.end(),
                            [row](const auto& pr) {
                              return pr.first == row;
                            })) {
              return kTimeZero;
            }
          } else {
            const int jj = static_cast<int>(h.index) - chunks_before;
            if (win.known && jj >= 0 && jj < win.kw &&
                !win.data[static_cast<std::size_t>(jj)].empty()) {
              return kTimeZero;
            }
          }
          return p.costs().recv_overhead(
              static_cast<std::int64_t>(dg.data.size() -
                                        kMcastFrameHeaderBytes),
              mpi::CostTier::kMcastData);
        });
    if (datagram.has_value()) {
      ByteReader r(datagram->datagram.data);
      (void)r.u32();  // context (validated by port/group)
      (void)r.i32();  // root
      const std::uint64_t seq = r.u64();
      if (r.remaining() < kFecHeaderBytes) {
        continue;  // not a FEC frame (foreign traffic on the channel)
      }
      const FecHeader h = parse_fec_header(r);
      PayloadRef body = datagram->datagram.data.slice(r.position());
      if (h.op_base < op_base ||
          (h.op_base == op_base &&
           h.window < static_cast<std::uint32_t>(cur_window))) {
        continue;  // stale duplicate
      }
      if (h.op_base > op_base ||
          h.window > static_cast<std::uint32_t>(cur_window)) {
        state.stash.emplace(seq, Stashed{h, std::move(body)});
        continue;
      }
      absorb(h, std::move(body), datagram->charge_absorbed);
      timeout = cfg.fallback_timeout;  // progress: reset the fallback clock
      continue;
    }

    // Timeout: the window lost more than its parity can absorb (or the
    // blast has not reached us).  Fall back to one NACK round for the
    // missing data frames.
    if (cfg.max_fallback_retries > 0 && retries >= cfg.max_fallback_retries) {
      std::ostringstream os;
      os << "fec-mcast: rank " << comm.rank() << " gave up on window "
         << cur_window << " from root " << root << " after " << retries
         << " fallback rounds over "
         << to_microseconds(p.self().now() - start)
         << " us — the root is unreachable or loss exceeds what parity + "
            "NACK fallback can absorb; raise max_fallback_retries, "
            "history_frames, or overhead";
      throw std::runtime_error(os.str());
    }
    ++retries;
    ++state.stats.fallbacks;
    ++shard.counters().fec_fallbacks;
    ++shard.counters().nacks_sent;
    Buffer nack;
    ByteWriter w(nack);
    std::vector<std::uint64_t> want;
    if (win.known) {
      for (int jj = 0; jj < win.kw; ++jj) {
        if (win.data[static_cast<std::size_t>(jj)].empty() &&
            chunk_len(chunks_before + jj) > 0) {
          want.push_back(win_base + static_cast<std::uint64_t>(jj));
        }
      }
      if (want.empty()) {
        // Degenerate gap (zero-length chunks unseen): re-request the
        // window's first frame to re-establish progress.
        want.push_back(win_base);
      }
    } else {
      want.push_back(win_base);  // geometry unknown: any frame restores it
    }
    w.u32(static_cast<std::uint32_t>(want.size()));
    for (const std::uint64_t seq : want) {
      w.u64(seq);
    }
    p.send(comm, root, mpi::kTagFecNack, nack, net::FrameKind::kControl,
           mpi::CostTier::kRaw);
    const auto scaled = static_cast<std::int64_t>(
        static_cast<double>(timeout.count()) * cfg.fallback_backoff);
    timeout = std::min(SimTime{scaled}, cfg.fallback_timeout_cap);
  }
}

}  // namespace

FecPlan fec_plan(std::size_t total, const FecConfig& config) {
  FecPlan plan;
  const std::size_t cap = kMaxMcastDatagram - kFecCombinedHeaderBytes;
  std::size_t chunk =
      total == 0 ? 1
                 : (total + static_cast<std::size_t>(config.k) - 1) /
                       static_cast<std::size_t>(config.k);
  plan.chunk_bytes = std::clamp<std::size_t>(chunk, 1, cap);
  plan.n_data = static_cast<int>(
      total == 0 ? 1 : (total + plan.chunk_bytes - 1) / plan.chunk_bytes);
  plan.windows = (plan.n_data + config.k - 1) / config.k;
  const double worst = config.adaptive
                           ? std::max(config.overhead, config.max_overhead)
                           : config.overhead;
  plan.wire_bytes = total + static_cast<std::size_t>(plan.n_data) *
                                kFecCombinedHeaderBytes;
  for (int w = 0; w < plan.windows; ++w) {
    const int kw = std::min(config.k, plan.n_data - w * config.k);
    const int rw = parity_rows(kw, worst);
    plan.wire_bytes += static_cast<std::size_t>(rw) *
                       (plan.chunk_bytes + kFecCombinedHeaderBytes);
  }
  return plan;
}

void set_fec_config(Proc& p, const Comm& comm, const FecConfig& config) {
  if (config.k < 1 || config.k > 255) {
    throw std::invalid_argument("fec-mcast: k must be in [1, 255]");
  }
  if (!(config.overhead > 0.0) || config.overhead > 2.0) {
    throw std::invalid_argument("fec-mcast: overhead must be in (0, 2]");
  }
  if (config.max_overhead < config.overhead) {
    throw std::invalid_argument(
        "fec-mcast: max_overhead must be >= overhead");
  }
  if (config.raise_threshold < 1) {
    throw std::invalid_argument("fec-mcast: raise_threshold must be >= 1");
  }
  if (config.calm_ops < 1) {
    throw std::invalid_argument("fec-mcast: calm_ops must be >= 1");
  }
  if (config.fallback_timeout <= kTimeZero) {
    throw std::invalid_argument("fec-mcast: fallback_timeout must be > 0");
  }
  if (config.fallback_backoff < 1.0) {
    throw std::invalid_argument("fec-mcast: fallback_backoff must be >= 1");
  }
  if (config.fallback_timeout_cap < config.fallback_timeout) {
    throw std::invalid_argument(
        "fec-mcast: fallback_timeout_cap must be >= fallback_timeout");
  }
  if (config.max_fallback_retries < 0) {
    throw std::invalid_argument(
        "fec-mcast: max_fallback_retries must be >= 0");
  }
  if (config.aggregation_window < kTimeZero) {
    throw std::invalid_argument(
        "fec-mcast: aggregation_window must be >= 0");
  }
  if (config.history_frames < 1) {
    throw std::invalid_argument("fec-mcast: history_frames must be >= 1");
  }
  FecState& state = p.coll_state<FecState>(comm);
  state.config = config;
  state.working = -1.0;  // re-seed the ratchet from the new floor
  state.primed = false;
  state.calm = 0;
}

const FecConfig& fec_config(Proc& p, const Comm& comm) {
  return p.coll_state<FecState>(comm).config;
}

void bcast_fec_mcast(Proc& p, const Comm& comm, Buffer& buffer, int root) {
  MC_EXPECTS(root >= 0 && root < comm.size());
  if (comm.size() == 1) {
    return;
  }
  FecState& state = p.coll_state<FecState>(comm);
  if (comm.rank() == root) {
    send_root(p, comm, state, buffer, root);
    return;
  }
  buffer = recv_fec(p, comm, state, root);
}

const FecStats& fec_stats(Proc& p, const Comm& comm) {
  return p.coll_state<FecState>(comm).stats;
}

double fec_working_overhead(Proc& p, const Comm& comm) {
  FecState& state = p.coll_state<FecState>(comm);
  return state.working < 0.0 ? state.config.overhead : state.working;
}

}  // namespace mcmpi::coll
