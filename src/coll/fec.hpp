#pragma once
/// \file fec.hpp
/// FEC-coded reliable multicast: erasure-coded broadcast with adaptive
/// parity and loss-aware degradation.
///
/// The third classic reliable-multicast design, next to the sender-driven
/// ACK protocol (ack_mcast.hpp) and the receiver-driven NACK protocol
/// (nack_mcast.hpp): the root splits the payload into windows of k data
/// chunks, appends r Reed–Solomon parity chunks per window (gf256.hpp),
/// and multicasts everything once.  ANY k of a window's k+r frames
/// reconstruct the window, so a receiver recovers from up to r losses with
/// ZERO recovery round trips — on a high-loss, high-latency trunk that
/// round trip is exactly what dominates the NACK protocol's tail.  The
/// price is deterministic: r/k extra bandwidth whether or not anything was
/// lost, which is why the protocol LOSES at zero loss by its parity
/// bandwidth (bench_loss_crossover measures the three-way crossover).
///
/// Loss-aware degradation, in two stages:
///
///   * ADAPTIVE PARITY (root side, FecConfig::adaptive): the root reads
///     the fault plane's frames_dropped counter on its shard before each
///     broadcast and ratchets the working overhead — doubling it (up to
///     max_overhead) when the previous operations saw drops, halving it
///     back toward the configured floor after calm_ops consecutive clean
///     operations.  The hysteresis keeps one reordered burst from
///     whipsawing the rate.  Receivers need no agreement: every frame
///     header carries its window's k and r.
///
///   * NACK FALLBACK (receiver side): when a window loses MORE than r
///     frames, the receiver requests the missing data frames from the
///     root's bounded retransmission history (kTagFecNack) with
///     exponential backoff and a retry cap — counted (fec_fallbacks), and
///     a hard, diagnosable error past the cap rather than a silent hang.
///
/// Decode is a pure function of the delivered-chunk set (gf256.hpp), so
/// results are bit-identical across shard counts, drivers, and backends —
/// the same contract as the fault plane.

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

struct FecConfig {
  /// Data chunks per FEC window (1..255; k + parity <= 256).
  int k = 8;
  /// Parity ratio: a window of kw data chunks carries
  /// r = max(1, ceil(kw * overhead)) parity chunks.
  double overhead = 0.125;
  /// Ratchet the working overhead from observed shard loss counters
  /// (doubling on drops up to max_overhead, halving back after calm_ops
  /// clean operations).  Root-side only; frame headers carry the result.
  bool adaptive = false;
  /// Adaptive ceiling for the working overhead.
  double max_overhead = 0.5;
  /// frames_dropped delta (since the previous broadcast on this
  /// communicator) that triggers a raise.
  std::uint64_t raise_threshold = 1;
  /// Consecutive drop-free broadcasts before the overhead steps back down.
  int calm_ops = 8;
  /// Receiver-side silence window before the NACK fallback kicks in.
  SimTime fallback_timeout = milliseconds(2);
  /// Timeout multiplier after every unanswered fallback round.
  double fallback_backoff = 2.0;
  /// Backed-off fallback timeout ceiling.
  SimTime fallback_timeout_cap = milliseconds(50);
  /// Fallback rounds per window before the receiver gives up and throws
  /// (0 = forever).
  int max_fallback_retries = 30;
  /// Root-side suppression window for retransmissions of one frame.
  SimTime aggregation_window = microseconds(500);
  /// Framed chunks (data + parity) retained for the NACK fallback.
  std::size_t history_frames = 256;
};

struct FecStats {
  std::uint64_t windows_sent = 0;     // root: FEC windows encoded
  std::uint64_t parity_sent = 0;      // root: parity frames multicast
  std::uint64_t parity_used = 0;      // receiver: parity rows consumed
  std::uint64_t decodes = 0;          // receiver: windows reconstructed
  std::uint64_t fallbacks = 0;        // receiver: NACK fallback rounds
  std::uint64_t nacks_served = 0;     // root sink: frames retransmitted
  std::uint64_t nacks_suppressed = 0; // root sink: inside the window
  std::uint64_t nacks_unserved = 0;   // root sink: history miss
  std::uint64_t overhead_raises = 0;  // root: adaptive ratchet up-steps
};

/// Frame geometry for a `total`-byte broadcast under `config` — exposed so
/// the registry predicate and the tests agree with the engine about what
/// fits.  wire_bytes is the worst-case bytes a receiver's socket buffer
/// must absorb if it consumes nothing mid-blast: every data + parity frame
/// (at max_overhead when adaptive) including all framing headers.
struct FecPlan {
  std::size_t chunk_bytes = 0;  ///< nominal full chunk length
  int n_data = 0;               ///< data chunks in the stream
  int windows = 0;              ///< FEC windows
  std::size_t wire_bytes = 0;   ///< worst-case on-the-wire total
};
FecPlan fec_plan(std::size_t total, const FecConfig& config);

/// Sets the protocol configuration for `comm` (per-communicator, like
/// set_segmented_config; keep it communicator-uniform).  Throws
/// std::invalid_argument on out-of-range values.
void set_fec_config(mpi::Proc& p, const mpi::Comm& comm,
                    const FecConfig& config);
const FecConfig& fec_config(mpi::Proc& p, const mpi::Comm& comm);

/// Broadcast with FEC-coded reliability.  `buffer` is input at root,
/// output elsewhere.  Throws std::runtime_error when a receiver exhausts
/// max_fallback_retries on a window.
void bcast_fec_mcast(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                     int root);

/// Cumulative protocol statistics on this rank.
const FecStats& fec_stats(mpi::Proc& p, const mpi::Comm& comm);

/// The root-side working overhead the NEXT broadcast on `comm` will encode
/// with (config.overhead until adaptive ratcheting moves it).
double fec_working_overhead(mpi::Proc& p, const mpi::Comm& comm);

}  // namespace mcmpi::coll
