#include "coll/gf256.hpp"

#include <array>
#include <cstring>
#include <utility>

#include "common/assert.hpp"

namespace mcmpi::coll::gf256 {

namespace {

constexpr std::uint16_t kPoly = 0x11D;

/// exp/log tables for generator 2, plus the full 256x256 product table the
/// per-byte hot loops index (64 KiB, built once; the doubled exp table
/// avoids a mod-255 in the builder).
struct Tables {
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint8_t, 256> log{};
  std::array<std::array<std::uint8_t, 256>, 256> prod{};

  Tables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x = static_cast<std::uint16_t>(x << 1);
      if (x & 0x100) {
        x ^= kPoly;
      }
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
    }
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        prod[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
            exp[static_cast<std::size_t>(log[static_cast<std::size_t>(a)]) +
                static_cast<std::size_t>(log[static_cast<std::size_t>(b)])];
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

/// bytes[i] = coef * bytes[i] in place (row normalization in the decoder).
void scale(std::span<std::uint8_t> bytes, std::uint8_t coef) {
  if (coef == 1) {
    return;
  }
  MC_EXPECTS(coef != 0);
  const auto& row = tables().prod[coef];
  for (auto& b : bytes) {
    b = row[b];
  }
}

/// Unnormalized Cauchy entry 1 / (x_i + y_j) with x_i = k + i, y_j = j.
std::uint8_t cauchy(int i, int j, int k) {
  return inv(static_cast<std::uint8_t>((k + i) ^ j));
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) { return tables().prod[a][b]; }

std::uint8_t inv(std::uint8_t a) {
  MC_EXPECTS_MSG(a != 0, "gf256: zero has no inverse");
  const Tables& t = tables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

void mul_acc(std::span<std::uint8_t> acc, std::span<const std::uint8_t> data,
             std::uint8_t coef) {
  MC_EXPECTS(data.size() <= acc.size());
  if (coef == 0) {
    return;
  }
  if (coef == 1) {
    // The r=1 / parity-row-0 fast path: plain XOR, no field lookups.
    for (std::size_t i = 0; i < data.size(); ++i) {
      acc[i] ^= data[i];
    }
    return;
  }
  const auto& row = tables().prod[coef];
  for (std::size_t i = 0; i < data.size(); ++i) {
    acc[i] ^= row[data[i]];
  }
}

int max_parity(int k) {
  MC_EXPECTS(k >= 1 && k <= 255);
  return 256 - k;
}

std::uint8_t parity_coef(int i, int j, int k) {
  MC_EXPECTS(j >= 0 && j < k);
  MC_EXPECTS(i >= 0 && i < max_parity(k));
  if (i == 0) {
    return 1;  // column-normalized: row 0 is all-ones by construction
  }
  return mul(cauchy(i, j, k), inv(cauchy(0, j, k)));
}

void encode_parity(std::span<const std::span<const std::uint8_t>> data,
                   std::span<const std::span<std::uint8_t>> parity) {
  const int k = static_cast<int>(data.size());
  MC_EXPECTS(k >= 1);
  MC_EXPECTS(static_cast<int>(parity.size()) <= max_parity(k));
  for (int i = 0; i < static_cast<int>(parity.size()); ++i) {
    std::span<std::uint8_t> out = parity[static_cast<std::size_t>(i)];
    MC_EXPECTS(out.size() == parity[0].size());
    std::memset(out.data(), 0, out.size());
    for (int j = 0; j < k; ++j) {
      mul_acc(out, data[static_cast<std::size_t>(j)], parity_coef(i, j, k));
    }
  }
}

void decode(std::span<const std::span<const std::uint8_t>> data,
            std::span<const ParityRow> parity, std::span<const int> missing,
            std::span<const std::span<std::uint8_t>> out) {
  const int k = static_cast<int>(data.size());
  const int m = static_cast<int>(missing.size());
  MC_EXPECTS(k >= 1);
  MC_EXPECTS(out.size() == missing.size());
  MC_EXPECTS_MSG(parity.size() >= missing.size(),
                 "gf256: fewer parity rows than erasures");
  if (m == 0) {
    return;
  }
  const std::size_t len = parity[0].bytes.size();

  std::array<bool, 256> is_missing{};
  for (const int j : missing) {
    MC_EXPECTS(j >= 0 && j < k);
    is_missing[static_cast<std::size_t>(j)] = true;
  }

  // Syndromes: parity row minus every PRESENT chunk's contribution leaves
  // exactly the missing chunks' combination.
  std::vector<std::vector<std::uint8_t>> synd(static_cast<std::size_t>(m));
  std::vector<std::vector<std::uint8_t>> a(
      static_cast<std::size_t>(m),
      std::vector<std::uint8_t>(static_cast<std::size_t>(m)));
  for (int t = 0; t < m; ++t) {
    const ParityRow& row = parity[static_cast<std::size_t>(t)];
    MC_EXPECTS(row.bytes.size() == len);
    synd[static_cast<std::size_t>(t)].assign(row.bytes.begin(),
                                             row.bytes.end());
    for (int j = 0; j < k; ++j) {
      if (is_missing[static_cast<std::size_t>(j)]) {
        continue;
      }
      mul_acc(synd[static_cast<std::size_t>(t)],
              data[static_cast<std::size_t>(j)],
              parity_coef(row.index, j, k));
    }
    for (int u = 0; u < m; ++u) {
      a[static_cast<std::size_t>(t)][static_cast<std::size_t>(u)] =
          parity_coef(row.index, missing[static_cast<std::size_t>(u)], k);
    }
  }

  // Gauss–Jordan on the m x m erasure system (m <= r, small).  A pivot
  // always exists: the matrix is a column-scaled Cauchy submatrix, hence
  // nonsingular (the MDS property).
  for (int u = 0; u < m; ++u) {
    int pivot = u;
    while (pivot < m &&
           a[static_cast<std::size_t>(pivot)][static_cast<std::size_t>(u)] ==
               0) {
      ++pivot;
    }
    MC_EXPECTS_MSG(pivot < m, "gf256: singular erasure system");
    if (pivot != u) {
      std::swap(a[static_cast<std::size_t>(pivot)],
                a[static_cast<std::size_t>(u)]);
      std::swap(synd[static_cast<std::size_t>(pivot)],
                synd[static_cast<std::size_t>(u)]);
    }
    const std::uint8_t norm =
        inv(a[static_cast<std::size_t>(u)][static_cast<std::size_t>(u)]);
    for (int c = 0; c < m; ++c) {
      a[static_cast<std::size_t>(u)][static_cast<std::size_t>(c)] =
          mul(a[static_cast<std::size_t>(u)][static_cast<std::size_t>(c)],
              norm);
    }
    scale(synd[static_cast<std::size_t>(u)], norm);
    for (int t = 0; t < m; ++t) {
      if (t == u) {
        continue;
      }
      const std::uint8_t f =
          a[static_cast<std::size_t>(t)][static_cast<std::size_t>(u)];
      if (f == 0) {
        continue;
      }
      for (int c = 0; c < m; ++c) {
        a[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)] ^= mul(
            a[static_cast<std::size_t>(u)][static_cast<std::size_t>(c)], f);
      }
      mul_acc(synd[static_cast<std::size_t>(t)],
              synd[static_cast<std::size_t>(u)], f);
    }
  }

  for (int u = 0; u < m; ++u) {
    std::span<std::uint8_t> dst = out[static_cast<std::size_t>(u)];
    MC_EXPECTS(dst.size() <= len);  // ragged tail: drop the zero padding
    std::memcpy(dst.data(), synd[static_cast<std::size_t>(u)].data(),
                dst.size());
  }
}

bool invertible(std::vector<std::vector<std::uint8_t>> m) {
  const std::size_t n = m.size();
  for (const auto& row : m) {
    MC_EXPECTS(row.size() == n);
  }
  for (std::size_t u = 0; u < n; ++u) {
    std::size_t pivot = u;
    while (pivot < n && m[pivot][u] == 0) {
      ++pivot;
    }
    if (pivot == n) {
      return false;
    }
    std::swap(m[pivot], m[u]);
    const std::uint8_t norm = inv(m[u][u]);
    for (std::size_t c = 0; c < n; ++c) {
      m[u][c] = mul(m[u][c], norm);
    }
    for (std::size_t t = u + 1; t < n; ++t) {
      const std::uint8_t f = m[t][u];
      if (f == 0) {
        continue;
      }
      for (std::size_t c = 0; c < n; ++c) {
        m[t][c] ^= mul(m[u][c], f);
      }
    }
  }
  return true;
}

}  // namespace mcmpi::coll::gf256
