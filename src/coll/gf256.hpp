#pragma once
/// \file gf256.hpp
/// GF(256) arithmetic and a systematic Cauchy Reed–Solomon erasure coder.
///
/// The field is GF(2^8) modulo the primitive polynomial 0x11D (the classic
/// Reed–Solomon choice; x^8 + x^4 + x^3 + x^2 + 1) with generator 2.
/// Addition is XOR; multiplication goes through a full 256x256 product
/// table built once at startup, so the per-byte encode/decode inner loops
/// are a single table row walk.
///
/// The erasure code is SYSTEMATIC: k data chunks are transmitted verbatim
/// and r parity chunks are appended, parity row i being a linear
/// combination of the data chunks with coefficients parity_coef(i, j).
/// The coefficient matrix is a COLUMN-NORMALIZED CAUCHY matrix
///
///   C[i][j] = cauchy(i, j) / cauchy(0, j),   cauchy(i, j) = 1/(x_i + y_j)
///
/// with x_i = k + i and y_j = j (all distinct for k + r <= 256).  Two
/// properties make this the right generator:
///
///   * MDS: every square submatrix of a Cauchy matrix is nonsingular, and
///     column scaling preserves that, so ANY k of the k+r transmitted
///     chunks reconstruct the data — the optimal erasure trade.
///
///   * XOR fast path: the normalization makes parity row 0 all-ones, so an
///     r=1 configuration degenerates to plain XOR parity (RAID-5 style)
///     with no field multiplications on either side; mul_acc special-cases
///     coefficient 1 into a byte-XOR loop.
///
/// Everything here is a pure function of its arguments — no clocks, no
/// randomness — so a decode is bit-identical across simulator shard
/// counts, drivers, and backends (the same contract as the fault plane).

#include <cstdint>
#include <span>
#include <vector>

namespace mcmpi::coll::gf256 {

/// Field product a*b modulo 0x11D.
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; asserts a != 0 (zero has no inverse).
std::uint8_t inv(std::uint8_t a);

/// acc[i] ^= coef * data[i] for i < data.size().  `data` may be SHORTER
/// than `acc` (a ragged tail chunk is implicitly zero-padded — zero
/// contributes nothing under XOR accumulation).  coef 0 is a no-op; coef 1
/// is a pure XOR loop (the r=1 fast path).
void mul_acc(std::span<std::uint8_t> acc, std::span<const std::uint8_t> data,
             std::uint8_t coef);

/// Largest parity count r for k data chunks (k + r <= 256 keeps the Cauchy
/// node sets disjoint and distinct).
int max_parity(int k);

/// Coefficient of data chunk j (0 <= j < k) in parity row i (0 <= i <
/// max_parity(k)) of the column-normalized Cauchy generator.
/// parity_coef(0, j, k) == 1 for every j.
std::uint8_t parity_coef(int i, int j, int k);

/// Computes parity rows over `data` (k = data.size() chunks).  Each
/// parity[i] is fully overwritten with parity row i; all parity spans must
/// have equal length >= every data chunk's length (shorter data chunks are
/// zero-padded).
void encode_parity(std::span<const std::span<const std::uint8_t>> data,
                   std::span<const std::span<std::uint8_t>> parity);

/// A delivered parity chunk: its row index i and its bytes.
struct ParityRow {
  int index = 0;
  std::span<const std::uint8_t> bytes;
};

/// Reconstructs the data chunks listed in `missing` from the delivered
/// chunks.  `data` has k entries — present chunks carry their bytes,
/// missing ones are ignored (pass empty spans).  `parity` lists delivered
/// parity rows; the FIRST missing.size() of them are consumed (any subset
/// works — MDS — but the caller passes them in ascending row order so the
/// reconstruction is a pure function of the delivered-chunk SET).
/// out[m] receives missing chunk missing[m]; each out span carries that
/// chunk's true length (<= the parity length; the zero-padded tail is
/// dropped).  Asserts parity.size() >= missing.size().
void decode(std::span<const std::span<const std::uint8_t>> data,
            std::span<const ParityRow> parity, std::span<const int> missing,
            std::span<const std::span<std::uint8_t>> out);

/// Gaussian-elimination nonsingularity check over GF(256) (test hook for
/// the any-k-rows-invertible property of the stacked [I; C] generator).
bool invertible(std::vector<std::vector<std::uint8_t>> m);

}  // namespace mcmpi::coll::gf256
