#include "coll/hier.hpp"

#include <atomic>
#include <cstring>
#include <utility>

#include "coll/facade.hpp"
#include "common/assert.hpp"
#include "mpi/world.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

namespace {

/// Cost-hint topology knobs (set_hier_cost_hint).  Advisory analytics only
/// — they never influence semantics, and kAuto consults the tuning table
/// before any hint.
std::atomic<int> g_segments_hint{2};
std::atomic<double> g_trunk_cost_hint{4.0};

int segment_of_comm_rank(const Comm& comm, int comm_rank) {
  return comm.proc()->world().segment_of(comm.world_rank_of(comm_rank));
}

bool is_leader(const HierState& st, int comm_rank) {
  return st.leaders[static_cast<std::size_t>(st.my_segment_idx)] == comm_rank;
}

/// Index into st.leaders/st.members of the segment holding `comm_rank`.
int segment_idx_of(const HierState& st, int comm_rank) {
  const int seg = st.seg_of[static_cast<std::size_t>(comm_rank)];
  for (std::size_t s = 0; s < st.leaders.size(); ++s) {
    if (st.seg_of[static_cast<std::size_t>(st.leaders[s])] == seg) {
      return static_cast<int>(s);
    }
  }
  MC_ASSERT_MSG(false, "comm rank's segment has no leader entry");
  __builtin_unreachable();
}

/// [u64 length][bytes] per block, in order — allgather's trunk bundles and
/// release payloads (sizes may be ragged).
Buffer pack_blocks(const std::vector<Buffer>& blocks) {
  std::size_t total = 0;
  for (const Buffer& b : blocks) {
    total += sizeof(std::uint64_t) + b.size();
  }
  Buffer out(total);
  std::size_t at = 0;
  for (const Buffer& b : blocks) {
    const auto len = static_cast<std::uint64_t>(b.size());
    std::memcpy(out.data() + at, &len, sizeof(len));
    at += sizeof(len);
    std::memcpy(out.data() + at, b.data(), b.size());
    at += b.size();
  }
  return out;
}

/// Intra-segment bcast of a payload only the source rank holds.  kAuto
/// keys on the LOCAL buffer size, so the ranks must first agree on the
/// count (one 8-byte binomial round) before the sized kAuto phase — else
/// the source would pick a multicast engine while the empty-handed ranks
/// pick point-to-point, and the segment deadlocks.
void intra_bcast_sized(const mpi::Comm& intra, Buffer& buffer,
                       int intra_root) {
  std::uint64_t bytes = buffer.size();
  Buffer size_msg(sizeof bytes);
  std::memcpy(size_msg.data(), &bytes, sizeof bytes);
  intra.coll().bcast(size_msg, intra_root, "mpich");
  std::memcpy(&bytes, size_msg.data(), sizeof bytes);
  if (intra.rank() != intra_root) {
    buffer.resize(bytes);
  }
  intra.coll().bcast(buffer, intra_root);
}

std::vector<Buffer> unpack_blocks(std::span<const std::uint8_t> bytes) {
  std::vector<Buffer> blocks;
  std::size_t at = 0;
  while (at < bytes.size()) {
    MC_ASSERT(at + sizeof(std::uint64_t) <= bytes.size());
    std::uint64_t len = 0;
    std::memcpy(&len, bytes.data() + at, sizeof(len));
    at += sizeof(len);
    MC_ASSERT(at + len <= bytes.size());
    blocks.emplace_back(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                        bytes.begin() + static_cast<std::ptrdiff_t>(at + len));
    at += len;
  }
  return blocks;
}

}  // namespace

HierState& hier_state(Proc& p, const Comm& comm) {
  HierState& st = p.coll_state<HierState>(comm);
  if (st.built) {
    return st;
  }
  mpi::World& world = p.world();
  const int size = comm.size();
  st.seg_of.resize(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    st.seg_of[static_cast<std::size_t>(r)] =
        world.segment_of(comm.world_rank_of(r));
  }
  // Leaders in order of first appearance by comm rank — which is also
  // ascending leader rank, so every rank derives the identical list.
  for (int r = 0; r < size; ++r) {
    const int seg = st.seg_of[static_cast<std::size_t>(r)];
    bool seen = false;
    for (const int leader : st.leaders) {
      if (st.seg_of[static_cast<std::size_t>(leader)] == seg) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      st.leaders.push_back(r);
      st.members.emplace_back();
    }
  }
  for (int r = 0; r < size; ++r) {
    st.members[static_cast<std::size_t>(segment_idx_of(st, r))].push_back(r);
  }
  st.my_segment_idx = segment_idx_of(st, comm.rank());
  // Contiguous iff no segment is ever re-entered after the ranks walk out
  // of it.
  st.contiguous = true;
  for (int r = 1; r < size && st.contiguous; ++r) {
    const int seg = st.seg_of[static_cast<std::size_t>(r)];
    if (seg == st.seg_of[static_cast<std::size_t>(r - 1)]) {
      continue;
    }
    for (int q = 0; q < r - 1; ++q) {
      if (st.seg_of[static_cast<std::size_t>(q)] == seg) {
        st.contiguous = false;
        break;
      }
    }
  }
  // Collective: every rank of `comm` reaches this split together (building
  // lazily from inside a collective preserves that).
  st.intra =
      p.split(comm, st.seg_of[static_cast<std::size_t>(comm.rank())],
              comm.rank());
  st.built = true;
  return st;
}

bool hier_applicable(const Comm& comm) {
  if (comm.proc() == nullptr || comm.size() < 2) {
    return false;
  }
  mpi::World& world = comm.proc()->world();
  if (world.num_segments() < 2) {
    return false;
  }
  const int first = segment_of_comm_rank(comm, 0);
  for (int r = 1; r < comm.size(); ++r) {
    if (segment_of_comm_rank(comm, r) != first) {
      return true;
    }
  }
  return false;
}

int hier_segment_span(const Comm& comm) {
  if (comm.proc() == nullptr || comm.proc()->world().num_segments() < 2) {
    return 1;
  }
  std::vector<int> seen;
  for (int r = 0; r < comm.size(); ++r) {
    const int seg = segment_of_comm_rank(comm, r);
    bool dup = false;
    for (const int s : seen) {
      if (s == seg) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      seen.push_back(seg);
    }
  }
  return static_cast<int>(seen.size());
}

bool hier_applicable_contiguous(const Comm& comm) {
  if (!hier_applicable(comm)) {
    return false;
  }
  // Segment blocks must be contiguous in comm rank order (rank-order
  // reduction for non-commutative ops combines segment partials blockwise).
  int prev = segment_of_comm_rank(comm, 0);
  std::vector<int> closed;
  for (int r = 1; r < comm.size(); ++r) {
    const int seg = segment_of_comm_rank(comm, r);
    if (seg == prev) {
      continue;
    }
    for (const int c : closed) {
      if (c == seg) {
        return false;
      }
    }
    closed.push_back(prev);
    prev = seg;
  }
  return true;
}

void set_hier_cost_hint(int segments, double trunk_frame_cost) {
  g_segments_hint.store(segments < 2 ? 2 : segments,
                        std::memory_order_relaxed);
  g_trunk_cost_hint.store(trunk_frame_cost < 1.0 ? 1.0 : trunk_frame_cost,
                          std::memory_order_relaxed);
}

int hier_segments_hint() {
  return g_segments_hint.load(std::memory_order_relaxed);
}

double hier_trunk_cost_hint() {
  return g_trunk_cost_hint.load(std::memory_order_relaxed);
}

void bcast_hier(Proc& p, const Comm& comm, Buffer& buffer, int root) {
  MC_EXPECTS(root >= 0 && root < comm.size());
  HierState& st = hier_state(p, comm);
  const int rank = comm.rank();
  const int root_seg = segment_idx_of(st, root);

  // Inter phase: the root ships the payload straight to every remote
  // segment leader (nonblocking, so its own segment's intra bcast overlaps
  // the trunk transfers).
  std::vector<std::shared_ptr<mpi::SendRequest>> sends;
  if (rank == root) {
    for (std::size_t s = 0; s < st.leaders.size(); ++s) {
      if (static_cast<int>(s) != root_seg) {
        sends.push_back(p.isend(comm, st.leaders[s], mpi::kTagHier, buffer));
      }
    }
  } else if (st.my_segment_idx != root_seg && is_leader(st, rank)) {
    buffer = p.recv(comm, root, mpi::kTagHier);
  }

  // Intra phase: rooted at the root itself inside its segment, at the
  // leader (intra rank 0) elsewhere.  kAuto, so sized payloads ride the
  // segment's multicast engines.
  if (st.intra.size() > 1) {
    int intra_root = 0;
    if (st.my_segment_idx == root_seg) {
      const auto& members =
          st.members[static_cast<std::size_t>(st.my_segment_idx)];
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (members[i] == root) {
          intra_root = static_cast<int>(i);
          break;
        }
      }
    }
    intra_bcast_sized(st.intra, buffer, intra_root);
  }
  for (const auto& send : sends) {
    p.wait(send);
  }
}

void barrier_hier(Proc& p, const Comm& comm) {
  HierState& st = hier_state(p, comm);
  const int rank = comm.rank();
  const bool leader = is_leader(st, rank);

  // Arrive: binomial fold of empty payloads to the leader (intra rank 0).
  // Explicitly mpich — a zero-byte fold gains nothing from multicast.
  if (st.intra.size() > 1) {
    (void)st.intra.coll().reduce({}, mpi::Op::kSum, mpi::Datatype::kByte, 0,
                                 "mpich");
  }
  // Inter: flat arrive/release through the first leader — exactly two
  // trunk rounds, independent of segment count.
  if (leader && st.leaders.size() > 1) {
    if (st.my_segment_idx == 0) {
      for (std::size_t s = 1; s < st.leaders.size(); ++s) {
        (void)p.recv(comm, st.leaders[s], mpi::kTagHier);
      }
      for (std::size_t s = 1; s < st.leaders.size(); ++s) {
        p.send(comm, st.leaders[s], mpi::kTagHier, {},
               net::FrameKind::kControl);
      }
    } else {
      p.send(comm, st.leaders[0], mpi::kTagHier, {},
             net::FrameKind::kControl);
      (void)p.recv(comm, st.leaders[0], mpi::kTagHier);
    }
  }
  // Release: binomial bcast of an empty payload from the leader.
  if (st.intra.size() > 1) {
    Buffer empty;
    st.intra.coll().bcast(empty, 0, "mpich");
  }
}

Buffer allreduce_hier(Proc& p, const Comm& comm,
                      std::span<const std::uint8_t> data, mpi::Op op,
                      mpi::Datatype type) {
  MC_EXPECTS(data.size() % mpi::datatype_size(type) == 0);
  const std::size_t count = data.size() / mpi::datatype_size(type);
  HierState& st = hier_state(p, comm);
  const int rank = comm.rank();
  const bool leader = is_leader(st, rank);

  // Intra reduce to the leader (kAuto: sized payloads may use the
  // multicast reduce engines).  Intra rank order == comm rank order, so
  // each segment partial is already combined in canonical order.
  Buffer partial;
  if (st.intra.size() > 1) {
    partial = st.intra.coll().reduce(data, op, type, 0);
  } else {
    partial.assign(data.begin(), data.end());
  }

  // Inter: the first leader combines segment partials in segment-block
  // order (the applicability predicate guarantees blocks are contiguous,
  // so this is comm rank order), then re-broadcasts leader-wise.
  Buffer result;
  if (leader) {
    if (st.my_segment_idx == 0) {
      result = std::move(partial);
      for (std::size_t s = 1; s < st.leaders.size(); ++s) {
        Buffer part = p.recv(comm, st.leaders[s], mpi::kTagHier);
        MC_ASSERT(part.size() == result.size());
        mpi::apply_op(op, type, result, part, count);
        result = std::move(part);
      }
      for (std::size_t s = 1; s < st.leaders.size(); ++s) {
        p.send(comm, st.leaders[s], mpi::kTagHier, result);
      }
    } else {
      p.send(comm, st.leaders[0], mpi::kTagHier, partial);
      result = p.recv(comm, st.leaders[0], mpi::kTagHier);
    }
  }
  // Intra release bcast (kAuto -> multicast engines at size).  Non-leaders
  // hold no result yet, but its size equals the input's — presize so every
  // intra rank's kAuto pick agrees.
  if (st.intra.size() > 1) {
    if (!leader) {
      result.resize(data.size());
    }
    st.intra.coll().bcast(result, 0);
  }
  return result;
}

std::vector<Buffer> allgather_hier(Proc& p, const Comm& comm,
                                   std::span<const std::uint8_t> data) {
  HierState& st = hier_state(p, comm);
  const int rank = comm.rank();
  const bool leader = is_leader(st, rank);

  // Intra gather to the leader; block i is intra rank i == the i-th comm
  // rank of the segment.  Explicitly mpich: the direct p2p gather carries
  // ragged block sizes, which would make per-rank kAuto picks diverge.
  std::vector<Buffer> seg_blocks;
  if (st.intra.size() > 1) {
    seg_blocks = st.intra.coll().gather(data, 0, "mpich");
  } else {
    seg_blocks.emplace_back(data.begin(), data.end());
  }

  std::vector<Buffer> out(static_cast<std::size_t>(comm.size()));
  Buffer packed_all;
  if (leader) {
    // Leaders exchange their segment bundle all-to-all: receives posted
    // first, then nonblocking sends — no rendezvous cycle, and each trunk
    // carries each byte exactly once.
    const Buffer mine = pack_blocks(seg_blocks);
    std::vector<std::pair<std::size_t, std::shared_ptr<mpi::RecvRequest>>>
        recvs;
    std::vector<std::shared_ptr<mpi::SendRequest>> sends;
    for (std::size_t s = 0; s < st.leaders.size(); ++s) {
      if (static_cast<int>(s) != st.my_segment_idx) {
        recvs.emplace_back(s, p.irecv(comm, st.leaders[s], mpi::kTagHier));
      }
    }
    for (std::size_t s = 0; s < st.leaders.size(); ++s) {
      if (static_cast<int>(s) != st.my_segment_idx) {
        sends.push_back(p.isend(comm, st.leaders[s], mpi::kTagHier, mine));
      }
    }
    const auto& my_members =
        st.members[static_cast<std::size_t>(st.my_segment_idx)];
    MC_ASSERT(seg_blocks.size() == my_members.size());
    for (std::size_t i = 0; i < my_members.size(); ++i) {
      out[static_cast<std::size_t>(my_members[i])] = std::move(seg_blocks[i]);
    }
    for (auto& [s, request] : recvs) {
      const Buffer bundle = p.wait(request);
      std::vector<Buffer> blocks = unpack_blocks(bundle);
      MC_ASSERT(blocks.size() == st.members[s].size());
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        out[static_cast<std::size_t>(st.members[s][i])] = std::move(blocks[i]);
      }
    }
    for (const auto& send : sends) {
      p.wait(send);
    }
    packed_all = pack_blocks(out);
  }
  // Intra release: one bcast of the assembled bundle (kAuto -> multicast;
  // the bundle is ragged, so the leader announces its size first).
  if (st.intra.size() > 1) {
    intra_bcast_sized(st.intra, packed_all, 0);
    if (!leader) {
      out = unpack_blocks(packed_all);
      MC_ASSERT(out.size() == static_cast<std::size_t>(comm.size()));
    }
  }
  return out;
}

}  // namespace mcmpi::coll
