#pragma once
/// \file hier.hpp
/// Hierarchical (MagPIe-style) topology-aware collectives for multi-segment
/// clusters.
///
/// A multi-segment cluster has two very different link classes: the cheap
/// intra-segment medium (hub or switch, multicast-capable) and the
/// expensive inter-segment trunks.  Flat algorithms cross the trunks
/// O(log N) or O(N) times; the hierarchical schemes here cross each trunk
/// exactly once per collective:
///
///   1. elect one leader per segment (the smallest communicator rank on
///      that segment — intra rank 0 of the segment's sub-communicator);
///   2. run the intra-segment phase over the existing registry algorithms
///      on a cached per-segment sub-communicator (kAuto, so large payloads
///      ride the multicast engines and lossy networks keep their
///      loss-tolerant restriction);
///   3. exchange only between leaders over the trunks (point-to-point on
///      the parent communicator, tag kTagHier).
///
/// Leader election needs no wire traffic: every rank derives the full
/// comm-rank -> segment table from World::segment_of and caches it (plus
/// the split-off intra communicator) in Proc::coll_state, so repeated
/// collectives on the same communicator pay the split exactly once.
///
/// Registered as bcast:hier-mcast, barrier:hier, allreduce:hier and
/// allgather:hier (registry.cpp); applicable only when the communicator
/// spans at least two segments, so single-segment behavior (and every
/// committed baseline) is untouched and the intra-phase kAuto recursion
/// terminates.

#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "mpi/datatype.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

/// Cached hierarchical decomposition of one communicator (built lazily,
/// collectively, on first use; keyed by communicator context in
/// Proc::coll_state).
struct HierState {
  bool built = false;
  /// Sub-communicator of this rank's segment (split color = segment id,
  /// key = parent comm rank, so intra rank order == parent rank order and
  /// the segment leader — smallest parent rank — is intra rank 0).
  mpi::Comm intra;
  /// Segment id of every parent comm rank.
  std::vector<int> seg_of;
  /// Leader (parent comm rank) of each spanned segment, ordered by
  /// ascending leader rank (== order of first appearance).
  std::vector<int> leaders;
  /// Parent comm ranks of each spanned segment, ascending, indexed like
  /// `leaders`.
  std::vector<std::vector<int>> members;
  /// This rank's index into `leaders`/`members`.
  int my_segment_idx = 0;
  /// Do comm ranks group into contiguous segment blocks?  Required by
  /// allreduce:hier (rank-order reduction for non-commutative ops).
  bool contiguous = false;
};

/// The communicator's decomposition, built (collectively!) on first call.
/// Every rank of `comm` must enter together — it performs a comm split.
HierState& hier_state(mpi::Proc& p, const mpi::Comm& comm);

/// True when `comm` spans >= 2 segments (hier algorithms applicable).
/// Pure local computation from the world segment table.
bool hier_applicable(const mpi::Comm& comm);

/// Number of distinct segments `comm` spans (1 for Proc-less handles and
/// single-segment worlds).  The tuning table's `min_segments` rule field
/// gates on this.
int hier_segment_span(const mpi::Comm& comm);

/// hier_applicable plus contiguous segment blocks (allreduce:hier).
bool hier_applicable_contiguous(const mpi::Comm& comm);

/// Installs the topology the analytic cost hints assume (segments in the
/// topology and the relative frame-cost of one trunk crossing).  Called by
/// the cluster layer at construction; defaults to 2 segments / 4x trunks.
/// Advisory only — kAuto consults the tuning table first.
void set_hier_cost_hint(int segments, double trunk_frame_cost);
int hier_segments_hint();
double hier_trunk_cost_hint();

/// Broadcast: root -> remote segment leaders over the trunks (isend, so the
/// root's own intra phase overlaps the trunk transfers), then an intra
/// bcast per segment (kAuto -> multicast engines at size).
void bcast_hier(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                int root);

/// Barrier: intra fold to the leader, flat arrive/release among leaders
/// (2 trunk rounds via leaders[0]), intra release bcast.
void barrier_hier(mpi::Proc& p, const mpi::Comm& comm);

/// Allreduce: intra reduce to the leader, leaders[0] combines the segment
/// partials in segment-block order (hence the contiguity requirement for
/// non-commutative ops), result re-broadcast leader-wise then intra.
Buffer allreduce_hier(mpi::Proc& p, const mpi::Comm& comm,
                      std::span<const std::uint8_t> data, mpi::Op op,
                      mpi::Datatype type);

/// Allgather: intra gather to the leader, leaders exchange their segment's
/// length-framed block bundle (each trunk carries each byte exactly once),
/// intra bcast of the assembled result.  Handles ragged per-rank sizes.
std::vector<Buffer> allgather_hier(mpi::Proc& p, const mpi::Comm& comm,
                                   std::span<const std::uint8_t> data);

}  // namespace mcmpi::coll
