#pragma once
/// \file limits.hpp
/// Hard datagram limits shared by every multicast collective.
///
/// The simulated IP layer carries fragment offsets in a 16-bit field of
/// 8-byte units (inet/ip.hpp), so one datagram physically caps out at
/// 65535 * 8 = 524280 bytes.  Every single-transmission multicast
/// collective (mcast-binary/linear broadcast, mcast-slice scatter,
/// mcast-rr alltoall, the lockstep allgather) must keep its whole framed
/// payload under this ceiling, and the segmented collectives
/// (coll/segmented.hpp) chunk against it.  One constant, one place —
/// predicates, runtime re-checks and the chunker all size against it.

#include <cstddef>

namespace mcmpi::coll {

/// Conservative ceiling for one multicast datagram's payload (headroom
/// below the 524280-byte fragment-offset wrap covers the UDP and framing
/// headers the lower layers prepend).
inline constexpr std::size_t kMaxMcastDatagram = 512000;

}  // namespace mcmpi::coll
