#include "coll/mcast.hpp"

#include "common/assert.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

namespace {

/// Framing of a data multicast: everything a receiver needs to check the
/// safe-program ordering argument of §4.
struct McastHeader {
  std::uint32_t context;
  std::int32_t root_world;
  std::uint64_t seq;
};

/// Serializes just the 16 B header; the payload goes down the stack as a
/// separate gather part, so framing never re-buffers the data.
Buffer header_bytes(const McastHeader& h) {
  Buffer out;
  out.reserve(16);
  ByteWriter w(out);
  w.u32(h.context);
  w.i32(h.root_world);
  w.u64(h.seq);
  return out;
}

McastHeader parse_header(ByteReader& r) {
  McastHeader h;
  h.context = r.u32();
  h.root_world = r.i32();
  h.seq = r.u64();
  return h;
}

}  // namespace

void scout_gather_binary(Proc& p, const Comm& comm, int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  const int rel = (rank - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if (rel & mask) {
      const int parent = ((rel - mask) + root) % size;
      p.send(comm, parent, mpi::kTagScout, {}, net::FrameKind::kControl,
             mpi::CostTier::kRaw);
      return;
    }
    if (rel + mask < size) {
      const int child = ((rel + mask) + root) % size;
      (void)p.recv(comm, child, mpi::kTagScout, nullptr, mpi::CostTier::kRaw);
    }
    mask <<= 1;
  }
  // Only the root reaches this point: all subtree scouts are in.
  MC_ASSERT(rel == 0);
}

void scout_gather_linear(Proc& p, const Comm& comm, int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  if (rank != root) {
    p.send(comm, root, mpi::kTagScout, {}, net::FrameKind::kControl,
           mpi::CostTier::kRaw);
    return;
  }
  // "the root can only receive one message at a time" — N-1 sequential
  // receives, in whichever order the scouts arrive.
  for (int i = 0; i < size - 1; ++i) {
    (void)p.recv(comm, mpi::kAnySource, mpi::kTagScout, nullptr,
                 mpi::CostTier::kRaw);
  }
}

void mcast_send_framed(Proc& p, const Comm& comm,
                       std::span<const std::uint8_t> payload, int root,
                       net::FrameKind kind, mpi::CostTier tier) {
  mpi::McastChannel& ch = p.mcast_channel(comm);
  const McastHeader header{comm.context(), comm.world_rank_of(root),
                           ch.expected_seq()};
  p.self().delay(p.costs().send_overhead(
      static_cast<std::int64_t>(payload.size()), tier));
  ch.send(header_bytes(header), payload, kind);
  ch.advance_seq();
}

Buffer mcast_recv_framed(Proc& p, const Comm& comm, int root,
                         mpi::CostTier tier) {
  mpi::McastChannel& ch = p.mcast_channel(comm);
  for (;;) {
    inet::UdpDatagram d = ch.socket().recv(p.self());
    ByteReader r(d.data);
    const McastHeader h = parse_header(r);
    if (h.seq < ch.expected_seq()) {
      continue;  // stale duplicate (retransmitting protocols)
    }
    // Safe-program ordering (§4): the next multicast on this group must be
    // the one this rank is waiting for.
    MC_ASSERT_MSG(h.seq == ch.expected_seq(),
                  "multicast arrived out of program order (unsafe program?)");
    MC_ASSERT_MSG(h.context == comm.context(), "context mismatch");
    MC_ASSERT_MSG(h.root_world == comm.world_rank_of(root),
                  "broadcast root mismatch");
    // The datagram arrived zero-copy; this to_buffer() is the delivery copy
    // into the rank's private buffer at the API boundary.
    Buffer payload = d.data.slice(r.position()).to_buffer();
    p.self().delay(p.costs().recv_overhead(
        static_cast<std::int64_t>(payload.size()), tier));
    ch.advance_seq();
    return payload;
  }
}

void bcast_mcast_binary(Proc& p, const Comm& comm, Buffer& buffer, int root) {
  MC_EXPECTS(root >= 0 && root < comm.size());
  if (comm.size() == 1) {
    return;
  }
  // Channel creation precedes the scout: readiness before announcement.
  (void)p.mcast_channel(comm);
  scout_gather_binary(p, comm, root);
  if (comm.rank() == root) {
    mcast_send_framed(p, comm, buffer, root, net::FrameKind::kData);
  } else {
    buffer = mcast_recv_framed(p, comm, root);
  }
}

void bcast_mcast_linear(Proc& p, const Comm& comm, Buffer& buffer, int root) {
  MC_EXPECTS(root >= 0 && root < comm.size());
  if (comm.size() == 1) {
    return;
  }
  (void)p.mcast_channel(comm);
  scout_gather_linear(p, comm, root);
  if (comm.rank() == root) {
    mcast_send_framed(p, comm, buffer, root, net::FrameKind::kData);
  } else {
    buffer = mcast_recv_framed(p, comm, root);
  }
}

void barrier_mcast(Proc& p, const Comm& comm) {
  if (comm.size() == 1) {
    return;
  }
  (void)p.mcast_channel(comm);
  constexpr int kRoot = 0;
  scout_gather_binary(p, comm, kRoot);
  // The release is a bare zero-data multicast from the bypass layer (raw
  // tier), not an MPI data delivery — this is what makes the multicast
  // barrier cheap at every N (Fig. 13).
  if (comm.rank() == kRoot) {
    mcast_send_framed(p, comm, {}, kRoot, net::FrameKind::kControl,
                      mpi::CostTier::kRaw);
  } else {
    const Buffer release =
        mcast_recv_framed(p, comm, kRoot, mpi::CostTier::kRaw);
    MC_ASSERT(release.empty());
  }
}

}  // namespace mcmpi::coll
