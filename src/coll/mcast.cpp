#include "coll/mcast.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

namespace {

/// Framing of a data multicast: everything a receiver needs to check the
/// safe-program ordering argument of §4.
struct McastHeader {
  std::uint32_t context;
  std::int32_t root_world;
  std::uint64_t seq;
};

/// Serializes just the 16 B header; the payload goes down the stack as a
/// separate gather part, so framing never re-buffers the data.
Buffer header_bytes(const McastHeader& h) {
  Buffer out;
  out.reserve(kMcastFrameHeaderBytes);
  ByteWriter w(out);
  w.u32(h.context);
  w.i32(h.root_world);
  w.u64(h.seq);
  return out;
}

McastHeader parse_header(ByteReader& r) {
  McastHeader h;
  h.context = r.u32();
  h.root_world = r.i32();
  h.seq = r.u64();
  return h;
}

}  // namespace

void wait_priced_chain(Proc& p, sim::WaitQueue& done,
                       const std::function<bool()>& complete,
                       const std::function<SimTime()>& chain_end) {
  sim::Simulator& sim = p.self().simulator();
  if (complete()) {
    // Everything pre-arrived: the whole chain is consecutive overhead from
    // here, one (usually coalesced) delay.
    p.self().delay(chain_end() - sim.now());
    return;
  }
  SimTime end = kTimeZero;
  const bool absorbed =
      sim::wait_for_charged(p.self(), done, complete, [&]() -> SimTime {
        end = chain_end();
        return end - sim.now();
      });
  if (!absorbed) {
    p.self().delay_until(end);
  }
}

namespace {

/// Aggregate scout gather: collects `expected` scouts on `comm`'s context
/// with at most ONE wake-up, reproducing the cost chain of the original
/// one-recv-at-a-time gather exactly.
///
/// Scouts are absorbed by an engine sink the moment they arrive; when the
/// last one is in, the sequential-receive chain — each scout costs
/// max(chain, its availability) + one receive overhead, in `order` (or
/// arrival order when `order` is empty, the kAnySource root) — is priced in
/// the notifier's context and the gathering rank resumes once, when the
/// final charge has elapsed.  The per-host jitter draws happen in the same
/// sequence as the sequential gather's, so the chain end is bit-identical;
/// only the wake-ups in the middle disappear.
void gather_scouts(Proc& p, const Comm& comm, std::size_t expected,
                   const std::vector<mpi::Rank>& order) {
  if (expected == 0) {
    return;
  }
  const std::uint32_t context = comm.context();
  mpi::Engine& engine = p.engine();
  sim::Simulator& sim = p.self().simulator();

  struct Arrival {
    mpi::Rank src;
    SimTime at;
  };
  std::vector<Arrival> arrivals;
  arrivals.reserve(expected);
  sim::WaitQueue done;

  engine.set_sink(context, mpi::kTagScout,
                  [&arrivals, &done, &sim, expected](mpi::Rank src,
                                                     PayloadRef) {
                    arrivals.push_back({src, sim.now()});
                    if (arrivals.size() == expected) {
                      done.notify_one();
                    }
                  });
  struct SinkGuard {
    mpi::Engine& engine;
    std::uint32_t context;
    ~SinkGuard() { engine.clear_sink(context, mpi::kTagScout); }
  } guard{engine, context};

  // Scouts that beat this rank to the engine were available at entry, just
  // as unexpected-queue matches were for the sequential gather.
  for (const mpi::Engine::DrainedEager& m :
       engine.drain_unexpected(context, mpi::kTagScout)) {
    arrivals.push_back({m.src_world, sim.now()});
  }

  const auto complete = [&] { return arrivals.size() == expected; };
  const auto chain_end = [&]() -> SimTime {
    SimTime chain = kTimeZero;
    const auto charge = [&](SimTime available) {
      chain = std::max(chain, available) +
              p.costs().recv_overhead(0, mpi::CostTier::kRaw);
    };
    if (order.empty()) {
      for (const Arrival& a : arrivals) {
        charge(a.at);
      }
    } else {
      for (mpi::Rank src : order) {
        const auto it =
            std::find_if(arrivals.begin(), arrivals.end(),
                         [src](const Arrival& a) { return a.src == src; });
        MC_ASSERT_MSG(it != arrivals.end(), "scout from unexpected source");
        charge(it->at);
      }
    }
    return chain;
  };

  wait_priced_chain(p, done, complete, chain_end);
}

}  // namespace

void scout_gather_binary(Proc& p, const Comm& comm, int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  const int rel = (rank - root + size) % size;
  // Children are gathered in increasing-mask order (the consumption order
  // of the original per-level receives), then the scout goes to the parent
  // as this rank's last act — fire-and-forget, so the following
  // data-receive park absorbs the send overhead.
  std::vector<mpi::Rank> children;
  int mask = 1;
  while (mask < size) {
    if (rel & mask) {
      break;
    }
    if (rel + mask < size) {
      children.push_back(comm.world_rank_of(((rel + mask) + root) % size));
    }
    mask <<= 1;
  }
  gather_scouts(p, comm, children.size(), children);
  if (rel != 0) {
    const int parent = ((rel - mask) + root) % size;
    p.send_control_async(comm, parent, mpi::kTagScout);
  }
}

void scout_gather_linear(Proc& p, const Comm& comm, int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  if (rank != root) {
    p.send_control_async(comm, root, mpi::kTagScout);
    return;
  }
  // "the root can only receive one message at a time" — N-1 sequential
  // receive charges, in whichever order the scouts arrive.
  gather_scouts(p, comm, static_cast<std::size_t>(size - 1), {});
}

void mcast_send_framed(Proc& p, const Comm& comm,
                       std::span<const std::uint8_t> payload, int root,
                       net::FrameKind kind, mpi::CostTier tier) {
  mpi::McastChannel& ch = p.mcast_channel(comm);
  const McastHeader header{comm.context(), comm.world_rank_of(root),
                           ch.expected_seq()};
  p.self().delay(p.costs().send_overhead(
      static_cast<std::int64_t>(payload.size()), tier));
  ch.send(header_bytes(header), payload, kind);
  ch.advance_seq();
}

Buffer mcast_recv_framed(Proc& p, const Comm& comm, int root,
                         mpi::CostTier tier) {
  mpi::McastChannel& ch = p.mcast_channel(comm);
  for (;;) {
    // Charged receive: when this rank parks for the datagram, the arrival
    // prices the receive overhead (header peek decides — stale duplicates
    // wake immediately and cost nothing) and the rank resumes once, at
    // arrival + overhead, instead of waking only to sleep the charge.
    auto [d, charged] = ch.socket().recv_charged(
        p.self(), [&p, &ch, tier](const inet::UdpDatagram& dg) -> SimTime {
          ByteReader peek(dg.data);
          if (parse_header(peek).seq < ch.expected_seq()) {
            return kTimeZero;  // stale duplicate: skipped, never charged
          }
          return p.costs().recv_overhead(
              static_cast<std::int64_t>(dg.data.size() - peek.position()),
              tier);
        });
    ByteReader r(d.data);
    const McastHeader h = parse_header(r);
    if (h.seq < ch.expected_seq()) {
      continue;  // stale duplicate (retransmitting protocols)
    }
    // Safe-program ordering (§4): the next multicast on this group must be
    // the one this rank is waiting for.
    MC_ASSERT_MSG(h.seq == ch.expected_seq(),
                  "multicast arrived out of program order (unsafe program?)");
    MC_ASSERT_MSG(h.context == comm.context(), "context mismatch");
    MC_ASSERT_MSG(h.root_world == comm.world_rank_of(root),
                  "broadcast root mismatch");
    // The datagram arrived zero-copy; this to_buffer() is the delivery copy
    // into the rank's private buffer at the API boundary.
    Buffer payload = d.data.slice(r.position()).to_buffer();
    if (!charged) {
      p.self().delay(p.costs().recv_overhead(
          static_cast<std::int64_t>(payload.size()), tier));
    }
    ch.advance_seq();
    return payload;
  }
}

void bcast_mcast_binary(Proc& p, const Comm& comm, Buffer& buffer, int root) {
  MC_EXPECTS(root >= 0 && root < comm.size());
  if (comm.size() == 1) {
    return;
  }
  // Channel creation precedes the scout: readiness before announcement.
  (void)p.mcast_channel(comm);
  scout_gather_binary(p, comm, root);
  if (comm.rank() == root) {
    mcast_send_framed(p, comm, buffer, root, net::FrameKind::kData);
  } else {
    buffer = mcast_recv_framed(p, comm, root);
  }
}

void bcast_mcast_linear(Proc& p, const Comm& comm, Buffer& buffer, int root) {
  MC_EXPECTS(root >= 0 && root < comm.size());
  if (comm.size() == 1) {
    return;
  }
  (void)p.mcast_channel(comm);
  scout_gather_linear(p, comm, root);
  if (comm.rank() == root) {
    mcast_send_framed(p, comm, buffer, root, net::FrameKind::kData);
  } else {
    buffer = mcast_recv_framed(p, comm, root);
  }
}

void barrier_mcast(Proc& p, const Comm& comm) {
  if (comm.size() == 1) {
    return;
  }
  (void)p.mcast_channel(comm);
  constexpr int kRoot = 0;
  scout_gather_binary(p, comm, kRoot);
  // The release is a bare zero-data multicast from the bypass layer (raw
  // tier), not an MPI data delivery — this is what makes the multicast
  // barrier cheap at every N (Fig. 13).
  if (comm.rank() == kRoot) {
    mcast_send_framed(p, comm, {}, kRoot, net::FrameKind::kControl,
                      mpi::CostTier::kRaw);
  } else {
    const Buffer release =
        mcast_recv_framed(p, comm, kRoot, mpi::CostTier::kRaw);
    MC_ASSERT(release.empty());
  }
}

}  // namespace mcmpi::coll
