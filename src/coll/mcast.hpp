#pragma once
/// \file mcast.hpp
/// Scout-synchronized multicast collectives — the paper's contribution.
///
/// IP multicast only reaches receivers that are ready (socket created,
/// group joined, buffer space available).  Both algorithms make readiness
/// explicit with zero-data *scout* messages flowing to the broadcast root:
///
///   Binary (Fig. 3): scouts ascend a binomial tree rooted at the root —
///   N-1 scouts in ceil(log2 N) pipelined steps; then one multicast.
///
///   Linear (Fig. 4): every receiver scouts directly to the root, which
///   consumes them one at a time (N-1 sequential receives); then one
///   multicast.
///
/// Either way the total is (N-1) + (floor(M/T)+1) frames versus MPICH's
/// (floor(M/T)+1)*(N-1) — the multicast payload crosses the network once.
///
/// A receiver's scout is sent only after its multicast channel exists, so
/// the root's multicast can never beat readiness: this is the ordering
/// argument of the paper's §4 (receive posted before send ⇒ no loss, and
/// back-to-back broadcasts on one group deliver in program order, checked
/// here with per-channel sequence numbers).

#include <functional>

#include "common/bytes.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

/// Aggregate charged collection, the shared wake protocol of the scout
/// gather and the data-scout collectives (mcast_reduce.hpp): parks until
/// `complete()` with at most ONE wake-up, pricing `chain_end()` — the end
/// of the sequential receive chain, recomputed in the notifier's context —
/// into the final wake.  When everything pre-arrived, the whole chain is
/// slept here as one (usually coalesced) delay.
void wait_priced_chain(mpi::Proc& p, sim::WaitQueue& done,
                       const std::function<bool()>& complete,
                       const std::function<SimTime()>& chain_end);

/// Binomial-tree scout gather to `root` (used by Fig. 3 broadcast and the
/// multicast barrier).  Every non-root rank sends exactly one zero-data
/// scout; the root returns once all N-1 scouts are accounted for.
void scout_gather_binary(mpi::Proc& p, const mpi::Comm& comm, int root);

/// Linear scout gather: all non-root ranks scout straight to the root.
void scout_gather_linear(mpi::Proc& p, const mpi::Comm& comm, int root);

/// Wire size of the (context, root, sequence) framing header every framed
/// multicast carries — budget it when sizing a datagram against the
/// fragment-offset ceiling or a socket buffer.
inline constexpr std::size_t kMcastFrameHeaderBytes = 16;

/// Multicasts `payload` on the communicator's channel with the (context,
/// root, sequence) framing; charges the sender software overhead for
/// `tier` and advances the channel sequence.  Data broadcasts use
/// CostTier::kMcastData; the barrier's bare release uses kRaw.
void mcast_send_framed(mpi::Proc& p, const mpi::Comm& comm,
                       std::span<const std::uint8_t> payload, int root,
                       net::FrameKind kind,
                       mpi::CostTier tier = mpi::CostTier::kMcastData);

/// Receives the next in-sequence framed multicast for `comm`, skipping
/// stale duplicates; asserts the §4 ordering property (sequence and root
/// must match the program order); charges the receiver software overhead
/// for `tier` and advances the channel sequence.
Buffer mcast_recv_framed(mpi::Proc& p, const mpi::Comm& comm, int root,
                         mpi::CostTier tier = mpi::CostTier::kMcastData);

/// Fig. 3: binary scout synchronization, then one IP multicast.
void bcast_mcast_binary(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                        int root);

/// Fig. 4: linear scout synchronization, then one IP multicast.
void bcast_mcast_linear(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                        int root);

/// §3.2: binomial scout reduction to rank 0, then one zero-data multicast
/// releases every rank.  (N-1) point-to-point messages + 1 multicast,
/// versus MPICH's 2(N-K) + K·log2 K.
void barrier_mcast(mpi::Proc& p, const mpi::Comm& comm);

}  // namespace mcmpi::coll
