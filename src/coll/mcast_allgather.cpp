#include "coll/mcast_allgather.hpp"

#include "coll/mcast.hpp"
#include "common/assert.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

std::string to_string(AllgatherMode mode) {
  return mode == AllgatherMode::kLockstep ? "lockstep" : "blast";
}

namespace {

AllgatherOutcome lockstep(Proc& p, const Comm& comm,
                          std::span<const std::uint8_t> data) {
  AllgatherOutcome out;
  out.blocks.resize(static_cast<std::size_t>(comm.size()));
  // Readiness once: after the barrier every channel exists and every rank
  // is inside the collective.
  barrier_mcast(p, comm);
  for (int r = 0; r < comm.size(); ++r) {
    if (comm.rank() == r) {
      out.blocks[static_cast<std::size_t>(r)].assign(data.begin(), data.end());
      mcast_send_framed(p, comm, data, r, net::FrameKind::kData);
    } else {
      out.blocks[static_cast<std::size_t>(r)] = mcast_recv_framed(p, comm, r);
    }
  }
  return out;
}

AllgatherOutcome blast(Proc& p, const Comm& comm,
                       std::span<const std::uint8_t> data,
                       SimTime timeout) {
  AllgatherOutcome out;
  const int size = comm.size();
  out.blocks.resize(static_cast<std::size_t>(size));
  out.blocks[static_cast<std::size_t>(comm.rank())].assign(data.begin(),
                                                           data.end());
  mpi::McastChannel& ch = p.mcast_channel(comm);

  barrier_mcast(p, comm);
  const std::uint64_t op_seq = ch.expected_seq();

  // Fire.  Every block carries the same operation sequence number; senders
  // are identified by the root field.  Gather-send: header and payload are
  // assembled into the wire datagram in one pass.
  {
    Buffer header;
    header.reserve(16);
    ByteWriter w(header);
    w.u32(comm.context());
    w.i32(comm.world_rank_of(comm.rank()));
    w.u64(op_seq);
    p.self().delay(p.costs().send_overhead(
        static_cast<std::int64_t>(data.size()), mpi::CostTier::kMcastData));
    ch.send(header, data, net::FrameKind::kData);
  }

  // Collect until complete or until the deadline says the rest are gone.
  const SimTime deadline = p.self().now() + timeout;
  std::vector<bool> have(static_cast<std::size_t>(size), false);
  have[static_cast<std::size_t>(comm.rank())] = true;
  int received = 0;
  while (received < size - 1) {
    // Charged receive: a fresh block that wakes the parked rank prices the
    // receive overhead into the wake-up; stale or duplicate traffic wakes
    // immediately and costs nothing until delivered.
    auto datagram = ch.socket().recv_until_charged(
        p.self(), deadline,
        [&](const inet::UdpDatagram& dg) -> SimTime {
          ByteReader peek(dg.data);
          (void)peek.u32();  // context
          const std::int32_t root_world = peek.i32();
          if (peek.u64() != op_seq) {
            return kTimeZero;  // stale traffic from an earlier operation
          }
          const int root = comm.group().rank_of(root_world);
          if (root < 0 || have[static_cast<std::size_t>(root)]) {
            return kTimeZero;  // duplicate
          }
          return p.costs().recv_overhead(
              static_cast<std::int64_t>(dg.data.size() - peek.position()),
              mpi::CostTier::kMcastData);
        });
    if (!datagram.has_value()) {
      break;  // remaining blocks were dropped on our socket buffer
    }
    ByteReader r(datagram->datagram.data);
    const std::uint32_t context = r.u32();
    const std::int32_t root_world = r.i32();
    const std::uint64_t seq = r.u64();
    if (seq < op_seq) {
      continue;  // stale traffic from an earlier operation
    }
    MC_ASSERT_MSG(seq == op_seq && context == comm.context(),
                  "unexpected future multicast during blast allgather");
    const int root = comm.group().rank_of(root_world);
    MC_ASSERT(root >= 0 && root != comm.rank());
    if (have[static_cast<std::size_t>(root)]) {
      continue;  // duplicate
    }
    have[static_cast<std::size_t>(root)] = true;
    auto payload = r.rest();
    if (!datagram->charge_absorbed) {
      p.self().delay(p.costs().recv_overhead(
          static_cast<std::int64_t>(payload.size()),
          mpi::CostTier::kMcastData));
    }
    out.blocks[static_cast<std::size_t>(root)].assign(payload.begin(),
                                                      payload.end());
    ++received;
  }
  out.missing = size - 1 - received;
  ch.advance_seq();  // the whole operation consumed one sequence slot

  // Resynchronize so the next collective starts from a clean, safe state
  // (stragglers' stale frames are skipped by the sequence check).
  barrier_mcast(p, comm);
  return out;
}

}  // namespace

AllgatherOutcome allgather_mcast(Proc& p, const Comm& comm,
                                 std::span<const std::uint8_t> data,
                                 AllgatherMode mode, SimTime blast_timeout) {
  if (comm.size() == 1) {
    AllgatherOutcome out;
    out.blocks.emplace_back(data.begin(), data.end());
    return out;
  }
  (void)p.mcast_channel(comm);
  return mode == AllgatherMode::kLockstep ? lockstep(p, comm, data)
                                          : blast(p, comm, data, blast_timeout);
}

}  // namespace mcmpi::coll
