#pragma once
/// \file mcast_allgather.hpp
/// Many-to-many collectives over IP multicast — the paper's §5 future work,
/// implemented and instrumented.
///
/// Allgather is the natural many-to-many use of multicast: every rank's
/// block must reach every other rank, so each block should cross the wire
/// once (N multicasts total) instead of the N(N-1) block-hops of a
/// point-to-point ring.  Two pacing disciplines are provided:
///
///   kLockstep — one barrier up front, then ranks multicast their blocks in
///       rank order, everyone receiving each block before the next is sent.
///       Readiness is implied by the round structure: nobody can multicast
///       round r+1 before consuming round r.  Never loses data.
///
///   kBlast — one barrier up front, then every rank multicasts immediately
///       and collects the other N-1 blocks in arrival order.  Fastest
///       possible pacing, but N-1 senders converge on every receiver's
///       socket buffer at once: precisely the overrun hazard the paper
///       warns about ("a set of fast senders may overrun a single
///       receiver", §2/§5).  Blocks that find the buffer full are lost;
///       the outcome reports how many.  A trailing barrier resynchronizes
///       the group so later collectives stay safe.
///
/// The abl_overrun bench sweeps the receive-buffer size to map where blast
/// pacing starts dropping and what lockstep's safety costs in latency.

#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

enum class AllgatherMode {
  kLockstep,
  kBlast,
};

std::string to_string(AllgatherMode mode);

struct AllgatherOutcome {
  /// blocks[r] is rank r's contribution; the local block is always present.
  /// In blast mode a lost block leaves blocks[r] empty.
  std::vector<Buffer> blocks;
  /// Number of peer blocks this rank never received (blast mode overrun;
  /// always 0 in lockstep mode).
  int missing = 0;
};

/// Shares `data` among all ranks of `comm` via IP multicast.
/// `blast_timeout` bounds how long a blast-mode rank waits for blocks that
/// may never come (lost to overrun).
AllgatherOutcome allgather_mcast(mpi::Proc& p, const mpi::Comm& comm,
                                 std::span<const std::uint8_t> data,
                                 AllgatherMode mode,
                                 SimTime blast_timeout = milliseconds(20));

}  // namespace mcmpi::coll
