#include "coll/mcast_alltoall.hpp"

#include "coll/mcast.hpp"
#include "common/assert.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

std::vector<Buffer> alltoall_mcast_rr(Proc& p, const Comm& comm,
                                      const std::vector<Buffer>& to_each) {
  const int size = comm.size();
  const int me = comm.rank();
  MC_EXPECTS_MSG(static_cast<int>(to_each.size()) == size,
                 "alltoall needs one buffer per rank");
  std::vector<Buffer> out(static_cast<std::size_t>(size));
  if (size == 1) {
    out[0] = to_each[0];
    return out;
  }
  // Channel first, then one barrier: after it every rank is inside the
  // collective with its multicast socket live, so the lockstep rounds can
  // never outrun a receiver (the allgather_mcast readiness argument).
  (void)p.mcast_channel(comm);
  barrier_mcast(p, comm);

  for (int round = 0; round < size; ++round) {
    if (round == me) {
      // One datagram: [u32 count][u64 len x N][blocks...], framed and
      // multicast through the gather-send path.
      std::size_t total = alltoall_table_bytes(size);
      for (const Buffer& block : to_each) {
        total += block.size();
      }
      Buffer datagram;
      datagram.reserve(total);
      ByteWriter w(datagram);
      w.u32(static_cast<std::uint32_t>(size));
      for (const Buffer& block : to_each) {
        w.u64(block.size());
      }
      for (const Buffer& block : to_each) {
        w.bytes(block);
      }
      mcast_send_framed(p, comm, datagram, round, net::FrameKind::kData);
      out[static_cast<std::size_t>(me)] =
          to_each[static_cast<std::size_t>(me)];
    } else {
      const Buffer payload = mcast_recv_framed(p, comm, round);
      ByteReader reader(payload);
      const auto count = static_cast<int>(reader.u32());
      MC_ASSERT_MSG(count == size, "alltoall round with a foreign table");
      std::size_t offset = 0;
      std::size_t mine = 0;
      for (int rank = 0; rank < size; ++rank) {
        const std::uint64_t len = reader.u64();
        if (rank < me) {
          offset += len;
        } else if (rank == me) {
          mine = len;
        }
      }
      const auto blocks = reader.rest();
      MC_ASSERT_MSG(offset + mine <= blocks.size(),
                    "alltoall table overruns the datagram");
      const auto view = blocks.subspan(offset, mine);
      out[static_cast<std::size_t>(round)].assign(view.begin(), view.end());
    }
  }
  return out;
}

}  // namespace mcmpi::coll
