#pragma once
/// \file mcast_alltoall.hpp
/// Personalized all-to-all over IP multicast — round-robin lockstep.
///
/// The pairwise-shift alltoall (mpich.hpp) exchanges N-1 point-to-point
/// message pairs per rank: every rank pays N-1 send and N-1 receive
/// software overheads, and N(N-1) separate datagrams hit the wire.  On a
/// multicast-capable network each rank can instead transmit its WHOLE
/// personalized vector once: in rank order (the lockstep discipline of
/// allgather_mcast, which guarantees receiver readiness by construction),
/// rank r multicasts [block table || block_0 .. block_{N-1}] through the
/// zero-copy gather-send, and every receiver slices out the one block
/// addressed to it.  N multicast sends replace N(N-1) unicasts — the same
/// per-message-overhead saving the paper's broadcast exploits, applied to
/// the fully personalized pattern.  The price is receive bandwidth: every
/// rank hears every byte (N*b per round instead of b), so the win lives
/// where per-message cost, not wire bytes, dominates — and the whole
/// concatenated vector must fit one multicast datagram (registry
/// predicate: the coll::kMaxMcastDatagram fragment-offset ceiling of
/// coll/limits.hpp and the receiver socket buffer).

#include <vector>

#include "coll/limits.hpp"
#include "common/bytes.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

/// Wire overhead of the block table for an N-rank alltoall round (u32
/// count + one u64 length per block) — budget it when sizing the datagram.
inline constexpr std::size_t alltoall_table_bytes(int ranks) {
  return 4 + 8 * static_cast<std::size_t>(ranks);
}

/// Round-robin multicast alltoall: `to_each[i]` goes to comm rank i;
/// returns what every rank sent to this one.
std::vector<Buffer> alltoall_mcast_rr(mpi::Proc& p, const mpi::Comm& comm,
                                      const std::vector<Buffer>& to_each);

}  // namespace mcmpi::coll
