#include "coll/mcast_reduce.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "coll/mcast.hpp"
#include "common/assert.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

namespace {

/// Per-(communicator, tag) protocol state for the async block exchange.
/// Every rank advances op_seq exactly once per collective that uses the
/// tag (senders when framing, the root when collecting), so the sequence
/// numbers agree across ranks without extra traffic; blocks of future
/// operations that overtake a straggler are stashed by sequence.
struct AsyncBlockStates {
  struct PerTag {
    std::uint64_t op_seq = 0;
    /// Framed blocks of future operations (zero-copy views; the ref keeps
    /// the transport buffer alive until that operation collects them).
    std::map<std::uint64_t, std::vector<std::pair<mpi::Rank, PayloadRef>>>
        stashed;
  };
  std::map<mpi::Tag, PerTag> by_tag;
};

/// Fire-and-forget framed block send to comm-rank `dst` (sender side of the
/// protocol above).
void send_block_async(Proc& p, const Comm& comm, int dst, mpi::Tag tag,
                      std::span<const std::uint8_t> bytes) {
  auto& st = p.coll_state<AsyncBlockStates>(comm).by_tag[tag];
  Buffer framed;
  framed.reserve(bytes.size() + 8);
  ByteWriter w(framed);
  w.u64(st.op_seq++);
  w.bytes(bytes);
  p.send_data_async(comm, dst, tag, framed);
}

/// Collects one framed block from every world rank in `sources`, with at
/// most one wake-up: blocks are absorbed by an engine sink (or drained from
/// the unexpected queue when they beat this rank into the engine), and the
/// sequential receive chain — each block max(chain, availability) + its
/// receive overhead, in arrival order — is priced into the final wake, the
/// cost model of the aggregate scout gather (coll/mcast.cpp).  Returns
/// zero-copy views of the payloads in `sources` order; the caller performs
/// its one delivery copy at the API boundary.
std::vector<PayloadRef> collect_async_blocks(
    Proc& p, const Comm& comm, mpi::Tag tag,
    const std::vector<mpi::Rank>& sources, mpi::CostTier tier) {
  auto& st = p.coll_state<AsyncBlockStates>(comm).by_tag[tag];
  const std::uint64_t op_seq = st.op_seq++;
  const std::size_t expected = sources.size();
  if (expected == 0) {
    return {};
  }
  const std::uint32_t context = comm.context();
  mpi::Engine& engine = p.engine();
  sim::Simulator& sim = p.self().simulator();

  struct Arrival {
    mpi::Rank src;
    SimTime at;
    PayloadRef data;
  };
  std::vector<Arrival> arrivals;
  arrivals.reserve(expected);
  sim::WaitQueue done;

  // Blocks of THIS operation that arrived while an earlier collection on
  // the same tag was still in flight.
  if (auto it = st.stashed.find(op_seq); it != st.stashed.end()) {
    for (auto& [src, data] : it->second) {
      arrivals.push_back({src, sim.now(), std::move(data)});
    }
    st.stashed.erase(it);
  }

  const auto accept = [&](mpi::Rank src, PayloadRef framed) {
    ByteReader r(framed);
    const std::uint64_t seq = r.u64();
    PayloadRef data = framed.slice(r.position());
    if (seq == op_seq) {
      arrivals.push_back({src, sim.now(), std::move(data)});
      if (arrivals.size() == expected) {
        done.notify_one();
      }
      return;
    }
    // A block for a future collective overtook a straggler of this one.
    MC_ASSERT_MSG(seq > op_seq, "stale async block (sequence ran backwards)");
    st.stashed[seq].emplace_back(src, std::move(data));
  };

  engine.set_sink(context, tag, [&accept](mpi::Rank src, PayloadRef data) {
    accept(src, std::move(data));
  });
  struct SinkGuard {
    mpi::Engine& engine;
    std::uint32_t context;
    mpi::Tag tag;
    ~SinkGuard() { engine.clear_sink(context, tag); }
  } guard{engine, context, tag};

  for (const mpi::Engine::DrainedEager& m :
       engine.drain_unexpected(context, tag)) {
    accept(m.src_world, m.data);
  }

  const auto complete = [&] { return arrivals.size() == expected; };
  const auto chain_end = [&]() -> SimTime {
    SimTime chain = kTimeZero;
    for (const Arrival& a : arrivals) {
      chain = std::max(chain, a.at) +
              p.costs().recv_overhead(static_cast<std::int64_t>(a.data.size()),
                                      tier);
    }
    return chain;
  };

  wait_priced_chain(p, done, complete, chain_end);

  std::vector<PayloadRef> out(expected);
  for (std::size_t i = 0; i < expected; ++i) {
    const auto it = std::find_if(
        arrivals.begin(), arrivals.end(),
        [&](const Arrival& a) { return a.src == sources[i]; });
    MC_ASSERT_MSG(it != arrivals.end(), "async block from unexpected source");
    out[i] = std::move(it->data);
    it->src = mpi::kAnySource;  // consumed; guards against duplicate sources
  }
  return out;
}

/// Group-aligned slice boundary: first byte of rank r's slice.
std::size_t slice_offset(std::size_t groups, std::size_t group_bytes, int size,
                         int r) {
  return (groups * static_cast<std::size_t>(r) /
          static_cast<std::size_t>(size)) *
         group_bytes;
}

/// World ranks of every member except `root`, in comm-rank order (the
/// expected data-scout senders).
std::vector<mpi::Rank> non_root_world_ranks(const Comm& comm, int root) {
  std::vector<mpi::Rank> sources;
  sources.reserve(static_cast<std::size_t>(comm.size() - 1));
  for (int r = 0; r < comm.size(); ++r) {
    if (r != root) {
      sources.push_back(comm.world_rank_of(r));
    }
  }
  return sources;
}

}  // namespace

Buffer reduce_mcast_scout(Proc& p, const Comm& comm,
                          std::span<const std::uint8_t> data, mpi::Op op,
                          mpi::Datatype type, int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  MC_EXPECTS(root >= 0 && root < size);
  MC_EXPECTS(data.size() % mpi::datatype_size(type) == 0);
  if (size == 1) {
    return Buffer(data.begin(), data.end());
  }
  const std::size_t count = data.size() / mpi::datatype_size(type);
  const std::size_t group = mpi::op_group_elements(op);
  // Slices may only split at combining-group boundaries.  An operand that
  // is not a whole number of groups (a custom op with an awkward extent —
  // the predicate cannot see the op, so kAuto may still land here) degrades
  // to ONE group spanning the whole vector: a single rank combines
  // full-width partials, still in rank order, and the conservative
  // eager-path predicate already admits that worst-case scout size.
  const bool aligned = group > 0 && count % group == 0;
  const std::size_t groups = aligned ? count / group : (count > 0 ? 1 : 0);
  const std::size_t group_bytes =
      aligned ? group * mpi::datatype_size(type) : data.size();

  (void)p.mcast_channel(comm);
  // Readiness once for the whole lockstep phase (§4: receivers before any
  // multicast fires).
  barrier_mcast(p, comm);

  const std::size_t lo = slice_offset(groups, group_bytes, size, rank);
  const std::size_t hi = slice_offset(groups, group_bytes, size, rank + 1);
  const std::size_t slice_count = (hi - lo) / mpi::datatype_size(type);

  // Lockstep multicast of every operand, combining this rank's slice in
  // rank order as the operands stream past (lower ∘ higher).
  Buffer myslice;
  for (int r = 0; r < size; ++r) {
    Buffer operand;
    std::span<const std::uint8_t> view;
    if (r == rank) {
      mcast_send_framed(p, comm, data, r, net::FrameKind::kData);
      view = data;
    } else {
      operand = mcast_recv_framed(p, comm, r);
      MC_ASSERT_MSG(operand.size() == data.size(),
                    "reduce operand size mismatch across ranks");
      view = operand;
    }
    Buffer slice(view.begin() + static_cast<std::ptrdiff_t>(lo),
                 view.begin() + static_cast<std::ptrdiff_t>(hi));
    if (r == 0) {
      myslice = std::move(slice);
    } else {
      mpi::apply_op(op, type, myslice, slice, slice_count);
      myslice = std::move(slice);
    }
  }

  // Combined partial slices flow to the root as data scouts.
  if (rank != root) {
    send_block_async(p, comm, root, mpi::kTagReducePartial, myslice);
    return {};
  }
  const std::vector<PayloadRef> partials =
      collect_async_blocks(p, comm, mpi::kTagReducePartial,
                           non_root_world_ranks(comm, root),
                           mpi::CostTier::kMpi);

  // The one delivery copy: slices land directly in the result buffer.
  Buffer result(data.size());
  std::copy(myslice.begin(), myslice.end(),
            result.begin() + static_cast<std::ptrdiff_t>(lo));
  std::size_t idx = 0;
  for (int r = 0; r < size; ++r) {
    if (r == root) {
      continue;
    }
    const PayloadRef& part = partials[idx++];
    const std::size_t r_lo = slice_offset(groups, group_bytes, size, r);
    const std::size_t r_hi = slice_offset(groups, group_bytes, size, r + 1);
    MC_ASSERT_MSG(part.size() == r_hi - r_lo, "partial slice size mismatch");
    std::copy(part.data(), part.data() + part.size(),
              result.begin() + static_cast<std::ptrdiff_t>(r_lo));
  }
  return result;
}

std::vector<Buffer> gather_scout_combining(Proc& p, const Comm& comm,
                                           std::span<const std::uint8_t> data,
                                           int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  MC_EXPECTS(root >= 0 && root < size);
  if (size == 1) {
    std::vector<Buffer> out;
    out.emplace_back(data.begin(), data.end());
    return out;
  }
  if (rank != root) {
    send_block_async(p, comm, root, mpi::kTagGatherBlock, data);
    return {};
  }
  const std::vector<PayloadRef> blocks =
      collect_async_blocks(p, comm, mpi::kTagGatherBlock,
                           non_root_world_ranks(comm, root),
                           mpi::CostTier::kMpi);
  std::vector<Buffer> out(static_cast<std::size_t>(size));
  out[static_cast<std::size_t>(root)] = Buffer(data.begin(), data.end());
  std::size_t idx = 0;
  for (int r = 0; r < size; ++r) {
    if (r != root) {
      // The delivery copy into the caller's private block, at the API
      // boundary.
      out[static_cast<std::size_t>(r)] = blocks[idx++].to_buffer();
    }
  }
  return out;
}

}  // namespace mcmpi::coll
