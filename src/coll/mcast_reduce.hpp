#pragma once
/// \file mcast_reduce.hpp
/// Scout-combining reduction and gather — the multicast-native extension of
/// the paper's scout protocols to data-carrying collectives.
///
/// reduce "mcast-scout": every rank multicasts its operand once in rank
/// order (lockstep, behind one multicast barrier), every rank combines its
/// assigned slice of all operands locally in rank order, then the combined
/// partial slices flow to the root as fire-and-forget data scouts.  The
/// payload crosses the shared medium N times total (each operand once) and
/// the root receives ~one payload image of partials instead of N-1 full
/// operands — the combining work is spread over all ranks, the root's
/// receive bandwidth is the bandwidth-splitting win.
///
/// gather "scout-combining": non-root ranks ship their block to the root as
/// one fire-and-forget data scout each; the root absorbs them through an
/// engine sink (plus Engine::drain_unexpected for blocks that beat it into
/// the engine) and is charged the whole sequential receive chain in at most
/// one wake-up, exactly like the aggregate scout gather of coll/mcast.cpp.
///
/// Both protocols frame each async block with a per-communicator operation
/// sequence number, so a block for collective k+1 that overtakes a straggler
/// of collective k (possible: the senders never block) is stashed, not
/// miscounted.

#include <vector>

#include "common/bytes.hpp"
#include "mpi/datatype.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

/// Multicast-lockstep reduce with scout-combined partial slices.  Returns
/// the reduced vector at `root` (empty elsewhere).  Operands combine in
/// communicator rank order (safe for non-commutative ops); slices split
/// only at op_group_elements(op) boundaries.  Requires the partial slices
/// to take the eager path (see the registry predicate).
Buffer reduce_mcast_scout(mpi::Proc& p, const mpi::Comm& comm,
                          std::span<const std::uint8_t> data, mpi::Op op,
                          mpi::Datatype type, int root);

/// Flat gather over fire-and-forget data scouts with an aggregate charged
/// collection at the root.  Returns comm.size() blocks at `root` (indexed
/// by comm rank; empty vector elsewhere).  Requires eager-path blocks.
std::vector<Buffer> gather_scout_combining(mpi::Proc& p, const mpi::Comm& comm,
                                           std::span<const std::uint8_t> data,
                                           int root);

}  // namespace mcmpi::coll
