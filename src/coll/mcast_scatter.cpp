#include "coll/mcast_scatter.hpp"

#include <numeric>

#include "coll/mcast.hpp"
#include "common/assert.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

Buffer scatter_mcast_slice(Proc& p, const Comm& comm,
                           const std::vector<Buffer>& chunks, int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  MC_EXPECTS(root >= 0 && root < size);
  if (size == 1) {
    MC_EXPECTS_MSG(chunks.size() == 1, "scatter needs one chunk per rank");
    return chunks[0];
  }

  // Channel creation precedes the scout: readiness before the single
  // transmission, the §4 ordering argument.
  (void)p.mcast_channel(comm);
  scout_gather_binary(p, comm, root);

  if (rank == root) {
    MC_EXPECTS_MSG(static_cast<int>(chunks.size()) == size,
                   "scatter needs one chunk per rank");
    const std::size_t total = std::accumulate(
        chunks.begin(), chunks.end(), scatter_table_bytes(size),
        [](std::size_t sum, const Buffer& c) { return sum + c.size(); });
    // The registry predicate checks the facade's chunk_bytes HINT, which an
    // explicitly named algorithm may pass as 0 — so the real payload must be
    // re-checked here, or an oversized datagram silently never enqueues and
    // every receiver hangs.
    MC_EXPECTS_MSG(total + kMcastFrameHeaderBytes <= kMaxMcastDatagram,
                   "concatenated scatter payload exceeds the multicast "
                   "datagram ceiling (use the point-to-point algorithm)");
    MC_EXPECTS_MSG(total + kMcastFrameHeaderBytes <= p.mcast_recv_buffer(),
                   "concatenated scatter payload exceeds the receivers' "
                   "multicast socket buffer (use the point-to-point "
                   "algorithm)");
    Buffer wire;
    wire.reserve(total);
    ByteWriter w(wire);
    w.u32(static_cast<std::uint32_t>(size));
    for (const Buffer& chunk : chunks) {
      w.u64(chunk.size());
    }
    for (const Buffer& chunk : chunks) {
      w.bytes(chunk);
    }
    mcast_send_framed(p, comm, wire, root, net::FrameKind::kData);
    return chunks[static_cast<std::size_t>(root)];
  }

  const Buffer wire = mcast_recv_framed(p, comm, root);
  ByteReader r(wire);
  const std::uint32_t n = r.u32();
  MC_ASSERT_MSG(n == static_cast<std::uint32_t>(size),
                "scatter chunk table does not match the communicator");
  std::size_t offset = 0;
  std::size_t mine_bytes = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t len = r.u64();
    if (i < static_cast<std::uint32_t>(rank)) {
      offset += static_cast<std::size_t>(len);
    } else if (i == static_cast<std::uint32_t>(rank)) {
      mine_bytes = static_cast<std::size_t>(len);
    }
  }
  const auto body = r.rest();
  MC_ASSERT(offset + mine_bytes <= body.size());
  return Buffer(body.begin() + static_cast<std::ptrdiff_t>(offset),
                body.begin() + static_cast<std::ptrdiff_t>(offset + mine_bytes));
}

}  // namespace mcmpi::coll
