#pragma once
/// \file mcast_scatter.hpp
/// Single-transmission multicast scatter — the bandwidth-saving trick of
/// Zhou et al. applied to MPI_Scatter.
///
/// The point-to-point scatter sends N-1 separate chunk messages from the
/// root.  On a multicast-capable network the root can instead transmit the
/// concatenated payload ONCE: scout synchronization makes every receiver
/// ready (§4), the root multicasts [chunk table || chunk bytes] through the
/// zero-copy gather-send path, and each rank slices its own chunk out of
/// the delivered datagram.  The root pays one send overhead instead of N-1
/// and the payload crosses the shared medium once.
///
/// The whole concatenated payload must fit one simulated UDP datagram:
/// the IP fragment offset field (16 bits of 8-byte units) caps datagrams
/// near 512 KiB (coll::kMaxMcastDatagram, coll/limits.hpp), which the
/// registry predicate enforces.

#include <vector>

#include "coll/limits.hpp"
#include "common/bytes.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

/// Wire overhead of the chunk table for an N-rank scatter (u32 count +
/// one u64 length per chunk).
inline constexpr std::size_t scatter_table_bytes(int ranks) {
  return 4 + 8 * static_cast<std::size_t>(ranks);
}

/// Scatter `chunks` (root only; comm.size() entries) with one multicast;
/// returns this rank's chunk.
Buffer scatter_mcast_slice(mpi::Proc& p, const mpi::Comm& comm,
                           const std::vector<Buffer>& chunks, int root);

}  // namespace mcmpi::coll
