#include "coll/mpich.hpp"

#include "common/assert.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

void bcast_mpich(Proc& p, const Comm& comm, Buffer& buffer, int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  MC_EXPECTS(root >= 0 && root < size);
  if (size == 1) {
    return;
  }
  const int rel = (rank - root + size) % size;

  // Receive from the parent: the first set bit of the relative rank names it.
  int mask = 1;
  while (mask < size) {
    if (rel & mask) {
      const int parent = ((rel - mask) + root) % size;
      buffer = p.recv(comm, parent, mpi::kTagCollective);
      break;
    }
    mask <<= 1;
  }
  // Forward to children, largest subtree first (as MPICH does).
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < size) {
      const int child = ((rel + mask) + root) % size;
      p.send(comm, child, mpi::kTagCollective, buffer);
    }
    mask >>= 1;
  }
}

void barrier_mpich(Proc& p, const Comm& comm) {
  const int size = comm.size();
  const int rank = comm.rank();
  if (size == 1) {
    return;
  }
  // K = largest power of two <= size.
  int k = 1;
  while (k * 2 <= size) {
    k *= 2;
  }

  if (rank >= k) {
    // Phase 1: fold in; phase 3: wait for release.
    p.send(comm, rank - k, mpi::kTagBarrier, {}, net::FrameKind::kControl);
    (void)p.recv(comm, rank - k, mpi::kTagBarrier);
    return;
  }
  if (rank < size - k) {
    (void)p.recv(comm, rank + k, mpi::kTagBarrier);
  }
  // Phase 2: recursive doubling among the power-of-two set.
  for (int mask = 1; mask < k; mask <<= 1) {
    const int partner = rank ^ mask;
    (void)p.sendrecv(comm, partner, mpi::kTagBarrier, {}, partner,
                     mpi::kTagBarrier);
  }
  // Phase 3: release the folded-in ranks.
  if (rank < size - k) {
    p.send(comm, rank + k, mpi::kTagBarrier, {}, net::FrameKind::kControl);
  }
}

Buffer reduce_mpich(Proc& p, const Comm& comm,
                    std::span<const std::uint8_t> data, mpi::Op op,
                    mpi::Datatype type, int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  MC_EXPECTS(root >= 0 && root < size);
  MC_EXPECTS(data.size() % mpi::datatype_size(type) == 0);
  const std::size_t count = data.size() / mpi::datatype_size(type);

  // The binomial tree runs over relative ranks — a rotation of the
  // canonical rank order when root != 0.  Non-commutative ops must combine
  // in true rank order, so reduce to rank 0 first and forward the result
  // (what MPICH does for non-commutative operations).
  if (!mpi::op_commutative(op) && root != 0) {
    Buffer at_zero = reduce_mpich(p, comm, data, op, type, /*root=*/0);
    if (rank == 0) {
      p.send(comm, root, mpi::kTagCollective, at_zero);
      return {};
    }
    if (rank == root) {
      return p.recv(comm, 0, mpi::kTagCollective);
    }
    return {};
  }

  Buffer accum(data.begin(), data.end());
  const int rel = (rank - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if (rel & mask) {
      const int parent = ((rel - mask) + root) % size;
      p.send(comm, parent, mpi::kTagCollective, accum);
      return {};
    }
    if (rel + mask < size) {
      const int child = ((rel + mask) + root) % size;
      // accum covers relative ranks [rel, rel+mask), the child's partial
      // [rel+mask, rel+2*mask): lower ∘ higher keeps rank order.
      Buffer contribution = p.recv(comm, child, mpi::kTagCollective);
      MC_ASSERT(contribution.size() == accum.size());
      mpi::apply_op(op, type, accum, contribution, count);
      accum = std::move(contribution);
    }
    mask <<= 1;
  }
  return accum;  // root
}

std::vector<Buffer> gather_mpich(Proc& p, const Comm& comm,
                                 std::span<const std::uint8_t> data,
                                 int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  MC_EXPECTS(root >= 0 && root < size);
  if (rank != root) {
    p.send(comm, root, mpi::kTagCollective, data);
    return {};
  }
  std::vector<Buffer> out(static_cast<std::size_t>(size));
  out[static_cast<std::size_t>(root)] = Buffer(data.begin(), data.end());
  for (int r = 0; r < size; ++r) {
    if (r != root) {
      out[static_cast<std::size_t>(r)] = p.recv(comm, r, mpi::kTagCollective);
    }
  }
  return out;
}

Buffer scatter_mpich(Proc& p, const Comm& comm,
                     const std::vector<Buffer>& chunks, int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  MC_EXPECTS(root >= 0 && root < size);
  if (rank == root) {
    MC_EXPECTS_MSG(static_cast<int>(chunks.size()) == size,
                   "scatter needs one chunk per rank");
    for (int r = 0; r < size; ++r) {
      if (r != root) {
        p.send(comm, r, mpi::kTagCollective,
               chunks[static_cast<std::size_t>(r)]);
      }
    }
    return chunks[static_cast<std::size_t>(root)];
  }
  return p.recv(comm, root, mpi::kTagCollective);
}

std::vector<Buffer> allgather_mpich(Proc& p, const Comm& comm,
                                    std::span<const std::uint8_t> data) {
  const int size = comm.size();
  const int rank = comm.rank();
  std::vector<Buffer> out(static_cast<std::size_t>(size));
  out[static_cast<std::size_t>(rank)] = Buffer(data.begin(), data.end());
  // Ring: at step s, pass along the block that originated s hops upstream.
  const int next = (rank + 1) % size;
  const int prev = (rank - 1 + size) % size;
  for (int step = 0; step < size - 1; ++step) {
    const int sending = (rank - step + size) % size;
    const int receiving = (rank - step - 1 + size) % size;
    out[static_cast<std::size_t>(receiving)] =
        p.sendrecv(comm, next, mpi::kTagCollective,
                   out[static_cast<std::size_t>(sending)], prev,
                   mpi::kTagCollective);
  }
  return out;
}

Buffer scan_mpich(Proc& p, const Comm& comm,
                  std::span<const std::uint8_t> data, mpi::Op op,
                  mpi::Datatype type) {
  MC_EXPECTS(data.size() % mpi::datatype_size(type) == 0);
  const std::size_t count = data.size() / mpi::datatype_size(type);
  Buffer accum(data.begin(), data.end());
  const int rank = comm.rank();
  if (rank > 0) {
    const Buffer upstream = p.recv(comm, rank - 1, mpi::kTagCollective);
    MC_ASSERT(upstream.size() == accum.size());
    mpi::apply_op(op, type, upstream, accum, count);
  }
  if (rank < comm.size() - 1) {
    p.send(comm, rank + 1, mpi::kTagCollective, accum);
  }
  return accum;
}

Buffer scan_doubling(Proc& p, const Comm& comm,
                     std::span<const std::uint8_t> data, mpi::Op op,
                     mpi::Datatype type) {
  MC_EXPECTS(data.size() % mpi::datatype_size(type) == 0);
  const std::size_t count = data.size() / mpi::datatype_size(type);
  const int size = comm.size();
  const int rank = comm.rank();
  Buffer accum(data.begin(), data.end());
  for (int dist = 1; dist < size; dist <<= 1) {
    // Post the receive from the lower partner first, then ship the current
    // partial downstream: the send graph (r -> r+dist) is acyclic, so the
    // exchange cannot deadlock even on the rendezvous path.
    std::shared_ptr<mpi::RecvRequest> from_lower;
    if (rank - dist >= 0) {
      from_lower = p.irecv(comm, rank - dist, mpi::kTagCollective);
    }
    if (rank + dist < size) {
      p.send(comm, rank + dist, mpi::kTagCollective, accum);
    }
    if (from_lower != nullptr) {
      // The partner's partial covers [rank-2*dist+1, rank-dist], ours
      // [rank-dist+1, rank]: lower ∘ higher extends the prefix in order.
      const Buffer lower = p.wait(from_lower);
      MC_ASSERT(lower.size() == accum.size());
      mpi::apply_op(op, type, lower, accum, count);
    }
  }
  return accum;
}

std::vector<Buffer> alltoall_mpich(Proc& p, const Comm& comm,
                                   const std::vector<Buffer>& to_each) {
  const int size = comm.size();
  const int rank = comm.rank();
  MC_EXPECTS_MSG(static_cast<int>(to_each.size()) == size,
                 "alltoall needs one buffer per rank");
  std::vector<Buffer> out(static_cast<std::size_t>(size));
  out[static_cast<std::size_t>(rank)] = to_each[static_cast<std::size_t>(rank)];
  for (int shift = 1; shift < size; ++shift) {
    const int dst = (rank + shift) % size;
    const int src = (rank - shift + size) % size;
    out[static_cast<std::size_t>(src)] =
        p.sendrecv(comm, dst, mpi::kTagCollective,
                   to_each[static_cast<std::size_t>(dst)], src,
                   mpi::kTagCollective);
  }
  return out;
}

}  // namespace mcmpi::coll
