#pragma once
/// \file mpich.hpp
/// MPICH-1.x-style collective algorithms over point-to-point messages —
/// the paper's baseline, plus the wider collective set (reduce, gather,
/// scatter, allgather, allreduce, alltoall) implemented with the same
/// era-appropriate algorithms.
///
/// Frame economics of the baseline broadcast (paper §3.1): with N ranks,
/// an M-byte payload and T bytes of payload per frame, the tree sends
/// (floor(M/T)+1) * (N-1) data frames, since every edge of the tree carries
/// a full copy.  tab_frame_counts verifies this against the simulator.

#include <vector>

#include "common/bytes.hpp"
#include "mpi/datatype.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

/// Binomial-tree broadcast (MPI_Bcast in MPICH; Fig. 2 of the paper).
void bcast_mpich(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                 int root);

/// Three-phase barrier (MPI_Barrier in MPICH; Fig. 5 of the paper):
/// fold-in from the ranks beyond the largest power of two K, recursive
/// doubling among the first K, then release messages back out.
/// Total messages: 2*(N-K) + K*log2(K).
void barrier_mpich(mpi::Proc& p, const mpi::Comm& comm);

/// Binomial-tree reduction to `root`; returns the result buffer at root
/// (empty elsewhere).  `data` holds `count` elements of `type`.
Buffer reduce_mpich(mpi::Proc& p, const mpi::Comm& comm,
                    std::span<const std::uint8_t> data, mpi::Op op,
                    mpi::Datatype type, int root);

/// Linear gather to root: result[i] is rank i's contribution (at root).
std::vector<Buffer> gather_mpich(mpi::Proc& p, const mpi::Comm& comm,
                                 std::span<const std::uint8_t> data, int root);

/// Linear scatter from root: `chunks` (root only) must have comm.size()
/// entries; returns this rank's chunk.
Buffer scatter_mpich(mpi::Proc& p, const mpi::Comm& comm,
                     const std::vector<Buffer>& chunks, int root);

/// Ring allgather: N-1 shift steps.
std::vector<Buffer> allgather_mpich(mpi::Proc& p, const mpi::Comm& comm,
                                    std::span<const std::uint8_t> data);

/// Pairwise-shift alltoall: `to_each[i]` goes to rank i; returns what every
/// rank sent to us.
std::vector<Buffer> alltoall_mpich(mpi::Proc& p, const mpi::Comm& comm,
                                   const std::vector<Buffer>& to_each);

/// Inclusive prefix reduction (MPI_Scan): rank r returns op over the
/// contributions of ranks 0..r.  Linear chain, as MPICH 1.x did it.
Buffer scan_mpich(mpi::Proc& p, const mpi::Comm& comm,
                  std::span<const std::uint8_t> data, mpi::Op op,
                  mpi::Datatype type);

/// Inclusive prefix reduction by recursive doubling: ceil(log2 N) rounds of
/// binomial-segmented partials (at round k rank r holds the combined span
/// [r-2^k+1, r]), each combine lower ∘ higher so rank order is preserved.
/// Critical path log2 N versus the linear chain's N-1.
Buffer scan_doubling(mpi::Proc& p, const mpi::Comm& comm,
                     std::span<const std::uint8_t> data, mpi::Op op,
                     mpi::Datatype type);

}  // namespace mcmpi::coll
