#include "coll/nack_mcast.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

namespace {

struct NackState {
  NackMcastParams params;
  // False until the params were pinned — by set_nack_mcast_params or by the
  // first broadcast adopting the process-wide history default
  // (Proc::nack_history_frames, wired from ClusterConfig / env).
  bool params_set = false;
  // Root side: sink per (context, tag), installed by the first broadcast
  // this rank roots.  seq -> framed payload (shared refs: history and
  // retransmissions reuse the original framed allocation).
  bool sink_installed = false;
  std::map<std::uint64_t, PayloadRef> history;
  // seq -> last retransmission instant, for aggregation/suppression.
  std::map<std::uint64_t, SimTime> last_resend;
  // Receiver side: early frames (seq > expected), views of their datagrams.
  std::map<std::uint64_t, PayloadRef> stash;
  NackMcastStats stats;
};

PayloadRef frame(std::uint32_t context, std::int32_t root_world,
                 std::uint64_t seq, std::span<const std::uint8_t> payload) {
  PooledBuffer out = acquire_payload_buffer(payload.size() + 16);
  ByteWriter w(out.bytes);
  w.u32(context);
  w.i32(root_world);
  w.u64(seq);
  w.bytes(payload);
  return PayloadRef::adopt(std::move(out));
}

/// Root-side NACK service: kernel-level (uncharged), alive for the
/// communicator's lifetime — it serves receivers even after the root rank
/// has left the collective, which is exactly what lets the root return
/// without waiting for anyone.
void install_sink(Proc& p, const Comm& comm, NackState& state) {
  if (state.sink_installed) {
    return;
  }
  state.sink_installed = true;
  mpi::McastChannel* channel = &p.mcast_channel(comm);
  NackState* st = &state;
  // The sink always executes on the NACK's receiving rank — this rank — so
  // the shard captured here is the one whose counters it may touch.
  sim::Shard* shard = &p.self().shard();
  p.engine().set_sink(
      comm.context(), mpi::kTagNackMcast,
      [channel, st, shard](mpi::Rank /*src*/, PayloadRef data) {
        ByteReader r(data);
        const std::uint64_t wanted = r.u64();
        const auto it = st->history.find(wanted);
        if (it == st->history.end()) {
          ++st->stats.nacks_unserved;
          return;
        }
        // Aggregation: a retransmission inside the window is already on
        // the wire (multicast — it serves every receiver that missed the
        // frame); drop the redundant request.
        const SimTime now = shard->now();
        const auto last = st->last_resend.find(wanted);
        if (last != st->last_resend.end() &&
            now - last->second < st->params.aggregation_window) {
          ++st->stats.nacks_suppressed;
          ++shard->counters().nacks_suppressed;
          return;
        }
        st->last_resend[wanted] = now;
        ++st->stats.nacks_served;
        ++st->stats.retransmits;
        ++shard->counters().retransmits;
        channel->send(it->second, net::FrameKind::kData);
      });
}

/// Receiver-side delivery with gap recovery: NACK the root on silence,
/// backing off exponentially; stash early frames; throw when the retry cap
/// is exhausted.
Buffer recv_with_nack(Proc& p, const Comm& comm, NackState& state, int root,
                      const NackMcastParams& params) {
  mpi::McastChannel& ch = p.mcast_channel(comm);
  const std::uint64_t expected = ch.expected_seq();
  const SimTime start = p.self().now();
  SimTime timeout = params.nack_timeout;
  int retries = 0;
  for (;;) {
    // A retransmission (or a reordered original) may already be stashed.
    if (const auto it = state.stash.find(expected); it != state.stash.end()) {
      Buffer payload = it->second.to_buffer();
      state.stash.erase(it);
      ch.advance_seq();
      p.self().delay(p.costs().recv_overhead(
          static_cast<std::int64_t>(payload.size()),
          mpi::CostTier::kMcastData));
      return payload;
    }
    auto datagram = ch.socket().recv_until_charged(
        p.self(), p.self().now() + timeout,
        [&p, expected](const inet::UdpDatagram& dg) -> SimTime {
          ByteReader peek(dg.data);
          (void)peek.u32();  // context
          (void)peek.i32();  // root
          if (peek.u64() != expected) {
            return kTimeZero;  // duplicate or early frame: uncharged wake
          }
          return p.costs().recv_overhead(
              static_cast<std::int64_t>(dg.data.size() - peek.position()),
              mpi::CostTier::kMcastData);
        });
    if (!datagram.has_value()) {
      // Gap: request exactly the missing frame from the root.
      if (params.max_retries > 0 && retries >= params.max_retries) {
        std::ostringstream os;
        os << "nack-mcast: rank " << comm.rank() << " gave up on seq "
           << expected << " from root " << root << " after " << retries
           << " NACKs over " << to_microseconds(p.self().now() - start)
           << " us — the root is unreachable or loss exceeds what NACK "
              "recovery can absorb; raise max_retries or timeout_cap";
        throw std::runtime_error(os.str());
      }
      ++retries;
      ++state.stats.nacks_sent;
      ++p.self().shard().counters().nacks_sent;
      Buffer nack;
      ByteWriter w(nack);
      w.u64(expected);
      p.send(comm, root, mpi::kTagNackMcast, nack, net::FrameKind::kControl,
             mpi::CostTier::kRaw);
      const auto scaled = static_cast<std::int64_t>(
          static_cast<double>(timeout.count()) * params.backoff);
      timeout = std::min(SimTime{scaled}, params.timeout_cap);
      continue;
    }
    ByteReader r(datagram->datagram.data);
    (void)r.u32();  // context (validated by port/group)
    (void)r.i32();  // root
    const std::uint64_t seq = r.u64();
    if (seq < expected) {
      continue;  // duplicate
    }
    PayloadRef payload = datagram->datagram.data.slice(r.position());
    if (seq > expected) {
      state.stash.emplace(seq, std::move(payload));
      continue;  // keep hunting for the gap frame
    }
    ch.advance_seq();
    if (!datagram->charge_absorbed) {
      p.self().delay(p.costs().recv_overhead(
          static_cast<std::int64_t>(payload.size()),
          mpi::CostTier::kMcastData));
    }
    return payload.to_buffer();
  }
}

}  // namespace

void set_nack_mcast_params(Proc& p, const Comm& comm,
                           const NackMcastParams& params) {
  if (params.nack_timeout <= kTimeZero) {
    throw std::invalid_argument("nack-mcast: nack_timeout must be > 0");
  }
  if (params.backoff < 1.0) {
    throw std::invalid_argument("nack-mcast: backoff must be >= 1");
  }
  if (params.timeout_cap < params.nack_timeout) {
    throw std::invalid_argument(
        "nack-mcast: timeout_cap must be >= nack_timeout");
  }
  if (params.max_retries < 0) {
    throw std::invalid_argument("nack-mcast: max_retries must be >= 0");
  }
  if (params.aggregation_window < kTimeZero) {
    throw std::invalid_argument(
        "nack-mcast: aggregation_window must be >= 0");
  }
  if (params.history_frames < 1) {
    throw std::invalid_argument("nack-mcast: history_frames must be >= 1");
  }
  NackState& state = p.coll_state<NackState>(comm);
  state.params = params;
  state.params_set = true;
}

const NackMcastParams& nack_mcast_params(Proc& p, const Comm& comm) {
  return p.coll_state<NackState>(comm).params;
}

void bcast_nack_mcast(Proc& p, const Comm& comm, Buffer& buffer, int root) {
  MC_EXPECTS(root >= 0 && root < comm.size());
  if (comm.size() == 1) {
    return;
  }
  mpi::McastChannel& ch = p.mcast_channel(comm);
  NackState& state = p.coll_state<NackState>(comm);
  if (!state.params_set) {
    state.params.history_frames = p.nack_history_frames();
    state.params_set = true;
  }
  const NackMcastParams& params = state.params;

  if (comm.rank() == root) {
    install_sink(p, comm, state);
    const std::uint64_t seq = ch.expected_seq();
    // One framed allocation, shared between the outgoing multicast and the
    // retransmission history.
    PayloadRef framed =
        frame(comm.context(), comm.world_rank_of(root), seq, buffer);
    state.history.emplace(seq, framed);
    while (state.history.size() > params.history_frames) {
      state.last_resend.erase(state.history.begin()->first);
      state.history.erase(state.history.begin());
    }
    p.self().delay(p.costs().send_overhead(
        static_cast<std::int64_t>(buffer.size()), mpi::CostTier::kMcastData));
    ch.send(std::move(framed), net::FrameKind::kData);
    ch.advance_seq();
    // No waiting: the sink serves any recovery from here on.
    return;
  }

  buffer = recv_with_nack(p, comm, state, root, params);
}

const NackMcastStats& nack_mcast_stats(Proc& p, const Comm& comm) {
  return p.coll_state<NackState>(comm).stats;
}

}  // namespace mcmpi::coll
