#pragma once
/// \file nack_mcast.hpp
/// Receiver-driven NACK-based reliable multicast (SRM-style).
///
/// The dual of ack_mcast.hpp: instead of the sender collecting a positive
/// ACK from every receiver (N-1 control messages per broadcast, and a
/// whole-payload retransmission whenever ANY of them is late), the sender
/// blasts the payload once and returns.  Receivers detect gaps from the
/// multicast channel's sequence numbers and request exactly the missing
/// frame with a unicast NACK; the root serves NACKs from a retained
/// history through an engine sink, so retransmission works even after the
/// root has moved on to other work.
///
/// Two classic SRM refinements keep the recovery traffic implosion-free:
///
///   * NACK AGGREGATION at the root — one retransmission within an
///     aggregation window serves every receiver that missed the same frame
///     (the retransmission is multicast); further NACKs for the same
///     sequence inside the window are suppressed.
///
///   * EXPONENTIAL BACKOFF at the receivers — each unanswered NACK widens
///     the next timeout (capped), so a persistently lossy path does not
///     degenerate into a NACK storm.  A retry cap turns unreachability
///     into a hard, diagnosable error instead of a silent hang.
///
/// On a clean wire this is the cheapest reliable multicast in the
/// registry: one payload transit and zero control traffic.  Under loss it
/// pays one NACK round trip per gap — the bench_loss_crossover sweep
/// measures where it overtakes the ACK protocol as loss rises.

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

struct NackMcastParams {
  /// Receiver-side silence window before the first NACK for a gap.
  SimTime nack_timeout = milliseconds(2);
  /// Timeout multiplier after every unanswered NACK.
  double backoff = 2.0;
  /// Backed-off timeout ceiling.
  SimTime timeout_cap = milliseconds(50);
  /// NACKs per gap before the receiver gives up and throws (0 = forever).
  int max_retries = 30;
  /// Root-side suppression window: NACKs for a sequence already re-sent
  /// within this window are dropped (the multicast retransmission is on
  /// the wire and serves them all).
  SimTime aggregation_window = microseconds(500);
  /// Framed broadcasts retained for retransmission.
  std::size_t history_frames = 64;
};

struct NackMcastStats {
  std::uint64_t nacks_sent = 0;        // receiver side
  std::uint64_t nacks_served = 0;      // root sink: retransmitted
  std::uint64_t nacks_suppressed = 0;  // root sink: inside the window
  std::uint64_t nacks_unserved = 0;    // root sink: history miss
  std::uint64_t retransmits = 0;       // root sink: frames re-multicast
};

/// Sets the protocol parameters for `comm` (per-communicator, like
/// set_segmented_config; keep it communicator-uniform).  Throws
/// std::invalid_argument on out-of-range values.
void set_nack_mcast_params(mpi::Proc& p, const mpi::Comm& comm,
                           const NackMcastParams& params);
const NackMcastParams& nack_mcast_params(mpi::Proc& p, const mpi::Comm& comm);

/// Broadcast with receiver-driven reliability.  `buffer` is input at root,
/// output elsewhere.  Throws std::runtime_error when a receiver exhausts
/// max_retries — the root is unreachable or loss exceeds what NACK
/// recovery can absorb.
void bcast_nack_mcast(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                      int root);

/// Cumulative protocol statistics on this rank.
const NackMcastStats& nack_mcast_stats(mpi::Proc& p, const mpi::Comm& comm);

}  // namespace mcmpi::coll
