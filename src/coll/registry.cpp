#include "coll/registry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "coll/ack_mcast.hpp"
#include "coll/fec.hpp"
#include "coll/hier.hpp"
#include "coll/mcast.hpp"
#include "coll/mcast_allgather.hpp"
#include "coll/mcast_alltoall.hpp"
#include "coll/mcast_reduce.hpp"
#include "coll/mcast_scatter.hpp"
#include "coll/mpich.hpp"
#include "coll/nack_mcast.hpp"
#include "coll/scatter_allgather.hpp"
#include "coll/segmented.hpp"
#include "coll/sequencer.hpp"
#include "common/assert.hpp"

namespace mcmpi::coll {

std::string to_string(CollOp op) {
  switch (op) {
    case CollOp::kBcast:
      return "bcast";
    case CollOp::kBarrier:
      return "barrier";
    case CollOp::kAllreduce:
      return "allreduce";
    case CollOp::kAllgather:
      return "allgather";
    case CollOp::kReduce:
      return "reduce";
    case CollOp::kGather:
      return "gather";
    case CollOp::kScatter:
      return "scatter";
    case CollOp::kScan:
      return "scan";
    case CollOp::kAlltoall:
      return "alltoall";
  }
  return "?";
}

namespace {

/// Frames needed for an M-byte payload at T = 1472 payload bytes per frame
/// (the paper's floor(M/T) + 1).
double frames(std::size_t bytes) {
  return std::floor(static_cast<double>(bytes) / 1472.0) + 1.0;
}

double log2n(int ranks) {
  return ranks > 1 ? std::ceil(std::log2(static_cast<double>(ranks))) : 0.0;
}

bool always(const mpi::Comm&, std::size_t) { return true; }

/// The scout-combining protocols ship blocks as fire-and-forget eager
/// sends: the framed payload (+8 B operation sequence) must stay on the
/// engine's eager path.
bool fits_eager(const mpi::Comm& comm, std::size_t bytes) {
  return comm.proc() == nullptr ||
         static_cast<std::int64_t>(bytes) + 8 <=
             comm.proc()->engine().eager_threshold();
}

/// One framed multicast datagram (16 B header) must clear both the IP
/// fragment-offset ceiling and the receivers' multicast socket buffer — a
/// datagram larger than the buffer can never be enqueued, so it would be
/// dropped even into an empty socket.
///
/// Per-rank limits (the eager threshold here and below, the socket buffer)
/// are read from the LOCAL proc: like kAuto selection itself, these
/// predicates assume the limits are configured uniformly across ranks
/// (Cluster applies one ClusterConfig to every proc).  Heterogeneous
/// per-proc overrides would make ranks resolve different algorithms and
/// desynchronize the collective.
bool fits_mcast_datagram(const mpi::Comm& comm, std::size_t payload) {
  if (payload + kMcastFrameHeaderBytes > kMaxMcastDatagram) {
    return false;
  }
  return comm.proc() == nullptr ||
         payload + kMcastFrameHeaderBytes <= comm.proc()->mcast_recv_buffer();
}

/// The FEC blast is windowed but unacked: a receiver that consumes nothing
/// mid-blast must absorb the whole stream — data, parity at the worst-case
/// ratio, and framing — in its multicast socket buffer.  fec_plan is the
/// single source of truth for that geometry, so the predicate and the
/// engine can never disagree about what fits.
bool fits_fec_blast(const mpi::Comm& comm, std::size_t payload) {
  if (comm.proc() == nullptr) {
    return true;  // same convention as the socket-buffer checks above
  }
  const FecPlan plan = fec_plan(payload, fec_config(*comm.proc(), comm));
  return plan.wire_bytes <= comm.proc()->mcast_recv_buffer();
}

/// ~64 KiB chunks of the segmented pipeline for an M-byte stream — the
/// per-chunk overheads (ack collection) scale with this.
double chunk_count(std::size_t bytes) {
  return std::floor(static_cast<double>(bytes) / 65536.0) + 1.0;
}

void register_builtins(Registry& r) {
  // ----------------------------------------------------------- broadcast
  r.add(CollAlgorithm{
      .name = "mpich",
      .op = CollOp::kBcast,
      .description = "MPICH binomial tree over point-to-point (Fig. 2)",
      .applicable = always,
      // Paper §3.1: every tree edge carries a full copy.
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return frames(bytes) * (ranks - 1); },
      .loss_tolerant = true,  // pure p2p over the reliable transport
      .bcast = [](mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                  int root) { bcast_mpich(p, comm, buffer, root); }});
  r.add(CollAlgorithm{
      .name = "mcast-binary",
      .op = CollOp::kBcast,
      .description = "binomial scout gather, then one IP multicast (Fig. 3)",
      .applicable = fits_mcast_datagram,
      // (N-1) scouts in log2 N pipelined steps + the payload once.
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return log2n(ranks) + frames(bytes); },
      .bcast = [](mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                  int root) { bcast_mcast_binary(p, comm, buffer, root); }});
  r.add(CollAlgorithm{
      .name = "mcast-linear",
      .op = CollOp::kBcast,
      .description = "linear scout gather, then one IP multicast (Fig. 4)",
      .applicable = fits_mcast_datagram,
      // N-1 sequential scout receives at the root + the payload once.
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return (ranks - 1) + frames(bytes); },
      .bcast = [](mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                  int root) { bcast_mcast_linear(p, comm, buffer, root); }});
  r.add(CollAlgorithm{
      .name = "ack-mcast",
      .op = CollOp::kBcast,
      .description =
          "multicast first, resend until all ACK (ORNL/PVM negative result)",
      .applicable = fits_mcast_datagram,
      // Payload once + N-1 serial ACKs; unready receivers cost whole-payload
      // retransmissions, folded in as a constant penalty.
      .cost_hint =
          [](std::size_t bytes, int ranks) {
            return 1.5 * frames(bytes) + (ranks - 1);
          },
      .loss_tolerant = true,  // resends until every receiver ACKs
      .bcast = [](mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                  int root) { bcast_ack_mcast(p, comm, buffer, root); }});
  r.add(CollAlgorithm{
      .name = "sequencer",
      .op = CollOp::kBcast,
      .description =
          "sequencer-ordered multicast with NACK recovery (Orca-style)",
      .applicable = fits_mcast_datagram,
      // One handoff to the sequencer + the payload once; no readiness
      // handshake (receiver lag is detected only by NACK timeout).
      .cost_hint = [](std::size_t bytes,
                      int ranks [[maybe_unused]]) { return 1 + frames(bytes); },
      .loss_tolerant = true,  // gap detection + NACK to the sequencer
      .bcast = [](mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                  int root) { bcast_sequencer(p, comm, buffer, root); }});
  r.add(CollAlgorithm{
      .name = "nack-mcast",
      .op = CollOp::kBcast,
      .description = "receiver-driven NACK multicast: blast the payload, "
                     "receivers NACK gaps, sender retransmits with "
                     "aggregation/suppression (SRM-style)",
      .applicable = fits_mcast_datagram,
      // The payload once with no readiness handshake and no per-receiver
      // ACKs: on a clean wire it is the cheapest reliable multicast; the
      // constant folds in the root's sink installation handshake.
      .cost_hint = [](std::size_t bytes,
                      int ranks [[maybe_unused]]) {
        return 1.5 + frames(bytes);
      },
      .loss_tolerant = true,  // the point: NACK-driven retransmission
      .bcast = [](mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                  int root) { bcast_nack_mcast(p, comm, buffer, root); }});
  r.add(CollAlgorithm{
      .name = "fec-mcast",
      .op = CollOp::kBcast,
      .description = "FEC-coded multicast: k data + r Reed–Solomon parity "
                     "chunks per window, any k of k+r reconstruct — zero "
                     "recovery round trips up to r losses, NACK fallback "
                     "beyond (adaptive parity under observed loss)",
      .applicable = fits_fec_blast,
      // The payload once PLUS its parity ratio (default 1/8) with no
      // readiness handshake: strictly dearer than nack-mcast on a clean
      // wire — by design, that is the premium for zero-RTT recovery — so
      // kAuto only reaches it through a lossy-gated tuning rule.
      .cost_hint = [](std::size_t bytes,
                      int ranks [[maybe_unused]]) {
        return 1.5 + 1.125 * frames(bytes);
      },
      .loss_tolerant = true,  // the point: in-window erasure recovery
      .bcast = [](mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                  int root) { bcast_fec_mcast(p, comm, buffer, root); }});
  r.add(CollAlgorithm{
      .name = "scatter-allgather",
      .op = CollOp::kBcast,
      .description =
          "scatter + ring allgather for long messages (van de Geijn)",
      .applicable = always,
      // Every byte crosses each link at most ~2x; the ring runs on N
      // disjoint links in parallel — critical path ~2 payload images.
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return 2.0 * frames(bytes) + (ranks - 1); },
      .loss_tolerant = true,  // pure p2p over the reliable transport
      .bcast =
          [](mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer, int root) {
            bcast_scatter_allgather(p, comm, buffer, root);
          }});
  r.add(CollAlgorithm{
      .name = "mcast-segmented",
      .op = CollOp::kBcast,
      .description = "segmented pipelined multicast: chunked stream, sliding "
                     "ack window, optional multi-lane striping — no payload "
                     "size ceiling",
      .applicable = always,
      // Scout sync + the payload once on the wire, plus per-chunk ack
      // collection — strictly dearer than a single-shot multicast below
      // the datagram ceiling, the only multicast option above it.
      .cost_hint =
          [](std::size_t bytes, int ranks) {
            return log2n(ranks) + frames(bytes) +
                   chunk_count(bytes) * (ranks - 1);
          },
      .loss_tolerant = true,  // per-chunk acks + timeout retransmission
      .bcast =
          [](mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer, int root) {
            bcast_mcast_segmented(p, comm, buffer, root);
          }});
  r.add(CollAlgorithm{
      .name = "hier-mcast",
      .op = CollOp::kBcast,
      .description = "hierarchical: root -> segment leaders over the trunks "
                     "once, then per-segment multicast (MagPIe-style)",
      .applicable = [](const mpi::Comm& comm,
                       std::size_t) { return hier_applicable(comm); },
      // One trunk image per remote segment (overlapped, so ~one trunk cost
      // on the critical path) + the intra phase at segment size.
      .cost_hint =
          [](std::size_t bytes, int ranks) {
            const int segs = hier_segments_hint();
            return hier_trunk_cost_hint() * frames(bytes) +
                   log2n(std::max(ranks / segs, 2)) + frames(bytes);
          },
      .loss_tolerant = true,  // reliable trunks; intra kAuto stays tolerant
      .bcast = [](mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                  int root) { bcast_hier(p, comm, buffer, root); }});

  // ------------------------------------------------------------- barrier
  r.add(CollAlgorithm{
      .name = "mpich",
      .op = CollOp::kBarrier,
      .description = "MPICH three-phase point-to-point barrier (Fig. 5)",
      .applicable = always,
      .cost_hint =
          [](std::size_t, int ranks) {
            const double k = std::pow(2.0, std::floor(std::log2(
                                                std::max(ranks, 1))));
            return 2.0 * (ranks - k) + k * std::log2(k);
          },
      .loss_tolerant = true,  // pure p2p over the reliable transport
      .barrier = [](mpi::Proc& p,
                    const mpi::Comm& comm) { barrier_mpich(p, comm); }});
  r.add(CollAlgorithm{
      .name = "mcast",
      .op = CollOp::kBarrier,
      .description = "scout reduction + one multicast release (§3.2)",
      .applicable = always,
      .cost_hint = [](std::size_t, int ranks) { return ranks - 1 + 1.0; },
      .barrier = [](mpi::Proc& p,
                    const mpi::Comm& comm) { barrier_mcast(p, comm); }});
  r.add(CollAlgorithm{
      .name = "hier",
      .op = CollOp::kBarrier,
      .description = "hierarchical: intra fold to segment leaders, two flat "
                     "trunk rounds among leaders, intra release",
      .applicable = [](const mpi::Comm& comm,
                       std::size_t) { return hier_applicable(comm); },
      // Two binomial intra phases + exactly two trunk crossings,
      // independent of the segment count.
      .cost_hint =
          [](std::size_t, int ranks) {
            const int segs = hier_segments_hint();
            return 2.0 * hier_trunk_cost_hint() +
                   2.0 * log2n(std::max(ranks / segs, 2));
          },
      .loss_tolerant = true,  // pure p2p over the reliable transport
      .barrier = [](mpi::Proc& p,
                    const mpi::Comm& comm) { barrier_hier(p, comm); }});

  // ----------------------------------------------------------- allreduce
  // MPICH-1.x shape: binomial reduce to rank 0, then broadcast — with the
  // broadcast stage selectable, so the multicast win compounds (the
  // paper's anticipated extension).  One entry per broadcast stage.
  for (const char* stage : {"mpich", "mcast-binary", "mcast-linear"}) {
    r.add(CollAlgorithm{
        .name = stage,
        .op = CollOp::kAllreduce,
        .description = std::string("binomial reduce to rank 0, then ") +
                       stage + " broadcast",
        // The broadcast stage's own limits apply: the multicast stages are
        // single-shot and cannot carry a jumbo result vector.
        .applicable =
            [stage](const mpi::Comm& comm, std::size_t bytes) {
              return std::string_view(stage) == "mpich" ||
                     fits_mcast_datagram(comm, bytes);
            },
        .cost_hint =
            [stage](std::size_t bytes, int ranks) {
              const double reduce = frames(bytes) * log2n(ranks);
              return reduce + Registry::instance()
                                  .get(CollOp::kBcast, stage)
                                  .cost_hint(bytes, ranks);
            },
        // Tolerant exactly when the broadcast stage is (the reduce stage is
        // always p2p over the reliable transport).
        .loss_tolerant = std::string_view(stage) == "mpich",
        .allreduce =
            [stage](mpi::Proc& p, const mpi::Comm& comm,
                    std::span<const std::uint8_t> data, mpi::Op op,
                    mpi::Datatype type) {
              Buffer result = reduce_mpich(p, comm, data, op, type, /*root=*/0);
              if (comm.rank() != 0) {
                result.clear();
              }
              Registry::instance()
                  .get(CollOp::kBcast, stage)
                  .bcast(p, comm, result, /*root=*/0);
              return result;
            }});
  }
  r.add(CollAlgorithm{
      .name = "hier",
      .op = CollOp::kAllreduce,
      .description = "hierarchical: intra reduce to segment leaders, leader "
                     "combine over the trunks, intra release broadcast",
      // Contiguous segment blocks keep the leader combine in comm rank
      // order — required for non-commutative custom ops.
      .applicable =
          [](const mpi::Comm& comm, std::size_t) {
            return hier_applicable_contiguous(comm);
          },
      // Intra reduce + ~2 overlapped trunk images + intra broadcast.
      .cost_hint =
          [](std::size_t bytes, int ranks) {
            const int segs = hier_segments_hint();
            const double intra = log2n(std::max(ranks / segs, 2));
            return frames(bytes) * intra + 2.0 * hier_trunk_cost_hint() *
                                               frames(bytes) +
                   intra + frames(bytes);
          },
      .loss_tolerant = true,  // reliable trunks; intra kAuto stays tolerant
      .allreduce = [](mpi::Proc& p, const mpi::Comm& comm,
                      std::span<const std::uint8_t> data, mpi::Op op,
                      mpi::Datatype type) {
        return allreduce_hier(p, comm, data, op, type);
      }});

  // ----------------------------------------------------------- allgather
  r.add(CollAlgorithm{
      .name = "ring",
      .op = CollOp::kAllgather,
      .description = "point-to-point ring allgather (N-1 shift steps)",
      .applicable = always,
      // N(N-1) block-hops in total, N-1 steps on the critical path.
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return frames(bytes) * (ranks - 1); },
      .loss_tolerant = true,  // pure p2p over the reliable transport
      .allgather = [](mpi::Proc& p, const mpi::Comm& comm,
                      std::span<const std::uint8_t> data) {
        return allgather_mpich(p, comm, data);
      }});
  r.add(CollAlgorithm{
      .name = "mcast-lockstep",
      .op = CollOp::kAllgather,
      .description =
          "each block multicast once, in rank order behind one barrier",
      .applicable = fits_mcast_datagram,
      // Every block crosses the wire exactly once, serialized by rounds.
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return frames(bytes) * ranks + ranks; },
      .allgather = [](mpi::Proc& p, const mpi::Comm& comm,
                      std::span<const std::uint8_t> data) {
        return allgather_mcast(p, comm, data, AllgatherMode::kLockstep).blocks;
      }});
  r.add(CollAlgorithm{
      .name = "mcast-blast",
      .op = CollOp::kAllgather,
      .description = "every rank multicasts at once — fastest pacing, may "
                     "drop blocks to receiver overrun (§2/§5 hazard)",
      .applicable = fits_mcast_datagram,
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return frames(bytes) + 2.0 * ranks; },
      .lossy = true,
      .allgather = [](mpi::Proc& p, const mpi::Comm& comm,
                      std::span<const std::uint8_t> data) {
        return allgather_mcast(p, comm, data, AllgatherMode::kBlast).blocks;
      }});
  r.add(CollAlgorithm{
      .name = "mcast-segmented",
      .op = CollOp::kAllgather,
      .description = "N rank-ordered segmented pipelined multicast streams — "
                     "no block size ceiling",
      .applicable = always,
      // N fully acked streams: each pays scout sync + its block once +
      // per-chunk ack collection.
      .cost_hint =
          [](std::size_t bytes, int ranks) {
            return static_cast<double>(ranks) *
                   (log2n(ranks) + frames(bytes) +
                    chunk_count(bytes) * (ranks - 1));
          },
      .loss_tolerant = true,  // per-chunk acks + timeout retransmission
      .allgather = [](mpi::Proc& p, const mpi::Comm& comm,
                      std::span<const std::uint8_t> data) {
        return allgather_mcast_segmented(p, comm, data);
      }});
  r.add(CollAlgorithm{
      .name = "hier",
      .op = CollOp::kAllgather,
      .description = "hierarchical: intra gather to segment leaders, leader "
                     "bundle exchange over the trunks (each byte crosses "
                     "each trunk once), intra release broadcast",
      .applicable = [](const mpi::Comm& comm,
                       std::size_t) { return hier_applicable(comm); },
      // Intra gather of one block + the full result over the trunk once +
      // the assembled bundle broadcast intra.
      .cost_hint =
          [](std::size_t bytes, int ranks) {
            const int segs = hier_segments_hint();
            const int per_seg = std::max(ranks / segs, 2);
            const double result_frames =
                frames(bytes) * static_cast<double>(ranks);
            return frames(bytes) * (per_seg - 1) +
                   hier_trunk_cost_hint() * result_frames + result_frames;
          },
      .loss_tolerant = true,  // reliable trunks; intra kAuto stays tolerant
      .allgather = [](mpi::Proc& p, const mpi::Comm& comm,
                      std::span<const std::uint8_t> data) {
        return allgather_hier(p, comm, data);
      }});

  // -------------------------------------------------------------- reduce
  r.add(CollAlgorithm{
      .name = "mpich",
      .op = CollOp::kReduce,
      .description = "binomial-tree reduction over point-to-point",
      .applicable = always,
      // log2 N combining rounds, a full payload per tree edge on the
      // critical path.
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return frames(bytes) * log2n(ranks); },
      .loss_tolerant = true,  // pure p2p over the reliable transport
      .reduce = [](mpi::Proc& p, const mpi::Comm& comm,
                   std::span<const std::uint8_t> data, mpi::Op op,
                   mpi::Datatype type,
                   int root) { return reduce_mpich(p, comm, data, op, type,
                                                   root); }});
  r.add(CollAlgorithm{
      .name = "mcast-scout",
      .op = CollOp::kReduce,
      .description = "lockstep multicast of operands, slice-combining on "
                     "every rank, scout-gathered partials to root",
      .applicable =
          [](const mpi::Comm& comm, std::size_t bytes) {
            return fits_eager(comm, bytes) && fits_mcast_datagram(comm, bytes);
          },
      // N lockstep multicasts + the partial slices (~one payload image in
      // total) scouted to the root.
      .cost_hint =
          [](std::size_t bytes, int ranks) {
            return frames(bytes) * ranks + (ranks - 1) +
                   frames(bytes / static_cast<std::size_t>(
                                      std::max(ranks, 1)));
          },
      .reduce = [](mpi::Proc& p, const mpi::Comm& comm,
                   std::span<const std::uint8_t> data, mpi::Op op,
                   mpi::Datatype type, int root) {
        return reduce_mcast_scout(p, comm, data, op, type, root);
      }});

  // -------------------------------------------------------------- gather
  r.add(CollAlgorithm{
      .name = "mpich",
      .op = CollOp::kGather,
      .description = "linear gather over blocking point-to-point sends",
      .applicable = always,
      // N-1 serial receives at the root, plus the senders' blocking send
      // overheads.
      .cost_hint = [](std::size_t bytes,
                      int ranks) {
        return (frames(bytes) + 1.0) * (ranks - 1);
      },
      .loss_tolerant = true,  // pure p2p over the reliable transport
      .gather = [](mpi::Proc& p, const mpi::Comm& comm,
                   std::span<const std::uint8_t> data,
                   int root) { return gather_mpich(p, comm, data, root); }});
  r.add(CollAlgorithm{
      .name = "scout-combining",
      .op = CollOp::kGather,
      .description = "fire-and-forget data scouts, aggregate charged "
                     "collection at the root",
      .applicable = fits_eager,
      // The same N-1 serial receive charges, but senders never block and
      // the root wakes once.
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return frames(bytes) * (ranks - 1); },
      .gather = [](mpi::Proc& p, const mpi::Comm& comm,
                   std::span<const std::uint8_t> data, int root) {
        return gather_scout_combining(p, comm, data, root);
      }});

  // ------------------------------------------------------------- scatter
  r.add(CollAlgorithm{
      .name = "mpich",
      .op = CollOp::kScatter,
      .description = "linear scatter over blocking point-to-point sends",
      .applicable = always,
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return frames(bytes) * (ranks - 1); },
      .loss_tolerant = true,  // pure p2p over the reliable transport
      .scatter = [](mpi::Proc& p, const mpi::Comm& comm,
                    const std::vector<Buffer>& chunks,
                    int root) { return scatter_mpich(p, comm, chunks,
                                                     root); }});
  r.add(CollAlgorithm{
      .name = "mcast-slice",
      .op = CollOp::kScatter,
      .description = "one multicast of the concatenated payload, each rank "
                     "slices its chunk (Zhou et al. bandwidth saving)",
      // bytes is the per-rank chunk size; the concatenated datagram must
      // fit the fragment-offset ceiling and the receivers' socket buffer.
      .applicable =
          [](const mpi::Comm& comm, std::size_t bytes) {
            return fits_mcast_datagram(
                comm, bytes * static_cast<std::size_t>(comm.size()) +
                          scatter_table_bytes(comm.size()));
          },
      // Scout synchronization + the whole payload once.
      .cost_hint = [](std::size_t bytes,
                      int ranks) {
        return log2n(ranks) +
               frames(bytes * static_cast<std::size_t>(std::max(ranks, 1)));
      },
      .scatter = [](mpi::Proc& p, const mpi::Comm& comm,
                    const std::vector<Buffer>& chunks, int root) {
        return scatter_mcast_slice(p, comm, chunks, root);
      }});
  r.add(CollAlgorithm{
      .name = "mcast-segmented",
      .op = CollOp::kScatter,
      .description = "segmented pipelined multicast of [table ‖ blocks]; "
                     "receivers keep their range — no payload size ceiling",
      .applicable = always,
      // Scout sync + the concatenated stream once + per-chunk acks;
      // `bytes` is the per-rank chunk size, as for mcast-slice.
      .cost_hint =
          [](std::size_t bytes, int ranks) {
            const std::size_t total =
                bytes * static_cast<std::size_t>(std::max(ranks, 1)) +
                scatter_table_bytes(ranks);
            return log2n(ranks) + frames(total) +
                   chunk_count(total) * (ranks - 1);
          },
      .scatter = [](mpi::Proc& p, const mpi::Comm& comm,
                    const std::vector<Buffer>& chunks, int root) {
        return scatter_mcast_segmented(p, comm, chunks, root);
      }});

  // ------------------------------------------------------------ alltoall
  r.add(CollAlgorithm{
      .name = "mpich",
      .op = CollOp::kAlltoall,
      .description = "pairwise-shift alltoall over point-to-point sendrecv",
      .applicable = always,
      // N-1 exchange steps on the critical path, one block each way per
      // step; `bytes` is the per-destination block size throughout.
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return 2.0 * frames(bytes) * (ranks - 1); },
      .loss_tolerant = true,  // pure p2p over the reliable transport
      .alltoall = [](mpi::Proc& p, const mpi::Comm& comm,
                     const std::vector<Buffer>& to_each) {
        return alltoall_mpich(p, comm, to_each);
      }});
  r.add(CollAlgorithm{
      .name = "mcast-rr",
      .op = CollOp::kAlltoall,
      .description = "round-robin lockstep: each rank multicasts its whole "
                     "personalized vector once, receivers slice their block",
      // The concatenated vector (+ table) must fit one multicast datagram
      // and the receivers' socket buffer.
      .applicable =
          [](const mpi::Comm& comm, std::size_t bytes) {
            return fits_mcast_datagram(
                comm, bytes * static_cast<std::size_t>(comm.size()) +
                          alltoall_table_bytes(comm.size()));
          },
      // Barrier + N serialized rounds, each one datagram of N blocks; the
      // per-rank saving is N-1 sends folded into one.
      .cost_hint =
          [](std::size_t bytes, int ranks) {
            return ranks +
                   frames(bytes * static_cast<std::size_t>(
                                      std::max(ranks, 1))) *
                       ranks;
          },
      .alltoall = [](mpi::Proc& p, const mpi::Comm& comm,
                     const std::vector<Buffer>& to_each) {
        return alltoall_mcast_rr(p, comm, to_each);
      }});

  // ---------------------------------------------------------------- scan
  r.add(CollAlgorithm{
      .name = "mpich",
      .op = CollOp::kScan,
      .description = "linear-chain inclusive prefix (MPICH 1.x)",
      .applicable = always,
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return frames(bytes) * (ranks - 1); },
      .loss_tolerant = true,  // pure p2p over the reliable transport
      .scan = [](mpi::Proc& p, const mpi::Comm& comm,
                 std::span<const std::uint8_t> data, mpi::Op op,
                 mpi::Datatype type) { return scan_mpich(p, comm, data, op,
                                                         type); }});
  r.add(CollAlgorithm{
      .name = "binomial",
      .op = CollOp::kScan,
      .description =
          "recursive-doubling prefix over binomial segments (log2 N rounds)",
      .applicable = always,
      .cost_hint = [](std::size_t bytes,
                      int ranks) { return frames(bytes) * log2n(ranks); },
      .loss_tolerant = true,  // pure p2p over the reliable transport
      .scan = [](mpi::Proc& p, const mpi::Comm& comm,
                 std::span<const std::uint8_t> data, mpi::Op op,
                 mpi::Datatype type) {
        return scan_doubling(p, comm, data, op, type);
      }});
}

}  // namespace

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* r = new Registry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void Registry::add(CollAlgorithm algo) {
  if (algo.name.empty()) {
    throw std::invalid_argument("collective algorithm needs a name");
  }
  const bool has_run = [&] {
    switch (algo.op) {
      case CollOp::kBcast:
        return static_cast<bool>(algo.bcast);
      case CollOp::kBarrier:
        return static_cast<bool>(algo.barrier);
      case CollOp::kAllreduce:
        return static_cast<bool>(algo.allreduce);
      case CollOp::kAllgather:
        return static_cast<bool>(algo.allgather);
      case CollOp::kReduce:
        return static_cast<bool>(algo.reduce);
      case CollOp::kGather:
        return static_cast<bool>(algo.gather);
      case CollOp::kScatter:
        return static_cast<bool>(algo.scatter);
      case CollOp::kScan:
        return static_cast<bool>(algo.scan);
      case CollOp::kAlltoall:
        return static_cast<bool>(algo.alltoall);
    }
    return false;
  }();
  if (!has_run) {
    throw std::invalid_argument("algorithm '" + algo.name +
                                "' lacks a run function for op " +
                                to_string(algo.op));
  }
  if (find(algo.op, algo.name) != nullptr) {
    throw std::invalid_argument("duplicate collective algorithm: " +
                                to_string(algo.op) + "/" + algo.name);
  }
  entries_.push_back(std::move(algo));
}

bool Registry::remove(CollOp op, const std::string& name) {
  return std::erase_if(entries_, [&](const CollAlgorithm& a) {
           return a.op == op && a.name == name;
         }) > 0;
}

const CollAlgorithm* Registry::find(CollOp op, const std::string& name) const {
  for (const CollAlgorithm& a : entries_) {
    if (a.op == op && a.name == name) {
      return &a;
    }
  }
  return nullptr;
}

const CollAlgorithm& Registry::get(CollOp op, const std::string& name) const {
  const CollAlgorithm* found = find(op, name);
  if (found == nullptr) {
    std::ostringstream os;
    os << "unknown " << to_string(op) << " algorithm: '" << name
       << "' (registered:";
    for (const std::string& n : names(op)) {
      os << ' ' << n;
    }
    os << ")";
    throw std::invalid_argument(os.str());
  }
  return *found;
}

std::vector<std::string> Registry::names(CollOp op) const {
  std::vector<std::string> out;
  for (const CollAlgorithm& a : entries_) {
    if (a.op == op) {
      out.push_back(a.name);
    }
  }
  return out;
}

std::vector<std::string> Registry::applicable_names(CollOp op,
                                                    const mpi::Comm& comm,
                                                    std::size_t bytes) const {
  std::vector<std::string> out;
  for (const CollAlgorithm& a : entries_) {
    if (a.op == op && (!a.applicable || a.applicable(comm, bytes))) {
      out.push_back(a.name);
    }
  }
  return out;
}

}  // namespace mcmpi::coll
