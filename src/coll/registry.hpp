#pragma once
/// \file registry.hpp
/// String-keyed algorithm registry for the collective layer.
///
/// Every collective algorithm — the paper's mpich baseline and multicast
/// scout variants, the related-work ack-mcast/sequencer protocols, the van
/// de Geijn scatter-allgather extension, the multicast allgather pacing
/// disciplines — registers one uniform CollAlgorithm entry: a run function
/// per operation, an applicability predicate, and an analytic cost hint.
/// Benches and tests sweep the registry instead of hardcoded enum lists, so
/// a newly registered algorithm is swept, tested and selectable for free;
/// the kAuto policy (tuning.hpp) resolves over the same entries.
///
/// Registration is open: link-time plugins (or tests) may add entries via
/// Registry::instance().add().  The built-in set is registered on first use
/// (no static-initialization-order games).

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "mpi/datatype.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

/// Collective operations the registry dispatches.
enum class CollOp {
  kBcast,
  kBarrier,
  kAllreduce,
  kAllgather,
  kReduce,
  kGather,
  kScatter,
  kScan,
  kAlltoall,
};

std::string to_string(CollOp op);

/// Every CollOp, in declaration order (tuning parser, sweep helpers).
inline constexpr CollOp kAllCollOps[] = {
    CollOp::kBcast,  CollOp::kBarrier, CollOp::kAllreduce, CollOp::kAllgather,
    CollOp::kReduce, CollOp::kGather,  CollOp::kScatter,   CollOp::kScan,
    CollOp::kAlltoall,
};

/// One registered algorithm.  Exactly one run function — the one matching
/// `op` — is set.
struct CollAlgorithm {
  std::string name;  ///< registry key, e.g. "mcast-binary"
  CollOp op = CollOp::kBcast;
  std::string description;

  /// May this algorithm serve (comm, payload bytes)?  Null means always.
  /// kAuto and the sweep helpers skip inapplicable entries; direct
  /// selection of an inapplicable algorithm is a precondition violation.
  std::function<bool(const mpi::Comm&, std::size_t bytes)> applicable;

  /// Analytic cost hint in frame-equivalents (lower is cheaper) for an
  /// M-byte payload on N ranks; advisory — kAuto consults the tuning table
  /// first and uses the hint only to order equally-tuned candidates.
  std::function<double(std::size_t bytes, int ranks)> cost_hint;

  /// Algorithms that may drop payload under load (blast allgather) are
  /// never picked by kAuto and are only correctness-checked on the blocks
  /// they deliver.
  bool lossy = false;

  /// Recovers from dropped / reordered / duplicated frames (reliable p2p
  /// transport, or an explicit multicast recovery protocol).  On a lossy
  /// network (Proc::network_lossy()) kAuto skips everything else, and the
  /// fault conformance sweep checks exactly these entries.
  bool loss_tolerant = false;

  // --- run functions (one set, per op) ---
  std::function<void(mpi::Proc&, const mpi::Comm&, Buffer& buffer, int root)>
      bcast;
  std::function<void(mpi::Proc&, const mpi::Comm&)> barrier;
  std::function<Buffer(mpi::Proc&, const mpi::Comm&,
                       std::span<const std::uint8_t> data, mpi::Op op,
                       mpi::Datatype type)>
      allreduce;
  /// Returns comm.size() blocks, indexed by comm rank (lossy entries may
  /// leave blocks empty).
  std::function<std::vector<Buffer>(mpi::Proc&, const mpi::Comm&,
                                    std::span<const std::uint8_t> data)>
      allgather;
  /// Returns the reduced vector at `root`, empty elsewhere.  Operands are
  /// combined in communicator rank order (observable for non-commutative
  /// custom ops).
  std::function<Buffer(mpi::Proc&, const mpi::Comm&,
                       std::span<const std::uint8_t> data, mpi::Op op,
                       mpi::Datatype type, int root)>
      reduce;
  /// Returns comm.size() blocks at `root` (indexed by comm rank), an empty
  /// vector elsewhere.
  std::function<std::vector<Buffer>(mpi::Proc&, const mpi::Comm&,
                                    std::span<const std::uint8_t> data,
                                    int root)>
      gather;
  /// `chunks` is root-only input (comm.size() entries, ignored elsewhere);
  /// returns this rank's chunk.
  std::function<Buffer(mpi::Proc&, const mpi::Comm&,
                       const std::vector<Buffer>& chunks, int root)>
      scatter;
  /// Inclusive prefix reduction: rank r returns op over ranks 0..r.
  std::function<Buffer(mpi::Proc&, const mpi::Comm&,
                       std::span<const std::uint8_t> data, mpi::Op op,
                       mpi::Datatype type)>
      scan;
  /// Personalized all-to-all: `to_each[i]` goes to comm rank i (comm.size()
  /// entries); returns comm.size() blocks, block r being what rank r sent
  /// to this rank.
  std::function<std::vector<Buffer>(mpi::Proc&, const mpi::Comm&,
                                    const std::vector<Buffer>& to_each)>
      alltoall;
};

/// Process-wide algorithm registry.  Not thread-safe by design: the
/// simulation is single-threaded (one runnable context), and registration
/// happens at startup.
class Registry {
 public:
  /// The registry, with the built-in algorithm set registered.
  static Registry& instance();

  /// Registers `algo`; throws std::invalid_argument on a duplicate
  /// (op, name) or a missing/mismatched run function.
  void add(CollAlgorithm algo);

  /// Unregisters (op, name); returns false if absent.  For plugin
  /// lifecycles and tests — never remove entries while a simulation that
  /// may dispatch them is running.
  bool remove(CollOp op, const std::string& name);

  /// Lookup; throws std::invalid_argument listing the registered names
  /// when (op, name) is unknown.
  const CollAlgorithm& get(CollOp op, const std::string& name) const;
  const CollAlgorithm* find(CollOp op, const std::string& name) const;

  /// Registered names for `op`, in registration order.
  std::vector<std::string> names(CollOp op) const;

  /// Names for `op` whose predicate accepts (comm, bytes).
  std::vector<std::string> applicable_names(CollOp op, const mpi::Comm& comm,
                                            std::size_t bytes) const;

  /// All entries (every op), in registration order.
  const std::vector<CollAlgorithm>& entries() const { return entries_; }

 private:
  Registry() = default;
  std::vector<CollAlgorithm> entries_;
};

}  // namespace mcmpi::coll
