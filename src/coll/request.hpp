#pragma once
/// \file request.hpp
/// CollRequest — completion handle for nonblocking collectives.
///
/// A nonblocking collective (Coll::ibcast / ibarrier / iallreduce) runs the
/// selected blocking algorithm on a dedicated helper fiber of the calling
/// rank, spawned on the PR 2 scheduler.  The helper makes progress whenever
/// the rank's main fiber blocks or sleeps (delay() models compute), so the
/// collective overlaps with computation exactly as a kernel-progressed
/// nonblocking collective would.  The rank completes the request with
/// Proc::wait(request), which parks until the helper finishes.
///
/// The handle itself is the layer-neutral sim::Completion (result() holds
/// the iallreduce output; finished_at() the helper's completion instant),
/// so the mpi layer can wait on it without depending on coll.

#include "sim/completion.hpp"

namespace mcmpi::coll {

using CollRequest = sim::Completion;

}  // namespace mcmpi::coll
