#include "coll/scatter_allgather.hpp"

#include "coll/mpich.hpp"
#include "common/assert.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

namespace {

/// Piece boundaries: piece i covers [offset(i), offset(i+1)).
std::size_t piece_offset(std::size_t total, int pieces, int index) {
  return total * static_cast<std::size_t>(index) /
         static_cast<std::size_t>(pieces);
}

}  // namespace

void bcast_scatter_allgather(Proc& p, const Comm& comm, Buffer& buffer,
                             int root) {
  const int size = comm.size();
  const int rank = comm.rank();
  MC_EXPECTS(root >= 0 && root < size);
  if (size == 1) {
    return;
  }

  // Every rank needs the total length up front (non-roots pass an empty
  // buffer); a tiny binomial broadcast of the header costs one extra round
  // of minimum-size frames.
  std::uint64_t total = buffer.size();
  {
    Buffer header;
    if (rank == root) {
      ByteWriter w(header);
      w.u64(total);
    }
    bcast_mpich(p, comm, header, root);
    ByteReader r(header);
    total = r.u64();
  }
  if (total < static_cast<std::uint64_t>(size)) {
    // Degenerate pieces; the tree is strictly better here.
    bcast_mpich(p, comm, buffer, root);
    return;
  }

  // --- Scatter along the binomial tree, halving the span at each hop. ---
  // Rank r (relative to root) ends up owning piece r.
  const int rel = (rank - root + size) % size;
  Buffer fragment;  // the contiguous span of pieces this rank currently holds
  int span_begin = 0;          // first piece in `fragment` (relative ranks)
  int span_count = size;       // pieces in `fragment`
  if (rank == root) {
    fragment = std::move(buffer);
    buffer.clear();
  } else {
    // Receive our span from the parent.
    int mask = 1;
    while (mask < size) {
      if (rel & mask) {
        const int parent = ((rel - mask) + root) % size;
        fragment = p.recv(comm, parent, mpi::kTagCollective);
        span_begin = rel;
        // Parent sent us pieces [rel, rel + min(mask, size - rel)).
        span_count = std::min(mask, size - rel);
        break;
      }
      mask <<= 1;
    }
  }
  // Forward the upper half of our span, repeatedly.
  {
    int mask = 1;
    while (mask < size && !(rel & mask)) {
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (rel + mask < span_begin + span_count) {
        const int child = ((rel + mask) + root) % size;
        const int child_begin = rel + mask;
        const int child_count = span_begin + span_count - child_begin;
        const std::size_t lo =
            piece_offset(total, size, child_begin) -
            piece_offset(total, size, span_begin);
        const std::size_t hi =
            piece_offset(total, size, child_begin + child_count) -
            piece_offset(total, size, span_begin);
        p.send(comm, child, mpi::kTagCollective,
               std::span<const std::uint8_t>(fragment.data() + lo, hi - lo));
        fragment.resize(lo);
        span_count = child_begin - span_begin;
      }
      mask >>= 1;
    }
  }
  MC_ASSERT(span_begin == rel && span_count >= 1);

  // --- Ring allgather of the pieces (piece index = relative rank). ---
  std::vector<Buffer> pieces(static_cast<std::size_t>(size));
  pieces[static_cast<std::size_t>(rel)] = std::move(fragment);
  const int next_rel = (rel + 1) % size;
  const int prev_rel = (rel - 1 + size) % size;
  const int next = (next_rel + root) % size;
  const int prev = (prev_rel + root) % size;
  for (int step = 0; step < size - 1; ++step) {
    const int sending = (rel - step + size) % size;
    const int receiving = (rel - step - 1 + size) % size;
    pieces[static_cast<std::size_t>(receiving)] =
        p.sendrecv(comm, next, mpi::kTagCollective,
                   pieces[static_cast<std::size_t>(sending)], prev,
                   mpi::kTagCollective);
  }

  // Reassemble in payload order (piece i is relative rank i's span).
  buffer.clear();
  buffer.reserve(total);
  for (int i = 0; i < size; ++i) {
    const Buffer& piece = pieces[static_cast<std::size_t>(i)];
    MC_ASSERT(piece.size() == piece_offset(total, size, i + 1) -
                                  piece_offset(total, size, i));
    buffer.insert(buffer.end(), piece.begin(), piece.end());
  }
}

}  // namespace mcmpi::coll
