#pragma once
/// \file scatter_allgather.hpp
/// Long-message broadcast via scatter + ring allgather (van de Geijn) —
/// the point-to-point answer to the multicast argument, added as an
/// extension baseline.
///
/// The paper's frame-count case against MPICH assumes the tree broadcast,
/// where the root's link carries the payload log2(N) times and the wire
/// carries it N-1 times in total.  Later MPI implementations adopted the
/// van de Geijn algorithm for long messages: scatter the payload in N
/// pieces down a binomial tree, then ring-allgather the pieces.  Total
/// traffic is *higher* than the tree's, but every byte crosses each LINK
/// at most ~2x and the ring runs on N disjoint full-duplex links in
/// parallel — critical-path time ~2M/B instead of ~log2(N)·M/B.  One IP
/// multicast still moves each byte exactly once in total, which is the
/// paper's structural advantage; abl_long_bcast maps where each of the
/// three designs wins.

#include "common/bytes.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

/// Broadcast `buffer` (input at root, output elsewhere) using
/// scatter + ring allgather.  Falls back to the binomial tree for payloads
/// smaller than one piece per rank would justify (< comm.size() bytes).
void bcast_scatter_allgather(mpi::Proc& p, const mpi::Comm& comm,
                             Buffer& buffer, int root);

}  // namespace mcmpi::coll
