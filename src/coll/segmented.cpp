#include "coll/segmented.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "coll/gf256.hpp"
#include "coll/limits.hpp"
#include "coll/mcast.hpp"
#include "coll/mcast_scatter.hpp"
#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

namespace {

/// Full framing of a segmented datagram: the 16 B (context, root, seq)
/// multicast header followed by the 32 B chunk sub-header.
constexpr std::size_t kCombinedHeaderBytes =
    kMcastFrameHeaderBytes + kSegHeaderBytes;

/// Top bit of SegHeader::index marks a parity frame of the FEC recovery
/// mode; the low bits are the parity row and SegHeader::offset carries the
/// generation index.  Data frames never set it (a stream is capped far
/// below 2^31 chunks by the u32 count), so the pre-FEC wire format is
/// untouched when fec_overhead == 0.
constexpr std::uint32_t kParityIndexBit = 0x80000000u;

struct SegmentedState {
  SegmentedConfig config;
};

struct SegHeader {
  std::uint32_t context = 0;
  std::int32_t root_world = 0;
  std::uint64_t seq = 0;      // per-lane channel sequence
  std::uint32_t index = 0;    // chunk number, 0-based
  std::uint32_t count = 0;    // total chunks of this stream
  std::uint64_t offset = 0;   // chunk's first byte within the stream
  std::uint64_t length = 0;   // chunk payload bytes
  std::uint64_t total = 0;    // stream bytes (receivers size output from it)
};

Buffer seg_header_bytes(const SegHeader& h) {
  Buffer out;
  out.reserve(kCombinedHeaderBytes);
  ByteWriter w(out);
  w.u32(h.context);
  w.i32(h.root_world);
  w.u64(h.seq);
  w.u32(h.index);
  w.u32(h.count);
  w.u64(h.offset);
  w.u64(h.length);
  w.u64(h.total);
  return out;
}

SegHeader parse_seg_header(ByteReader& r) {
  SegHeader h;
  h.context = r.u32();
  h.root_world = r.i32();
  h.seq = r.u64();
  h.index = r.u32();
  h.count = r.u32();
  h.offset = r.u64();
  h.length = r.u64();
  h.total = r.u64();
  return h;
}

/// Appends to `out` the sub-spans of `stream` covering stream bytes
/// [offset, offset + length) — the gather-framing of one chunk, with zero
/// assembly copies regardless of how many source buffers compose it.
void collect_chunk_parts(
    std::span<const std::span<const std::uint8_t>> stream, std::size_t offset,
    std::size_t length, std::vector<std::span<const std::uint8_t>>& out) {
  std::size_t pos = 0;
  for (const auto& part : stream) {
    if (length == 0) {
      break;
    }
    const std::size_t part_end = pos + part.size();
    if (part_end > offset) {
      const std::size_t lo = offset - pos;
      const std::size_t n = std::min(part.size() - lo, length);
      out.push_back(part.subspan(lo, n));
      offset += n;
      length -= n;
    }
    pos = part_end;
  }
  MC_ASSERT_MSG(length == 0, "chunk range exceeds the stream");
}

/// Root side: segments the logical stream (a concatenation of spans) into
/// chunks, stripes them over the lanes, and keeps up to `window` chunks in
/// flight per lane while collecting per-chunk acks and retransmitting on
/// timeout.  Returns once every chunk is fully acknowledged.
void segmented_send(Proc& p, const Comm& comm, int root,
                    std::span<const std::span<const std::uint8_t>> stream,
                    const SegmentedConfig& cfg) {
  const int receivers = comm.size() - 1;
  MC_EXPECTS(receivers > 0);
  std::size_t total = 0;
  for (const auto& part : stream) {
    total += part.size();
  }
  const std::size_t chunk_bytes =
      segmented_effective_chunk(cfg, p.mcast_recv_buffer());
  const std::uint32_t n_chunks =
      total == 0 ? 1
                 : static_cast<std::uint32_t>((total + chunk_bytes - 1) /
                                              chunk_bytes);
  sim::SchedCounters& counters = p.self().shard().counters();

  struct ChunkState {
    std::size_t offset = 0;
    std::size_t length = 0;
    std::uint64_t seq = 0;  // lane sequence of the FIRST transmission
    int lane = 0;
    int acks = 0;
    bool retired = false;
  };
  std::vector<ChunkState> chunks(n_chunks);
  for (std::uint32_t i = 0; i < n_chunks; ++i) {
    chunks[i].offset = static_cast<std::size_t>(i) * chunk_bytes;
    chunks[i].length = std::min(chunk_bytes, total - chunks[i].offset);
    chunks[i].lane = static_cast<int>(i % static_cast<std::uint32_t>(cfg.lanes));
  }

  std::vector<int> in_flight(static_cast<std::size_t>(cfg.lanes), 0);
  std::uint32_t sent = 0;
  std::uint32_t retired_count = 0;
  std::uint64_t live = 0;  // sent, not yet retired — across all lanes
  const std::uint64_t total_acks =
      static_cast<std::uint64_t>(n_chunks) * static_cast<std::uint64_t>(receivers);
  std::uint64_t acks_consumed = 0;
  std::shared_ptr<mpi::RecvRequest> request;

  std::vector<std::span<const std::uint8_t>> parts;
  const auto transmit = [&](std::uint32_t i, bool first) {
    ChunkState& c = chunks[i];
    mpi::McastChannel& ch = p.mcast_channel(comm, c.lane);
    if (first) {
      c.seq = ch.expected_seq();
    }
    // A retransmission reuses the original lane sequence, so receivers
    // that already consumed the chunk skip it as a stale duplicate.
    const SegHeader h{comm.context(), comm.world_rank_of(root), c.seq,
                      i,              n_chunks,                  c.offset,
                      c.length,       total};
    const Buffer header = seg_header_bytes(h);
    p.self().delay(p.costs().send_overhead(
        static_cast<std::int64_t>(c.length), mpi::CostTier::kMcastData));
    parts.clear();
    parts.push_back(header);
    collect_chunk_parts(stream, c.offset, c.length, parts);
    ch.send_parts(parts, net::FrameKind::kData);
    if (first) {
      ch.advance_seq();
      ++counters.chunk_sent;
      ++in_flight[static_cast<std::size_t>(c.lane)];
      ++live;
      counters.chunk_peak_window = std::max(counters.chunk_peak_window, live);
    } else {
      ++counters.chunk_retried;
      ++counters.retransmits;
    }
  };

  // FEC recovery mode: after the last FIRST transmission of a per-lane
  // generation (`window` data chunks, or the lane's partial tail), multicast
  // r parity frames over that generation.  Parity is fire-and-forget — it
  // consumes lane sequence numbers (so receivers can account for the slots)
  // but is never acked, tracked, or retransmitted: a lost parity frame
  // costs nothing beyond falling back to the ack/timeout machinery.
  const int fec_r = segmented_fec_parity(cfg);
  const auto send_gen_parity = [&](std::uint32_t i) {
    const int lane = chunks[i].lane;
    const std::uint32_t j = i / static_cast<std::uint32_t>(cfg.lanes);
    const std::uint32_t g = j / static_cast<std::uint32_t>(cfg.window);
    const std::uint32_t k0 =
        g * static_cast<std::uint32_t>(cfg.window * cfg.lanes) +
        static_cast<std::uint32_t>(lane);
    std::uint32_t gen_size = 0;
    for (std::uint32_t k = k0; k <= i; k += static_cast<std::uint32_t>(cfg.lanes)) {
      ++gen_size;
    }
    const std::size_t plen = chunks[k0].length;  // longest row of the gen
    mpi::McastChannel& ch = p.mcast_channel(comm, lane);
    for (int pr = 0; pr < fec_r; ++pr) {
      // Parity scratch from the payload pool — one allocation per frame,
      // recycled across generations like every other wire buffer.
      PooledBuffer scratch = acquire_payload_buffer(plen);
      scratch.bytes.assign(plen, 0);
      for (std::uint32_t q = 0; q < gen_size; ++q) {
        const std::uint8_t coef = gf256::parity_coef(
            pr, static_cast<int>(q), static_cast<int>(gen_size));
        const ChunkState& c =
            chunks[k0 + q * static_cast<std::uint32_t>(cfg.lanes)];
        parts.clear();
        collect_chunk_parts(stream, c.offset, c.length, parts);
        std::size_t pos = 0;
        for (const auto& part : parts) {
          gf256::mul_acc(std::span(scratch.bytes).subspan(pos, part.size()),
                         part, coef);
          pos += part.size();
        }
      }
      const SegHeader h{comm.context(),
                        comm.world_rank_of(root),
                        ch.expected_seq(),
                        kParityIndexBit | static_cast<std::uint32_t>(pr),
                        n_chunks,
                        g,
                        plen,
                        total};
      const Buffer header = seg_header_bytes(h);
      p.self().delay(p.costs().send_overhead(static_cast<std::int64_t>(plen),
                                             mpi::CostTier::kMcastData));
      parts.clear();
      parts.push_back(header);
      parts.push_back(scratch.bytes);
      ch.send_parts(parts, net::FrameKind::kData);
      ch.advance_seq();
      ++counters.parity_sent;
    }
  };

  SimTime timeout = cfg.retransmit_timeout;
  int dry_timeouts = 0;  // consecutive ack-less deadlines
  const auto consume_one_ack = [&] {
    for (;;) {
      const auto ack = p.wait_until(request, p.self().now() + timeout, nullptr,
                                    mpi::CostTier::kRaw);
      if (ack.has_value()) {
        timeout = cfg.retransmit_timeout;
        dry_timeouts = 0;
        ByteReader r(*ack);
        const std::uint32_t index = r.u32();
        MC_ASSERT_MSG(index < n_chunks, "ack for an unknown chunk");
        ChunkState& c = chunks[index];
        MC_ASSERT_MSG(!c.retired, "ack for an already-retired chunk");
        ++counters.chunk_acked;
        ++acks_consumed;
        if (++c.acks == receivers) {
          c.retired = true;
          ++retired_count;
          --in_flight[static_cast<std::size_t>(c.lane)];
          --live;
        }
        if (acks_consumed < total_acks) {
          request = p.irecv(comm, mpi::kAnySource, mpi::kTagChunkAck);
        }
        return;
      }
      // Timeout: somebody missed a chunk (drop or slow drain) — recover the
      // oldest outstanding one and keep waiting, backing the deadline off
      // so retransmissions stop colliding with the acks they provoke.
      if (cfg.max_retries > 0 && dry_timeouts >= cfg.max_retries) {
        std::ostringstream os;
        os << "mcast-segmented: root rank " << root << " gave up after "
           << dry_timeouts << " consecutive ack-less timeouts ("
           << retired_count << " of " << n_chunks
           << " chunks retired) — loss rate exceeds what the window can "
              "absorb; raise max_retries or retransmit_timeout_cap";
        throw std::runtime_error(os.str());
      }
      ++dry_timeouts;
      for (std::uint32_t i = 0; i < sent; ++i) {
        if (!chunks[i].retired) {
          transmit(i, false);
          break;
        }
      }
      const auto scaled = static_cast<std::int64_t>(
          static_cast<double>(timeout.count()) * cfg.retransmit_backoff);
      timeout = std::min(SimTime{scaled}, cfg.retransmit_timeout_cap);
    }
  };

  for (std::uint32_t i = 0; i < n_chunks; ++i) {
    // Sliding window: stall only when THIS chunk's lane is saturated; acks
    // consumed here retire earlier chunks while later ones are in flight.
    while (in_flight[static_cast<std::size_t>(chunks[i].lane)] >= cfg.window) {
      consume_one_ack();
    }
    transmit(i, true);
    ++sent;
    if (fec_r > 0) {
      const std::uint32_t j = i / static_cast<std::uint32_t>(cfg.lanes);
      const bool lane_tail =
          i + static_cast<std::uint32_t>(cfg.lanes) >= n_chunks;
      if ((j + 1) % static_cast<std::uint32_t>(cfg.window) == 0 || lane_tail) {
        send_gen_parity(i);
      }
    }
    if (request == nullptr) {
      request = p.irecv(comm, mpi::kAnySource, mpi::kTagChunkAck);
    }
  }
  while (retired_count < n_chunks) {
    consume_one_ack();
  }
}

/// Receiver side: consumes chunks 0..count-1 in index order (chunk k on
/// lane k mod lanes), hands each to `sink`, and acks it to the root over
/// the raw path.  The stream geometry is learned from the first chunk.
///
/// FEC recovery mode (fec_overhead > 0): the receiver additionally keeps
/// the CURRENT generation's consumed rows and any parity frames for it;
/// the moment any generation-size subset of data + parity is on hand, the
/// missing chunks are reconstructed, delivered, and acked in-window — no
/// retransmit-timeout wait.  Parity beyond the losses is ignored, losses
/// beyond the parity fall back to the root's ack/timeout recovery, and a
/// decode is a pure function of the delivered-chunk set, so the output is
/// bit-identical however the race between parity and retransmission lands.
void segmented_recv(
    Proc& p, const Comm& comm, int root, const SegmentedConfig& cfg,
    const std::function<void(const SegHeader&, PayloadRef)>& sink) {
  std::uint32_t n_chunks = 1;  // corrected by the first header
  const std::uint32_t lanes_u = static_cast<std::uint32_t>(cfg.lanes);
  const std::uint32_t window_u = static_cast<std::uint32_t>(cfg.window);
  const int fec_r = segmented_fec_parity(cfg);
  // Receivers derive the chunk size exactly like the root (the config is
  // communicator-uniform), so a reconstructed chunk's offset and length
  // never depend on having seen its header.
  const std::size_t chunk_bytes =
      segmented_effective_chunk(cfg, p.mcast_recv_buffer());
  bool have_geometry = false;
  std::uint64_t stream_total = 0;
  sim::SchedCounters& counters = p.self().shard().counters();
  // Ahead-of-sequence chunks (reordered, or resent after a dropped
  // predecessor) are stashed per lane and consumed in lane-sequence order —
  // a dropped or late frame never crashes the stream.
  std::vector<std::map<std::uint64_t, std::pair<SegHeader, PayloadRef>>>
      stash(static_cast<std::size_t>(cfg.lanes));
  // Per-lane FEC generation state: consumed rows of the CURRENT generation
  // (decode inputs must outlive their delivery) and its parity frames.
  struct FecLane {
    std::int64_t gen = -1;
    std::vector<PayloadRef> rows;  // by generation position, consumed so far
    std::vector<std::pair<int, PayloadRef>> parity;  // (row, bytes)
  };
  std::vector<FecLane> fec(static_cast<std::size_t>(cfg.lanes));
  const auto consume = [&](const SegHeader& h, PayloadRef body,
                           mpi::McastChannel& ch, std::uint32_t k) {
    MC_ASSERT_MSG(h.context == comm.context(), "context mismatch");
    MC_ASSERT_MSG(h.root_world == comm.world_rank_of(root),
                  "segmented stream root mismatch");
    MC_ASSERT_MSG(h.index == k, "chunk index out of stream order");
    MC_ASSERT_MSG(h.count >= 1 && h.index < h.count, "bad chunk count");
    MC_ASSERT_MSG(body.size() == h.length, "chunk length mismatch");
    n_chunks = h.count;
    stream_total = h.total;
    have_geometry = true;
    if (fec_r > 0) {
      FecLane& fl = fec[static_cast<std::size_t>(ch.lane())];
      fl.rows[(k / lanes_u) % window_u] = body;
    }
    sink(h, std::move(body));
    ch.advance_seq();
    // Per-chunk ack over the raw path (the ORNL discipline of
    // ack_mcast.cpp, applied per chunk instead of per broadcast).
    Buffer ack;
    ByteWriter w(ack);
    w.u32(h.index);
    p.send(comm, root, mpi::kTagChunkAck, ack, net::FrameKind::kControl,
           mpi::CostTier::kRaw);
  };
  // Erasure recovery: when the chunk the cursor waits on was lost but the
  // generation's surviving rows (consumed + stashed + parity) reach the
  // generation size, reconstruct every missing row — the cursor's chunk is
  // delivered immediately, later ones are planted in the stash under the
  // lane sequences their originals carried.
  const auto try_reconstruct =
      [&](std::uint32_t k, int lane, mpi::McastChannel& ch,
          std::map<std::uint64_t, std::pair<SegHeader, PayloadRef>>&
              lane_stash) -> bool {
    FecLane& fl = fec[static_cast<std::size_t>(lane)];
    if (!have_geometry || fl.parity.empty()) {
      return false;
    }
    const std::uint32_t j = k / lanes_u;
    const std::uint32_t g = j / window_u;
    const std::uint32_t gen_pos = j % window_u;
    const std::uint32_t lane_count =
        (n_chunks - static_cast<std::uint32_t>(lane) + lanes_u - 1) / lanes_u;
    const std::uint32_t gen_size =
        std::min(window_u, lane_count - g * window_u);
    std::vector<const PayloadRef*> present(gen_size, nullptr);
    std::uint32_t stash_rows = 0;
    for (const auto& [seq, entry] : lane_stash) {
      const std::uint32_t jj = entry.first.index / lanes_u;
      if (jj / window_u != g) {
        continue;
      }
      const std::uint32_t q = jj % window_u;
      if (present[q] == nullptr) {
        present[q] = &entry.second;
        ++stash_rows;
      }
    }
    if (gen_pos + stash_rows + fl.parity.size() < gen_size) {
      return false;  // not enough survivors yet — keep receiving
    }
    std::vector<int> missing;
    for (std::uint32_t q = gen_pos; q < gen_size; ++q) {
      if (present[q] == nullptr) {
        missing.push_back(static_cast<int>(q));
      }
    }
    if (missing.empty()) {
      return false;  // cursor chunk is stashed; the normal path consumes it
    }
    std::vector<std::span<const std::uint8_t>> dspans(gen_size);
    for (std::uint32_t q = 0; q < gen_pos; ++q) {
      dspans[q] = fl.rows[q].view();
    }
    for (std::uint32_t q = gen_pos; q < gen_size; ++q) {
      if (present[q] != nullptr) {
        dspans[q] = present[q]->view();
      }
    }
    // Ascending row order keeps the decode a pure function of the
    // delivered-chunk SET, not of arrival order.
    std::sort(fl.parity.begin(), fl.parity.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<gf256::ParityRow> prows;
    prows.reserve(missing.size());
    for (std::size_t t = 0; t < missing.size(); ++t) {
      prows.push_back({fl.parity[t].first, fl.parity[t].second.view()});
      // Parity never matches the expected data slot, so it was never
      // charged at arrival; pay for the rows the decode consumes.
      p.self().delay(p.costs().recv_overhead(
          static_cast<std::int64_t>(kSegHeaderBytes +
                                    fl.parity[t].second.size()),
          mpi::CostTier::kMcastData));
    }
    std::vector<Buffer> rebuilt(missing.size());
    std::vector<std::span<std::uint8_t>> outs(missing.size());
    for (std::size_t t = 0; t < missing.size(); ++t) {
      const std::uint32_t kk =
          (g * window_u + static_cast<std::uint32_t>(missing[t])) * lanes_u +
          static_cast<std::uint32_t>(lane);
      const std::size_t off = static_cast<std::size_t>(kk) * chunk_bytes;
      rebuilt[t].resize(std::min(
          chunk_bytes, static_cast<std::size_t>(stream_total) - off));
      outs[t] = rebuilt[t];
    }
    gf256::decode(dspans, prows, missing, outs);
    ++counters.fec_decodes;
    counters.parity_used += missing.size();
    const std::uint64_t base = ch.expected_seq();
    bool delivered = false;
    for (std::size_t t = 0; t < missing.size(); ++t) {
      const std::uint32_t q = static_cast<std::uint32_t>(missing[t]);
      const std::uint32_t kk =
          (g * window_u + q) * lanes_u + static_cast<std::uint32_t>(lane);
      const SegHeader hh{comm.context(),
                         comm.world_rank_of(root),
                         base + (q - gen_pos),
                         kk,
                         n_chunks,
                         static_cast<std::uint64_t>(kk) * chunk_bytes,
                         rebuilt[t].size(),
                         stream_total};
      PayloadRef body{std::move(rebuilt[t])};
      if (q == gen_pos) {
        consume(hh, std::move(body), ch, k);
        delivered = true;
      } else {
        lane_stash.try_emplace(hh.seq, hh, std::move(body));
      }
    }
    return delivered;
  };
  for (std::uint32_t k = 0; k < n_chunks; ++k) {
    const int lane = static_cast<int>(k % lanes_u);
    mpi::McastChannel& ch = p.mcast_channel(comm, lane);
    auto& lane_stash = stash[static_cast<std::size_t>(lane)];
    if (fec_r > 0) {
      const auto g = static_cast<std::int64_t>((k / lanes_u) / window_u);
      FecLane& fl = fec[static_cast<std::size_t>(lane)];
      if (fl.gen != g) {
        if (fl.gen >= 0) {
          // Entering a new generation: skip the previous one's parity
          // slots.  Parity is fire-and-forget, so waiting on those
          // sequences could deadlock — the frames may simply never exist.
          for (int i = 0; i < fec_r; ++i) {
            ch.advance_seq();
          }
        }
        fl.gen = g;
        fl.rows.assign(window_u, PayloadRef{});
        fl.parity.clear();
      }
    }
    for (;;) {
      const auto stashed = lane_stash.find(ch.expected_seq());
      if (stashed != lane_stash.end()) {
        auto [h, body] = std::move(stashed->second);
        lane_stash.erase(stashed);
        // The stashed delivery was never charged at arrival; pay the
        // receive overhead at consumption, like the !charged path below.
        p.self().delay(p.costs().recv_overhead(
            static_cast<std::int64_t>(kSegHeaderBytes + h.length),
            mpi::CostTier::kMcastData));
        consume(h, std::move(body), ch, k);
        break;
      }
      if (fec_r > 0 && try_reconstruct(k, lane, ch, lane_stash)) {
        break;
      }
      auto [d, charged] = ch.socket().recv_charged(
          p.self(), [&p, &ch](const inet::UdpDatagram& dg) -> SimTime {
            ByteReader peek(dg.data);
            (void)peek.u32();  // context
            (void)peek.i32();  // root
            if (peek.u64() != ch.expected_seq()) {
              // Stale duplicate (skipped) or ahead-of-sequence (stashed,
              // charged at consumption): never charged here.
              return kTimeZero;
            }
            return p.costs().recv_overhead(
                static_cast<std::int64_t>(dg.data.size() -
                                          kMcastFrameHeaderBytes),
                mpi::CostTier::kMcastData);
          });
      ByteReader r(d.data);
      const SegHeader h = parse_seg_header(r);
      if (h.seq < ch.expected_seq()) {
        continue;  // stale duplicate (retransmission of a consumed chunk)
      }
      PayloadRef body = d.data.slice(r.position());
      if ((h.index & kParityIndexBit) != 0) {
        // Parity frame.  Every header carries the stream geometry, so even
        // a parity-first arrival teaches the receiver enough to decode.
        // Keep it only for the lane's current generation; anything else is
        // dropped — correctness never depends on parity.
        n_chunks = h.count;
        stream_total = h.total;
        have_geometry = true;
        if (fec_r > 0) {
          FecLane& fl = fec[static_cast<std::size_t>(lane)];
          const int pr = static_cast<int>(h.index & ~kParityIndexBit);
          const bool dup = std::any_of(
              fl.parity.begin(), fl.parity.end(),
              [pr](const auto& e) { return e.first == pr; });
          if (static_cast<std::int64_t>(h.offset) == fl.gen && !dup) {
            fl.parity.emplace_back(pr, std::move(body));
          }
        }
        continue;
      }
      if (h.seq > ch.expected_seq()) {
        // Geometry rides on every header — learn it before chunk 0 lands,
        // so an early loss is still reconstructable.
        n_chunks = h.count;
        stream_total = h.total;
        have_geometry = true;
        lane_stash.try_emplace(h.seq, h, std::move(body));
        continue;
      }
      if (!charged) {
        p.self().delay(p.costs().recv_overhead(
            static_cast<std::int64_t>(kSegHeaderBytes + h.length),
            mpi::CostTier::kMcastData));
      }
      consume(h, std::move(body), ch, k);
      break;
    }
  }
  if (fec_r > 0) {
    // The k loop never crosses the final generation's parity slots; advance
    // past them so every lane's sequence matches the root for the next
    // collective on these channels.
    for (std::uint32_t lane = 0; lane < lanes_u && lane < n_chunks; ++lane) {
      mpi::McastChannel& ch = p.mcast_channel(comm, static_cast<int>(lane));
      for (int i = 0; i < fec_r; ++i) {
        ch.advance_seq();
      }
    }
  }
}

/// Shared preamble of every segmented collective: every rank creates ALL
/// lane channels (readiness on every group it may hear), then announces
/// readiness with the binomial scout gather toward the stream root.
void segmented_sync(Proc& p, const Comm& comm, int root,
                    const SegmentedConfig& cfg) {
  for (int lane = 0; lane < cfg.lanes; ++lane) {
    (void)p.mcast_channel(comm, lane);
  }
  scout_gather_binary(p, comm, root);
}

}  // namespace

int segmented_fec_parity(const SegmentedConfig& config) {
  if (!(config.fec_overhead > 0.0)) {
    return 0;
  }
  const int raw = static_cast<int>(
      std::ceil(static_cast<double>(config.window) * config.fec_overhead));
  return std::clamp(raw, 1, gf256::max_parity(config.window));
}

void set_segmented_config(Proc& p, const Comm& comm,
                          const SegmentedConfig& config) {
  MC_EXPECTS_MSG(config.chunk_bytes >= 1, "chunk size must be positive");
  MC_EXPECTS_MSG(config.window >= 1, "window must be at least 1");
  MC_EXPECTS_MSG(
      config.lanes >= 1 && config.lanes <= mpi::CommInfo::kMaxMcastLanes,
      "lane count out of range");
  MC_EXPECTS_MSG(config.retransmit_timeout > kTimeZero,
                 "retransmit timeout must be positive");
  MC_EXPECTS_MSG(config.retransmit_backoff >= 1.0,
                 "retransmit backoff must be >= 1");
  MC_EXPECTS_MSG(config.retransmit_timeout_cap >= config.retransmit_timeout,
                 "timeout cap below the base timeout");
  MC_EXPECTS_MSG(config.max_retries >= 0, "max_retries must be >= 0");
  MC_EXPECTS_MSG(config.fec_overhead >= 0.0 && config.fec_overhead <= 1.0,
                 "fec_overhead must be in [0, 1]");
  MC_EXPECTS_MSG(config.fec_overhead == 0.0 || config.window <= 128,
                 "FEC needs window <= 128 (generation + parity in GF(256))");
  p.coll_state<SegmentedState>(comm).config = config;
}

const SegmentedConfig& segmented_config(Proc& p, const Comm& comm) {
  return p.coll_state<SegmentedState>(comm).config;
}

std::size_t segmented_effective_chunk(const SegmentedConfig& config,
                                      std::size_t rcvbuf_bytes) {
  std::size_t chunk = config.chunk_bytes;
  // Framed chunk must clear the fragment-offset datagram ceiling…
  chunk = std::min(chunk, kMaxMcastDatagram - kCombinedHeaderBytes);
  // …and a full window of framed chunks — plus the generation's parity
  // frames when FEC is on, which share the same lane buffer — must fit one
  // lane's receive buffer (the enqueue limit counts framing + payload), or
  // the pipeline would overrun the very buffer it is pacing.
  const std::size_t window_share =
      rcvbuf_bytes / static_cast<std::size_t>(config.window +
                                              segmented_fec_parity(config));
  MC_EXPECTS_MSG(window_share > kCombinedHeaderBytes,
                 "receive buffer too small for the window");
  chunk = std::min(chunk, window_share - kCombinedHeaderBytes);
  return std::max<std::size_t>(chunk, 1);
}

void bcast_mcast_segmented(Proc& p, const Comm& comm, Buffer& buffer,
                           int root) {
  MC_EXPECTS(root >= 0 && root < comm.size());
  if (comm.size() == 1) {
    return;
  }
  const SegmentedConfig cfg = segmented_config(p, comm);
  segmented_sync(p, comm, root, cfg);
  if (comm.rank() == root) {
    const std::span<const std::uint8_t> stream[] = {buffer};
    segmented_send(p, comm, root, stream, cfg);
    return;
  }
  bool sized = false;
  segmented_recv(p, comm, root, cfg,
                 [&](const SegHeader& h, PayloadRef body) {
                   if (!sized) {
                     buffer.resize(h.total);
                     sized = true;
                   }
                   // The delivery copy: straight into the chunk's final
                   // place in the output — no reassembly staging buffer.
                   body.copy_to(std::span(buffer).subspan(
                       static_cast<std::size_t>(h.offset), h.length));
                 });
}

std::vector<Buffer> allgather_mcast_segmented(
    Proc& p, const Comm& comm, std::span<const std::uint8_t> data) {
  const int size = comm.size();
  std::vector<Buffer> blocks(static_cast<std::size_t>(size));
  blocks[static_cast<std::size_t>(comm.rank())].assign(data.begin(),
                                                       data.end());
  if (size == 1) {
    return blocks;
  }
  const SegmentedConfig cfg = segmented_config(p, comm);
  // N rounds in rank order, each a fully acked segmented stream: round
  // r+1's scouts cannot precede round r's final acks, so rounds never
  // overrun a lagging receiver (the lockstep guarantee, kept per stream).
  for (int r = 0; r < size; ++r) {
    segmented_sync(p, comm, r, cfg);
    if (comm.rank() == r) {
      const std::span<const std::uint8_t> stream[] = {data};
      segmented_send(p, comm, r, stream, cfg);
      continue;
    }
    Buffer& block = blocks[static_cast<std::size_t>(r)];
    bool sized = false;
    segmented_recv(p, comm, r, cfg,
                   [&](const SegHeader& h, PayloadRef body) {
                     if (!sized) {
                       block.resize(h.total);
                       sized = true;
                     }
                     body.copy_to(std::span(block).subspan(
                         static_cast<std::size_t>(h.offset), h.length));
                   });
  }
  return blocks;
}

Buffer scatter_mcast_segmented(Proc& p, const Comm& comm,
                               const std::vector<Buffer>& chunks, int root) {
  MC_EXPECTS(root >= 0 && root < comm.size());
  const int size = comm.size();
  if (size == 1) {
    MC_EXPECTS(chunks.size() == 1);
    return chunks[0];
  }
  const SegmentedConfig cfg = segmented_config(p, comm);
  segmented_sync(p, comm, root, cfg);
  const std::size_t table_bytes = scatter_table_bytes(size);

  if (comm.rank() == root) {
    MC_EXPECTS_MSG(chunks.size() == static_cast<std::size_t>(size),
                   "scatter needs comm.size() chunks at the root");
    Buffer table;
    table.reserve(table_bytes);
    ByteWriter w(table);
    w.u32(static_cast<std::uint32_t>(size));
    for (const Buffer& b : chunks) {
      w.u64(b.size());
    }
    // Receivers locate their range from the table, so it must land whole
    // in the first chunk of the stream.
    MC_EXPECTS_MSG(
        segmented_effective_chunk(cfg, p.mcast_recv_buffer()) >= table.size(),
        "chunk size below the scatter table — raise chunk_bytes");
    std::vector<std::span<const std::uint8_t>> stream;
    stream.reserve(chunks.size() + 1);
    stream.push_back(table);
    for (const Buffer& b : chunks) {
      stream.push_back(b);
    }
    segmented_send(p, comm, root, stream, cfg);
    return chunks[static_cast<std::size_t>(root)];
  }

  Buffer table(table_bytes);
  Buffer own;
  bool located = false;
  std::size_t my_begin = 0;
  std::size_t my_end = 0;
  segmented_recv(p, comm, root, cfg, [&](const SegHeader& h, PayloadRef body) {
    const std::size_t offset = static_cast<std::size_t>(h.offset);
    if (offset < table_bytes) {
      const std::size_t n =
          std::min<std::size_t>(table_bytes - offset, h.length);
      body.slice(0, n).copy_to(std::span(table).subspan(offset, n));
    }
    if (!located) {
      // The root guarantees the table fits chunk 0 (asserted above), so
      // the first delivery locates this rank's range.
      MC_ASSERT_MSG(offset + h.length >= table_bytes,
                    "first chunk did not cover the scatter table");
      ByteReader r(table);
      MC_ASSERT(r.u32() == static_cast<std::uint32_t>(size));
      std::size_t off = table_bytes;
      for (int i = 0; i < size; ++i) {
        const std::size_t len = static_cast<std::size_t>(r.u64());
        if (i == comm.rank()) {
          my_begin = off;
          my_end = off + len;
        }
        off += len;
      }
      MC_ASSERT_MSG(off == h.total, "scatter table does not match the stream");
      own.resize(my_end - my_begin);
      located = true;
    }
    // Keep only the overlap with this rank's block — everything else of
    // the shared stream is discarded without a copy.
    const std::size_t lo = std::max(offset, my_begin);
    const std::size_t hi = std::min(offset + h.length, my_end);
    if (lo < hi) {
      body.slice(lo - offset, hi - lo)
          .copy_to(std::span(own).subspan(lo - my_begin, hi - lo));
    }
  });
  return own;
}

}  // namespace mcmpi::coll
