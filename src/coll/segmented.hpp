#pragma once
/// \file segmented.hpp
/// Jumbo-message multicast: segmented, pipelined, multi-lane striping.
///
/// Every single-shot multicast collective in this repo shares a hard
/// ceiling: the whole payload must fit one simulated UDP datagram
/// (coll::kMaxMcastDatagram ≈ 512 KiB, from the 16-bit IP fragment-offset
/// field) AND the receivers' socket buffers.  This engine removes the
/// ceiling by doing what a real large-message protocol does:
///
///   * SEGMENT — the payload is cut into chunks small enough for the
///     datagram ceiling and a window's share of the receive buffer; each
///     chunk is multicast with a 32 B sub-header (index, count, offset,
///     length, total) appended to the usual 16 B (context, root, seq)
///     framing, so any chunk is self-describing.
///
///   * PIPELINE — a sliding window keeps up to `window` chunks in flight
///     per lane: the multicast of chunk k overlaps the ack collection
///     (and any timeout-driven recovery) of chunk k-1, instead of the
///     lockstep send → all-ack → send cadence (window = 1).
///
///   * STRIPE — `lanes` > 1 spreads chunks round-robin over several
///     multicast groups of the SAME communicator (CommInfo::mcast_port(l)
///     gives each lane its own port; lane 0 is the classic identity).
///     Each lane carries its own sequence numbers and its own receive
///     buffer, so striping multiplies both the in-flight budget and the
///     receiver-side buffering.
///
/// Reliability is the ORNL ack discipline of ack_mcast.cpp, per chunk:
/// every receiver acks every chunk over the raw path; the root retires a
/// chunk at N-1 acks and re-multicasts the oldest unretired chunk (with
/// its ORIGINAL lane sequence number, so consumers that already have it
/// skip a stale duplicate) when acks stop arriving.  Readiness is the
/// paper's scout synchronization: every rank creates ALL lane channels
/// before its scout, so no chunk can beat a receiver's join.
///
/// The hot path is zero-copy end to end: chunks are sub-spans of the user
/// buffer gather-framed straight into the wire datagram (the pipeline's
/// single kernel copy), and the receive side copies each delivered chunk
/// once, into its final place in the output buffer (PayloadRef::copy_to,
/// counted like every delivery copy).

#include <functional>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

/// Wire size of the per-chunk sub-header (u32 index, u32 count, u64
/// offset, u64 length, u64 total) that follows the 16 B multicast framing
/// header on every segmented datagram.
inline constexpr std::size_t kSegHeaderBytes = 32;

/// Knobs of the segmented pipeline, kept per communicator
/// (set_segmented_config) so benches and tests sweep them without new
/// collective entry points.  The configuration must be identical on every
/// rank of the communicator — it is protocol geometry, like a datatype.
struct SegmentedConfig {
  /// Requested chunk payload bytes; the effective size is clamped to the
  /// datagram ceiling and the per-lane receive buffer's window share
  /// (segmented_effective_chunk).
  std::size_t chunk_bytes = 64 * 1024;
  /// Chunks in flight per lane before the root must retire one (1 =
  /// lockstep send-then-ack; >1 pipelines transmission over recovery).
  int window = 4;
  /// Multicast groups striped round-robin (1..CommInfo::kMaxMcastLanes).
  int lanes = 1;
  /// Root-side ack deadline before the oldest unretired chunk is
  /// re-multicast.  Must exceed a chunk's wire + delivery time, or steady
  /// state retransmits spuriously.
  SimTime retransmit_timeout = milliseconds(50);
  /// Deadline multiplier applied after every ACK-less timeout (reset to
  /// retransmit_timeout by any ack).  1.0 keeps the historical fixed
  /// timer, which livelocks under sustained loss.
  double retransmit_backoff = 1.0;
  /// Backed-off deadline ceiling.
  SimTime retransmit_timeout_cap = milliseconds(800);
  /// Give up after this many CONSECUTIVE ack-less timeouts (0 = retry
  /// forever, the historical behavior).  Exceeding the cap throws: the
  /// stream cannot make progress and silence would hang every rank.
  int max_retries = 0;
  /// FEC recovery mode (coll/fec.hpp's erasure coder applied per window):
  /// after every generation of `window` data chunks on a lane, the root
  /// multicasts r = max(1, ceil(window * fec_overhead)) Reed–Solomon
  /// parity frames for that generation.  A receiver holding any
  /// generation-size subset of data + parity reconstructs the missing
  /// chunks IN-WINDOW — and acks them — instead of waiting out the root's
  /// retransmit timeout; losses beyond r still fall back to the ack/
  /// timeout machinery.  Parity frames are fire-and-forget (never acked,
  /// never retransmitted) and consume lane sequence numbers, so 0 keeps
  /// the wire format byte-identical to the pre-FEC protocol.  Requires
  /// window <= 128 when nonzero (generation + parity must fit GF(256)).
  double fec_overhead = 0.0;
};

/// Parity frames per generation for `config` (0 when FEC is off).
int segmented_fec_parity(const SegmentedConfig& config);

/// Installs `config` for all segmented collectives on `comm` (per-rank
/// call; keep it communicator-uniform).
void set_segmented_config(mpi::Proc& p, const mpi::Comm& comm,
                          const SegmentedConfig& config);
/// The communicator's current configuration (defaults until set).
const SegmentedConfig& segmented_config(mpi::Proc& p, const mpi::Comm& comm);

/// The chunk payload size actually used: `chunk_bytes` clamped so that
/// [framing + chunk] fits the datagram ceiling and `window` in-flight
/// chunks fit one lane's receive buffer (`rcvbuf_bytes`).
std::size_t segmented_effective_chunk(const SegmentedConfig& config,
                                      std::size_t rcvbuf_bytes);

/// Segmented broadcast: any payload size, any topology with multicast.
void bcast_mcast_segmented(mpi::Proc& p, const mpi::Comm& comm,
                           Buffer& buffer, int root);

/// Segmented allgather: N sequential segmented streams in rank order
/// (block r crosses the wire once, whatever its size).
std::vector<Buffer> allgather_mcast_segmented(
    mpi::Proc& p, const mpi::Comm& comm, std::span<const std::uint8_t> data);

/// Segmented scatter: the [chunk table ‖ concatenated blocks] stream of
/// mcast_scatter.hpp, freed from the single-datagram ceiling.  Receivers
/// keep only the table and their own range.
Buffer scatter_mcast_segmented(mpi::Proc& p, const mpi::Comm& comm,
                               const std::vector<Buffer>& chunks, int root);

}  // namespace mcmpi::coll
