#include "coll/sequencer.hpp"

#include <map>

#include "common/assert.hpp"

namespace mcmpi::coll {

using mpi::Comm;
using mpi::Proc;

namespace {

constexpr int kSequencerRank = 0;

struct SeqState {
  // Sequencer side.
  bool sink_installed = false;
  // seq -> framed payload; shared refs, so retained history and NACK-driven
  // re-multicasts reuse the original framed allocation.
  std::map<std::uint64_t, PayloadRef> history;
  // Receiver side: early frames (seq > expected), views of their datagrams.
  std::map<std::uint64_t, PayloadRef> stash;
  SequencerStats stats;
};

PayloadRef frame(std::uint32_t context, std::int32_t root_world,
                 std::uint64_t seq, std::span<const std::uint8_t> payload) {
  PooledBuffer out = acquire_payload_buffer(payload.size() + 16);
  ByteWriter w(out.bytes);
  w.u32(context);
  w.i32(root_world);
  w.u64(seq);
  w.bytes(payload);
  return PayloadRef::adopt(std::move(out));
}

void install_sink(Proc& p, const Comm& comm, SeqState& state) {
  if (state.sink_installed) {
    return;
  }
  state.sink_installed = true;
  mpi::McastChannel* channel = &p.mcast_channel(comm);
  SeqState* st = &state;
  p.engine().set_sink(
      comm.context(), mpi::kTagSeqNack,
      [channel, st](mpi::Rank /*src*/, PayloadRef data) {
        ByteReader r(data);
        const std::uint64_t wanted = r.u64();
        const auto it = st->history.find(wanted);
        if (it == st->history.end()) {
          ++st->stats.nacks_unserved;
          return;
        }
        ++st->stats.nacks_served;
        // Kernel-level service: re-multicast without charging the rank.
        channel->send(it->second, net::FrameKind::kData);
      });
}

/// Receiver-side delivery with gap recovery.  Returns the payload of the
/// next in-order broadcast.
Buffer recv_with_nack(Proc& p, const Comm& comm, SeqState& state,
                      const SequencerParams& params) {
  mpi::McastChannel& ch = p.mcast_channel(comm);
  for (;;) {
    const std::uint64_t expected = ch.expected_seq();
    // A retransmission may already be stashed.
    if (const auto it = state.stash.find(expected); it != state.stash.end()) {
      Buffer payload = it->second.to_buffer();
      state.stash.erase(it);
      ch.advance_seq();
      p.self().delay(p.costs().recv_overhead(
          static_cast<std::int64_t>(payload.size()),
          mpi::CostTier::kMcastData));
      return payload;
    }
    // Charged receive: an arrival that wakes the parked rank prices the
    // receive overhead into the wake-up when it is the expected in-order
    // frame (duplicates and early frames wake immediately and are handled
    // without a delivery charge) — one handoff instead of two.
    auto datagram = ch.socket().recv_until_charged(
        p.self(), p.self().now() + params.nack_timeout,
        [&p, expected](const inet::UdpDatagram& dg) -> SimTime {
          ByteReader peek(dg.data);
          (void)peek.u32();  // context
          (void)peek.i32();  // root
          if (peek.u64() != expected) {
            return kTimeZero;  // duplicate or early frame: uncharged wake
          }
          return p.costs().recv_overhead(
              static_cast<std::int64_t>(dg.data.size() - peek.position()),
              mpi::CostTier::kMcastData);
        });
    if (!datagram.has_value()) {
      // Gap (or sequencer not there yet): ask for the expected frame.
      ++state.stats.nacks_sent;
      Buffer nack;
      ByteWriter w(nack);
      w.u64(expected);
      p.send(comm, kSequencerRank, mpi::kTagSeqNack, nack,
             net::FrameKind::kControl, mpi::CostTier::kRaw);
      continue;
    }
    ByteReader r(datagram->datagram.data);
    (void)r.u32();  // context (validated by port/group)
    (void)r.i32();  // root
    const std::uint64_t seq = r.u64();
    if (seq < expected) {
      continue;  // duplicate
    }
    // Keep the zero-copy view; the byte copy happens only at delivery.
    PayloadRef payload = datagram->datagram.data.slice(r.position());
    if (seq > expected) {
      state.stash.emplace(seq, std::move(payload));
      continue;  // keep hunting for the gap frame (NACK on next timeout)
    }
    ch.advance_seq();
    if (!datagram->charge_absorbed) {
      p.self().delay(p.costs().recv_overhead(
          static_cast<std::int64_t>(payload.size()),
          mpi::CostTier::kMcastData));
    }
    return payload.to_buffer();
  }
}

}  // namespace

void bcast_sequencer(Proc& p, const Comm& comm, Buffer& buffer, int root,
                     const SequencerParams& params) {
  MC_EXPECTS(root >= 0 && root < comm.size());
  if (comm.size() == 1) {
    return;
  }
  mpi::McastChannel& ch = p.mcast_channel(comm);
  SeqState& state = p.coll_state<SeqState>(comm);
  const int rank = comm.rank();

  if (rank == kSequencerRank) {
    install_sink(p, comm, state);
    Buffer payload;
    if (root == kSequencerRank) {
      payload = buffer;
    } else {
      payload =
          p.recv(comm, root, mpi::kTagSequencer, nullptr, mpi::CostTier::kRaw);
      buffer = payload;  // the sequencer learns the data from the handoff
    }
    const std::uint64_t seq = ch.expected_seq();
    // One framed allocation, shared between the outgoing multicast and the
    // retransmission history.
    PayloadRef framed =
        frame(comm.context(), comm.world_rank_of(root), seq, payload);
    state.history.emplace(seq, framed);
    while (state.history.size() > params.history_frames) {
      state.history.erase(state.history.begin());
    }
    p.self().delay(p.costs().send_overhead(
        static_cast<std::int64_t>(payload.size()), mpi::CostTier::kMcastData));
    ch.send(std::move(framed), net::FrameKind::kData);
    ch.advance_seq();
    return;
  }

  if (rank == root) {
    // Hand off to the sequencer, then consume our own sequenced broadcast
    // (the Orca "commit": the order is only fixed once it comes back).
    p.send(comm, kSequencerRank, mpi::kTagSequencer, buffer,
           net::FrameKind::kData, mpi::CostTier::kRaw);
    const Buffer echoed = recv_with_nack(p, comm, state, params);
    MC_ASSERT_MSG(echoed.size() == buffer.size(),
                  "sequencer echoed a different payload");
    return;
  }

  buffer = recv_with_nack(p, comm, state, params);
}

const SequencerStats& sequencer_stats(Proc& p, const Comm& comm) {
  return p.coll_state<SeqState>(comm).stats;
}

}  // namespace mcmpi::coll
