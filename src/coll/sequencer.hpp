#pragma once
/// \file sequencer.hpp
/// Sequencer-ordered reliable multicast (Orca-style) — related-work
/// extension.
///
/// Paper §2 cites the Orca project's approach: a special sequencer node
/// gives broadcasts a total order.  We pair it with receiver-initiated
/// recovery (NACKs, cf. the paper's reference [10], Towsley et al.): the
/// broadcaster hands its payload to the sequencer (comm rank 0); the
/// sequencer stamps the next sequence number, multicasts, and keeps the
/// frame in a bounded history; a receiver that notices a gap — by timeout
/// or by receiving a later sequence number — NACKs the sequencer, which
/// re-multicasts from history.  NACK service runs as an engine sink, i.e.
/// at "kernel level", so the sequencer rank serves retransmissions even
/// while blocked in unrelated application code.
///
/// Steady-state cost per broadcast: one point-to-point handoff plus one
/// multicast, with *no* readiness handshake at all — cheaper than scouts
/// when broadcasts are frequent (see abl_ack_mcast), at the price of
/// unbounded receiver lag being detected only by timeout.

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "mpi/proc.hpp"

namespace mcmpi::coll {

struct SequencerParams {
  /// Receiver gap-detection timeout before NACKing.
  SimTime nack_timeout = milliseconds(3);
  /// Frames retained for retransmission.
  std::size_t history_frames = 128;
};

struct SequencerStats {
  std::uint64_t nacks_sent = 0;       // receiver side
  std::uint64_t nacks_served = 0;     // sequencer side
  std::uint64_t nacks_unserved = 0;   // requested frame older than history
};

/// Broadcast via the sequencer.  `buffer` is input at root, output
/// elsewhere.  Comm rank 0 acts as the sequencer.
void bcast_sequencer(mpi::Proc& p, const mpi::Comm& comm, Buffer& buffer,
                     int root, const SequencerParams& params = {});

const SequencerStats& sequencer_stats(mpi::Proc& p, const mpi::Comm& comm);

}  // namespace mcmpi::coll
