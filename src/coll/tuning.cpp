#include "coll/tuning.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "coll/hier.hpp"

namespace mcmpi::coll {

namespace {

/// Error context of the rule being parsed: a malformed spec names the rule
/// (1-based, with its text) and the offending field's position, not just a
/// bare range-check failure — `MCMPI_COLL_TUNING` typos should be findable
/// from the message alone.
struct RuleContext {
  std::size_t rule_number = 0;  // 1-based position in the spec
  std::string rule_text;

  std::string where(std::size_t field) const {
    std::ostringstream os;
    os << "tuning rule " << rule_number << " ('" << rule_text << "'), field "
       << field;
    return os.str();
  }
};

CollOp parse_op(const std::string& text, const RuleContext& ctx) {
  for (CollOp op : kAllCollOps) {
    if (to_string(op) == text) {
      return op;
    }
  }
  throw std::invalid_argument(ctx.where(1) + ": unknown collective op '" +
                              text + "'");
}

std::string strip(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\n\r");
  if (begin == std::string::npos) {
    return {};
  }
  const auto end = s.find_last_not_of(" \t\n\r");
  return s.substr(begin, end - begin + 1);
}

std::int64_t parse_bound(const std::string& text, const char* what,
                         const RuleContext& ctx, std::size_t field) {
  if (text == "*") {
    return -1;
  }
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(text, &used);
    if (used != text.size() || value < 0) {
      throw std::invalid_argument(text);
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(ctx.where(field) + ": bad " + what +
                                " bound, offending token '" + text + "'");
  }
}

}  // namespace

TuningTable TuningTable::defaults() {
  // Paper crossovers: scout overhead makes multicast lose below ~1 KB
  // (Figs. 7-10 crossover near one Ethernet frame); at 2 ranks one
  // point-to-point send always beats scout + multicast; the multicast
  // barrier wins at every N (Fig. 13); the multicast allgather needs
  // payloads large enough to amortize its barrier.  The widened surface
  // follows the same shape: large-message reduce/gather/scatter ride the
  // multicast/scout variants, small messages and 2-rank groups stay on
  // point-to-point, and the trailing catch-all rules cover payloads the
  // multicast variants' predicates reject (rendezvous-sized blocks, the
  // datagram ceiling) — an inapplicable tuned pick falls through to the
  // next matching rule.
  // The segmented pipeline is the trailing multicast rule for bcast /
  // allgather / scatter: the single-shot variants' predicates reject
  // jumbo payloads (the ~512 KiB datagram ceiling, the receive buffer),
  // and the fall-through lands on mcast-segmented instead of dropping
  // back to point-to-point — multicast now serves every payload size.
  // The FEC rule is gated on a lossy network: clean-network schedules never
  // see it (its parity bandwidth only pays for itself when frames drop),
  // while under loss it pre-empts mcast-binary — which would assert on the
  // first dropped frame — with in-window erasure recovery.  Payloads too
  // big for fec-mcast's single-window blast fall through to the segmented
  // pipeline, whose FEC recovery mode is a config knob, not a rule.
  return parse(
      "bcast,*,2,mpich; bcast,1024,*,mpich; bcast,*,*,fec-mcast,0,lossy;"
      "bcast,*,*,mcast-binary;"
      "bcast,*,*,mcast-segmented;"
      "barrier,*,*,mcast;"
      "allreduce,*,2,mpich; allreduce,1024,*,mpich;"
      "allreduce,*,*,mcast-binary; allreduce,*,*,mpich;"
      "allgather,*,2,ring; allgather,2048,*,ring;"
      "allgather,*,*,mcast-lockstep; allgather,*,*,mcast-segmented;"
      "reduce,*,2,mpich; reduce,1024,*,mpich;"
      "reduce,*,*,mcast-scout; reduce,*,*,mpich;"
      "gather,*,2,mpich; gather,1024,*,mpich;"
      "gather,*,*,scout-combining; gather,*,*,mpich;"
      "scatter,*,2,mpich; scatter,1024,*,mpich;"
      "scatter,*,*,mcast-slice; scatter,*,*,mcast-segmented;"
      "scan,*,2,mpich; scan,1024,*,mpich; scan,*,*,binomial;"
      "alltoall,*,2,mpich; alltoall,2048,*,mpich;"
      "alltoall,*,*,mcast-rr; alltoall,*,*,mpich");
}

TuningTable TuningTable::hier_defaults() {
  // Topology-aware prefix: on a communicator spanning >= 2 segments the
  // hierarchical algorithms cross each trunk once instead of O(log N) /
  // O(N) times.  The 2-rank and small-payload point-to-point rules still
  // come first (one trunk send beats leader machinery at those sizes);
  // single-segment communicators fail every min_segments gate and fall
  // through to the classic table appended below.
  TuningTable hier = parse(
      "bcast,*,2,mpich; bcast,1024,*,mpich; bcast,*,*,hier-mcast,2;"
      "barrier,*,*,hier,2;"
      "allreduce,*,2,mpich; allreduce,1024,*,mpich; allreduce,*,*,hier,2;"
      "allgather,*,2,ring; allgather,2048,*,ring; allgather,*,*,hier,2");
  TuningTable table = defaults();
  table.rules_.insert(table.rules_.begin(), hier.rules_.begin(),
                      hier.rules_.end());
  return table;
}

TuningTable TuningTable::parse(const std::string& spec) {
  TuningTable table;
  std::stringstream rules(spec);
  std::string rule_text;
  RuleContext ctx;
  while (std::getline(rules, rule_text, ';')) {
    rule_text = strip(rule_text);
    if (rule_text.empty()) {
      continue;
    }
    ++ctx.rule_number;
    ctx.rule_text = rule_text;
    std::stringstream fields(rule_text);
    std::string field;
    std::vector<std::string> parts;
    while (std::getline(fields, field, ',')) {
      parts.push_back(strip(field));
    }
    if (parts.size() < 4 || parts.size() > 6) {
      throw std::invalid_argument(
          "tuning rule " + std::to_string(ctx.rule_number) +
          " needs op,max_bytes,max_ranks,algo[,min_segments[,lossy]], got " +
          std::to_string(parts.size()) + " fields: '" + rule_text + "'");
    }
    TuningRule rule;
    rule.op = parse_op(parts[0], ctx);
    rule.max_bytes = parse_bound(parts[1], "byte", ctx, 2);
    const std::int64_t ranks = parse_bound(parts[2], "rank", ctx, 3);
    if (ranks > std::numeric_limits<int>::max()) {
      throw std::invalid_argument(ctx.where(3) + ": rank bound too large");
    }
    rule.max_ranks = static_cast<int>(ranks);
    rule.algo = parts[3];
    if (parts.size() >= 5) {
      const std::int64_t segments = parse_bound(parts[4], "segment", ctx, 5);
      if (segments > std::numeric_limits<int>::max()) {
        throw std::invalid_argument(ctx.where(5) + ": segment bound too large");
      }
      rule.min_segments = segments < 0 ? 0 : static_cast<int>(segments);
    }
    if (parts.size() == 6) {
      if (parts[5] != "lossy") {
        throw std::invalid_argument(ctx.where(6) +
                                    ": expected the literal 'lossy', "
                                    "offending token '" +
                                    parts[5] + "'");
      }
      rule.lossy_only = true;
    }
    // Fail at parse time, not at the first collective inside a running
    // simulation: the named algorithm must exist.
    try {
      (void)Registry::instance().get(rule.op, rule.algo);
    } catch (const std::exception& e) {
      throw std::invalid_argument(ctx.where(4) + ": " + e.what());
    }
    table.rules_.push_back(std::move(rule));
  }
  return table;
}

std::string TuningTable::select(CollOp op, std::size_t bytes, int ranks,
                                const mpi::Comm& comm) const {
  // On a lossy network (a fault plane with drop/reorder is attached) only
  // loss-tolerant algorithms may run: anything else asserts or hangs on the
  // first dropped frame.  An intolerant tuned pick falls through, exactly
  // like an inapplicable one.
  const bool lossy_net =
      comm.proc() != nullptr && comm.proc()->network_lossy();
  int segment_span = -1;  // computed on the first min_segments rule
  for (const TuningRule& rule : rules_) {
    if (rule.op != op) {
      continue;
    }
    if (rule.max_bytes >= 0 &&
        static_cast<std::int64_t>(bytes) > rule.max_bytes) {
      continue;
    }
    if (rule.max_ranks >= 0 && ranks > rule.max_ranks) {
      continue;
    }
    if (rule.lossy_only && !lossy_net) {
      continue;
    }
    if (rule.min_segments > 0) {
      if (segment_span < 0) {
        segment_span = hier_segment_span(comm);
      }
      if (segment_span < rule.min_segments) {
        continue;
      }
    }
    const CollAlgorithm& algo = Registry::instance().get(op, rule.algo);
    if (lossy_net && !algo.loss_tolerant) {
      continue;
    }
    if (!algo.applicable || algo.applicable(comm, bytes)) {
      return rule.algo;
    }
  }
  // No rule matched (partial table, or the tuned pick is inapplicable
  // here): cheapest applicable non-lossy entry by cost hint.
  const CollAlgorithm* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const CollAlgorithm& algo : Registry::instance().entries()) {
    if (algo.op != op || algo.lossy) {
      continue;
    }
    if (lossy_net && !algo.loss_tolerant) {
      continue;
    }
    if (algo.applicable && !algo.applicable(comm, bytes)) {
      continue;
    }
    const double cost =
        algo.cost_hint ? algo.cost_hint(bytes, ranks) : best_cost;
    if (best == nullptr || cost < best_cost) {
      best = &algo;
      best_cost = cost;
    }
  }
  if (best == nullptr) {
    throw std::invalid_argument("no applicable " + coll::to_string(op) +
                                " algorithm registered");
  }
  return best->name;
}

std::string TuningTable::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const TuningRule& r = rules_[i];
    os << (i > 0 ? "; " : "") << coll::to_string(r.op) << ',';
    if (r.max_bytes < 0) {
      os << '*';
    } else {
      os << r.max_bytes;
    }
    os << ',';
    if (r.max_ranks < 0) {
      os << '*';
    } else {
      os << r.max_ranks;
    }
    os << ',' << r.algo;
    if (r.min_segments > 0 || r.lossy_only) {
      os << ',' << r.min_segments;
    }
    if (r.lossy_only) {
      os << ",lossy";
    }
  }
  return os.str();
}

}  // namespace mcmpi::coll
