#pragma once
/// \file tuning.hpp
/// Tuned algorithm auto-selection: message-size × communicator-size rules.
///
/// The paper's central claim is that the *same* MPI call should ride IP
/// multicast when it wins and point-to-point when it does not.  The tuning
/// table encodes where each side wins — the crossover points of Figs. 3/4
/// (scout cost makes multicast lose below ~1 KB), Fig. 12 (multicast
/// scales best for large payloads), and Fig. 13 (the multicast barrier
/// wins at every N) — as an ordered rule list, first match wins:
///
///     op,max_bytes,max_ranks,algorithm[,min_segments[,lossy]]
///
/// `*` means unbounded; rules are separated by `;` (whitespace ignored).
/// The optional fifth field gates a rule on topology: it matches only when
/// the communicator spans at least `min_segments` network segments — how
/// the hierarchical algorithms (hier-mcast & co.) are tuned in without
/// touching single-segment behavior.  Omitted (or `*`/0) means any span.
/// The optional sixth field is the literal `lossy`: the rule matches only
/// when the process runs over a lossy network (Proc::network_lossy(), set
/// when a fault plane with drop/reorder is attached) — how loss-adapted
/// algorithms like bcast:fec-mcast are tuned in without perturbing any
/// clean-network schedule.  Use `0` for min_segments to gate on loss alone.
/// Excerpt of the default table (TuningTable::defaults() carries the full
/// set for all eight ops, including doubled fall-through rules for
/// reduce/gather/scatter whose multicast variants have applicability
/// limits):
///
///     bcast,*,2,mpich; bcast,1024,*,mpich; bcast,*,*,mcast-binary;
///     barrier,*,*,mcast;
///     reduce,*,2,mpich; reduce,1024,*,mpich;
///     reduce,*,*,mcast-scout; reduce,*,*,mpich; ...
///
/// A rule whose algorithm is inapplicable for the actual (comm, bytes)
/// falls through to the next matching rule.
///
/// Override precedence (cluster::Cluster wiring): ClusterConfig::coll_tuning
/// beats the MCMPI_COLL_TUNING environment variable beats the defaults.

#include <string>
#include <vector>

#include "coll/registry.hpp"

namespace mcmpi::coll {

/// Algorithm name for tuned auto-selection in the facade.
inline constexpr const char* kAuto = "auto";

struct TuningRule {
  CollOp op = CollOp::kBcast;
  std::int64_t max_bytes = -1;  ///< rule applies when bytes <= this; -1 = inf
  int max_ranks = -1;           ///< rule applies when ranks <= this; -1 = inf
  std::string algo;
  /// Rule applies when the communicator spans >= this many segments
  /// (hier_segment_span); 0 = any topology.
  int min_segments = 0;
  /// Rule applies only when the network is lossy (Proc::network_lossy()).
  bool lossy_only = false;
};

class TuningTable {
 public:
  /// The built-in table encoding the paper's crossover points.
  static TuningTable defaults();

  /// defaults() plus topology-aware rules: communicators spanning >= 2
  /// segments prefer the hierarchical algorithms (bcast:hier-mcast,
  /// barrier:hier, allreduce:hier, allgather:hier) at the payload sizes
  /// where the trunk saving dominates.  Not the ambient default — install
  /// via ClusterConfig::coll_tuning / MCMPI_COLL_TUNING — so existing
  /// single-table baselines keep their committed schedules.
  static TuningTable hier_defaults();

  /// Parses the rule syntax above; throws std::invalid_argument on
  /// malformed rules, unknown ops, or algorithms absent from the registry.
  static TuningTable parse(const std::string& spec);

  /// First matching rule's algorithm.  Falls back to the cheapest
  /// applicable registry entry (by cost hint; lossy entries excluded) when
  /// no rule matches — so a table need not be total.
  std::string select(CollOp op, std::size_t bytes, int ranks,
                     const mpi::Comm& comm) const;

  const std::vector<TuningRule>& rules() const { return rules_; }
  std::string to_string() const;

 private:
  std::vector<TuningRule> rules_;
};

}  // namespace mcmpi::coll
