#include "common/assert.hpp"

#include <sstream>

namespace mcmpi {

void contract_failure(const char* kind, const char* expr,
                      std::source_location loc, const std::string& message) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": " << kind << " failed: `"
     << expr << '`';
  if (!message.empty()) {
    os << " — " << message;
  }
  os << " (in " << loc.function_name() << ')';
  throw ContractViolation(os.str());
}

}  // namespace mcmpi
