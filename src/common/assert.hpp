#pragma once
/// \file assert.hpp
/// Contract-check macros used throughout the library.
///
/// MC_ASSERT / MC_ENSURE throw ContractViolation instead of aborting so that
/// tests can assert on violations and long simulations fail loudly with
/// context.  They are always on (simulation correctness depends on them and
/// their cost is negligible next to event handling).

#include <source_location>
#include <stdexcept>
#include <string>

namespace mcmpi {

/// Thrown when a precondition, postcondition or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Builds the diagnostic and throws; out-of-line to keep call sites small.
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   std::source_location loc,
                                   const std::string& message = {});

}  // namespace mcmpi

/// Internal invariant: the library itself is wrong if this fires.
#define MC_ASSERT(expr)                                                     \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::mcmpi::contract_failure("assertion", #expr,                         \
                                std::source_location::current());           \
    }                                                                       \
  } while (false)

/// Internal invariant with an explanatory message.
#define MC_ASSERT_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::mcmpi::contract_failure("assertion", #expr,                         \
                                std::source_location::current(), (msg));    \
    }                                                                       \
  } while (false)

/// Caller-facing precondition: the caller passed something invalid.
#define MC_EXPECTS(expr)                                                    \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::mcmpi::contract_failure("precondition", #expr,                      \
                                std::source_location::current());           \
    }                                                                       \
  } while (false)

#define MC_EXPECTS_MSG(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::mcmpi::contract_failure("precondition", #expr,                      \
                                std::source_location::current(), (msg));    \
    }                                                                       \
  } while (false)
