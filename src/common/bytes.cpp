#include "common/bytes.hpp"

#include "common/rng.hpp"

namespace mcmpi {

Buffer pattern_payload(std::uint64_t seed, std::size_t size) {
  Buffer out(size);
  std::uint64_t state = seed ^ 0xA5A5A5A55A5A5A5AULL;
  std::size_t i = 0;
  while (i < size) {
    std::uint64_t word = splitmix64(state);
    for (int b = 0; b < 8 && i < size; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return out;
}

bool check_pattern(std::uint64_t seed, std::span<const std::uint8_t> data) {
  const Buffer expected = pattern_payload(seed, data.size());
  return std::equal(data.begin(), data.end(), expected.begin());
}

std::string hex_dump(std::span<const std::uint8_t> data,
                     std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  const std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3 + 4);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) {
      out.push_back(' ');
    }
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xF]);
  }
  if (n < data.size()) {
    out += " ...";
  }
  return out;
}

}  // namespace mcmpi
