#include "common/bytes.hpp"

#include <algorithm>
#include <atomic>

#include "common/rng.hpp"

namespace mcmpi {

namespace {

/// Mutable backing store for payload_counters().  Relaxed atomics: shards
/// of a parallel simulation touch payloads concurrently; every increment is
/// independent, so ordering does not matter and the totals are exact.
struct PayloadCounterCells {
  std::atomic<std::uint64_t> buffer_allocs{0};
  std::atomic<std::uint64_t> bytes_allocated{0};
  std::atomic<std::uint64_t> byte_copies{0};
  std::atomic<std::uint64_t> bytes_copied{0};
  std::atomic<std::uint64_t> slices{0};
};

PayloadCounterCells& payload_cells() {
  static PayloadCounterCells cells;
  return cells;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

PayloadCounters payload_counters() {
  const PayloadCounterCells& c = payload_cells();
  PayloadCounters snapshot;
  snapshot.buffer_allocs = c.buffer_allocs.load(kRelaxed);
  snapshot.bytes_allocated = c.bytes_allocated.load(kRelaxed);
  snapshot.byte_copies = c.byte_copies.load(kRelaxed);
  snapshot.bytes_copied = c.bytes_copied.load(kRelaxed);
  snapshot.slices = c.slices.load(kRelaxed);
  return snapshot;
}

PayloadRef::PayloadRef(Buffer bytes) {
  auto owned = std::make_shared<const Buffer>(std::move(bytes));
  data_ = owned->data();
  size_ = owned->size();
  owner_ = std::move(owned);
  PayloadCounterCells& c = payload_cells();
  c.buffer_allocs.fetch_add(1, kRelaxed);
  c.bytes_allocated.fetch_add(size_, kRelaxed);
}

PayloadRef PayloadRef::copy_of(std::span<const std::uint8_t> bytes) {
  PayloadCounterCells& c = payload_cells();
  c.byte_copies.fetch_add(1, kRelaxed);
  c.bytes_copied.fetch_add(bytes.size(), kRelaxed);
  return PayloadRef(Buffer(bytes.begin(), bytes.end()));
}

PayloadRef PayloadRef::slice(std::size_t offset, std::size_t length) const {
  // Overflow-safe form: offset + length could wrap in size_t.
  MC_EXPECTS_MSG(offset <= size_ && length <= size_ - offset,
                 "PayloadRef slice out of bounds");
  payload_cells().slices.fetch_add(1, kRelaxed);
  return PayloadRef(owner_, data_ + offset, length);
}

PayloadRef PayloadRef::slice(std::size_t offset) const {
  MC_EXPECTS_MSG(offset <= size_, "PayloadRef slice out of bounds");
  return slice(offset, size_ - offset);
}

PayloadRef PayloadRef::joined_with(const PayloadRef& next) const {
  MC_EXPECTS_MSG(directly_precedes(next),
                 "joined_with() requires adjacent views of one buffer");
  payload_cells().slices.fetch_add(1, kRelaxed);
  return PayloadRef(owner_, data_, size_ + next.size_);
}

Buffer PayloadRef::to_buffer() const {
  PayloadCounterCells& c = payload_cells();
  c.byte_copies.fetch_add(1, kRelaxed);
  c.bytes_copied.fetch_add(size_, kRelaxed);
  return Buffer(data_, data_ + size_);
}

Buffer pattern_payload(std::uint64_t seed, std::size_t size) {
  Buffer out(size);
  std::uint64_t state = seed ^ 0xA5A5A5A55A5A5A5AULL;
  std::size_t i = 0;
  while (i < size) {
    std::uint64_t word = splitmix64(state);
    for (int b = 0; b < 8 && i < size; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return out;
}

bool check_pattern(std::uint64_t seed, std::span<const std::uint8_t> data) {
  const Buffer expected = pattern_payload(seed, data.size());
  return std::equal(data.begin(), data.end(), expected.begin());
}

std::string hex_dump(std::span<const std::uint8_t> data,
                     std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  const std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3 + 4);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) {
      out.push_back(' ');
    }
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xF]);
  }
  if (n < data.size()) {
    out += " ...";
  }
  return out;
}

}  // namespace mcmpi
