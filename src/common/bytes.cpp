#include "common/bytes.hpp"

#include <algorithm>
#include <atomic>

#include "common/rng.hpp"

namespace mcmpi {

namespace {

/// Mutable backing store for payload_counters().  Relaxed atomics: shards
/// of a parallel simulation touch payloads concurrently; every increment is
/// independent, so ordering does not matter and the totals are exact.
struct PayloadCounterCells {
  std::atomic<std::uint64_t> buffer_allocs{0};
  std::atomic<std::uint64_t> bytes_allocated{0};
  std::atomic<std::uint64_t> byte_copies{0};
  std::atomic<std::uint64_t> bytes_copied{0};
  std::atomic<std::uint64_t> slices{0};
};

PayloadCounterCells& payload_cells() {
  static PayloadCounterCells cells;
  return cells;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

namespace detail {

/// Shared guts of a PayloadPool.  Free lists are owner-execution-only; the
/// remote-return stack is the one concurrently touched member (lock-free
/// MPSC: releasing threads CAS-push, the owner exchanges the whole stack at
/// round boundaries).
struct PayloadPoolCore {
  /// Size classes 64 B << i: 64 B .. 2 MiB.  Larger leases bypass the pool.
  static constexpr std::size_t kClasses = 16;
  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kMaxPerClass = 64;

  struct RemoteNode {
    Buffer storage;
    RemoteNode* next = nullptr;
  };

  std::vector<Buffer> free_lists[kClasses];
  std::atomic<RemoteNode*> remote_head{nullptr};
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Self reference so a lease taken through the raw tls pointer can carry
  /// the shared return handle (set once by PayloadPool's constructor).
  std::weak_ptr<PayloadPoolCore> self;

  ~PayloadPoolCore() {
    RemoteNode* node = remote_head.exchange(nullptr, std::memory_order_acquire);
    while (node != nullptr) {
      RemoteNode* next = node->next;
      delete node;
      node = next;
    }
  }

  /// Class whose buffers have capacity exactly kMinClassBytes << index;
  /// kClasses when the request is too large to pool.
  static std::size_t class_of(std::size_t capacity) {
    std::size_t size = kMinClassBytes;
    for (std::size_t i = 0; i < kClasses; ++i, size <<= 1) {
      if (capacity <= size) {
        return i;
      }
    }
    return kClasses;
  }

  static std::size_t class_bytes(std::size_t index) {
    return kMinClassBytes << index;
  }

  /// Owner-side return: recycle `storage` if its capacity still matches a
  /// class with room, else let it free.  (A mid-use reallocation lands the
  /// buffer in its grown class — libstdc++ doubles, so an overflowed class
  /// lease is simply the next class's capacity.)
  void put_local(Buffer&& storage) {
    const std::size_t index = class_of(storage.capacity());
    if (index >= kClasses || storage.capacity() != class_bytes(index) ||
        free_lists[index].size() >= kMaxPerClass) {
      return;
    }
    storage.clear();
    free_lists[index].push_back(std::move(storage));
  }

  void put_remote(Buffer&& storage) {
    auto* node = new RemoteNode{std::move(storage)};
    RemoteNode* head = remote_head.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!remote_head.compare_exchange_weak(head, node,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
  }

  void drain_remote() {
    RemoteNode* node = remote_head.exchange(nullptr, std::memory_order_acquire);
    while (node != nullptr) {
      RemoteNode* next = node->next;
      put_local(std::move(node->storage));
      delete node;
      node = next;
    }
  }
};

}  // namespace detail

namespace {

/// The calling thread's installed pool (PayloadPoolScope); null outside any
/// shard window.
thread_local detail::PayloadPoolCore* tls_payload_pool = nullptr;

/// Deleter of a pooled payload's backing buffer: hands the storage back to
/// its home pool — locally when it dies on the home pool's own execution,
/// else through the remote-return stack.  Holds the Core shared, so the
/// return is safe whenever the payload dies.
struct PooledReturn {
  std::shared_ptr<detail::PayloadPoolCore> home;
  void operator()(const Buffer* buffer) const {
    Buffer storage = std::move(*const_cast<Buffer*>(buffer));
    delete buffer;
    if (tls_payload_pool == home.get()) {
      home->put_local(std::move(storage));
    } else {
      home->put_remote(std::move(storage));
    }
  }
};

}  // namespace

PooledBuffer acquire_payload_buffer(std::size_t capacity_hint) {
  PooledBuffer lease;
  detail::PayloadPoolCore* pool = tls_payload_pool;
  const std::size_t index =
      pool != nullptr ? detail::PayloadPoolCore::class_of(capacity_hint)
                      : detail::PayloadPoolCore::kClasses;
  if (index >= detail::PayloadPoolCore::kClasses) {
    // No pool installed (or an over-size request): a plain reserved buffer,
    // counted at adoption exactly like the pre-pool path.
    lease.bytes.reserve(capacity_hint);
    return lease;
  }
  const std::size_t capacity = detail::PayloadPoolCore::class_bytes(index);
  if (!pool->free_lists[index].empty()) {
    lease.bytes = std::move(pool->free_lists[index].back());
    pool->free_lists[index].pop_back();
    lease.reused = true;
    ++pool->hits;
  } else {
    lease.bytes.reserve(capacity);
    ++pool->misses;
    PayloadCounterCells& c = payload_cells();
    c.buffer_allocs.fetch_add(1, kRelaxed);
    c.bytes_allocated.fetch_add(capacity, kRelaxed);
  }
  lease.home = pool->self.lock();
  return lease;
}

PayloadCounters payload_counters() {
  const PayloadCounterCells& c = payload_cells();
  PayloadCounters snapshot;
  snapshot.buffer_allocs = c.buffer_allocs.load(kRelaxed);
  snapshot.bytes_allocated = c.bytes_allocated.load(kRelaxed);
  snapshot.byte_copies = c.byte_copies.load(kRelaxed);
  snapshot.bytes_copied = c.bytes_copied.load(kRelaxed);
  snapshot.slices = c.slices.load(kRelaxed);
  return snapshot;
}

PayloadPool::PayloadPool() : core_(std::make_shared<detail::PayloadPoolCore>()) {
  core_->self = core_;
}

PayloadPool::~PayloadPool() = default;

void PayloadPool::drain_remote() { core_->drain_remote(); }

std::uint64_t PayloadPool::hits() const { return core_->hits; }

std::uint64_t PayloadPool::misses() const { return core_->misses; }

PayloadPoolScope::PayloadPoolScope(PayloadPool* pool) : prev_(tls_payload_pool) {
  tls_payload_pool = pool != nullptr ? pool->core_.get() : nullptr;
}

PayloadPoolScope::~PayloadPoolScope() { tls_payload_pool = prev_; }

PayloadRef::PayloadRef(Buffer bytes) {
  auto owned = std::make_shared<const Buffer>(std::move(bytes));
  data_ = owned->data();
  size_ = owned->size();
  owner_ = std::move(owned);
  PayloadCounterCells& c = payload_cells();
  c.buffer_allocs.fetch_add(1, kRelaxed);
  c.bytes_allocated.fetch_add(size_, kRelaxed);
}

PayloadRef PayloadRef::adopt(PooledBuffer&& pooled) {
  if (pooled.home == nullptr) {
    return PayloadRef(std::move(pooled.bytes));
  }
  // Pooled lease: any allocation was counted at acquire time; sealing just
  // attaches the pool-return deleter.
  auto* heap = new Buffer(std::move(pooled.bytes));
  std::shared_ptr<const Buffer> owned(heap,
                                      PooledReturn{std::move(pooled.home)});
  PayloadRef ref;
  ref.data_ = owned->data();
  ref.size_ = owned->size();
  ref.owner_ = std::move(owned);
  return ref;
}

PayloadRef PayloadRef::copy_of(std::span<const std::uint8_t> bytes) {
  PayloadCounterCells& c = payload_cells();
  c.byte_copies.fetch_add(1, kRelaxed);
  c.bytes_copied.fetch_add(bytes.size(), kRelaxed);
  PooledBuffer lease = acquire_payload_buffer(bytes.size());
  lease.bytes.assign(bytes.begin(), bytes.end());
  return adopt(std::move(lease));
}

PayloadRef PayloadRef::slice(std::size_t offset, std::size_t length) const {
  // Overflow-safe form: offset + length could wrap in size_t.
  MC_EXPECTS_MSG(offset <= size_ && length <= size_ - offset,
                 "PayloadRef slice out of bounds");
  payload_cells().slices.fetch_add(1, kRelaxed);
  return PayloadRef(owner_, data_ + offset, length);
}

PayloadRef PayloadRef::slice(std::size_t offset) const {
  MC_EXPECTS_MSG(offset <= size_, "PayloadRef slice out of bounds");
  return slice(offset, size_ - offset);
}

PayloadRef PayloadRef::joined_with(const PayloadRef& next) const {
  MC_EXPECTS_MSG(directly_precedes(next),
                 "joined_with() requires adjacent views of one buffer");
  payload_cells().slices.fetch_add(1, kRelaxed);
  return PayloadRef(owner_, data_, size_ + next.size_);
}

Buffer PayloadRef::to_buffer() const {
  PayloadCounterCells& c = payload_cells();
  c.byte_copies.fetch_add(1, kRelaxed);
  c.bytes_copied.fetch_add(size_, kRelaxed);
  return Buffer(data_, data_ + size_);
}

void PayloadRef::copy_to(std::span<std::uint8_t> dst) const {
  MC_EXPECTS_MSG(dst.size() == size_, "copy_to() destination size mismatch");
  PayloadCounterCells& c = payload_cells();
  c.byte_copies.fetch_add(1, kRelaxed);
  c.bytes_copied.fetch_add(size_, kRelaxed);
  if (size_ > 0) {
    std::memcpy(dst.data(), data_, size_);
  }
}

Buffer pattern_payload(std::uint64_t seed, std::size_t size) {
  Buffer out(size);
  std::uint64_t state = seed ^ 0xA5A5A5A55A5A5A5AULL;
  std::size_t i = 0;
  while (i < size) {
    std::uint64_t word = splitmix64(state);
    for (int b = 0; b < 8 && i < size; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return out;
}

bool check_pattern(std::uint64_t seed, std::span<const std::uint8_t> data) {
  const Buffer expected = pattern_payload(seed, data.size());
  return std::equal(data.begin(), data.end(), expected.begin());
}

std::string hex_dump(std::span<const std::uint8_t> data,
                     std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  const std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3 + 4);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) {
      out.push_back(' ');
    }
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xF]);
  }
  if (n < data.size()) {
    out += " ...";
  }
  return out;
}

}  // namespace mcmpi
