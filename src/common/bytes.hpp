#pragma once
/// \file bytes.hpp
/// Byte buffers and bounds-checked little-endian serialization.
///
/// Protocol headers (UDP/IP/RDP/MPI envelopes) are packed with ByteWriter and
/// unpacked with ByteReader; both throw on overrun so a malformed frame can
/// never read out of bounds.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace mcmpi {

using Buffer = std::vector<std::uint8_t>;

/// Appends fixed-width little-endian values to a Buffer.
class ByteWriter {
 public:
  explicit ByteWriter(Buffer& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i32(std::int32_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { append(&v, sizeof v); }

  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return out_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  Buffer& out_;
};

/// Reads fixed-width little-endian values from a span; throws on overrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int32_t i32() { return take<std::int32_t>(); }
  std::int64_t i64() { return take<std::int64_t>(); }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    MC_EXPECTS_MSG(remaining() >= n, "ByteReader overrun");
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> rest() { return bytes(remaining()); }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  template <typename T>
  T take() {
    MC_EXPECTS_MSG(remaining() >= sizeof(T), "ByteReader overrun");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Deterministic payload generator: byte i of a message from `seed` is a
/// mixed function of (seed, i).  Tests and examples use it to verify that
/// collective operations deliver exactly the sent bytes.
Buffer pattern_payload(std::uint64_t seed, std::size_t size);

/// True if `data` matches pattern_payload(seed, data.size()).
bool check_pattern(std::uint64_t seed, std::span<const std::uint8_t> data);

/// Hex dump ("de ad be ef") of at most `max_bytes`, for diagnostics.
std::string hex_dump(std::span<const std::uint8_t> data,
                     std::size_t max_bytes = 32);

}  // namespace mcmpi
