#pragma once
/// \file bytes.hpp
/// Byte buffers, zero-copy payload references, and bounds-checked
/// little-endian serialization.
///
/// Protocol headers (UDP/IP/RDP/MPI envelopes) are packed with ByteWriter and
/// unpacked with ByteReader; both throw on overrun so a malformed frame can
/// never read out of bounds.  The encoding is explicitly little-endian on
/// every platform (byte-assembled, never a raw memcpy of host integers).
///
/// PayloadRef is the zero-copy payload pipeline: an immutable, ref-counted
/// view of a byte buffer.  A datagram is assembled into one Buffer exactly
/// once (the "kernel copy" at the socket boundary); from there, IP fragments,
/// switch/hub fan-out copies, reassembly buffers, retransmit queues and
/// per-socket multicast deliveries are all slices of that single allocation —
/// copying a PayloadRef bumps a reference count instead of duplicating bytes.
/// The global PayloadCounters make this property testable: benches and the
/// perf-regression test assert that an N-way multicast fan-out performs no
/// per-receiver payload allocation.

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace mcmpi {

using Buffer = std::vector<std::uint8_t>;

/// Global instrumentation for the zero-copy payload path.  Monotone; read a
/// snapshot before an operation and diff after it.
struct PayloadCounters {
  std::uint64_t buffer_allocs = 0;   ///< backing buffers adopted or created
  std::uint64_t bytes_allocated = 0;
  std::uint64_t byte_copies = 0;     ///< explicit copy operations performed
  std::uint64_t bytes_copied = 0;
  std::uint64_t slices = 0;          ///< zero-copy views taken

  PayloadCounters since(const PayloadCounters& earlier) const {
    PayloadCounters d;
    d.buffer_allocs = buffer_allocs - earlier.buffer_allocs;
    d.bytes_allocated = bytes_allocated - earlier.bytes_allocated;
    d.byte_copies = byte_copies - earlier.byte_copies;
    d.bytes_copied = bytes_copied - earlier.bytes_copied;
    d.slices = slices - earlier.slices;
    return d;
  }
};

/// Snapshot of the process-wide payload counters (payloads cross
/// simulated-host boundaries, so the accounting is global by design).  The
/// backing cells are relaxed atomics: simulator shards on worker threads
/// bump them concurrently, and because each operation's contribution is
/// fixed, the totals stay deterministic under any interleaving.
PayloadCounters payload_counters();

namespace detail {
struct PayloadPoolCore;
}

/// A buffer leased from the thread's PayloadPool (or a plain reserved buffer
/// when no pool is installed).  Fill `bytes` in place, then seal it with
/// PayloadRef::adopt — the backing storage returns to `home` when the last
/// payload reference drops.
struct PooledBuffer {
  Buffer bytes;
  std::shared_ptr<detail::PayloadPoolCore> home;  ///< null = not pooled
  bool reused = false;  ///< served from a free list (no allocation counted)
};

/// Leases a buffer with capacity >= `capacity_hint` from the calling
/// thread's installed PayloadPool; falls back to a plain reserved Buffer
/// (counted at adoption, exactly like the unpooled path always was) when no
/// pool is installed or the request exceeds the largest size class.
PooledBuffer acquire_payload_buffer(std::size_t capacity_hint);

/// Immutable, ref-counted view of a byte buffer.
///
/// The owner is a shared immutable Buffer; the view is a [data, size) window
/// into it.  slice() produces further windows of the same owner in O(1).
/// Copies share the owner; the bytes are freed when the last reference
/// (sender queue, switch egress queue, receiver reassembly, socket buffer…)
/// drops.  to_buffer() is the copy-on-write escape hatch for code that needs
/// private mutable bytes (the user-buffer copy at the MPI API boundary).
class PayloadRef {
 public:
  PayloadRef() = default;

  /// Adopts `bytes` as the backing buffer (no byte copy; one allocation is
  /// counted for the shared control block / adopted storage).
  explicit PayloadRef(Buffer bytes);

  /// Adopts a pool-leased buffer: the backing storage is handed back to the
  /// lease's home pool when the last reference drops, and a reused lease
  /// counts no allocation.  A lease with no home degrades to the plain
  /// adopting constructor, so call sites need no pooled/unpooled branch.
  static PayloadRef adopt(PooledBuffer&& pooled);

  /// Allocates a private backing buffer holding a copy of `bytes` (leased
  /// from the thread's PayloadPool when one is installed).
  static PayloadRef copy_of(std::span<const std::uint8_t> bytes);

  std::span<const std::uint8_t> view() const { return {data_, size_}; }
  /// Implicit: lets span-taking APIs (ByteReader, check_pattern, …) accept a
  /// PayloadRef directly.  The span is valid while this ref is alive.
  operator std::span<const std::uint8_t>() const { return view(); }

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// O(1) sub-view sharing the same backing buffer.
  PayloadRef slice(std::size_t offset, std::size_t length) const;
  /// Sub-view from `offset` to the end.
  PayloadRef slice(std::size_t offset) const;

  /// True if both refs view the same backing buffer.
  bool same_buffer(const PayloadRef& other) const {
    return owner_ != nullptr && owner_ == other.owner_;
  }

  /// True if `next` views the bytes immediately following this view in the
  /// same backing buffer — the zero-copy reassembly test: adjacent fragments
  /// of one datagram can be re-joined without touching the payload.
  bool directly_precedes(const PayloadRef& next) const {
    return same_buffer(next) && data_ + size_ == next.data_;
  }

  /// Widens this view to also cover `next`.  Precondition:
  /// directly_precedes(next).  O(1), no copy.
  PayloadRef joined_with(const PayloadRef& next) const;

  /// Copies the viewed bytes into a fresh private Buffer.
  Buffer to_buffer() const;

  /// Copies the viewed bytes into caller-owned storage (`dst.size()` must
  /// equal size()).  This is the scatter-style delivery copy for code that
  /// lands a payload at an OFFSET of a pre-sized user buffer (segmented
  /// collectives reassembling chunks in place) — counted like to_buffer(),
  /// so the copy stays visible to the zero-copy accounting.
  void copy_to(std::span<std::uint8_t> dst) const;

 private:
  PayloadRef(std::shared_ptr<const Buffer> owner, const std::uint8_t* data,
             std::size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  std::shared_ptr<const Buffer> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Free-list pool for payload backing buffers, size-classed by power-of-two
/// capacity.  One pool per simulator shard; the shard installs it as the
/// calling thread's pool (PayloadPoolScope) for the duration of its windows.
///
/// Lifecycle: acquire_payload_buffer() leases storage from the installed
/// pool (hit) or reserves fresh storage (miss — the only case that counts a
/// payload alloc); PayloadRef::adopt seals the lease; when the last payload
/// reference drops, the storage returns to its HOME pool — directly onto
/// the owner-side free lists when it dies on the owner's execution, else
/// onto a lock-free MPSC remote-return stack the owner drains at round
/// boundaries.  That boundary-only drain is what keeps pool hits a pure
/// function of the simulation: a buffer released by a peer shard mid-round
/// becomes reusable at the same round edge under every driver, so serial
/// and parallel runs (and any thread timing) see identical hit/miss/alloc
/// sequences.
///
/// The guts live in a shared Core so late releases are always safe: a
/// payload that outlives the pool (a stack teardown after the simulator
/// died) still holds the Core alive and parks its storage there; the last
/// reference frees everything.
class PayloadPool {
 public:
  PayloadPool();
  ~PayloadPool();
  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  /// Moves remote-returned storage onto the owner-side free lists.  Owner
  /// execution only, at deterministic points (round boundaries).
  void drain_remote();

  /// Leases served from a free list / leases that allocated fresh storage.
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  friend class PayloadPoolScope;
  std::shared_ptr<detail::PayloadPoolCore> core_;
};

/// RAII install of `pool` as the calling thread's payload pool (null =
/// uninstall); restores the previous pool on destruction.  The simulator
/// wraps every shard window (and teardown) in one of these.
class PayloadPoolScope {
 public:
  explicit PayloadPoolScope(PayloadPool* pool);
  ~PayloadPoolScope();
  PayloadPoolScope(const PayloadPoolScope&) = delete;
  PayloadPoolScope& operator=(const PayloadPoolScope&) = delete;

 private:
  detail::PayloadPoolCore* prev_;
};

/// Appends fixed-width little-endian values to a Buffer.
class ByteWriter {
 public:
  explicit ByteWriter(Buffer& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(v); }

  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return out_.size(); }

 private:
  /// Explicit little-endian byte assembly — identical output on any host
  /// endianness (a raw memcpy of the integer would not be).
  template <typename T>
  void put_le(T v) {
    using U = std::make_unsigned_t<T>;
    auto u = static_cast<U>(v);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<std::uint8_t>(u & 0xFF));
      u = static_cast<U>(u >> 8);
    }
  }
  Buffer& out_;
};

/// Reads fixed-width little-endian values from a span; throws on overrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int32_t i32() { return take<std::int32_t>(); }
  std::int64_t i64() { return take<std::int64_t>(); }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    MC_EXPECTS_MSG(remaining() >= n, "ByteReader overrun");
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> rest() { return bytes(remaining()); }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return remaining() == 0; }

 private:
  template <typename T>
  T take() {
    MC_EXPECTS_MSG(remaining() >= sizeof(T), "ByteReader overrun");
    using U = std::make_unsigned_t<T>;
    U u = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      u = static_cast<U>(u | static_cast<U>(static_cast<U>(data_[pos_ + i])
                                            << (8 * i)));
    }
    pos_ += sizeof(T);
    return static_cast<T>(u);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Deterministic payload generator: byte i of a message from `seed` is a
/// mixed function of (seed, i).  Tests and examples use it to verify that
/// collective operations deliver exactly the sent bytes.
Buffer pattern_payload(std::uint64_t seed, std::size_t size);

/// True if `data` matches pattern_payload(seed, data.size()).
bool check_pattern(std::uint64_t seed, std::span<const std::uint8_t> data);

/// Hex dump ("de ad be ef") of at most `max_bytes`, for diagnostics.
std::string hex_dump(std::span<const std::uint8_t> data,
                     std::size_t max_bytes = 32);

}  // namespace mcmpi
