#include "common/flags.hpp"

#include <sstream>
#include <stdexcept>

namespace mcmpi {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("flags: expected --key[=value], got `" +
                                  arg + "`");
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::string Flags::raw(const std::string& key, const std::string& fallback,
                       const std::string& help) {
  declared_.insert({key, Decl{help, fallback}});
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t fallback,
                            const std::string& help) {
  const std::string v = raw(key, std::to_string(fallback), help);
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flags: --" + key + " expects an integer, got `" + v + "`");
  }
}

double Flags::get_double(const std::string& key, double fallback,
                         const std::string& help) {
  const std::string v = raw(key, std::to_string(fallback), help);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flags: --" + key + " expects a number, got `" + v + "`");
  }
}

bool Flags::get_bool(const std::string& key, bool fallback,
                     const std::string& help) {
  const std::string v = raw(key, fallback ? "true" : "false", help);
  if (v == "true" || v == "1" || v == "yes") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no") {
    return false;
  }
  throw std::invalid_argument("flags: --" + key + " expects a boolean, got `" + v + "`");
}

std::string Flags::get_string(const std::string& key,
                              const std::string& fallback,
                              const std::string& help) {
  return raw(key, fallback, help);
}

std::string Flags::usage(const std::string& program_description) const {
  std::ostringstream os;
  os << program_description << "\n\nFlags:\n";
  for (const auto& [key, decl] : declared_) {
    os << "  --" << key << " (default: " << decl.default_value << ")";
    if (!decl.help.empty()) {
      os << "  " << decl.help;
    }
    os << '\n';
  }
  return os.str();
}

void Flags::check_unknown() const {
  for (const auto& [key, value] : values_) {
    if (!declared_.contains(key)) {
      throw std::invalid_argument("flags: unknown flag --" + key);
    }
  }
}

}  // namespace mcmpi
