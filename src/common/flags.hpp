#pragma once
/// \file flags.hpp
/// Tiny --key=value command-line parser for bench and example binaries.
///
/// Keeps the figure-reproduction binaries self-describing:
///   fig07_bcast_hub_4procs --reps=30 --seed=7 --csv
/// Unknown flags are an error so typos cannot silently change an experiment.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcmpi {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  /// Accepted forms: --key=value, --key (boolean true).
  Flags(int argc, const char* const* argv);

  /// Declares a flag (for --help and unknown-flag detection) and returns its
  /// value or `fallback` if absent.
  std::int64_t get_int(const std::string& key, std::int64_t fallback,
                       const std::string& help = {});
  double get_double(const std::string& key, double fallback,
                    const std::string& help = {});
  bool get_bool(const std::string& key, bool fallback,
                const std::string& help = {});
  std::string get_string(const std::string& key, const std::string& fallback,
                         const std::string& help = {});

  /// True if --help was passed; callers should print usage() and exit 0.
  bool help_requested() const { return help_; }
  std::string usage(const std::string& program_description) const;

  /// Throws std::invalid_argument if argv contained a key never declared by
  /// any get_*() call.  Call after all flags are declared.
  void check_unknown() const;

 private:
  struct Decl {
    std::string help;
    std::string default_value;
  };
  std::string raw(const std::string& key, const std::string& fallback,
                  const std::string& help);

  std::map<std::string, std::string> values_;
  std::map<std::string, Decl> declared_;
  bool help_ = false;
};

}  // namespace mcmpi
