#include "common/log.hpp"

#include <cstdio>

namespace mcmpi {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::emit(LogLevel level, std::string_view component,
                  std::string_view text) {
  if (!enabled(level)) {
    return;
  }
  std::scoped_lock lock(mutex_);
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(text.size()), text.data());
}

}  // namespace mcmpi
