#pragma once
/// \file log.hpp
/// Minimal leveled logger.
///
/// The simulator is silent by default; tests and benches can raise the level
/// to trace protocol behaviour.  Logging goes through one sink so output from
/// the cooperative rank threads never interleaves mid-line.

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace mcmpi {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

std::string_view to_string(LogLevel level);

/// Process-wide logger.  Thread-safe; each emit() call writes one full line.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Writes "[level] component: message\n" to stderr.
  void emit(LogLevel level, std::string_view component, std::string_view text);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().emit(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mcmpi

/// Usage: MC_LOG(kDebug, "udp") << "dropped datagram, port " << port;
#define MC_LOG(level, component)                                      \
  if (!::mcmpi::Logger::instance().enabled(::mcmpi::LogLevel::level)) \
    ;                                                                 \
  else                                                                \
    ::mcmpi::detail::LogLine(::mcmpi::LogLevel::level, (component))
