#pragma once
/// \file rng.hpp
/// Deterministic random number generation.
///
/// The simulator must be reproducible: the same seed yields the same
/// collision backoffs, software-overhead jitter and therefore the same
/// virtual-time results.  We use xoshiro256** (public-domain algorithm by
/// Blackman & Vigna) seeded via SplitMix64, implemented here so the library
/// has no dependence on unspecified standard-library distributions.

#include <array>
#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace mcmpi {

/// SplitMix64 step; used for seeding and for cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound), unbiased (bitmask rejection sampling).
  std::uint64_t below(std::uint64_t bound) {
    MC_EXPECTS(bound > 0);
    if (bound == 1) {
      return 0;
    }
    const int bits = 64 - std::countl_zero(bound - 1);
    const std::uint64_t mask = bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
    std::uint64_t v = operator()() & mask;
    while (v >= bound) {
      v = operator()() & mask;
    }
    return v;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    MC_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  bool chance(double probability) { return uniform() < probability; }

  /// Derives an independent child stream; used to give each host its own
  /// deterministic stream from one experiment seed.
  Rng fork(std::uint64_t salt) {
    std::uint64_t sm = operator()() ^ (salt * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mcmpi
