#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace mcmpi {

double Sample::min() const {
  MC_EXPECTS(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Sample::max() const {
  MC_EXPECTS(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Sample::mean() const {
  MC_EXPECTS(!values_.empty());
  double total = 0;
  for (double v : values_) {
    total += v;
  }
  return total / static_cast<double>(values_.size());
}

double Sample::stddev() const {
  if (values_.size() < 2) {
    return 0;
  }
  const double m = mean();
  double acc = 0;
  for (double v : values_) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Sample::median() const { return percentile(50.0); }

double Sample::percentile(double p) const {
  MC_EXPECTS(!values_.empty());
  MC_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double Sample::spread() const { return max() - min(); }

void Accumulator::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

double Accumulator::min() const {
  MC_EXPECTS(count_ > 0);
  return min_;
}

double Accumulator::max() const {
  MC_EXPECTS(count_ > 0);
  return max_;
}

double Accumulator::mean() const {
  MC_EXPECTS(count_ > 0);
  return sum_ / static_cast<double>(count_);
}

}  // namespace mcmpi
