#pragma once
/// \file stats.hpp
/// Sample statistics used by the experiment harness.
///
/// The paper reports, per configuration, the full scatter of 20–30 runs with
/// a line through the median.  Sample keeps raw observations and computes
/// median / percentiles / spread on demand.

#include <cstddef>
#include <vector>

namespace mcmpi {

/// A set of scalar observations (e.g. collective latencies in microseconds).
class Sample {
 public:
  Sample() = default;

  void add(double value) { values_.push_back(value); }
  void clear() { values_.clear(); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::vector<double>& values() const { return values_; }

  double min() const;
  double max() const;
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
  double stddev() const;
  double median() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  /// max - min; the paper discusses run-to-run variation (collisions).
  double spread() const;

 private:
  std::vector<double> values_;
};

/// Streaming accumulator for counters where raw values are not needed.
class Accumulator {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace mcmpi
