#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace mcmpi {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  MC_EXPECTS(!columns_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  MC_EXPECTS_MSG(cells.size() == columns_.size(),
                 "row width must match column count");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) {
    row.push_back(num(v));
  }
  add_row(std::move(row));
}

std::string Table::num(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << v;
  return os.str();
}

void Table::print_ascii(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << cells[c];
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace mcmpi
