#pragma once
/// \file table.hpp
/// Result tables for the benchmark harness.
///
/// Every figure-reproduction binary prints one Table: an aligned ASCII view
/// for humans (the series the paper plots, one row per x-value) and,
/// optionally, CSV for replotting.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mcmpi {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Adds a row; must have exactly as many cells as there are columns.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows; doubles are formatted with 1 decimal.
  void add_row_values(const std::vector<double>& cells);

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& column_names() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  void print_ascii(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  /// Formats a double the way the tables expect (fixed, 1 decimal).
  static std::string num(double v);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcmpi
