#pragma once
/// \file time.hpp
/// Virtual-time units for the discrete-event simulator.
///
/// Simulated time is std::chrono::nanoseconds: type-safe arithmetic, cheap
/// (a single int64), and it round-trips exactly through the event queue.
/// Helpers convert to the microsecond doubles used in reports (the paper
/// plots latency in microseconds).

#include <chrono>
#include <cstdint>

namespace mcmpi {

using SimTime = std::chrono::nanoseconds;

inline constexpr SimTime kTimeZero = SimTime::zero();

/// Sentinel meaning "no deadline".
inline constexpr SimTime kTimeInfinity = SimTime::max();

constexpr SimTime nanoseconds(std::int64_t n) { return SimTime{n}; }
constexpr SimTime microseconds(std::int64_t us) { return SimTime{us * 1000}; }
constexpr SimTime milliseconds(std::int64_t ms) {
  return SimTime{ms * 1'000'000};
}
constexpr SimTime seconds(std::int64_t s) { return SimTime{s * 1'000'000'000}; }

/// Fractional microseconds — used for calibration constants such as
/// "55.0 us software overhead".
constexpr SimTime microseconds_f(double us) {
  return SimTime{static_cast<std::int64_t>(us * 1000.0)};
}

constexpr double to_microseconds(SimTime t) {
  return static_cast<double>(t.count()) / 1000.0;
}

constexpr double to_milliseconds(SimTime t) {
  return static_cast<double>(t.count()) / 1'000'000.0;
}

/// Time for `bytes` to cross a link of `bits_per_second`, rounded up to the
/// next nanosecond so zero-cost transmission can never occur.
constexpr SimTime transmission_time(std::int64_t bytes,
                                    std::int64_t bits_per_second) {
  // ns = bytes*8 / (bits/s) * 1e9, computed without intermediate overflow
  // for all realistic frame sizes.
  const std::int64_t bits = bytes * 8;
  const std::int64_t whole = bits / bits_per_second;
  const std::int64_t rem = bits % bits_per_second;
  std::int64_t ns = whole * 1'000'000'000 + (rem * 1'000'000'000 + bits_per_second - 1) / bits_per_second;
  return SimTime{ns};
}

}  // namespace mcmpi
