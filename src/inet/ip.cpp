#include "inet/ip.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace mcmpi::inet {

namespace {
constexpr std::uint8_t kIpVersion = 4;
constexpr std::uint8_t kFlagMoreFragments = 0x1;

// 20-byte header layout (little-endian serialization; layout mirrors the
// information content of a real IPv4 header).
struct Header {
  std::uint8_t version;
  std::uint8_t protocol;
  std::uint16_t payload_length;  // this fragment's payload bytes
  std::uint32_t src;
  std::uint32_t dst;
  std::uint16_t ident;
  std::uint16_t frag_offset_units;  // 8-byte units
  std::uint8_t flags;
  std::uint8_t ttl;
  std::uint16_t checksum;  // kept zero; link layer is assumed error-free
};

void write_header(ByteWriter& w, const Header& h) {
  w.u8(h.version);
  w.u8(h.protocol);
  w.u16(h.payload_length);
  w.u32(h.src);
  w.u32(h.dst);
  w.u16(h.ident);
  w.u16(h.frag_offset_units);
  w.u8(h.flags);
  w.u8(h.ttl);
  w.u16(h.checksum);
}

Header read_header(ByteReader& r) {
  Header h;
  h.version = r.u8();
  h.protocol = r.u8();
  h.payload_length = r.u16();
  h.src = r.u32();
  h.dst = r.u32();
  h.ident = r.u16();
  h.frag_offset_units = r.u16();
  h.flags = r.u8();
  h.ttl = r.u8();
  h.checksum = r.u16();
  return h;
}
}  // namespace

net::MacAddr ArpTable::resolve(IpAddr ip) const {
  const auto it = entries_.find(ip);
  MC_EXPECTS_MSG(it != entries_.end(),
                 "ARP: no entry for " + ip.to_string());
  return it->second;
}

IpStack::IpStack(sim::Simulator& sim, net::Nic& nic, IpAddr self,
                 const ArpTable& arp)
    : sim_(sim), nic_(nic), self_(self), arp_(arp) {
  nic_.set_rx_handler([this](const net::Frame& frame) { on_frame(frame); });
}

void IpStack::register_protocol(std::uint8_t protocol,
                                ProtocolHandler handler) {
  MC_EXPECTS_MSG(!protocols_.contains(protocol),
                 "protocol already registered");
  protocols_[protocol] = std::move(handler);
}

void IpStack::send(IpAddr dst, std::uint8_t protocol, PayloadRef payload,
                   net::FrameKind kind) {
  MC_EXPECTS_MSG(!dst.is_unspecified(), "cannot send to 0.0.0.0");
  // Fragment offsets are in 8-byte units, so every fragment except the last
  // must carry a multiple of 8 bytes.
  static_assert(kFragmentPayload % 8 == 0);

  const net::MacAddr dst_mac =
      dst.is_multicast() ? net::MacAddr::ip_multicast(dst.bits())
                         : arp_.resolve(dst);
  const std::uint16_t ident = next_ident_++;
  const auto total = static_cast<std::int64_t>(payload.size());
  ++stats_.datagrams_sent;

  std::int64_t offset = 0;
  do {
    const std::int64_t chunk = std::min<std::int64_t>(
        kFragmentPayload, total - offset);
    const bool last = offset + chunk == total;

    net::Frame frame;
    frame.dst = dst_mac;
    frame.kind = kind;
    PooledBuffer header_bytes =
        acquire_payload_buffer(static_cast<std::size_t>(kHeaderBytes));
    ByteWriter w(header_bytes.bytes);
    write_header(w, Header{
                        .version = kIpVersion,
                        .protocol = protocol,
                        .payload_length = static_cast<std::uint16_t>(chunk),
                        .src = self_.bits(),
                        .dst = dst.bits(),
                        .ident = ident,
                        .frag_offset_units =
                            static_cast<std::uint16_t>(offset / 8),
                        .flags = last ? std::uint8_t{0} : kFlagMoreFragments,
                        .ttl = 64,
                        .checksum = 0,
                    });
    frame.header = PayloadRef::adopt(std::move(header_bytes));
    // Zero-copy fragmentation: the fragment body is a slice of the caller's
    // datagram, shared (not copied) all the way to every receiver.
    frame.payload = payload.slice(static_cast<std::size_t>(offset),
                                  static_cast<std::size_t>(chunk));
    nic_.send(std::move(frame));
    ++stats_.fragments_sent;
    offset += chunk;
  } while (offset < total);
}

void IpStack::on_frame(const net::Frame& frame) {
  if (frame.ethertype != net::Frame::kEtherTypeIpv4) {
    return;
  }
  ByteReader r(frame.header);
  const Header h = read_header(r);
  if (h.version != kIpVersion) {
    return;
  }
  const IpAddr dst{h.dst};
  // The NIC filter already matched unicast-to-us / joined multicast; this
  // check guards against flooded unknown-unicast frames for other hosts.
  if (!dst.is_multicast() && dst != self_) {
    return;
  }
  ++stats_.fragments_received;

  MC_ASSERT_MSG(frame.payload.size() == h.payload_length,
                "IP header length disagrees with frame payload");
  // Keep the sender's buffer alive via the ref instead of copying the bytes.
  PayloadRef payload = frame.payload;
  const bool more = (h.flags & kFlagMoreFragments) != 0;
  const std::uint32_t offset = std::uint32_t{h.frag_offset_units} * 8;

  if (offset == 0 && !more) {
    // Unfragmented fast path: hand the shared view straight up.
    Partial whole;
    whole.meta = IpPacketMeta{IpAddr{h.src}, dst, h.protocol, frame.kind};
    whole.fragments.emplace_back(0, std::move(payload));
    whole.bytes_received = h.payload_length;
    whole.total_length = h.payload_length;
    finish(std::move(whole));
    return;
  }

  const PartialKey key{h.src, h.ident};
  prune_completed();
  if (completed_.contains(key)) {
    // Late duplicate of a datagram that already went up: without this
    // check it would seed a ghost reassembly entry (cleared only by
    // timeout) and could corrupt a future datagram reusing the ident.
    ++stats_.duplicate_fragments;
    return;
  }
  auto [it, inserted] = reassembly_.try_emplace(key);
  Partial& partial = it->second;
  if (inserted) {
    partial.meta = IpPacketMeta{IpAddr{h.src}, dst, h.protocol, frame.kind};
    partial.timeout_event =
        sim_.schedule_after(reassembly_timeout_, [this, key] {
          reassembly_.erase(key);
          ++stats_.reassembly_timeouts;
          MC_LOG(kDebug, "ip") << "reassembly timeout, src="
                               << IpAddr{key.src}.to_string();
        });
  }
  // Sorted insert; in-order arrival (the overwhelmingly common case on the
  // simulated LAN) is a plain append.
  bool duplicate = false;
  if (partial.fragments.empty() || partial.fragments.back().first < offset) {
    partial.fragments.emplace_back(offset, std::move(payload));
  } else {
    auto pos = std::lower_bound(
        partial.fragments.begin(), partial.fragments.end(), offset,
        [](const auto& entry, std::uint32_t o) { return entry.first < o; });
    if (pos != partial.fragments.end() && pos->first == offset) {
      duplicate = true;
      ++stats_.duplicate_fragments;
    } else {
      partial.fragments.emplace(pos, offset, std::move(payload));
    }
  }
  if (!duplicate) {
    partial.bytes_received += h.payload_length;
  }
  if (!more) {
    partial.total_length = offset + h.payload_length;
  }
  if (partial.total_length >= 0 &&
      partial.bytes_received == partial.total_length) {
    Partial done = std::move(partial);
    reassembly_.erase(it);
    sim_.cancel(done.timeout_event);
    // Remember the completed key for one timeout: late duplicates of this
    // datagram's fragments are recognized and dropped above.
    const SimTime expiry = sim_.now() + reassembly_timeout_;
    completed_[key] = expiry;
    completed_order_.emplace_back(expiry, key);
    finish(std::move(done));
  }
}

void IpStack::prune_completed() {
  const SimTime now = sim_.now();
  while (!completed_order_.empty() && completed_order_.front().first <= now) {
    const PartialKey key = completed_order_.front().second;
    completed_order_.pop_front();
    // Only erase if this queue entry is the key's latest expiry (the key
    // may have completed again after an earlier expiry already lapsed).
    const auto it = completed_.find(key);
    if (it != completed_.end() && it->second <= now) {
      completed_.erase(it);
    }
  }
}

void IpStack::finish(Partial&& partial) {
  MC_ASSERT(!partial.fragments.empty());
  // Zero-copy fast path: in the simulated network every fragment of one
  // datagram is a slice of the sender's single allocation, delivered intact,
  // so adjacent slices can be re-joined into one view without touching a
  // byte.  The copying path below only runs if fragments arrived from
  // distinct buffers (e.g. frames synthesized by tests).
  bool contiguous = true;
  auto it = partial.fragments.begin();
  std::uint32_t expected_offset = 0;
  PayloadRef joined = it->second;
  MC_ASSERT_MSG(it->first == 0, "reassembly gap");
  expected_offset = static_cast<std::uint32_t>(joined.size());
  for (++it; it != partial.fragments.end(); ++it) {
    MC_ASSERT_MSG(it->first == expected_offset, "reassembly gap");
    expected_offset += static_cast<std::uint32_t>(it->second.size());
    if (contiguous && joined.directly_precedes(it->second)) {
      joined = joined.joined_with(it->second);
    } else {
      contiguous = false;
    }
  }

  PayloadRef datagram;
  if (contiguous) {
    if (partial.fragments.size() > 1) {
      ++stats_.zero_copy_reassemblies;
    }
    datagram = std::move(joined);
  } else {
    PooledBuffer merged =
        acquire_payload_buffer(static_cast<std::size_t>(partial.total_length));
    for (auto& [offset, bytes] : partial.fragments) {
      merged.bytes.insert(merged.bytes.end(), bytes.view().begin(),
                          bytes.view().end());
    }
    datagram = PayloadRef::adopt(std::move(merged));
  }

  ++stats_.datagrams_received;
  const auto handler = protocols_.find(partial.meta.protocol);
  if (handler == protocols_.end()) {
    ++stats_.no_protocol_drops;
    return;
  }
  handler->second(partial.meta, std::move(datagram));
}

}  // namespace mcmpi::inet
