#pragma once
/// \file ip.hpp
/// Per-host IPv4 layer: addressing, fragmentation, reassembly, demux.
///
/// Datagrams larger than the Ethernet MTU are fragmented exactly as IPv4
/// does (20 B header per fragment, offsets in 8-byte units, MF flag), so a
/// UDP payload of M bytes crosses the wire in ceil((M+8)/1480) frames — the
/// `M/T + 1` of the paper's frame-count formulas.  Reassembly is keyed by
/// (source, identification) with a timeout that discards incomplete
/// datagrams (counted, and exercised by the loss-injection tests).
///
/// Address resolution uses a static table (the cluster topology is fixed for
/// a run, so ARP traffic would only add constant noise); multicast
/// destinations map to 01:00:5e MAC addresses per RFC 1112.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "inet/ip_addr.hpp"
#include "net/nic.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::inet {

/// Static IP -> MAC mapping shared by every host on the segment.
class ArpTable {
 public:
  void add(IpAddr ip, net::MacAddr mac) { entries_[ip] = mac; }
  /// Throws ContractViolation if the address is unknown.
  net::MacAddr resolve(IpAddr ip) const;

 private:
  std::unordered_map<IpAddr, net::MacAddr> entries_;
};

struct IpPacketMeta {
  IpAddr src;
  IpAddr dst;
  std::uint8_t protocol = 0;
  net::FrameKind kind = net::FrameKind::kData;
};

struct IpStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t fragments_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t fragments_received = 0;
  std::uint64_t reassembly_timeouts = 0;
  std::uint64_t no_protocol_drops = 0;
  /// Duplicate fragments discarded: a repeat of an offset already held in
  /// reassembly, or a late fragment of a datagram that already completed
  /// (without this second case a duplicated last fragment would resurrect
  /// a ghost reassembly entry that only a timeout could clear — and could
  /// corrupt a future datagram reusing the same 16-bit ident).  Duplicate
  /// UNFRAGMENTED datagrams are delivered twice, as real IP does: dedup is
  /// the transport's job (RDP sequence numbers, multicast frame sequences).
  std::uint64_t duplicate_fragments = 0;
  /// Datagrams reassembled by re-joining adjacent slices of the sender's
  /// buffer — the zero-copy fast path (no payload bytes touched).
  std::uint64_t zero_copy_reassemblies = 0;
};

class IpStack {
 public:
  static constexpr std::int64_t kHeaderBytes = 20;
  /// Max IP payload per fragment on a 1500 B MTU.
  static constexpr std::int64_t kFragmentPayload =
      net::Frame::kMaxPayloadBytes - kHeaderBytes;  // 1480

  using ProtocolHandler =
      std::function<void(const IpPacketMeta&, PayloadRef data)>;

  IpStack(sim::Simulator& sim, net::Nic& nic, IpAddr self,
          const ArpTable& arp);

  IpAddr address() const { return self_; }
  net::Nic& nic() { return nic_; }
  sim::Simulator& simulator() { return sim_; }

  void register_protocol(std::uint8_t protocol, ProtocolHandler handler);

  /// Sends `payload` to `dst` (unicast or multicast), fragmenting as needed.
  /// Fragmentation is zero-copy: every fragment's frame payload is a slice
  /// of `payload`'s backing buffer; only the 20 B per-fragment header is
  /// freshly built.
  void send(IpAddr dst, std::uint8_t protocol, PayloadRef payload,
            net::FrameKind kind);

  const IpStats& stats() const { return stats_; }

  /// How long an incomplete datagram may sit in reassembly.
  void set_reassembly_timeout(SimTime t) { reassembly_timeout_ = t; }

 private:
  struct PartialKey {
    std::uint32_t src;
    std::uint16_t id;
    auto operator<=>(const PartialKey&) const = default;
  };
  struct Partial {
    IpPacketMeta meta;
    /// (offset, payload view) sorted by offset.  A vector, not a map: the
    /// common case is in-order arrival (append), and reassembly of a
    /// 45-fragment datagram should not cost 45 tree-node allocations.
    std::vector<std::pair<std::uint32_t, PayloadRef>> fragments;
    std::uint32_t bytes_received = 0;
    std::int64_t total_length = -1;  // known once the MF=0 fragment arrives
    sim::EventId timeout_event = sim::kInvalidEvent;
  };

  void on_frame(const net::Frame& frame);
  void finish(Partial&& partial);
  /// Drops expired completed-datagram keys (lazy, time-ordered: no
  /// scheduled events, so tracking completions never perturbs the event
  /// counts the benches record).
  void prune_completed();

  sim::Simulator& sim_;
  net::Nic& nic_;
  IpAddr self_;
  const ArpTable& arp_;
  std::map<std::uint8_t, ProtocolHandler> protocols_;
  std::map<PartialKey, Partial> reassembly_;
  /// Keys of datagrams that completed within the last reassembly timeout
  /// (key -> expiry), with an arrival-ordered queue for lazy pruning.
  /// Late duplicate fragments matching a key are dropped instead of
  /// seeding a ghost reassembly entry.
  std::map<PartialKey, SimTime> completed_;
  std::deque<std::pair<SimTime, PartialKey>> completed_order_;
  std::uint16_t next_ident_ = 1;
  SimTime reassembly_timeout_ = seconds(1);
  IpStats stats_;
};

}  // namespace mcmpi::inet
