#include "inet/ip_addr.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>

namespace mcmpi::inet {

std::string IpAddr::to_string() const {
  std::ostringstream os;
  os << ((bits_ >> 24) & 0xFF) << '.' << ((bits_ >> 16) & 0xFF) << '.'
     << ((bits_ >> 8) & 0xFF) << '.' << (bits_ & 0xFF);
  return os.str();
}

IpAddr IpAddr::parse(const std::string& text) {
  std::uint32_t bits = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (pos >= text.size()) {
      throw std::invalid_argument("IpAddr::parse: truncated `" + text + "`");
    }
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(text.substr(pos), &used, 10);
    } catch (const std::exception&) {
      throw std::invalid_argument("IpAddr::parse: malformed `" + text + "`");
    }
    if (used == 0 || value > 255) {
      throw std::invalid_argument("IpAddr::parse: bad octet in `" + text + "`");
    }
    bits = (bits << 8) | static_cast<std::uint32_t>(value);
    pos += used;
    if (octet < 3) {
      if (pos >= text.size() || text[pos] != '.') {
        throw std::invalid_argument("IpAddr::parse: expected '.' in `" + text +
                                    "`");
      }
      ++pos;
    }
  }
  if (pos != text.size()) {
    throw std::invalid_argument("IpAddr::parse: trailing characters in `" +
                                text + "`");
  }
  return IpAddr(bits);
}

}  // namespace mcmpi::inet
