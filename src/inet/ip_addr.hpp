#pragma once
/// \file ip_addr.hpp
/// IPv4 addresses, including class-D (multicast) classification.
///
/// The paper: "IP address ranges from 224.0.0.0 through 239.255.255.255
/// (class D addresses) are IP multicast addresses."  is_multicast() encodes
/// exactly that test (top nibble 1110).

#include <compare>
#include <cstdint>
#include <string>

namespace mcmpi::inet {

class IpAddr {
 public:
  constexpr IpAddr() = default;
  explicit constexpr IpAddr(std::uint32_t bits) : bits_(bits) {}
  constexpr IpAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                   std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t bits() const { return bits_; }

  /// Class D: 224.0.0.0 – 239.255.255.255.
  constexpr bool is_multicast() const { return (bits_ >> 28) == 0xE; }

  constexpr bool is_unspecified() const { return bits_ == 0; }

  friend constexpr auto operator<=>(const IpAddr&, const IpAddr&) = default;

  /// Cluster convention: host i carries i+1 in the low 24 bits of
  /// 10.0.0.0/8 — 10.0.0.(i+1) for the first 254 hosts, rolling into
  /// 10.0.1.x beyond.  The full index must survive: truncating to the
  /// last octet would alias every 256th host's address on 255+ rank
  /// clusters.
  static constexpr IpAddr host(std::uint32_t index) {
    return IpAddr((std::uint32_t{10} << 24) | ((index + 1) & 0x00FFFFFF));
  }

  /// Cluster convention: multicast group g maps into 239.1.0.0/16
  /// (administratively scoped, like the paper's experiments).
  static constexpr IpAddr multicast_group(std::uint16_t group) {
    return IpAddr(239, 1, static_cast<std::uint8_t>(group >> 8),
                  static_cast<std::uint8_t>(group & 0xFF));
  }

  std::string to_string() const;
  /// Parses dotted-quad; throws std::invalid_argument on malformed input.
  static IpAddr parse(const std::string& text);

 private:
  std::uint32_t bits_ = 0;
};

}  // namespace mcmpi::inet

template <>
struct std::hash<mcmpi::inet::IpAddr> {
  std::size_t operator()(const mcmpi::inet::IpAddr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};
