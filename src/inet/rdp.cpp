#include "inet/rdp.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::inet {

namespace {
constexpr std::uint8_t kFlagLast = 0x1;
}

RdpEndpoint::RdpEndpoint(UdpStack& udp, std::uint16_t port, Params params)
    : udp_(udp), port_(port), params_(params), socket_(udp.open(port)) {
  socket_->set_handler(
      [this](UdpDatagram datagram) { on_datagram(std::move(datagram)); });
}

RdpEndpoint::RdpEndpoint(UdpStack& udp)
    : RdpEndpoint(udp, kDefaultPort, Params{}) {}

void RdpEndpoint::send(IpAddr dst, PayloadRef message, net::FrameKind kind) {
  MC_EXPECTS_MSG(!dst.is_multicast(), "RDP is point-to-point");
  ++stats_.messages_sent;
  TxStream& tx = tx_[dst];

  // Split into segments; an empty message still produces one (empty, last)
  // segment so zero-byte MPI messages work.  Segments are slices of the
  // message buffer: windowed retransmit state costs no payload copies.
  const auto total = static_cast<std::int64_t>(message.size());
  std::int64_t offset = 0;
  do {
    const std::int64_t chunk =
        std::min<std::int64_t>(kSegmentPayload, total - offset);
    Segment segment;
    segment.seq = tx.next_seq++;
    segment.last_of_message = offset + chunk == total;
    segment.kind = kind;
    segment.payload = message.slice(static_cast<std::size_t>(offset),
                                    static_cast<std::size_t>(chunk));
    if (tx.unacked.size() < params_.window_segments) {
      transmit(dst, segment);
      tx.unacked.emplace(segment.seq, std::move(segment));
      arm_rto(dst, tx);
    } else {
      tx.backlog.push_back(std::move(segment));
    }
    offset += chunk;
  } while (offset < total);
}

void RdpEndpoint::transmit(IpAddr dst, const Segment& segment) {
  // Gather-send: the 16 B RDP header goes down as a separate part; the UDP
  // layer assembles header+payload into the wire datagram in one pass.
  Buffer header;
  header.reserve(16);
  ByteWriter w(header);
  w.u8(static_cast<std::uint8_t>(Type::kData));
  w.u8(segment.last_of_message ? kFlagLast : 0);
  w.u16(0);  // reserved
  w.u64(segment.seq);
  w.u32(static_cast<std::uint32_t>(segment.payload.size()));
  ++stats_.segments_sent;
  socket_->sendto(dst, port_, header, segment.payload.view(), segment.kind);
}

void RdpEndpoint::arm_rto(IpAddr dst, TxStream& tx) {
  if (tx.rto_event != sim::kInvalidEvent || tx.unacked.empty()) {
    return;
  }
  if (tx.current_rto == SimTime{}) {
    tx.current_rto = params_.rto;
  }
  tx.rto_event = udp_.ip().simulator().schedule_after(
      tx.current_rto, [this, dst] { rto_fired(dst); });
}

void RdpEndpoint::rto_fired(IpAddr dst) {
  TxStream& tx = tx_[dst];
  tx.rto_event = sim::kInvalidEvent;
  if (tx.unacked.empty()) {
    return;
  }
  ++tx.retries;
  if (tx.retries > params_.max_retries) {
    ++stats_.send_failures;
    MC_LOG(kError, "rdp") << "giving up on peer " << dst.to_string()
                          << " after " << params_.max_retries << " retries";
    tx.unacked.clear();
    tx.backlog.clear();
    return;
  }
  ++stats_.retransmits;
  // Go-back-one recovery: resend the earliest unacked segment; the
  // cumulative ACK will advance past anything the receiver already has.
  transmit(dst, tx.unacked.begin()->second);
  tx.current_rto = std::min(tx.current_rto * 2, params_.rto_max);
  arm_rto(dst, tx);
}

void RdpEndpoint::on_datagram(UdpDatagram datagram) {
  ByteReader r(datagram.data);
  const auto type = static_cast<Type>(r.u8());
  const std::uint8_t flags = r.u8();
  (void)r.u16();
  const std::uint64_t seq = r.u64();
  if (type == Type::kAck) {
    on_ack(datagram.src_addr, seq);
    return;
  }
  const std::uint32_t length = r.u32();
  MC_ASSERT_MSG(r.remaining() == length, "RDP segment length mismatch");
  Segment segment;
  segment.seq = seq;
  segment.last_of_message = (flags & kFlagLast) != 0;
  // Keep the datagram's buffer alive through the view — no byte copy.
  segment.payload = datagram.data.slice(r.position(), length);
  ++stats_.segments_received;
  on_data(datagram.src_addr, std::move(segment));
}

void RdpEndpoint::on_data(IpAddr src, Segment segment) {
  RxStream& rx = rx_[src];
  if (segment.seq < rx.expected) {
    // Duplicate of something already delivered: re-ack immediately so the
    // sender stops retransmitting.
    ++stats_.duplicates;
    schedule_ack(src, rx, /*immediate=*/true);
    return;
  }
  rx.out_of_order.emplace(segment.seq, std::move(segment));
  while (!rx.out_of_order.empty() &&
         rx.out_of_order.begin()->first == rx.expected) {
    Segment next = std::move(rx.out_of_order.begin()->second);
    rx.out_of_order.erase(rx.out_of_order.begin());
    ++rx.expected;
    if (next.last_of_message && rx.partial.empty()) {
      // Single-segment message: deliver the datagram view directly.
      ++stats_.messages_delivered;
      if (handler_) {
        handler_(src, std::move(next.payload));
      }
      continue;
    }
    // Multi-segment message: segments arrive in distinct wire datagrams, so
    // concatenation is the one unavoidable copy of the receive path.
    rx.partial.insert(rx.partial.end(), next.payload.view().begin(),
                      next.payload.view().end());
    if (next.last_of_message) {
      Buffer message = std::move(rx.partial);
      rx.partial = Buffer{};
      ++stats_.messages_delivered;
      if (handler_) {
        handler_(src, PayloadRef(std::move(message)));
      }
    }
  }
  // TCP-style acking: every `ack_every` accumulated segments acks at once;
  // otherwise a short delayed ack picks up the tail.
  const bool immediate = rx.expected - rx.last_acked >= params_.ack_every;
  schedule_ack(src, rx, immediate);
}

void RdpEndpoint::schedule_ack(IpAddr src, RxStream& rx, bool immediate) {
  if (immediate) {
    if (rx.ack_scheduled) {
      udp_.ip().simulator().cancel(rx.ack_event);
      rx.ack_scheduled = false;
      rx.ack_event = sim::kInvalidEvent;
    }
    send_ack(src, rx);
    return;
  }
  if (rx.ack_scheduled) {
    return;
  }
  rx.ack_scheduled = true;
  rx.ack_event =
      udp_.ip().simulator().schedule_after(params_.ack_delay, [this, src] {
        RxStream& stream = rx_[src];
        stream.ack_scheduled = false;
        stream.ack_event = sim::kInvalidEvent;
        send_ack(src, stream);
      });
}

void RdpEndpoint::send_ack(IpAddr src, RxStream& rx) {
  Buffer bytes;
  ByteWriter w(bytes);
  w.u8(static_cast<std::uint8_t>(Type::kAck));
  w.u8(0);
  w.u16(0);
  w.u64(rx.expected);
  w.u32(0);
  ++stats_.acks_sent;
  rx.last_acked = rx.expected;
  socket_->sendto(src, port_, bytes, net::FrameKind::kAck);
}

void RdpEndpoint::on_ack(IpAddr src, std::uint64_t cumulative) {
  TxStream& tx = tx_[src];
  bool advanced = false;
  while (!tx.unacked.empty() && tx.unacked.begin()->first < cumulative) {
    tx.unacked.erase(tx.unacked.begin());
    advanced = true;
  }
  if (advanced) {
    tx.retries = 0;
    tx.current_rto = params_.rto;
    if (tx.rto_event != sim::kInvalidEvent) {
      udp_.ip().simulator().cancel(tx.rto_event);
      tx.rto_event = sim::kInvalidEvent;
    }
    pump_backlog(src, tx);
    arm_rto(src, tx);
  }
}

void RdpEndpoint::pump_backlog(IpAddr dst, TxStream& tx) {
  while (!tx.backlog.empty() &&
         tx.unacked.size() < params_.window_segments) {
    Segment segment = std::move(tx.backlog.front());
    tx.backlog.pop_front();
    transmit(dst, segment);
    tx.unacked.emplace(segment.seq, std::move(segment));
  }
}

}  // namespace mcmpi::inet
