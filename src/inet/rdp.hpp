#pragma once
/// \file rdp.hpp
/// RDP — a reliable, ordered, message-oriented transport over UDP.
///
/// Stands in for the TCP connections the MPICH ch_p4 device used between
/// rank pairs.  Design goals, in order: (1) identical frame pattern to TCP
/// on a loss-free LAN — one data frame per MTU of payload plus occasional
/// delayed cumulative ACKs (the paper ignores ACK traffic in its frame
/// counts, and so do our formula checks); (2) correct recovery under
/// injected loss (retransmission from a per-peer timer); (3) in-order
/// message delivery per sender, which the MPI point-to-point layer's
/// non-overtaking guarantee rests on.
///
/// One RdpEndpoint per host, bound to a well-known port; streams to each
/// peer are independent.  Delivery is by callback (handler-mode socket):
/// the "kernel" processes segments the moment they arrive.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/bytes.hpp"
#include "inet/udp.hpp"

namespace mcmpi::inet {

struct RdpStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t send_failures = 0;  // retry budget exhausted
};

class RdpEndpoint {
 public:
  static constexpr std::uint16_t kDefaultPort = 5001;

  struct Params {
    SimTime rto = milliseconds(5);          // initial retransmit timeout
    SimTime rto_max = milliseconds(200);    // backoff cap
    SimTime ack_delay = microseconds(100);  // delayed cumulative ACK
    /// ACK immediately once this many segments are unacknowledged — TCP's
    /// ack-every-other-segment rule.  On the half-duplex hub these ACKs
    /// contend with data for the medium, which is part of why the paper's
    /// MPICH numbers degrade on the hub at large message sizes (Fig. 11).
    std::size_t ack_every = 2;
    std::size_t window_segments = 64;       // max unacked segments per peer
    int max_retries = 25;
  };

  using MessageHandler = std::function<void(IpAddr src, PayloadRef message)>;

  RdpEndpoint(UdpStack& udp, std::uint16_t port, Params params);
  explicit RdpEndpoint(UdpStack& udp);

  /// Registers the upcall invoked once per completely received message.
  void set_message_handler(MessageHandler handler) {
    handler_ = std::move(handler);
  }

  /// Queues `message` for reliable delivery to the endpoint at `dst`.
  /// Non-blocking: transmission, retransmission and windowing run on
  /// simulator events.  `kind` tags the frames for instrumentation.
  /// Segmentation is zero-copy: every segment (including the retransmit
  /// window and backlog) is a slice of `message`'s backing buffer.
  void send(IpAddr dst, PayloadRef message,
            net::FrameKind kind = net::FrameKind::kData);

  const RdpStats& stats() const { return stats_; }
  std::uint16_t port() const { return port_; }

  /// Max payload bytes per segment (one full Ethernet frame).
  static constexpr std::int64_t kSegmentPayload =
      UdpStack::kMaxPayloadPerFrame - 16;  // 16 B RDP header

 private:
  enum class Type : std::uint8_t { kData = 1, kAck = 2 };

  struct Segment {
    std::uint64_t seq = 0;
    bool last_of_message = false;
    net::FrameKind kind = net::FrameKind::kData;
    PayloadRef payload;  // slice of the original message (tx) / datagram (rx)
  };

  struct TxStream {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, Segment> unacked;
    std::deque<Segment> backlog;  // beyond the window
    sim::EventId rto_event = sim::kInvalidEvent;
    SimTime current_rto{};
    int retries = 0;
  };

  struct RxStream {
    std::uint64_t expected = 0;
    std::map<std::uint64_t, Segment> out_of_order;
    Buffer partial;  // accumulating current message
    bool ack_scheduled = false;
    sim::EventId ack_event = sim::kInvalidEvent;
    std::uint64_t last_acked = 0;  // cumulative ack already sent
  };

  void on_datagram(UdpDatagram datagram);
  void on_data(IpAddr src, Segment segment);
  void on_ack(IpAddr src, std::uint64_t cumulative);
  void transmit(IpAddr dst, const Segment& segment);
  void arm_rto(IpAddr dst, TxStream& tx);
  void rto_fired(IpAddr dst);
  void schedule_ack(IpAddr src, RxStream& rx, bool immediate);
  void send_ack(IpAddr src, RxStream& rx);
  void pump_backlog(IpAddr dst, TxStream& tx);

  UdpStack& udp_;
  std::uint16_t port_;
  Params params_;
  std::unique_ptr<UdpSocket> socket_;
  MessageHandler handler_;
  std::map<IpAddr, TxStream> tx_;
  std::map<IpAddr, RxStream> rx_;
  RdpStats stats_;
};

}  // namespace mcmpi::inet
