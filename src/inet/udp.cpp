#include "inet/udp.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace mcmpi::inet {

UdpStack::UdpStack(IpStack& ip) : ip_(ip) {
  ip_.register_protocol(kProtocol,
                        [this](const IpPacketMeta& meta, PayloadRef data) {
                          on_packet(meta, std::move(data));
                        });
}

std::unique_ptr<UdpSocket> UdpStack::open(std::uint16_t port) {
  if (port == 0) {
    while (sockets_.contains(next_ephemeral_)) {
      ++next_ephemeral_;
    }
    port = next_ephemeral_++;
  }
  auto socket = std::unique_ptr<UdpSocket>(new UdpSocket(*this, port));
  sockets_[port].push_back(socket.get());
  return socket;
}

void UdpStack::unregister(UdpSocket& socket) {
  auto it = sockets_.find(socket.port());
  MC_ASSERT(it != sockets_.end());
  std::erase(it->second, &socket);
  if (it->second.empty()) {
    sockets_.erase(it);
  }
}

void UdpStack::send_datagram(std::uint16_t src_port, IpAddr dst,
                             std::uint16_t dst_port,
                             std::span<const std::span<const std::uint8_t>> parts,
                             net::FrameKind kind) {
  // The one payload copy of the send path: user/transport bytes become the
  // wire datagram.  Everything below (fragmentation, fan-out, reassembly,
  // per-socket delivery) shares this allocation by reference.
  std::size_t payload_bytes = 0;
  for (const auto& part : parts) {
    payload_bytes += part.size();
  }
  const std::size_t total_bytes = payload_bytes + kHeaderBytes;
  PooledBuffer packet = acquire_payload_buffer(total_bytes);
  ByteWriter w(packet.bytes);
  w.u16(src_port);
  w.u16(dst_port);
  // The 16-bit wire field cannot represent a jumbo simulated datagram
  // (> 64 KiB); real UDP would force app-level segmentation, but the
  // simulator permits jumbo datagrams so large-message scenarios exercise
  // IP fragmentation.  Rather than letting the field silently wrap, write
  // the 0 jumbogram marker (RFC 2675 discipline): receivers recover the
  // true length from the datagram itself and never read the wrapped value.
  if (total_bytes > 0xFFFF) {
    w.u16(0);
    ++stats_.jumbo_datagrams;
  } else {
    w.u16(static_cast<std::uint16_t>(total_bytes));
  }
  w.u16(0);  // checksum unused: link layer is error-free in this model
  for (const auto& part : parts) {
    w.bytes(part);
  }
  ++stats_.datagrams_sent;
  ip_.send(dst, kProtocol, PayloadRef::adopt(std::move(packet)), kind);
}

void UdpStack::on_packet(const IpPacketMeta& meta, PayloadRef data) {
  ByteReader r(data);
  const std::uint16_t src_port = r.u16();
  const std::uint16_t dst_port = r.u16();
  const std::uint16_t length = r.u16();
  (void)r.u16();  // checksum
  if (length == 0) {
    // Jumbogram marker: the true length exceeds the 16-bit field.  The
    // wrapped value is never reconstructed or read back — the datagram's
    // own extent is authoritative.
    MC_ASSERT_MSG(data.size() > 0xFFFF,
                  "UDP jumbogram marker on a non-jumbo datagram");
  } else {
    MC_ASSERT_MSG(length == data.size(), "UDP length mismatch");
  }
  // Zero-copy demux: the payload is the datagram view past the 8 B header.
  PayloadRef payload = data.slice(r.position());

  const auto it = sockets_.find(dst_port);
  if (it == sockets_.end()) {
    ++stats_.no_socket_drops;
    MC_LOG(kDebug, "udp") << "drop: no socket on port " << dst_port;
    return;
  }

  UdpDatagram datagram{meta.src, src_port, meta.dst, dst_port, {}};
  if (meta.dst.is_multicast()) {
    // Receiver-directed delivery: only group members hear it.  Every member
    // socket gets a ref to the same payload buffer — no per-member copy.
    bool delivered = false;
    for (UdpSocket* socket : it->second) {
      if (socket->member_of(meta.dst)) {
        UdpDatagram member = datagram;
        member.data = payload;
        socket->enqueue(std::move(member));
        delivered = true;
      }
    }
    if (!delivered) {
      ++stats_.no_socket_drops;
      MC_LOG(kDebug, "udp") << "drop: no member of "
                            << meta.dst.to_string() << " on port " << dst_port;
    }
    return;
  }
  datagram.data = std::move(payload);
  it->second.front()->enqueue(std::move(datagram));
}

UdpSocket::UdpSocket(UdpStack& stack, std::uint16_t port)
    : stack_(stack), port_(port) {}

UdpSocket::~UdpSocket() {
  // Leave all groups so the NIC filter reference counts stay balanced.
  while (!groups_.empty()) {
    leave(*groups_.begin());
  }
  stack_.unregister(*this);
}

void UdpSocket::set_handler(std::function<void(UdpDatagram)> handler) {
  MC_EXPECTS_MSG(queue_.empty(),
                 "cannot switch to handler mode with queued datagrams");
  handler_ = std::move(handler);
}

void UdpSocket::sendto(IpAddr dst, std::uint16_t dst_port,
                       std::span<const std::uint8_t> data,
                       net::FrameKind kind) {
  const std::span<const std::uint8_t> parts[] = {data};
  stack_.send_datagram(port_, dst, dst_port, parts, kind);
}

void UdpSocket::sendto(IpAddr dst, std::uint16_t dst_port,
                       std::span<const std::uint8_t> header,
                       std::span<const std::uint8_t> body,
                       net::FrameKind kind) {
  const std::span<const std::uint8_t> parts[] = {header, body};
  stack_.send_datagram(port_, dst, dst_port, parts, kind);
}

void UdpSocket::sendto_parts(IpAddr dst, std::uint16_t dst_port,
                             std::span<const std::span<const std::uint8_t>> parts,
                             net::FrameKind kind) {
  stack_.send_datagram(port_, dst, dst_port, parts, kind);
}

void UdpSocket::enqueue(UdpDatagram datagram) {
  ++stack_.stats_.datagrams_delivered;
  if (handler_) {
    handler_(std::move(datagram));
    return;
  }
  if (queued_bytes_ + datagram.data.size() > recv_capacity_) {
    ++dropped_on_full_;
    ++stack_.stats_.buffer_full_drops;
    MC_LOG(kDebug, "udp") << "drop: socket buffer full on port " << port_;
    return;
  }
  queued_bytes_ += datagram.data.size();
  queue_.push_back(std::move(datagram));
  readable_.notify_one();
}

UdpDatagram UdpSocket::recv(sim::SimProcess& self) {
  MC_EXPECTS_MSG(!handler_, "recv() on a handler-mode socket");
  sim::wait_for(self, readable_, [this] { return !queue_.empty(); });
  UdpDatagram d = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= d.data.size();
  return d;
}

UdpSocket::ChargedDatagram UdpSocket::recv_charged(
    sim::SimProcess& self,
    const std::function<SimTime(const UdpDatagram&)>& charge) {
  MC_EXPECTS_MSG(!handler_, "recv_charged() on a handler-mode socket");
  const bool absorbed = sim::wait_for_charged(
      self, readable_, [this] { return !queue_.empty(); },
      [this, &charge] { return charge(queue_.front()); });
  ChargedDatagram out{std::move(queue_.front()), absorbed};
  queue_.pop_front();
  queued_bytes_ -= out.datagram.data.size();
  return out;
}

std::optional<UdpDatagram> UdpSocket::recv_until(sim::SimProcess& self,
                                                 SimTime deadline) {
  MC_EXPECTS_MSG(!handler_, "recv_until() on a handler-mode socket");
  if (!sim::wait_for_until(self, readable_, deadline,
                           [this] { return !queue_.empty(); })) {
    return std::nullopt;
  }
  UdpDatagram d = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= d.data.size();
  return d;
}

std::optional<UdpSocket::ChargedDatagram> UdpSocket::recv_until_charged(
    sim::SimProcess& self, SimTime deadline,
    const std::function<SimTime(const UdpDatagram&)>& charge) {
  MC_EXPECTS_MSG(!handler_, "recv_until_charged() on a handler-mode socket");
  const sim::ChargedWaitResult wait = sim::wait_for_until_charged(
      self, readable_, deadline, [this] { return !queue_.empty(); },
      [this, &charge] { return charge(queue_.front()); });
  if (!wait.satisfied) {
    return std::nullopt;
  }
  ChargedDatagram out{std::move(queue_.front()), wait.absorbed};
  queue_.pop_front();
  queued_bytes_ -= out.datagram.data.size();
  return out;
}

std::optional<UdpDatagram> UdpSocket::try_recv() {
  if (queue_.empty()) {
    return std::nullopt;
  }
  UdpDatagram d = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= d.data.size();
  return d;
}

void UdpSocket::join(IpAddr group) {
  MC_EXPECTS_MSG(group.is_multicast(), "join() needs a class-D address");
  if (groups_.insert(group).second) {
    stack_.ip().nic().join_multicast(net::MacAddr::ip_multicast(group.bits()));
  }
}

void UdpSocket::leave(IpAddr group) {
  MC_EXPECTS_MSG(groups_.erase(group) == 1, "leave without join");
  stack_.ip().nic().leave_multicast(net::MacAddr::ip_multicast(group.bits()));
}

}  // namespace mcmpi::inet
