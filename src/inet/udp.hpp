#pragma once
/// \file udp.hpp
/// UDP sockets with the exact unreliability the paper manages around.
///
/// Three behaviours matter for the reproduction and are modeled faithfully:
///   1. A datagram whose destination port has no socket is silently dropped
///      ("if a receiver is not ready when a message is sent via IP
///      multicast, the message is lost").
///   2. A multicast datagram is delivered only to sockets that have *joined*
///      the group (receiver-directed communication).
///   3. A socket whose receive buffer is full drops the datagram — the
///      slow-receiver overrun case (paper §2, third unreliability problem).
///
/// Sockets operate in one of two modes:
///   * queued  — bounded receive buffer + blocking recv() from a SimProcess
///               (how the collective layer posts multicast receives);
///   * handler — datagrams dispatched synchronously on arrival (models
///               kernel-level processing; used by the reliable transport).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "inet/ip.hpp"
#include "inet/ip_addr.hpp"
#include "sim/wait.hpp"

namespace mcmpi::inet {

struct UdpDatagram {
  IpAddr src_addr;
  std::uint16_t src_port = 0;
  IpAddr dst_addr;
  std::uint16_t dst_port = 0;
  /// Payload view sharing the sender's wire-datagram allocation: delivering
  /// one multicast datagram to k member sockets shares one buffer k ways.
  PayloadRef data;
};

struct UdpStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t no_socket_drops = 0;     // no socket / no member on port
  std::uint64_t buffer_full_drops = 0;   // receiver overrun
  /// Simulated jumbo datagrams (> 64 KiB): the 16-bit wire length field
  /// cannot carry the true size, so it is written as the 0 jumbogram
  /// marker and the receive path recovers the length from the datagram
  /// itself (never from the wrapped field).
  std::uint64_t jumbo_datagrams = 0;
};

class UdpSocket;

class UdpStack {
 public:
  static constexpr std::uint8_t kProtocol = 17;
  static constexpr std::int64_t kHeaderBytes = 8;
  /// UDP payload that fits one Ethernet frame: 1500 - 20 (IP) - 8 (UDP).
  /// This is the paper's frame payload capacity "T".
  static constexpr std::int64_t kMaxPayloadPerFrame =
      IpStack::kFragmentPayload - kHeaderBytes;  // 1472

  explicit UdpStack(IpStack& ip);

  /// Opens a socket bound to `port` (0 picks an ephemeral port).  The
  /// returned socket unregisters itself on destruction.  Multiple sockets
  /// may share a port only for multicast reception.
  std::unique_ptr<UdpSocket> open(std::uint16_t port);

  IpStack& ip() { return ip_; }
  const UdpStats& stats() const { return stats_; }

 private:
  friend class UdpSocket;
  void on_packet(const IpPacketMeta& meta, PayloadRef data);
  void unregister(UdpSocket& socket);
  /// Assembles [UDP header][parts...] into ONE wire buffer — the single
  /// "kernel copy" of the payload pipeline.  The parts list lets transport
  /// layers prepend headers and interleave tables with caller-owned data
  /// slices (scatter/gather framing) without re-buffering anything first.
  void send_datagram(std::uint16_t src_port, IpAddr dst,
                     std::uint16_t dst_port,
                     std::span<const std::span<const std::uint8_t>> parts,
                     net::FrameKind kind);

  IpStack& ip_;
  std::map<std::uint16_t, std::vector<UdpSocket*>> sockets_;
  std::uint16_t next_ephemeral_ = 49152;
  UdpStats stats_;
};

class UdpSocket {
 public:
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  std::uint16_t port() const { return port_; }

  /// Receive-buffer capacity in payload bytes (SO_RCVBUF analogue).
  void set_recv_buffer(std::size_t bytes) { recv_capacity_ = bytes; }

  /// Switches to handler mode: datagrams are dispatched on arrival and
  /// never buffered.  Mutually exclusive with blocking recv().
  void set_handler(std::function<void(UdpDatagram)> handler);

  /// The bytes are copied into the wire datagram synchronously (the one
  /// "kernel copy" of the pipeline), so the span need only live for the
  /// call — no caller-side buffering or ownership required.
  void sendto(IpAddr dst, std::uint16_t dst_port,
              std::span<const std::uint8_t> data,
              net::FrameKind kind = net::FrameKind::kData);

  /// Gather-send: the wire datagram is assembled as [header][body] in one
  /// pass, so callers prepend protocol headers without copying the body
  /// into an intermediate buffer first.
  void sendto(IpAddr dst, std::uint16_t dst_port,
              std::span<const std::uint8_t> header,
              std::span<const std::uint8_t> body,
              net::FrameKind kind = net::FrameKind::kData);

  /// General gather-send: the wire datagram is [parts[0]][parts[1]]... —
  /// one kernel copy no matter how many caller-side pieces compose it
  /// (segmented collectives frame [header ‖ table ‖ chunk slices] this way).
  void sendto_parts(IpAddr dst, std::uint16_t dst_port,
                    std::span<const std::span<const std::uint8_t>> parts,
                    net::FrameKind kind = net::FrameKind::kData);

  /// Blocking receive; parks the calling process until a datagram arrives.
  UdpDatagram recv(sim::SimProcess& self);

  /// recv() whose wake-up absorbs a receive-side time charge.  When the
  /// process parks, the arrival that wakes it prices the charge from the
  /// queued datagram (`charge` runs in the notifier's context — read-only,
  /// no throwing) and the process resumes that much later, consuming the
  /// charge without a second handoff.  `charge_absorbed` reports whether
  /// that happened; when false (datagram was already queued, or the hook
  /// priced it at zero) the caller still owes the charge.
  struct ChargedDatagram {
    UdpDatagram datagram;
    bool charge_absorbed = false;
  };
  ChargedDatagram recv_charged(
      sim::SimProcess& self,
      const std::function<SimTime(const UdpDatagram&)>& charge);

  /// Blocking receive with virtual-time deadline; nullopt on timeout.
  std::optional<UdpDatagram> recv_until(sim::SimProcess& self,
                                        SimTime deadline);

  /// Deadline variant of recv_charged: an arrival that wakes the parked
  /// process prices the charge into the wake-up (one handoff); a timeout
  /// returns nullopt, uncharged.
  std::optional<ChargedDatagram> recv_until_charged(
      sim::SimProcess& self, SimTime deadline,
      const std::function<SimTime(const UdpDatagram&)>& charge);

  /// Non-blocking poll.
  std::optional<UdpDatagram> try_recv();

  /// IGMP join/leave: membership gates multicast delivery and programs the
  /// NIC multicast filter (and thereby switch snooping).
  void join(IpAddr group);
  void leave(IpAddr group);
  bool member_of(IpAddr group) const { return groups_.contains(group); }

  std::size_t queued_datagrams() const { return queue_.size(); }
  std::uint64_t dropped_on_full() const { return dropped_on_full_; }

 private:
  friend class UdpStack;
  UdpSocket(UdpStack& stack, std::uint16_t port);
  /// Delivery from the stack; applies mode / buffer-limit semantics.
  void enqueue(UdpDatagram datagram);

  UdpStack& stack_;
  std::uint16_t port_;
  std::function<void(UdpDatagram)> handler_;
  std::deque<UdpDatagram> queue_;
  std::size_t queued_bytes_ = 0;
  std::size_t recv_capacity_ = 65536;
  std::uint64_t dropped_on_full_ = 0;
  std::set<IpAddr> groups_;
  sim::WaitQueue readable_;
};

}  // namespace mcmpi::inet
