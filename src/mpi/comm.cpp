#include "mpi/comm.hpp"

#include "common/assert.hpp"

namespace mcmpi::mpi {

Comm::Comm(std::shared_ptr<CommInfo> info, Rank my_world_rank, Proc* proc)
    : info_(std::move(info)), proc_(proc) {
  MC_EXPECTS(info_ != nullptr);
  my_comm_rank_ = info_->group.rank_of(my_world_rank);
  MC_EXPECTS_MSG(my_comm_rank_ >= 0,
                 "rank is not a member of this communicator");
}

// Comm::coll() is defined in coll/facade.cpp: the facade type lives in the
// collective layer, above mpi.

}  // namespace mcmpi::mpi
