#include "mpi/comm.hpp"

#include "common/assert.hpp"

namespace mcmpi::mpi {

Comm::Comm(std::shared_ptr<CommInfo> info, Rank my_world_rank)
    : info_(std::move(info)) {
  MC_EXPECTS(info_ != nullptr);
  my_comm_rank_ = info_->group.rank_of(my_world_rank);
  MC_EXPECTS_MSG(my_comm_rank_ >= 0,
                 "rank is not a member of this communicator");
}

}  // namespace mcmpi::mpi
