#pragma once
/// \file comm.hpp
/// Communicators: a process group bound to a private context id.
///
/// The context id keeps traffic of different communicators apart (matching
/// compares context before anything else) and doubles as the communicator's
/// IP multicast identity: context c maps to group address 239.1.<c> and UDP
/// port 20000+c, which is how "one multicast group per process group of the
/// same context" (paper §4) is realized.
///
/// CommInfo is shared by all member ranks (the simulation is one address
/// space); per-rank Comm handles add the local rank.  Derived-communicator
/// bookkeeping (dup/split child registries) lives in CommInfo so that the
/// collective creation calls agree on the child without extra traffic —
/// the registries are indexed by per-rank call sequence numbers, which MPI's
/// same-order-on-all-ranks rule makes deterministic.

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/assert.hpp"
#include "inet/ip_addr.hpp"
#include "mpi/group.hpp"
#include "mpi/types.hpp"

namespace mcmpi::coll {
class Coll;
}  // namespace mcmpi::coll

namespace mcmpi::mpi {

class Proc;

struct CommInfo {
  /// Context ids beyond this bound cannot be given a unique multicast
  /// identity (the group address carries 16 bits, the port 40000 values);
  /// mcast_port() asserts it.
  static constexpr std::uint64_t kMaxMcastContexts = 40000ULL * 65536ULL;

  /// Striped (multi-lane) collectives open up to this many multicast
  /// groups per communicator.  Each lane displaces the port hash by a
  /// fixed stride (2500 = 40000 / 16 ports), so the sixteen lanes of one
  /// context occupy sixteen distinct ports and lane 0 is exactly the
  /// classic single-group identity.
  static constexpr int kMaxMcastLanes = 16;

  std::uint32_t context_id = 0;
  Group group;

  /// Multicast identity of this communicator.  The group address carries
  /// the low 16 bits of the context id; the port folds the high bits in
  /// (odd multiplier coprime to the 40000-port space), so distinct context
  /// ids below kMaxMcastContexts never collide on the same
  /// (group address, port) pair — the plain `% 40000` port wrap let two
  /// contexts 40000*65536 apart share both halves of the identity.
  inet::IpAddr mcast_addr() const {
    return inet::IpAddr::multicast_group(
        static_cast<std::uint16_t>(context_id & 0xFFFF));
  }
  std::uint16_t mcast_port(int lane = 0) const {
    MC_EXPECTS_MSG(context_id < kMaxMcastContexts,
                   "context id exceeds the unique multicast-identity space");
    MC_EXPECTS_MSG(lane >= 0 && lane < kMaxMcastLanes,
                   "multicast lane out of range");
    const std::uint32_t lo = context_id & 0xFFFF;
    const std::uint32_t hi = context_id >> 16;
    // Lane l shifts the port by l * 2500 within the 40000-port space; lane 0
    // reproduces the single-group mapping bit for bit, so existing
    // single-lane traffic (and every committed baseline) is untouched.
    const std::uint32_t shifted =
        lo + hi * 9973U + static_cast<std::uint32_t>(lane) * 2500U;
    return static_cast<std::uint16_t>(20000 + shifted % 40000);
  }

  // --- collective-creation registries (see file comment) ---
  std::vector<int> dup_calls;    // per comm-rank dup() count
  std::vector<std::shared_ptr<CommInfo>> dup_children;
  std::vector<int> split_calls;  // per comm-rank split() count
  /// split sequence number -> (color -> child)
  std::map<int, std::map<int, std::shared_ptr<CommInfo>>> split_children;
  /// Guards the child registries above when the communicator spans several
  /// simulator shards (dup's meeting point is shared memory, not messages).
  /// Uncontended on a single shard.  Note child CONTEXT IDS may then depend
  /// on cross-shard arrival order; ids never affect timing or payloads, so
  /// simulated results stay deterministic (comm.hpp file comment).
  std::mutex creation_mutex;

  explicit CommInfo(std::uint32_t context, Group g)
      : context_id(context),
        group(std::move(g)),
        dup_calls(static_cast<std::size_t>(group.size()), 0),
        split_calls(static_cast<std::size_t>(group.size()), 0) {}
};

/// Per-rank communicator handle (MPI_Comm analogue).  Cheap to copy.
///
/// Handles produced by Proc (comm_world / dup / split) are bound to their
/// owning rank, which is what makes the communicator-scoped collective
/// facade possible: `comm.coll().bcast(...)`.
class Comm {
 public:
  Comm() = default;
  Comm(std::shared_ptr<CommInfo> info, Rank my_world_rank,
       Proc* proc = nullptr);

  bool valid() const { return info_ != nullptr; }
  int rank() const { return my_comm_rank_; }
  int size() const { return info_->group.size(); }
  std::uint32_t context() const { return info_->context_id; }
  const Group& group() const { return info_->group; }
  Rank world_rank_of(int comm_rank) const {
    return info_->group.world_rank(comm_rank);
  }
  const std::shared_ptr<CommInfo>& info() const { return info_; }

  /// The owning rank's Proc (null for handles not produced by a Proc).
  Proc* proc() const { return proc_; }

  /// Collective-operation facade scoped to this communicator (requires a
  /// Proc-bound handle).  Defined in coll/facade.hpp — the collective layer
  /// sits above mpi, so the facade type is only forward-declared here.
  coll::Coll coll() const;

 private:
  std::shared_ptr<CommInfo> info_;
  int my_comm_rank_ = kAnySource;
  Proc* proc_ = nullptr;
};

}  // namespace mcmpi::mpi
