#pragma once
/// \file comm.hpp
/// Communicators: a process group bound to a private context id.
///
/// The context id keeps traffic of different communicators apart (matching
/// compares context before anything else) and doubles as the communicator's
/// IP multicast identity: context c maps to group address 239.1.<c> and UDP
/// port 20000+c, which is how "one multicast group per process group of the
/// same context" (paper §4) is realized.
///
/// CommInfo is shared by all member ranks (the simulation is one address
/// space); per-rank Comm handles add the local rank.  Derived-communicator
/// bookkeeping (dup/split child registries) lives in CommInfo so that the
/// collective creation calls agree on the child without extra traffic —
/// the registries are indexed by per-rank call sequence numbers, which MPI's
/// same-order-on-all-ranks rule makes deterministic.

#include <map>
#include <memory>
#include <vector>

#include "inet/ip_addr.hpp"
#include "mpi/group.hpp"
#include "mpi/types.hpp"

namespace mcmpi::mpi {

struct CommInfo {
  std::uint32_t context_id = 0;
  Group group;

  /// Multicast identity of this communicator.
  inet::IpAddr mcast_addr() const {
    return inet::IpAddr::multicast_group(
        static_cast<std::uint16_t>(context_id));
  }
  std::uint16_t mcast_port() const {
    return static_cast<std::uint16_t>(20000 + (context_id % 40000));
  }

  // --- collective-creation registries (see file comment) ---
  std::vector<int> dup_calls;    // per comm-rank dup() count
  std::vector<std::shared_ptr<CommInfo>> dup_children;
  std::vector<int> split_calls;  // per comm-rank split() count
  /// split sequence number -> (color -> child)
  std::map<int, std::map<int, std::shared_ptr<CommInfo>>> split_children;

  explicit CommInfo(std::uint32_t context, Group g)
      : context_id(context),
        group(std::move(g)),
        dup_calls(static_cast<std::size_t>(group.size()), 0),
        split_calls(static_cast<std::size_t>(group.size()), 0) {}
};

/// Per-rank communicator handle (MPI_Comm analogue).  Cheap to copy.
class Comm {
 public:
  Comm() = default;
  Comm(std::shared_ptr<CommInfo> info, Rank my_world_rank);

  bool valid() const { return info_ != nullptr; }
  int rank() const { return my_comm_rank_; }
  int size() const { return info_->group.size(); }
  std::uint32_t context() const { return info_->context_id; }
  const Group& group() const { return info_->group; }
  Rank world_rank_of(int comm_rank) const {
    return info_->group.world_rank(comm_rank);
  }
  const std::shared_ptr<CommInfo>& info() const { return info_; }

 private:
  std::shared_ptr<CommInfo> info_;
  int my_comm_rank_ = kAnySource;
};

}  // namespace mcmpi::mpi
