#include "mpi/datatype.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace mcmpi::mpi {

std::size_t datatype_size(Datatype type) {
  switch (type) {
    case Datatype::kByte:
      return 1;
    case Datatype::kInt32:
      return 4;
    case Datatype::kInt64:
      return 8;
    case Datatype::kDouble:
      return 8;
  }
  MC_ASSERT_MSG(false, "unknown datatype");
  return 0;
}

namespace {

struct CustomOpState {
  CustomOpFn fn;
  std::size_t group_elements = 1;
};

CustomOpState& custom_op_state() {
  static CustomOpState state;
  return state;
}

}  // namespace

bool op_defined(Op op, Datatype type) {
  switch (op) {
    case Op::kSum:
    case Op::kProd:
    case Op::kMax:
    case Op::kMin:
      return true;
    case Op::kLand:
    case Op::kLor:
    case Op::kBand:
    case Op::kBor:
      return type != Datatype::kDouble;
    case Op::kCustom:
      return static_cast<bool>(custom_op_state().fn);
  }
  return false;
}

bool op_commutative(Op op) { return op != Op::kCustom; }

void set_custom_op(CustomOpFn fn, std::size_t group_elements) {
  MC_EXPECTS_MSG(group_elements > 0, "custom op group extent must be > 0");
  custom_op_state() = {std::move(fn), group_elements};
}

void clear_custom_op() { custom_op_state() = {}; }

std::size_t op_group_elements(Op op) {
  return op == Op::kCustom ? custom_op_state().group_elements : 1;
}

namespace {

template <typename T>
void apply_typed(Op op, const std::uint8_t* in, std::uint8_t* inout,
                 std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    T a;
    T b;
    std::memcpy(&a, in + i * sizeof(T), sizeof(T));
    std::memcpy(&b, inout + i * sizeof(T), sizeof(T));
    T r{};
    switch (op) {
      case Op::kSum:
        r = static_cast<T>(a + b);
        break;
      case Op::kProd:
        r = static_cast<T>(a * b);
        break;
      case Op::kMax:
        r = std::max(a, b);
        break;
      case Op::kMin:
        r = std::min(a, b);
        break;
      case Op::kLand:
        if constexpr (std::is_integral_v<T>) {
          r = static_cast<T>(a && b);
        }
        break;
      case Op::kLor:
        if constexpr (std::is_integral_v<T>) {
          r = static_cast<T>(a || b);
        }
        break;
      case Op::kBand:
        if constexpr (std::is_integral_v<T>) {
          r = static_cast<T>(a & b);
        }
        break;
      case Op::kBor:
        if constexpr (std::is_integral_v<T>) {
          r = static_cast<T>(a | b);
        }
        break;
      case Op::kCustom:
        break;  // dispatched before apply_typed; unreachable
    }
    std::memcpy(inout + i * sizeof(T), &r, sizeof(T));
  }
}

}  // namespace

void apply_op(Op op, Datatype type, std::span<const std::uint8_t> in,
              std::span<std::uint8_t> inout, std::size_t count) {
  MC_EXPECTS(op_defined(op, type));
  const std::size_t bytes = count * datatype_size(type);
  MC_EXPECTS(in.size() >= bytes && inout.size() >= bytes);
  if (op == Op::kCustom) {
    custom_op_state().fn(type, in, inout, count);
    return;
  }
  switch (type) {
    case Datatype::kByte:
      apply_typed<std::uint8_t>(op, in.data(), inout.data(), count);
      return;
    case Datatype::kInt32:
      apply_typed<std::int32_t>(op, in.data(), inout.data(), count);
      return;
    case Datatype::kInt64:
      apply_typed<std::int64_t>(op, in.data(), inout.data(), count);
      return;
    case Datatype::kDouble:
      apply_typed<double>(op, in.data(), inout.data(), count);
      return;
  }
  MC_ASSERT_MSG(false, "unknown datatype");
}

}  // namespace mcmpi::mpi
