#pragma once
/// \file datatype.hpp
/// Typed reduction support for reduce/allreduce/scan.

#include <cstddef>
#include <span>

#include "common/bytes.hpp"
#include "mpi/types.hpp"

namespace mcmpi::mpi {

/// Size in bytes of one element of `type`.
std::size_t datatype_size(Datatype type);

/// True if `op` is defined for `type` (logical ops require integers).
bool op_defined(Op op, Datatype type);

/// Elementwise `inout[i] = op(in[i], inout[i])` over `count` elements.
/// Matches MPI's reduction convention (commutative ops only are provided).
/// Preconditions: both spans hold `count * datatype_size(type)` bytes and
/// op_defined(op, type).
void apply_op(Op op, Datatype type, std::span<const std::uint8_t> in,
              std::span<std::uint8_t> inout, std::size_t count);

/// Maps a C++ arithmetic type to its Datatype tag.
template <typename T>
constexpr Datatype datatype_of();

template <>
constexpr Datatype datatype_of<std::uint8_t>() {
  return Datatype::kByte;
}
template <>
constexpr Datatype datatype_of<std::int32_t>() {
  return Datatype::kInt32;
}
template <>
constexpr Datatype datatype_of<std::int64_t>() {
  return Datatype::kInt64;
}
template <>
constexpr Datatype datatype_of<double>() {
  return Datatype::kDouble;
}

}  // namespace mcmpi::mpi
