#pragma once
/// \file datatype.hpp
/// Typed reduction support for reduce/allreduce/scan.

#include <cstddef>
#include <functional>
#include <span>

#include "common/bytes.hpp"
#include "mpi/types.hpp"

namespace mcmpi::mpi {

/// Size in bytes of one element of `type`.
std::size_t datatype_size(Datatype type);

/// True if `op` is defined for `type` (logical ops require integers;
/// Op::kCustom requires a registered custom function).
bool op_defined(Op op, Datatype type);

/// True if operand order is irrelevant for `op`.  Non-commutative ops
/// (Op::kCustom) force every reduction algorithm onto an order-preserving
/// path: operands combine in communicator rank order (MPI's canonical
/// reduction order).
bool op_commutative(Op op);

/// `inout = in ∘ inout` over `count` elements — MPI's user-function
/// convention, where `in` holds the partial of the LOWER-ranked operands.
/// Every reduction algorithm in this codebase honors that orientation, so
/// rank order is observable (and tested) for non-commutative custom ops.
/// Preconditions: both spans hold `count * datatype_size(type)` bytes,
/// op_defined(op, type), and for slicing algorithms `count` is a multiple
/// of op_group_elements(op).
void apply_op(Op op, Datatype type, std::span<const std::uint8_t> in,
              std::span<std::uint8_t> inout, std::size_t count);

/// Custom reduction body (the MPI_Op_create analogue): must compute
/// `inout = in ∘ inout` with `in` the lower-ranked partial.  The simulation
/// is one address space, so registration is process-global.
using CustomOpFn =
    std::function<void(Datatype type, std::span<const std::uint8_t> in,
                       std::span<std::uint8_t> inout, std::size_t count)>;

/// Registers the Op::kCustom body.  `group_elements` declares the operand
/// granularity: elements combine in independent groups of this many (e.g. 4
/// for a 2x2 matrix product), and slicing algorithms (mcast-scout reduce)
/// only split buffers at group boundaries.
void set_custom_op(CustomOpFn fn, std::size_t group_elements = 1);
void clear_custom_op();

/// Elements per independent combining group (1 for every built-in op).
std::size_t op_group_elements(Op op);

/// RAII registration for tests: installs on construction, clears on scope
/// exit.
struct CustomOpGuard {
  explicit CustomOpGuard(CustomOpFn fn, std::size_t group_elements = 1) {
    set_custom_op(std::move(fn), group_elements);
  }
  ~CustomOpGuard() { clear_custom_op(); }
  CustomOpGuard(const CustomOpGuard&) = delete;
  CustomOpGuard& operator=(const CustomOpGuard&) = delete;
};

/// Maps a C++ arithmetic type to its Datatype tag.
template <typename T>
constexpr Datatype datatype_of();

template <>
constexpr Datatype datatype_of<std::uint8_t>() {
  return Datatype::kByte;
}
template <>
constexpr Datatype datatype_of<std::int32_t>() {
  return Datatype::kInt32;
}
template <>
constexpr Datatype datatype_of<std::int64_t>() {
  return Datatype::kInt64;
}
template <>
constexpr Datatype datatype_of<double>() {
  return Datatype::kDouble;
}

}  // namespace mcmpi::mpi
