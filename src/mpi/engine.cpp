#include "mpi/engine.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"

namespace mcmpi::mpi {

Engine::Engine(Rank world_rank, inet::RdpEndpoint& rdp,
               std::function<inet::IpAddr(Rank)> addr_of)
    : world_rank_(world_rank), rdp_(rdp), addr_of_(std::move(addr_of)) {
  rdp_.set_message_handler([this](inet::IpAddr src, PayloadRef message) {
    on_message(src, std::move(message));
  });
  // Rendezvous ids must be globally unique (they route CTS/DATA without a
  // context lookup), so the owner's world rank is embedded in the high bits.
  next_rdz_id_ = (static_cast<std::uint64_t>(world_rank_) + 1) << 40;
}

PooledBuffer Engine::pack(MsgType type, std::uint32_t context, Tag tag,
                          std::uint64_t rdz_id,
                          std::span<const std::uint8_t> bytes) const {
  PooledBuffer out = acquire_payload_buffer(bytes.size() + 21);
  ByteWriter w(out.bytes);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(context);
  w.i32(world_rank_);
  w.i32(tag);
  w.u64(rdz_id);
  w.bytes(bytes);
  return out;
}

std::shared_ptr<SendRequest> Engine::start_send(
    const std::shared_ptr<const CommInfo>& info, int dst_comm, Tag tag,
    std::span<const std::uint8_t> bytes, net::FrameKind kind) {
  MC_EXPECTS(info != nullptr);
  MC_EXPECTS_MSG(dst_comm >= 0 && dst_comm < info->group.size(),
                 "invalid destination rank");
  auto request = std::make_shared<SendRequest>();
  const Rank dst_world = info->group.world_rank(dst_comm);

  if (dst_world == world_rank_) {
    // Self-send: loop back through the matching path without touching the
    // network.  Always eager — both endpoints share this engine.
    ++stats_.eager_sends;
    PayloadRef message =
        PayloadRef::adopt(pack(MsgType::kEager, info->context_id, tag, 0, bytes));
    request->complete_ = true;
    on_message(addr_of_(world_rank_), std::move(message));
    return request;
  }

  if (static_cast<std::int64_t>(bytes.size()) <= eager_threshold_) {
    ++stats_.eager_sends;
    rdp_.send(addr_of_(dst_world),
              PayloadRef::adopt(pack(MsgType::kEager, info->context_id, tag, 0,
                              bytes)),
              kind);
    request->complete_ = true;  // buffered: locally complete
    return request;
  }

  // Rendezvous: RTS now, payload after CTS.  The RTS carries the payload
  // length so MPI_Probe can report the count before the data moves.
  ++stats_.rendezvous_sends;
  const std::uint64_t id = next_rdz_id_++;
  PendingSend pending;
  pending.request = request;
  pending.dst_addr = addr_of_(dst_world);
  // The caller's buffer may die before CTS arrives; this is the library's
  // one marshaling copy for a rendezvous send.
  pending.payload = PayloadRef::copy_of(bytes);
  pending.kind = kind;
  pending.context = info->context_id;
  pending.tag = tag;
  Buffer length_field;
  ByteWriter length_writer(length_field);
  length_writer.u64(bytes.size());
  rdp_.send(pending.dst_addr,
            PayloadRef::adopt(pack(MsgType::kRts, info->context_id, tag, id,
                            length_field)),
            net::FrameKind::kControl);
  pending_sends_.emplace(id, std::move(pending));
  return request;
}

std::shared_ptr<RecvRequest> Engine::post_recv(
    const std::shared_ptr<const CommInfo>& info, int src_comm, Tag tag) {
  MC_EXPECTS(info != nullptr);
  MC_EXPECTS_MSG(src_comm == kAnySource ||
                     (src_comm >= 0 && src_comm < info->group.size()),
                 "invalid source rank");
  auto request = std::make_shared<RecvRequest>();
  request->comm_ = info;
  request->src_comm_ = src_comm;
  request->tag_ = tag;

  // Try the unexpected queue first, in arrival order.
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!matches(*request, it->context, it->src_world, it->tag)) {
      continue;
    }
    ++stats_.matched_from_unexpected;
    Unexpected msg = std::move(*it);
    unexpected_.erase(it);
    if (msg.type == MsgType::kEager) {
      complete_recv(request, msg.src_world, msg.tag, std::move(msg.data));
    } else {
      MC_ASSERT(msg.type == MsgType::kRts);
      accept_rts(request, msg);
    }
    return request;
  }
  posted_.push_back(request);
  return request;
}

bool Engine::matches(const RecvRequest& req, std::uint32_t context,
                     Rank src_world, Tag tag) const {
  if (req.comm_->context_id != context) {
    return false;
  }
  if (req.src_comm_ != kAnySource) {
    if (req.comm_->group.world_rank(req.src_comm_) != src_world) {
      return false;
    }
  } else if (!req.comm_->group.contains(src_world)) {
    return false;
  }
  return req.tag_ == kAnyTag || req.tag_ == tag;
}

void Engine::complete_recv(const std::shared_ptr<RecvRequest>& req,
                           Rank src_world, Tag tag, const PayloadRef& data) {
  req->status_.source = req->comm_->group.rank_of(src_world);
  req->status_.tag = tag;
  req->status_.count = data.size();
  // The copy-out at the MPI API boundary: the request owns a private buffer
  // the rank process will move into user code.
  req->data_ = data.to_buffer();
  req->complete_ = true;
  req->wq_.notify_all();
}

void Engine::accept_rts(const std::shared_ptr<RecvRequest>& req,
                        const Unexpected& rts) {
  req->in_rendezvous_ = true;
  pending_rdz_recvs_.emplace(rts.rdz_id, req);
  rdp_.send(rts.src_addr,
            PayloadRef::adopt(pack(MsgType::kCts, rts.context, rts.tag, rts.rdz_id,
                            {})),
            net::FrameKind::kControl);
}

std::optional<Status> Engine::iprobe(
    const std::shared_ptr<const CommInfo>& info, int src_comm,
    Tag tag) const {
  RecvRequest pattern;
  pattern.comm_ = info;
  pattern.src_comm_ = src_comm;
  pattern.tag_ = tag;
  for (const Unexpected& msg : unexpected_) {
    if (!matches(pattern, msg.context, msg.src_world, msg.tag)) {
      continue;
    }
    Status status;
    status.source = info->group.rank_of(msg.src_world);
    status.tag = msg.tag;
    if (msg.type == MsgType::kEager) {
      status.count = msg.data.size();
    } else {
      ByteReader r(msg.data);
      status.count = static_cast<std::size_t>(r.u64());
    }
    return status;
  }
  return std::nullopt;
}

void Engine::set_sink(std::uint32_t context, Tag tag, SinkHandler handler) {
  MC_EXPECTS_MSG(tag <= kFirstInternalTag, "sinks are for internal tags only");
  sinks_[{context, tag}] = std::move(handler);
}

void Engine::clear_sink(std::uint32_t context, Tag tag) {
  sinks_.erase({context, tag});
}

std::vector<Engine::DrainedEager> Engine::drain_unexpected(
    std::uint32_t context, Tag tag) {
  MC_EXPECTS_MSG(tag <= kFirstInternalTag,
                 "drain_unexpected is for internal tags only");
  std::vector<DrainedEager> drained;
  for (auto it = unexpected_.begin(); it != unexpected_.end();) {
    if (it->context == context && it->tag == tag &&
        it->type == MsgType::kEager) {
      drained.push_back({it->src_world, std::move(it->data)});
      ++stats_.matched_from_unexpected;
      it = unexpected_.erase(it);
    } else {
      ++it;
    }
  }
  return drained;
}

void Engine::on_message(inet::IpAddr src, PayloadRef message) {
  ByteReader r(message);
  const auto type = static_cast<MsgType>(r.u8());
  const std::uint32_t context = r.u32();
  const Rank src_world = r.i32();
  const Tag tag = r.i32();
  const std::uint64_t rdz_id = r.u64();
  // Zero-copy view past the 21 B envelope; unexpected-queue entries and
  // sink deliveries share the transport buffer.
  PayloadRef payload = message.slice(r.position());

  if (type == MsgType::kEager && tag <= kFirstInternalTag) {
    const auto sink = sinks_.find({context, tag});
    if (sink != sinks_.end()) {
      sink->second(src_world, std::move(payload));
      return;
    }
  }

  switch (type) {
    case MsgType::kEager:
    case MsgType::kRts: {
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (!matches(**it, context, src_world, tag)) {
          continue;
        }
        std::shared_ptr<RecvRequest> req = *it;
        posted_.erase(it);
        if (type == MsgType::kEager) {
          complete_recv(req, src_world, tag, std::move(payload));
        } else {
          Unexpected rts{type, context, src_world, tag, rdz_id, src, {}};
          accept_rts(req, rts);
        }
        return;
      }
      ++stats_.unexpected_messages;
      unexpected_.push_back(Unexpected{type, context, src_world, tag, rdz_id,
                                       src, std::move(payload)});
      arrivals_.notify_all();  // wake blocked probes
      return;
    }
    case MsgType::kCts: {
      const auto it = pending_sends_.find(rdz_id);
      MC_ASSERT_MSG(it != pending_sends_.end(), "CTS for unknown rendezvous");
      PendingSend pending = std::move(it->second);
      pending_sends_.erase(it);
      rdp_.send(pending.dst_addr,
                PayloadRef::adopt(pack(MsgType::kRdata, pending.context, pending.tag,
                                rdz_id, pending.payload)),
                pending.kind);
      pending.request->complete_ = true;
      pending.request->wq_.notify_all();
      return;
    }
    case MsgType::kRdata: {
      const auto it = pending_rdz_recvs_.find(rdz_id);
      MC_ASSERT_MSG(it != pending_rdz_recvs_.end(),
                    "DATA for unknown rendezvous");
      std::shared_ptr<RecvRequest> req = std::move(it->second);
      pending_rdz_recvs_.erase(it);
      complete_recv(req, src_world, tag, std::move(payload));
      return;
    }
  }
  MC_ASSERT_MSG(false, "corrupt engine message");
}

}  // namespace mcmpi::mpi
