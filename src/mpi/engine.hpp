#pragma once
/// \file engine.hpp
/// Point-to-point message engine: envelope matching, eager and rendezvous
/// protocols (the Abstract-Device-Interface analogue of MPICH).
///
/// Every rank owns one Engine wired to its host's reliable transport.  The
/// engine runs entirely on simulator events (transport upcalls); blocking
/// happens above it, in Proc, which parks the rank process on the request's
/// wait queue.
///
/// Semantics guaranteed (and tested):
///   * matching on (context, source, tag) with MPI_ANY_SOURCE / MPI_ANY_TAG
///     wildcards;
///   * non-overtaking: messages between one (sender, receiver, context)
///     pair match posted receives in send order (the transport delivers
///     in order; posted and unexpected queues are FIFO);
///   * eager sends complete locally; messages above the eager threshold use
///     a rendezvous (RTS/CTS/DATA) exchange, so large sends complete only
///     once the receiver has posted a buffer.

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <span>

#include "common/bytes.hpp"
#include "inet/rdp.hpp"
#include "mpi/comm.hpp"
#include "mpi/types.hpp"
#include "sim/wait.hpp"

namespace mcmpi::mpi {

/// State of one receive operation.  Owned jointly by the poster (Proc) and
/// the engine while pending.
class RecvRequest {
 public:
  bool complete() const { return complete_; }
  const Status& status() const { return status_; }
  Buffer& data() { return data_; }
  sim::WaitQueue& wait_queue() { return wq_; }

 private:
  friend class Engine;
  std::shared_ptr<const CommInfo> comm_;
  int src_comm_ = kAnySource;  // wildcard-capable matching key
  Tag tag_ = kAnyTag;
  bool complete_ = false;
  bool in_rendezvous_ = false;
  Status status_;
  Buffer data_;
  sim::WaitQueue wq_;
};

/// State of one send operation.
class SendRequest {
 public:
  bool complete() const { return complete_; }
  sim::WaitQueue& wait_queue() { return wq_; }

 private:
  friend class Engine;
  bool complete_ = false;
  sim::WaitQueue wq_;
};

struct EngineStats {
  std::uint64_t eager_sends = 0;
  std::uint64_t rendezvous_sends = 0;
  std::uint64_t unexpected_messages = 0;
  std::uint64_t matched_from_unexpected = 0;
};

class Engine {
 public:
  /// `addr_of` maps world ranks to host addresses.
  Engine(Rank world_rank, inet::RdpEndpoint& rdp,
         std::function<inet::IpAddr(Rank)> addr_of);

  Rank world_rank() const { return world_rank_; }

  /// Messages with payloads larger than this use the rendezvous protocol.
  void set_eager_threshold(std::int64_t bytes) { eager_threshold_ = bytes; }
  std::int64_t eager_threshold() const { return eager_threshold_; }

  /// Starts a send on communicator `info` to comm-rank `dst`.
  std::shared_ptr<SendRequest> start_send(
      const std::shared_ptr<const CommInfo>& info, int dst_comm, Tag tag,
      std::span<const std::uint8_t> bytes, net::FrameKind kind);

  /// Posts a receive on communicator `info` from comm-rank `src` (or
  /// kAnySource) with `tag` (or kAnyTag).
  std::shared_ptr<RecvRequest> post_recv(
      const std::shared_ptr<const CommInfo>& info, int src_comm, Tag tag);

  /// Async sink: eager messages carrying internal tag `tag` (<
  /// kFirstInternalTag) on context `context` are handed to `handler` the
  /// moment they arrive, bypassing matching.  Used by protocols that must
  /// service requests while the owning rank is busy elsewhere (e.g. the
  /// sequencer answering retransmission NACKs).  The payload is a zero-copy
  /// view of the transport message.
  using SinkHandler = std::function<void(Rank src_world, PayloadRef data)>;
  void set_sink(std::uint32_t context, Tag tag, SinkHandler handler);
  void clear_sink(std::uint32_t context, Tag tag);

  /// One message removed by drain_unexpected: its source and a zero-copy
  /// view of the transport payload (empty for bare scouts).
  struct DrainedEager {
    Rank src_world;
    PayloadRef data;
  };

  /// Removes every unexpected eager message carrying internal tag `tag` on
  /// `context` and returns them in arrival order.  Lets a newly installed
  /// sink absorb the backlog that arrived before it existed (the scout
  /// gather: scouts that beat the gathering rank to the engine; the
  /// data-carrying variants keep the payload views).
  std::vector<DrainedEager> drain_unexpected(std::uint32_t context, Tag tag);

  /// Non-destructive match against the unexpected queue (MPI_Iprobe): the
  /// Status of the first matching not-yet-received message, or nullopt.
  /// For rendezvous messages the count comes from the RTS length field.
  std::optional<Status> iprobe(const std::shared_ptr<const CommInfo>& info,
                               int src_comm, Tag tag) const;

  /// Wait queue notified whenever a new unexpected message arrives
  /// (blocking probe parks here between iprobe scans).
  sim::WaitQueue& arrivals() { return arrivals_; }

  const EngineStats& stats() const { return stats_; }

 private:
  enum class MsgType : std::uint8_t {
    kEager = 1,
    kRts = 2,
    kCts = 3,
    kRdata = 4,
  };

  struct Unexpected {
    MsgType type;
    std::uint32_t context;
    Rank src_world;
    Tag tag;
    std::uint64_t rdz_id;
    inet::IpAddr src_addr;
    PayloadRef data;  // view of the transport message, shared not copied
  };

  struct PendingSend {
    std::shared_ptr<SendRequest> request;
    inet::IpAddr dst_addr;
    PayloadRef payload;
    net::FrameKind kind;
    std::uint32_t context;
    Tag tag;
  };

  void on_message(inet::IpAddr src, PayloadRef message);
  bool matches(const RecvRequest& req, std::uint32_t context, Rank src_world,
               Tag tag) const;
  void complete_recv(const std::shared_ptr<RecvRequest>& req, Rank src_world,
                     Tag tag, const PayloadRef& data);
  void accept_rts(const std::shared_ptr<RecvRequest>& req,
                  const Unexpected& rts);
  PooledBuffer pack(MsgType type, std::uint32_t context, Tag tag,
                    std::uint64_t rdz_id,
                    std::span<const std::uint8_t> bytes) const;

  Rank world_rank_;
  inet::RdpEndpoint& rdp_;
  std::function<inet::IpAddr(Rank)> addr_of_;
  std::int64_t eager_threshold_ = 64 * 1024;

  std::list<std::shared_ptr<RecvRequest>> posted_;
  std::deque<Unexpected> unexpected_;
  std::map<std::pair<std::uint32_t, Tag>, SinkHandler> sinks_;
  sim::WaitQueue arrivals_;
  std::map<std::uint64_t, PendingSend> pending_sends_;
  std::map<std::uint64_t, std::shared_ptr<RecvRequest>> pending_rdz_recvs_;
  std::uint64_t next_rdz_id_ = 1;
  EngineStats stats_;
};

}  // namespace mcmpi::mpi
