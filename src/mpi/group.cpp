#include "mpi/group.hpp"

#include <set>

#include "common/assert.hpp"

namespace mcmpi::mpi {

Group::Group(std::vector<Rank> world_ranks) : members_(std::move(world_ranks)) {
  std::set<Rank> seen;
  for (Rank r : members_) {
    MC_EXPECTS_MSG(r >= 0, "group members must be valid world ranks");
    MC_EXPECTS_MSG(seen.insert(r).second, "duplicate rank in group");
  }
}

Group Group::world(int n) {
  MC_EXPECTS(n >= 0);
  std::vector<Rank> ranks(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ranks[static_cast<std::size_t>(i)] = i;
  }
  return Group(std::move(ranks));
}

Rank Group::world_rank(int group_rank) const {
  MC_EXPECTS(group_rank >= 0 && group_rank < size());
  return members_[static_cast<std::size_t>(group_rank)];
}

int Group::rank_of(Rank world_rank) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == world_rank) {
      return static_cast<int>(i);
    }
  }
  return kAnySource;
}

Group Group::incl(const std::vector<int>& group_ranks) const {
  std::vector<Rank> out;
  out.reserve(group_ranks.size());
  for (int gr : group_ranks) {
    out.push_back(world_rank(gr));
  }
  return Group(std::move(out));
}

}  // namespace mcmpi::mpi
