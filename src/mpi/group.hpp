#pragma once
/// \file group.hpp
/// Process groups: ordered sets of world ranks (MPI_Group analogue).

#include <vector>

#include "mpi/types.hpp"

namespace mcmpi::mpi {

class Group {
 public:
  Group() = default;
  explicit Group(std::vector<Rank> world_ranks);

  /// The group {0, 1, ..., n-1}.
  static Group world(int n);

  int size() const { return static_cast<int>(members_.size()); }
  bool empty() const { return members_.empty(); }

  /// World rank of group member `group_rank`.
  Rank world_rank(int group_rank) const;

  /// Group rank of `world_rank`, or kAnySource(-1) if not a member.
  int rank_of(Rank world_rank) const;

  bool contains(Rank world_rank) const { return rank_of(world_rank) >= 0; }

  const std::vector<Rank>& members() const { return members_; }

  /// Subset selection preserving order (MPI_Group_incl).
  Group incl(const std::vector<int>& group_ranks) const;

  bool operator==(const Group&) const = default;

 private:
  std::vector<Rank> members_;
};

}  // namespace mcmpi::mpi
