#include "mpi/mcast_channel.hpp"

namespace mcmpi::mpi {

McastChannel::McastChannel(inet::UdpStack& udp, const CommInfo& info,
                           std::size_t rcvbuf_bytes, int lane)
    : group_(info.mcast_addr()), port_(info.mcast_port(lane)), lane_(lane) {
  socket_ = udp.open(port_);
  // The buffer bounds how far a receiver may lag before multicasts are
  // lost — the "fast senders overrun a single receiver" hazard of the
  // paper's §5, exercised by the many-to-many overrun experiments.
  socket_->set_recv_buffer(rcvbuf_bytes);
  socket_->join(group_);
}

}  // namespace mcmpi::mpi
