#pragma once
/// \file mcast_channel.hpp
/// A rank's membership in a communicator's IP multicast group.
///
/// One channel per (rank, communicator): a UDP socket bound to the
/// communicator's well-known port, joined to its class-D group address.
/// Creating the channel is the "receiver readiness" the paper's scout
/// protocols are designed to guarantee: a datagram multicast to the group
/// before a rank's channel exists is silently lost (see inet/udp.hpp), which
/// is exactly the failure mode being engineered around.
///
/// The channel also tracks a per-communicator broadcast sequence number used
/// to assert the in-order delivery property argued in the paper's §4 (safe
/// MPI programs see broadcasts in program order).

#include <cstdint>
#include <memory>

#include "inet/udp.hpp"
#include "mpi/comm.hpp"

namespace mcmpi::mpi {

class McastChannel {
 public:
  /// `lane` selects one of the communicator's striped multicast groups
  /// (CommInfo::mcast_port(lane)); lane 0 is the classic single-group
  /// identity every non-striped collective uses.
  McastChannel(inet::UdpStack& udp, const CommInfo& info,
               std::size_t rcvbuf_bytes, int lane = 0);

  inet::IpAddr group() const { return group_; }
  std::uint16_t port() const { return port_; }
  int lane() const { return lane_; }
  inet::UdpSocket& socket() { return *socket_; }

  /// Multicasts `payload` to the group.  The network models do not loop a
  /// frame back to the sending NIC, so the sender's own socket does NOT see
  /// it (equivalent to IP_MULTICAST_LOOP disabled, which is how the paper's
  /// implementation avoids the root consuming its own broadcast).
  /// Re-sending a retained PayloadRef (sequencer history, ACK-protocol
  /// retransmits) reuses the framed bytes instead of rebuilding them.
  void send(const PayloadRef& payload, net::FrameKind kind) {
    socket_->sendto(group_, port_, payload.view(), kind);
  }

  /// Gather variant: [header][payload] is assembled into the wire datagram
  /// in one pass — collective framing without re-buffering the payload.
  void send(std::span<const std::uint8_t> header,
            std::span<const std::uint8_t> payload, net::FrameKind kind) {
    socket_->sendto(group_, port_, header, payload, kind);
  }

  /// Scatter/gather variant: the wire datagram is the concatenation of
  /// `parts` — lets segmented collectives frame [header ‖ table ‖ chunk
  /// slices] with zero caller-side assembly copies.
  void send_parts(std::span<const std::span<const std::uint8_t>> parts,
                  net::FrameKind kind) {
    socket_->sendto_parts(group_, port_, parts, kind);
  }

  /// Sequence checks for the §4 ordering property.
  std::uint64_t expected_seq() const { return expected_seq_; }
  void advance_seq() { ++expected_seq_; }

 private:
  inet::IpAddr group_;
  std::uint16_t port_;
  int lane_ = 0;
  std::unique_ptr<inet::UdpSocket> socket_;
  std::uint64_t expected_seq_ = 0;
};

}  // namespace mcmpi::mpi
