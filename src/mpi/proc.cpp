#include "mpi/proc.hpp"

#include <algorithm>
#include <tuple>

#include "common/assert.hpp"
#include "mpi/world.hpp"

namespace mcmpi::mpi {

Proc::Proc(World& world, Rank world_rank, inet::UdpStack& udp,
           inet::RdpEndpoint& rdp, SoftwareCosts& costs)
    : world_(world), world_rank_(world_rank), udp_(udp), costs_(costs) {
  engine_ = std::make_unique<Engine>(
      world_rank, rdp, [&world](Rank r) { return world.addr_of(r); });
}

int Proc::world_size() const { return world_.size(); }

Comm Proc::comm_world() {
  return Comm(world_.world_info(), world_rank_, this);
}

sim::SimProcess& Proc::self() {
  MC_EXPECTS_MSG(process_ != nullptr,
                 "Proc used outside World::run (no simulated process bound)");
  if (!helpers_.empty()) {
    sim::SimProcess* current = world_.simulator().current();
    for (sim::SimProcess* helper : helpers_) {
      if (helper == current) {
        return *current;
      }
    }
  }
  return *process_;
}

Proc::HelperScope::HelperScope(Proc& p, sim::SimProcess& helper)
    : p_(p), helper_(helper) {
  p_.helpers_.push_back(&helper_);
}

Proc::HelperScope::~HelperScope() {
  std::erase(p_.helpers_, &helper_);
}

void Proc::send(const Comm& comm, int dst, Tag tag,
                std::span<const std::uint8_t> bytes, net::FrameKind kind,
                CostTier tier) {
  self().delay(
      costs_.send_overhead(static_cast<std::int64_t>(bytes.size()), tier));
  auto request = engine_->start_send(comm.info(), dst, tag, bytes, kind);
  sim::wait_for(self(), request->wait_queue(),
                [&] { return request->complete(); });
}

Buffer Proc::recv(const Comm& comm, int src, Tag tag, Status* status,
                  CostTier tier) {
  auto request = engine_->post_recv(comm.info(), src, tag);
  return wait(request, status, tier);
}

std::shared_ptr<SendRequest> Proc::isend(const Comm& comm, int dst, Tag tag,
                                         std::span<const std::uint8_t> bytes,
                                         net::FrameKind kind, CostTier tier) {
  self().delay(
      costs_.send_overhead(static_cast<std::int64_t>(bytes.size()), tier));
  return engine_->start_send(comm.info(), dst, tag, bytes, kind);
}

void Proc::send_control_async(const Comm& comm, int dst, Tag tag,
                              net::FrameKind kind, CostTier tier) {
  const SimTime overhead = costs_.send_overhead(0, tier);
  // Emit from a timer event at now+overhead — exactly when a blocking
  // send() would have emitted — without resuming this process in between.
  Engine* engine = engine_.get();
  self().simulator().schedule_after(
      overhead, [engine, info = comm.info(), dst, tag, kind] {
        const auto request = engine->start_send(info, dst, tag, {}, kind);
        MC_ASSERT_MSG(request->complete(),
                      "send_control_async requires eager completion");
      });
}

void Proc::send_data_async(const Comm& comm, int dst, Tag tag,
                           std::span<const std::uint8_t> bytes,
                           net::FrameKind kind, CostTier tier) {
  MC_EXPECTS_MSG(
      static_cast<std::int64_t>(bytes.size()) <= engine_->eager_threshold(),
      "send_data_async requires the eager path");
  const SimTime overhead =
      costs_.send_overhead(static_cast<std::int64_t>(bytes.size()), tier);
  Engine* engine = engine_.get();
  self().simulator().schedule_after(
      overhead, [engine, info = comm.info(), dst, tag, kind,
                 copy = Buffer(bytes.begin(), bytes.end())] {
        const auto request = engine->start_send(info, dst, tag, copy, kind);
        MC_ASSERT_MSG(request->complete(),
                      "send_data_async requires eager completion");
      });
}

std::shared_ptr<RecvRequest> Proc::irecv(const Comm& comm, int src, Tag tag) {
  return engine_->post_recv(comm.info(), src, tag);
}

void Proc::wait(const std::shared_ptr<SendRequest>& request) {
  sim::wait_for(self(), request->wait_queue(),
                [&] { return request->complete(); });
}

Buffer Proc::wait(const std::shared_ptr<RecvRequest>& request, Status* status,
                  CostTier tier) {
  // Charged wait: if this rank parks for the message, the completion that
  // wakes it prices the receive overhead into the wake-up itself (one
  // handoff).  If the message was already in, the charge is slept here.
  const bool charged = sim::wait_for_charged(
      self(), request->wait_queue(), [&] { return request->complete(); },
      [&]() -> SimTime {
        return costs_.recv_overhead(
            static_cast<std::int64_t>(request->data().size()), tier);
      });
  if (!charged) {
    self().delay(costs_.recv_overhead(
        static_cast<std::int64_t>(request->data().size()), tier));
  }
  if (status != nullptr) {
    *status = request->status();
  }
  return std::move(request->data());
}

std::optional<Buffer> Proc::wait_until(
    const std::shared_ptr<RecvRequest>& request, SimTime deadline,
    Status* status, CostTier tier) {
  // Charged deadline wait: a completion that wakes the parked rank prices
  // the receive overhead into the wake-up (one handoff); a timeout wakes
  // uncharged, and a message already in costs the charge here.
  const auto charge = [&]() -> SimTime {
    return costs_.recv_overhead(
        static_cast<std::int64_t>(request->data().size()), tier);
  };
  const sim::ChargedWaitResult wait = sim::wait_for_until_charged(
      self(), request->wait_queue(), deadline,
      [&] { return request->complete(); }, charge);
  if (!wait.satisfied) {
    return std::nullopt;
  }
  if (!wait.absorbed) {
    self().delay(charge());
  }
  if (status != nullptr) {
    *status = request->status();
  }
  return std::move(request->data());
}

Buffer Proc::wait(const std::shared_ptr<sim::Completion>& request) {
  MC_EXPECTS(request != nullptr);
  // Virtual time is global, so the helper's completion notify is the whole
  // completion semantics: no clock adjustment or charge is owed here.
  sim::wait_for(self(), request->wait_queue(),
                [&] { return request->complete(); });
  return std::move(request->result());
}

Buffer Proc::sendrecv(const Comm& comm, int dst, Tag send_tag,
                      std::span<const std::uint8_t> bytes, int src,
                      Tag recv_tag, Status* status, CostTier tier) {
  auto rreq = irecv(comm, src, recv_tag);
  send(comm, dst, send_tag, bytes, net::FrameKind::kData, tier);
  return wait(rreq, status, tier);
}

std::optional<Status> Proc::iprobe(const Comm& comm, int src, Tag tag) {
  return engine_->iprobe(comm.info(), src, tag);
}

Status Proc::probe(const Comm& comm, int src, Tag tag) {
  for (;;) {
    if (auto status = engine_->iprobe(comm.info(), src, tag)) {
      return *status;
    }
    engine_->arrivals().wait(self());
  }
}

Comm Proc::dup(const Comm& comm) {
  MC_EXPECTS(comm.valid());
  CommInfo& info = *comm.info();
  const auto my = static_cast<std::size_t>(comm.rank());
  const auto seq = static_cast<std::size_t>(info.dup_calls[my]++);
  // First member to reach this dup creates the child; same-order calls on
  // every rank make the sequence number a safe meeting point.  The lock
  // serializes members arriving from different simulator shards.
  const std::lock_guard<std::mutex> lock(info.creation_mutex);
  if (seq >= info.dup_children.size()) {
    MC_ASSERT(seq == info.dup_children.size());
    info.dup_children.push_back(
        std::make_shared<CommInfo>(world_.alloc_context(), info.group));
    world_.note_comm_created(*info.dup_children.back());
  }
  return Comm(info.dup_children[seq], world_rank_, this);
}

Comm Proc::split(const Comm& comm, int color, int key) {
  MC_EXPECTS(comm.valid());
  CommInfo& info = *comm.info();
  const int my = comm.rank();
  const int seq = info.split_calls[static_cast<std::size_t>(my)]++;

  // Root (comm rank 0) gathers (color, key) from everyone, builds every
  // child communicator, then releases the members.  This mirrors the
  // allgather real MPI implementations perform.
  struct Entry {
    std::int32_t color;
    std::int32_t key;
    std::int32_t comm_rank;
  };
  if (my == 0) {
    std::vector<Entry> entries;
    entries.push_back({color, key, 0});
    for (int r = 1; r < comm.size(); ++r) {
      Status st;
      const Buffer b = recv(comm, r, kTagCollective, &st);
      ByteReader reader(b);
      entries.push_back({reader.i32(), reader.i32(), r});
    }
    std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                                 const Entry& b) {
      return std::tie(a.color, a.key, a.comm_rank) <
             std::tie(b.color, b.key, b.comm_rank);
    });
    {
      // Members only read the registry after the release message below, so
      // the message chain already orders this write; the lock additionally
      // covers unrelated dup/split creation racing on other shards.  Scoped
      // tightly: it must never be held across a blocking call (send/recv
      // suspend the fiber with the mutex still owned by this thread).
      const std::lock_guard<std::mutex> lock(info.creation_mutex);
      auto& children = info.split_children[seq];
      for (std::size_t i = 0; i < entries.size();) {
        const int c = entries[i].color;
        std::vector<Rank> members;
        while (i < entries.size() && entries[i].color == c) {
          members.push_back(info.group.world_rank(entries[i].comm_rank));
          ++i;
        }
        if (c >= 0) {
          const auto [child, inserted] = children.emplace(
              c, std::make_shared<CommInfo>(world_.alloc_context(),
                                            Group(members)));
          if (inserted) {
            world_.note_comm_created(*child->second);
          }
        }
      }
    }
    for (int r = 1; r < comm.size(); ++r) {
      send(comm, r, kTagCollective, {}, net::FrameKind::kControl);
    }
  } else {
    Buffer b;
    ByteWriter w(b);
    w.i32(color);
    w.i32(key);
    send(comm, 0, kTagCollective, b, net::FrameKind::kControl);
    (void)recv(comm, 0, kTagCollective);  // release
  }

  if (color < 0) {
    return Comm{};
  }
  const auto& children = info.split_children.at(seq);
  return Comm(children.at(color), world_rank_, this);
}

McastChannel& Proc::mcast_channel(const Comm& comm, int lane) {
  MC_EXPECTS(comm.valid());
  auto [it, inserted] = channels_.try_emplace({comm.context(), lane});
  if (inserted) {
    it->second = std::make_unique<McastChannel>(udp_, *comm.info(),
                                                mcast_rcvbuf_, lane);
  }
  return *it->second;
}

}  // namespace mcmpi::mpi
