#pragma once
/// \file proc.hpp
/// Proc — the per-rank MPI process facade (what rank code programs against).
///
/// Blocking semantics are implemented by parking the rank's simulated
/// process on the request's wait queue; host software overheads (the
/// calibrated per-message syscall/stack costs) are charged here, on the
/// calling rank's virtual clock, exactly once per send and per receive.

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <typeindex>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "mpi/comm.hpp"
#include "mpi/engine.hpp"
#include "mpi/mcast_channel.hpp"
#include "mpi/types.hpp"
#include "sim/completion.hpp"
#include "sim/wait.hpp"

namespace mcmpi::mpi {

class World;

class Proc {
 public:
  Proc(World& world, Rank world_rank, inet::UdpStack& udp,
       inet::RdpEndpoint& rdp, SoftwareCosts& costs);
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  Rank rank() const { return world_rank_; }
  int world_size() const;
  World& world() { return world_; }

  /// MPI_COMM_WORLD for this rank.  The handle is bound to this Proc, which
  /// enables the communicator-scoped collective facade (comm.coll()).
  Comm comm_world();

  /// The simulated process this rank's code is currently running on: the
  /// rank's main process, or — while a nonblocking-collective helper fiber
  /// is executing — that helper (valid inside World::run).  Exactly one
  /// context runs at a time, so the resolution is unambiguous.
  sim::SimProcess& self();

  /// RAII registration of a helper fiber serving this rank (nonblocking
  /// collectives): while registered and running, self() resolves to the
  /// helper, so blocking primitives park the helper instead of the rank.
  class HelperScope {
   public:
    HelperScope(Proc& p, sim::SimProcess& helper);
    ~HelperScope();
    HelperScope(const HelperScope&) = delete;
    HelperScope& operator=(const HelperScope&) = delete;

   private:
    Proc& p_;
    sim::SimProcess& helper_;
  };
  SoftwareCosts& costs() { return costs_; }
  inet::UdpStack& udp() { return udp_; }
  Engine& engine() { return *engine_; }

  // ------------------------------------------------------------- p2p
  /// `tier` selects the software-cost path (MPICH layers vs raw UDP); see
  /// CostTier.  It affects timing only, never semantics.
  void send(const Comm& comm, int dst, Tag tag,
            std::span<const std::uint8_t> bytes,
            net::FrameKind kind = net::FrameKind::kData,
            CostTier tier = CostTier::kMpi);

  Buffer recv(const Comm& comm, int src, Tag tag, Status* status = nullptr,
              CostTier tier = CostTier::kMpi);

  /// Fire-and-forget empty control send (bare sendto semantics, e.g. a
  /// scout): charges the send overhead and emits once it has elapsed,
  /// WITHOUT waking the caller in between — the caller's next blocking
  /// operation absorbs the interval.  Equivalent to send() of zero bytes
  /// whenever (a) the message takes the eager path (empty always does) and
  /// (b) the caller's next simulation-visible action is a blocking call —
  /// both asserted/true for the scout protocols that use this.
  void send_control_async(const Comm& comm, int dst, Tag tag,
                          net::FrameKind kind = net::FrameKind::kControl,
                          CostTier tier = CostTier::kRaw);

  /// Fire-and-forget data send (the data-carrying scout of the
  /// scout-combining gather and mcast-scout reduce): charges the send
  /// overhead and emits once it has elapsed without waking the caller, under
  /// the same two conditions as send_control_async — the payload must take
  /// the eager path (asserted against the engine threshold) and the caller's
  /// next simulation-visible action must be a blocking call.  `bytes` is
  /// copied at call time.
  void send_data_async(const Comm& comm, int dst, Tag tag,
                       std::span<const std::uint8_t> bytes,
                       net::FrameKind kind = net::FrameKind::kData,
                       CostTier tier = CostTier::kMpi);

  /// Nonblocking variants; complete with wait().
  std::shared_ptr<SendRequest> isend(
      const Comm& comm, int dst, Tag tag, std::span<const std::uint8_t> bytes,
      net::FrameKind kind = net::FrameKind::kData,
      CostTier tier = CostTier::kMpi);
  std::shared_ptr<RecvRequest> irecv(const Comm& comm, int src, Tag tag);
  void wait(const std::shared_ptr<SendRequest>& request);
  /// Returns the received payload; charges the receive overhead.
  Buffer wait(const std::shared_ptr<RecvRequest>& request,
              Status* status = nullptr, CostTier tier = CostTier::kMpi);
  /// Deadline-bounded wait; nullopt on timeout (the request stays posted and
  /// can be waited on again — used by retransmitting protocols).
  std::optional<Buffer> wait_until(const std::shared_ptr<RecvRequest>& request,
                                   SimTime deadline, Status* status = nullptr,
                                   CostTier tier = CostTier::kMpi);

  /// Completes work another process performs on this rank's behalf —
  /// notably a nonblocking collective's coll::CollRequest (ibcast /
  /// ibarrier / iallreduce): parks until finish()ed.  Returns the result
  /// buffer (iallreduce; empty otherwise).
  Buffer wait(const std::shared_ptr<sim::Completion>& request);

  /// Combined exchange (send and receive may proceed concurrently).
  Buffer sendrecv(const Comm& comm, int dst, Tag send_tag,
                  std::span<const std::uint8_t> bytes, int src, Tag recv_tag,
                  Status* status = nullptr, CostTier tier = CostTier::kMpi);

  /// Non-destructive message inspection (MPI_Iprobe): status of the first
  /// matching not-yet-received message, without consuming it.
  std::optional<Status> iprobe(const Comm& comm, int src, Tag tag);
  /// Blocking variant (MPI_Probe): parks until a matching message arrives.
  Status probe(const Comm& comm, int src, Tag tag);

  // Typed convenience (single values).
  template <typename T>
  void send_value(const Comm& comm, int dst, Tag tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Buffer bytes(sizeof(T));
    std::memcpy(bytes.data(), &value, sizeof(T));
    send(comm, dst, tag, bytes);
  }
  template <typename T>
  T recv_value(const Comm& comm, int src, Tag tag, Status* status = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Buffer bytes = recv(comm, src, tag, status);
    MC_EXPECTS_MSG(bytes.size() == sizeof(T), "typed recv size mismatch");
    T value;
    std::memcpy(&value, bytes.data(), sizeof(T));
    return value;
  }

  // ----------------------------------------------- communicator management
  /// Collective: duplicates `comm` into a new context (MPI_Comm_dup).
  Comm dup(const Comm& comm);
  /// Collective: partitions `comm` by `color`, ordering by (key, rank)
  /// (MPI_Comm_split).  color < 0 returns an invalid Comm (MPI_UNDEFINED).
  Comm split(const Comm& comm, int color, int key);

  // --------------------------------------------------------- multicast
  /// The rank's channel into `comm`'s multicast group, created on first use
  /// (and kept for the communicator's lifetime — receiver readiness).
  /// `lane` selects one of the communicator's striped groups
  /// (CommInfo::mcast_port(lane)); lane 0 is the classic single-group
  /// channel every non-striped collective uses.
  McastChannel& mcast_channel(const Comm& comm, int lane = 0);

  /// Receive-buffer size for channels created after this call (SO_RCVBUF
  /// analogue; bounds receiver lag before multicast loss).
  void set_mcast_recv_buffer(std::size_t bytes) { mcast_rcvbuf_ = bytes; }
  std::size_t mcast_recv_buffer() const { return mcast_rcvbuf_; }

  /// Set by the cluster when a fault plane with loss/reorder is attached:
  /// algorithm auto-selection must then skip anything not loss-tolerant.
  void set_network_lossy(bool lossy) { network_lossy_ = lossy; }
  bool network_lossy() const { return network_lossy_; }

  /// Default retransmission-history bound (framed broadcasts retained per
  /// root) for NACK-served reliable multicast; picked up by nack-mcast
  /// communicator state on first use, overridable per communicator via
  /// set_nack_mcast_params.  Wired from ClusterConfig::nack_history_frames
  /// / MCMPI_NACK_HISTORY.
  void set_nack_history_frames(std::size_t frames) {
    nack_history_frames_ = frames;
  }
  std::size_t nack_history_frames() const { return nack_history_frames_; }

  /// Per-communicator protocol state for collective implementations
  /// (e.g. the sequencer's history buffer).  One T per (communicator,
  /// type); default-constructed on first access.
  template <typename T>
  T& coll_state(const Comm& comm) {
    auto& slot = coll_state_[{comm.context(), std::type_index(typeid(T))}];
    if (!slot) {
      slot = std::make_shared<T>();
    }
    return *std::static_pointer_cast<T>(slot);
  }

 private:
  friend class World;
  void bind(sim::SimProcess& process) { process_ = &process; }

  World& world_;
  Rank world_rank_;
  inet::UdpStack& udp_;
  SoftwareCosts& costs_;
  std::unique_ptr<Engine> engine_;
  sim::SimProcess* process_ = nullptr;
  /// Live helper fibers (nonblocking collectives); see HelperScope.
  std::vector<sim::SimProcess*> helpers_;
  std::size_t mcast_rcvbuf_ = 256 * 1024;
  bool network_lossy_ = false;
  std::size_t nack_history_frames_ = 64;
  /// Keyed by (context id, lane): a striped collective holds several live
  /// channels per communicator, one per multicast group it stripes across.
  std::map<std::pair<std::uint32_t, int>, std::unique_ptr<McastChannel>>
      channels_;
  std::map<std::pair<std::uint32_t, std::type_index>, std::shared_ptr<void>>
      coll_state_;
};

}  // namespace mcmpi::mpi
