#pragma once
/// \file types.hpp
/// Fundamental MPI-like types shared across the mini-MPI ("mcmpi") core.

#include <cstdint>

#include "common/time.hpp"

namespace mcmpi::mpi {

using Rank = int;
using Tag = std::int32_t;

inline constexpr Rank kAnySource = -1;
inline constexpr Tag kAnyTag = -1;

/// Tags below this value are reserved for internal protocols (collectives,
/// scout synchronization), mirroring how MPICH hides its internal traffic
/// from user tag space.
inline constexpr Tag kFirstInternalTag = -100;
inline constexpr Tag kTagScout = -101;      // multicast readiness scouts
inline constexpr Tag kTagBarrier = -102;    // MPICH barrier messages
inline constexpr Tag kTagCollective = -103; // tree collectives over p2p
inline constexpr Tag kTagAckMcast = -104;   // ORNL-style ACK protocol
inline constexpr Tag kTagSequencer = -105;  // Orca-style sequencer protocol
inline constexpr Tag kTagSeqNack = -106;    // sequencer retransmission NACKs
inline constexpr Tag kTagReducePartial = -107;  // mcast-scout reduce partials
inline constexpr Tag kTagGatherBlock = -108;    // scout-combining gather blocks
inline constexpr Tag kTagChunkAck = -109;       // segmented-pipeline chunk acks
inline constexpr Tag kTagNackMcast = -110;      // nack-mcast retransmission NACKs
inline constexpr Tag kTagHier = -111;           // hierarchical inter-leader phase
inline constexpr Tag kTagFecNack = -112;        // fec-mcast fallback NACKs

/// Returned by receive operations.
struct Status {
  Rank source = kAnySource;  // communicator rank of the sender
  Tag tag = kAnyTag;
  std::size_t count = 0;  // bytes received
};

/// Reduction operators (MPI_Op subset).  kCustom is the MPI_Op_create
/// analogue: a process-global user function registered via set_custom_op
/// (datatype.hpp); it is treated as non-commutative, so every reduction
/// algorithm must apply operands in communicator rank order for it.
enum class Op : std::uint8_t {
  kSum,
  kProd,
  kMax,
  kMin,
  kLand,
  kLor,
  kBand,
  kBor,
  kCustom,
};

/// Element types understood by the reduction engine (MPI_Datatype subset;
/// everything else moves as raw bytes).
enum class Datatype : std::uint8_t {
  kByte,
  kInt32,
  kInt64,
  kDouble,
};

/// Which software path a message takes.  The paper's implementation
/// "bypass[es] all the MPICH layers" (Fig. 1), so its control traffic is a
/// bare sendto/recvfrom, while the MPICH baseline pays the full
/// TCP + ADI + request-machinery cost per message, and the multicast *data*
/// path pays its own (heavier) per-message cost for buffer handling.
/// Reproducing Figs. 7-10 and Fig. 13 simultaneously requires these tiers:
/// with a single uniform cost they are mutually inconsistent (see
/// cluster/calibration.hpp).
enum class CostTier : std::uint8_t {
  kMpi,        // MPICH point-to-point path (TCP + MPI layers)
  kRaw,        // raw UDP control path (scouts, ACKs, NACKs, releases)
  kMcastData,  // multicast data path (group send/delivery of user buffers)
};

/// Host software cost model: what entering the kernel, copying and
/// processing a message costs on a given machine.  The cluster layer
/// provides a calibrated implementation (per-host CPU scaling + jitter);
/// correctness tests use ZeroCosts.
class SoftwareCosts {
 public:
  virtual ~SoftwareCosts() = default;
  virtual SimTime send_overhead(std::int64_t bytes, CostTier tier) = 0;
  virtual SimTime recv_overhead(std::int64_t bytes, CostTier tier) = 0;
};

class ZeroCosts final : public SoftwareCosts {
 public:
  SimTime send_overhead(std::int64_t, CostTier) override { return kTimeZero; }
  SimTime recv_overhead(std::int64_t, CostTier) override { return kTimeZero; }
};

}  // namespace mcmpi::mpi
