#include "mpi/world.hpp"

#include <algorithm>
#include <cstdlib>

#include "coll/tuning.hpp"
#include "common/assert.hpp"

namespace mcmpi::mpi {

World::World(sim::Simulator& sim, const std::vector<RankResources>& ranks)
    : sim_(sim) {
  MC_EXPECTS_MSG(!ranks.empty(), "world needs at least one rank");
  const char* env_tuning = std::getenv("MCMPI_COLL_TUNING");
  coll_tuning_ = std::make_shared<coll::TuningTable>(
      env_tuning != nullptr && *env_tuning != '\0'
          ? coll::TuningTable::parse(env_tuning)
          : coll::TuningTable::defaults());
  world_info_ = std::make_shared<CommInfo>(
      alloc_context(), Group::world(static_cast<int>(ranks.size())));
  procs_.reserve(ranks.size());
  addresses_.reserve(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const RankResources& r = ranks[i];
    MC_EXPECTS(r.udp != nullptr && r.rdp != nullptr && r.costs != nullptr);
    addresses_.push_back(r.address);
    shards_.push_back(r.shard);
    segments_.push_back(r.segment);
    num_segments_ = std::max(num_segments_, r.segment + 1);
    procs_.push_back(std::make_unique<Proc>(*this, static_cast<Rank>(i),
                                            *r.udp, *r.rdp, *r.costs));
  }
  // Topology-aware kAuto: a multi-segment world prepends the min_segments
  // rules that pick the hierarchical algorithms for communicators spanning
  // >= 2 segments.  Single-segment worlds keep the classic table (and the
  // hier table's classic tail makes single-segment communicators select
  // identically anyway); an MCMPI_COLL_TUNING override always wins.
  if ((env_tuning == nullptr || *env_tuning == '\0') && num_segments_ >= 2) {
    coll_tuning_ = std::make_shared<coll::TuningTable>(
        coll::TuningTable::hier_defaults());
  }
}

void World::note_comm_created(const CommInfo& info) {
  if (!group_scope_hook_ || num_segments_ < 2 || info.group.size() == 0) {
    return;
  }
  const int segment = segment_of(info.group.world_rank(0));
  for (int r = 1; r < info.group.size(); ++r) {
    if (segment_of(info.group.world_rank(r)) != segment) {
      return;  // spans segments: its multicast traffic must keep flooding
    }
  }
  group_scope_hook_(info, segment);
}

void World::set_coll_tuning(coll::TuningTable table) {
  coll_tuning_ = std::make_shared<coll::TuningTable>(std::move(table));
}

Proc& World::proc(int rank) {
  MC_EXPECTS(rank >= 0 && rank < size());
  return *procs_[static_cast<std::size_t>(rank)];
}

inet::IpAddr World::addr_of(Rank rank) const {
  MC_EXPECTS(rank >= 0 && rank < size());
  return addresses_[static_cast<std::size_t>(rank)];
}

Rank World::rank_of(inet::IpAddr addr) const {
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    if (addresses_[i] == addr) {
      return static_cast<Rank>(i);
    }
  }
  return kAnySource;
}

void World::run(const std::function<void(Proc&)>& rank_main) {
  for (int r = 0; r < size(); ++r) {
    Proc* proc = procs_[static_cast<std::size_t>(r)].get();
    // Each rank's process is pinned to its segment's shard; the sharded
    // drivers then run disjoint segments on worker threads.
    sim_.spawn_on(shards_[static_cast<std::size_t>(r)],
                  "rank" + std::to_string(r),
                  [proc, rank_main](sim::SimProcess& self) {
                    proc->bind(self);
                    rank_main(*proc);
                  });
  }
  sim_.run();
}

}  // namespace mcmpi::mpi
