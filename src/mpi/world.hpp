#pragma once
/// \file world.hpp
/// World — builds the rank set and launches SPMD programs on the simulator.

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "inet/ip_addr.hpp"
#include "inet/rdp.hpp"
#include "inet/udp.hpp"
#include "mpi/comm.hpp"
#include "mpi/proc.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::coll {
class TuningTable;
}  // namespace mcmpi::coll

namespace mcmpi::mpi {

class World {
 public:
  /// What each rank needs from its host (built by the cluster layer).
  struct RankResources {
    inet::UdpStack* udp = nullptr;
    inet::RdpEndpoint* rdp = nullptr;
    SoftwareCosts* costs = nullptr;
    inet::IpAddr address;
    /// Simulator shard the rank's processes run on — its segment's shard.
    /// All of a rank's state (stacks, engine, helper fibers) stays on this
    /// shard; only trunk frames cross shards.
    unsigned shard = 0;
    /// Network segment the rank's host sits on (0 on single-segment
    /// clusters).  The hierarchical collectives read this table to elect
    /// per-segment leaders without any wire traffic.
    int segment = 0;
  };

  World(sim::Simulator& sim, const std::vector<RankResources>& ranks);

  int size() const { return static_cast<int>(procs_.size()); }
  Proc& proc(int rank);
  sim::Simulator& simulator() { return sim_; }

  inet::IpAddr addr_of(Rank rank) const;
  Rank rank_of(inet::IpAddr addr) const;

  /// Network segment of a world rank (from RankResources::segment).
  int segment_of(Rank rank) const {
    return segments_.at(static_cast<std::size_t>(rank));
  }
  /// Distinct segments in the topology (1 + max segment id).
  int num_segments() const { return num_segments_; }

  const std::shared_ptr<CommInfo>& world_info() const { return world_info_; }

  /// Allocates a fresh communicator context id.  Atomic: ranks on different
  /// shards may create communicators concurrently; the sequence of VALUES
  /// is then allocation-order dependent, but a context id never influences
  /// timing or payloads (it only names a multicast identity), so simulated
  /// results stay deterministic.
  std::uint32_t alloc_context() {
    return next_context_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Invoked (when set) for every derived communicator whose members all
  /// live on ONE network segment, with that segment id.  The cluster uses
  /// it to scope the communicator's multicast identity at the trunk
  /// bridges (net/bridge.hpp scope_group) — intra-segment collective
  /// traffic then stops flooding every other segment.  Fired from the
  /// creating rank's fiber at comm creation (dup/split), when the child's
  /// full membership is already known.
  using GroupScopeHook = std::function<void(const CommInfo&, int segment)>;
  void set_group_scope_hook(GroupScopeHook hook) {
    group_scope_hook_ = std::move(hook);
  }
  /// Classifies a freshly created communicator and fires the scope hook if
  /// its group is segment-local (no-op on single-segment worlds).
  void note_comm_created(const CommInfo& info);

  /// Tuned collective auto-selection rules (coll/tuning.hpp) consulted by
  /// the kAuto policy of comm.coll().  Construction installs the
  /// MCMPI_COLL_TUNING environment table when set, the paper-crossover
  /// defaults otherwise; ClusterConfig::coll_tuning overrides via the
  /// setter.
  const coll::TuningTable& coll_tuning() const { return *coll_tuning_; }
  void set_coll_tuning(coll::TuningTable table);

  /// Runs `rank_main` as an SPMD program: one simulated process per rank,
  /// then drives the simulation until all ranks return.  May be called
  /// repeatedly (each call is a fresh program on the same cluster state).
  void run(const std::function<void(Proc&)>& rank_main);

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<inet::IpAddr> addresses_;
  std::vector<unsigned> shards_;  // home shard per rank
  std::vector<int> segments_;     // home segment per rank
  int num_segments_ = 1;
  std::shared_ptr<CommInfo> world_info_;
  std::shared_ptr<coll::TuningTable> coll_tuning_;
  GroupScopeHook group_scope_hook_;
  std::atomic<std::uint32_t> next_context_{1};
};

}  // namespace mcmpi::mpi
