#pragma once
/// \file world.hpp
/// World — builds the rank set and launches SPMD programs on the simulator.

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "inet/ip_addr.hpp"
#include "inet/rdp.hpp"
#include "inet/udp.hpp"
#include "mpi/comm.hpp"
#include "mpi/proc.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::coll {
class TuningTable;
}  // namespace mcmpi::coll

namespace mcmpi::mpi {

class World {
 public:
  /// What each rank needs from its host (built by the cluster layer).
  struct RankResources {
    inet::UdpStack* udp = nullptr;
    inet::RdpEndpoint* rdp = nullptr;
    SoftwareCosts* costs = nullptr;
    inet::IpAddr address;
    /// Simulator shard the rank's processes run on — its segment's shard.
    /// All of a rank's state (stacks, engine, helper fibers) stays on this
    /// shard; only trunk frames cross shards.
    unsigned shard = 0;
  };

  World(sim::Simulator& sim, const std::vector<RankResources>& ranks);

  int size() const { return static_cast<int>(procs_.size()); }
  Proc& proc(int rank);
  sim::Simulator& simulator() { return sim_; }

  inet::IpAddr addr_of(Rank rank) const;
  Rank rank_of(inet::IpAddr addr) const;

  const std::shared_ptr<CommInfo>& world_info() const { return world_info_; }

  /// Allocates a fresh communicator context id.  Atomic: ranks on different
  /// shards may create communicators concurrently; the sequence of VALUES
  /// is then allocation-order dependent, but a context id never influences
  /// timing or payloads (it only names a multicast identity), so simulated
  /// results stay deterministic.
  std::uint32_t alloc_context() {
    return next_context_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Tuned collective auto-selection rules (coll/tuning.hpp) consulted by
  /// the kAuto policy of comm.coll().  Construction installs the
  /// MCMPI_COLL_TUNING environment table when set, the paper-crossover
  /// defaults otherwise; ClusterConfig::coll_tuning overrides via the
  /// setter.
  const coll::TuningTable& coll_tuning() const { return *coll_tuning_; }
  void set_coll_tuning(coll::TuningTable table);

  /// Runs `rank_main` as an SPMD program: one simulated process per rank,
  /// then drives the simulation until all ranks return.  May be called
  /// repeatedly (each call is a fresh program on the same cluster state).
  void run(const std::function<void(Proc&)>& rank_main);

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<inet::IpAddr> addresses_;
  std::vector<unsigned> shards_;  // home shard per rank
  std::shared_ptr<CommInfo> world_info_;
  std::shared_ptr<coll::TuningTable> coll_tuning_;
  std::atomic<std::uint32_t> next_context_{1};
};

}  // namespace mcmpi::mpi
