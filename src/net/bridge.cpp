#include "net/bridge.hpp"

#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::net {

Bridge::Bridge(sim::Simulator& sim, const PortConfig& a, const PortConfig& b,
               SimTime latency, SegmentOf segment_of)
    : sim_(sim),
      latency_(latency),
      segment_of_(std::move(segment_of)),
      a_(make_port(sim, a)),
      b_(make_port(sim, b)) {
  MC_EXPECTS_MSG(latency_ > kTimeZero,
                 "a trunk needs positive latency (it is the simulator's "
                 "conservative lookahead)");
  MC_EXPECTS_MSG(a.segment != b.segment, "a bridge joins two segments");
  a_.peer = &b_;
  b_.peer = &a_;
  a_.nic->set_rx_handler([this](const Frame& f) { on_rx(a_, f); });
  b_.nic->set_rx_handler([this](const Frame& f) { on_rx(b_, f); });
}

Bridge::Port Bridge::make_port(sim::Simulator& sim,
                               const PortConfig& config) {
  MC_EXPECTS(config.network != nullptr);
  Port port;
  port.nic = std::make_unique<Nic>(sim, config.mac, config.name);
  port.segment = config.segment;
  port.shard = config.shard;
  port.nic->set_segment(config.segment);
  port.nic->set_promiscuous(true);
  port.nic->attach_to(*config.network);
  return port;
}

void Bridge::on_rx(Port& local, const Frame& frame) {
  // Split horizon: forward only first-hop frames.  Anything injected by a
  // bridge (this one or a peer trunk of the mesh) already crossed one trunk
  // and must not cross another.
  if (frame.origin_segment != local.segment) {
    return;
  }
  if (!frame.dst.is_broadcast() && !frame.dst.is_multicast()) {
    const int dst_segment = segment_of_(frame.dst);
    if (dst_segment < 0 ||
        static_cast<std::uint16_t>(dst_segment) != local.peer->segment) {
      return;  // local traffic, or bound for a different trunk of the mesh
    }
  } else if (!frame.dst.is_broadcast() &&
             local.scoped_groups.count(frame.dst.bits()) != 0) {
    return;  // group is segment-local: every member already heard it
  }
  // Trunk fault model: consulted on the ingress shard, so the decision
  // stream is deterministic per direction regardless of shard mapping.  A
  // dropped frame never crosses; a reordered one crosses late (the extra
  // delay only ever ADDS to the lookahead latency, so the cross-shard
  // window contract holds); a duplicated one crosses twice back to back.
  SimTime extra = kTimeZero;
  bool duplicate = false;
  if (fault::FaultModel* model =
          local.faults.model_for(local.nic->mac().bits())) {
    const fault::FaultDecision d = model->next(sim_.counters());
    if (d.drop) {
      return;
    }
    extra = d.extra_delay;
    duplicate = d.duplicate;
  }
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  // The trunk hop: fixed backbone latency, then the frame contends on the
  // far segment through the peer port's ordinary transmit queue.  Across
  // shards this is the system's one cross-shard interaction; the latency is
  // the lookahead that keeps the conservative windows deterministic.
  Nic* peer_nic = local.peer->nic.get();
  const SimTime arrival = sim_.now() + latency_ + extra;
  sim_.schedule_cross(local.peer->shard, arrival,
                      [peer_nic, frame] { peer_nic->forward(frame); });
  if (duplicate) {
    sim_.schedule_cross(local.peer->shard, arrival,
                        [peer_nic, frame] { peer_nic->forward(frame); });
  }
}

void Bridge::scope_group(MacAddr group, std::uint16_t segment) {
  MC_EXPECTS_MSG(group.is_multicast(), "only multicast groups can be scoped");
  if (a_.segment == segment) {
    a_.scoped_groups.insert(group.bits());
  } else if (b_.segment == segment) {
    b_.scoped_groups.insert(group.bits());
  }
}

void Bridge::set_fault_plane(const fault::FaultPlane* plane) {
  a_.faults.reset(plane, /*trunk=*/true);
  b_.faults.reset(plane, /*trunk=*/true);
}

}  // namespace mcmpi::net
