#pragma once
/// \file bridge.hpp
/// Transparent two-port bridge joining two network segments.
///
/// Multi-segment topologies (several hubs/switches joined by a backbone)
/// are built as a full mesh of point-to-point Bridge trunks.  Each bridge
/// half is a promiscuous NIC attached to its segment like any station: it
/// hears every frame, and re-injects forwarded frames through the far
/// half's transmit queue, where they contend for the far medium exactly
/// like a local sender (CSMA/CD on a hub, per-port egress queueing on a
/// switch).  Forwarding is transparent — the original source address and
/// origin segment ride along — so far-side switches learn remote hosts
/// against the bridge port, exactly like a real learning bridge.
///
/// Forwarding rules (loop-free on a full mesh, every frame crossing each
/// trunk at most once):
///   * split horizon: only frames ORIGINATING on the local segment are
///     forwarded (Frame::origin_segment; a frame another bridge injected is
///     never re-forwarded);
///   * unicast: forwarded only when the destination host lives on the far
///     segment (static destination table — the cluster knows its hosts; a
///     real bridge would learn the same mapping from source addresses);
///   * multicast / broadcast: flooded by default (the backbone is a
///     multicast-router port in IGMP-snooping terms) — except groups the
///     cluster has marked segment-local via scope_group().  When every
///     member of a multicast group lives on one segment, flooding its
///     traffic across every trunk only burns far-side medium time; worse,
///     many segments running intra-segment multicast concurrently can
///     overflow far-side switch queues and stall each other on retransmit
///     timeouts.  Scoping is the snooping-bridge filter: frames of a scoped
///     group stop at the bridge.  Senders to a group are always members in
///     this codebase (every multicast engine is communicator-scoped), so
///     suppression can never starve a far-side receiver.
///
/// The trunk hop costs a fixed `latency` (backbone store-and-forward plus
/// propagation).  That latency is the conservative LOOKAHEAD of the sharded
/// simulator: when the two halves live on different shards the delivery is
/// a schedule_cross() — the only cross-shard interaction in the system —
/// and the simulator's window barrier keeps it deterministic.

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>

#include "common/time.hpp"
#include "net/fault.hpp"
#include "net/nic.hpp"

namespace mcmpi::net {

class Bridge {
 public:
  /// Where one half of the bridge plugs in.
  struct PortConfig {
    Network* network = nullptr;  ///< the segment's hub or switch
    std::uint16_t segment = 0;   ///< segment id (matches Nic::segment)
    unsigned shard = 0;          ///< simulator shard owning the segment
    MacAddr mac;                 ///< unique unicast address for the port
    std::string name;            ///< NIC name (diagnostics)
  };

  /// Maps a unicast host address to its segment; returns -1 for addresses
  /// that are not cluster hosts (other bridge ports) — such frames are not
  /// forwarded.
  using SegmentOf = std::function<int(MacAddr)>;

  Bridge(sim::Simulator& sim, const PortConfig& a, const PortConfig& b,
         SimTime latency, SegmentOf segment_of);
  Bridge(const Bridge&) = delete;
  Bridge& operator=(const Bridge&) = delete;

  SimTime latency() const { return latency_; }
  Nic& port_a() { return *a_.nic; }
  Nic& port_b() { return *b_.nic; }

  /// Frames this bridge pushed onto its trunk (both directions).
  std::uint64_t forwarded_frames() const {
    return forwarded_.load(std::memory_order_relaxed);
  }

  /// Attaches the cluster's fault plane to the trunk: each direction gets
  /// its own FaultModel (keyed by the ingress port's MAC), consulted on the
  /// ingress shard before the cross-shard hop.  nullptr detaches.
  void set_fault_plane(const fault::FaultPlane* plane);

  /// Marks a multicast group whose members all live on `segment` as
  /// segment-local: the port attached to that segment stops forwarding the
  /// group's frames across the trunk (no-op when neither port is on the
  /// segment).  MUST run on the shard owning `segment` — the mark lands in
  /// that port's private state, which only its own shard reads (on_rx runs
  /// there); the cluster delivers the call via a simulator event scheduled
  /// onto that shard, which also keeps the cut-over instant deterministic
  /// under the parallel driver.  Split horizon means only the member
  /// segment's port ever sees first-hop frames of the group, so one port
  /// per bridge suffices.  Marks are never removed: context ids are never
  /// reused (World::alloc_context), so a stale mark can only ever match
  /// traffic of the communicator that installed it.
  void scope_group(MacAddr group, std::uint16_t segment);

 private:
  struct Port {
    std::unique_ptr<Nic> nic;
    std::uint16_t segment = 0;
    unsigned shard = 0;
    Port* peer = nullptr;
    /// Trunk fault state for frames ENTERING at this port; owned here so
    /// only this port's shard ever touches it.
    fault::LinkFaultBank faults;
    /// Multicast group MACs scoped to this port's segment (scope_group):
    /// their frames are not forwarded.  Port-private like the fault bank —
    /// written and read only on this port's shard.
    std::unordered_set<std::uint64_t> scoped_groups;
  };

  Port make_port(sim::Simulator& sim, const PortConfig& config);
  void on_rx(Port& local, const Frame& frame);

  sim::Simulator& sim_;
  SimTime latency_;
  SegmentOf segment_of_;
  Port a_;
  Port b_;
  /// Atomic: the two ports run on different shards' worker threads under
  /// the parallel driver; relaxed increments keep the total exact.
  std::atomic<std::uint64_t> forwarded_{0};
};

}  // namespace mcmpi::net
