#pragma once
/// \file counters.hpp
/// Frame-level instrumentation shared by both network models.
///
/// The paper's analytic claims (§3.1, §3.2) are statements about *how many
/// frames hosts put on the network*; these counters make them testable:
/// `tab_frame_counts` compares host_tx by kind against the closed forms.

#include <cstdint>

#include "common/bytes.hpp"
#include "net/frame.hpp"
#include "sim/sched_counters.hpp"

namespace mcmpi::net {

/// Global payload copy/allocation counters (defined with PayloadRef in
/// common/bytes.hpp, re-exported here next to the frame counters).  Benches
/// and the perf-regression tests diff these around an operation to prove the
/// datapath is zero-copy: a multicast frame fanned out to N switch ports
/// must show zero per-port payload allocations.
using mcmpi::PayloadCounters;
using mcmpi::payload_counters;

/// Scheduler-cost counters (handoffs, coalesced delays, batched fan-out
/// callbacks), re-exported the same way.  Per-Simulator, not global: read
/// them via Simulator::sched_counters().  BENCH_<name>.json records handoffs
/// next to events and payload copies so scheduling cost is tracked across
/// PRs too.
using mcmpi::sim::SchedCounters;

struct NetCounters {
  // Frames transmitted by host NICs (one per transmission attempt that
  // completes; a multicast counts once — that is the point of the paper).
  std::uint64_t host_tx_frames = 0;
  std::uint64_t host_tx_data_frames = 0;
  std::uint64_t host_tx_control_frames = 0;
  std::uint64_t host_tx_ack_frames = 0;
  std::uint64_t host_tx_bytes = 0;  // wire bytes incl. framing overhead

  // Per-receiver deliveries (a multicast delivered to k receivers counts k).
  std::uint64_t deliveries = 0;
  std::uint64_t filtered = 0;  // received by NIC but not addressed to it

  // Hub-only effects.
  std::uint64_t collisions = 0;          // collision episodes
  std::uint64_t backoffs = 0;            // stations entering backoff
  std::uint64_t excessive_collision_drops = 0;

  // Injected / queue losses.
  std::uint64_t injected_drops = 0;
  std::uint64_t queue_drops = 0;  // switch egress tail drops

  void count_host_tx(const Frame& frame) {
    ++host_tx_frames;
    host_tx_bytes += static_cast<std::uint64_t>(frame.wire_bytes());
    switch (frame.kind) {
      case FrameKind::kData:
        ++host_tx_data_frames;
        break;
      case FrameKind::kControl:
        ++host_tx_control_frames;
        break;
      case FrameKind::kAck:
        ++host_tx_ack_frames;
        break;
      case FrameKind::kOther:
        break;
    }
  }

  /// Frames the paper's formulas count: everything except transport ACKs
  /// (the paper's MPICH-over-TCP baseline likewise ignores TCP ACK traffic).
  std::uint64_t formula_frames() const {
    return host_tx_frames - host_tx_ack_frames;
  }

  /// Fieldwise accumulate; used to total a multi-segment topology's
  /// per-segment counters.
  NetCounters& operator+=(const NetCounters& other) {
    host_tx_frames += other.host_tx_frames;
    host_tx_data_frames += other.host_tx_data_frames;
    host_tx_control_frames += other.host_tx_control_frames;
    host_tx_ack_frames += other.host_tx_ack_frames;
    host_tx_bytes += other.host_tx_bytes;
    deliveries += other.deliveries;
    filtered += other.filtered;
    collisions += other.collisions;
    backoffs += other.backoffs;
    excessive_collision_drops += other.excessive_collision_drops;
    injected_drops += other.injected_drops;
    queue_drops += other.queue_drops;
    return *this;
  }

  /// Fieldwise difference (this - earlier); used for per-experiment deltas.
  NetCounters since(const NetCounters& earlier) const {
    NetCounters d;
    d.host_tx_frames = host_tx_frames - earlier.host_tx_frames;
    d.host_tx_data_frames = host_tx_data_frames - earlier.host_tx_data_frames;
    d.host_tx_control_frames =
        host_tx_control_frames - earlier.host_tx_control_frames;
    d.host_tx_ack_frames = host_tx_ack_frames - earlier.host_tx_ack_frames;
    d.host_tx_bytes = host_tx_bytes - earlier.host_tx_bytes;
    d.deliveries = deliveries - earlier.deliveries;
    d.filtered = filtered - earlier.filtered;
    d.collisions = collisions - earlier.collisions;
    d.backoffs = backoffs - earlier.backoffs;
    d.excessive_collision_drops =
        excessive_collision_drops - earlier.excessive_collision_drops;
    d.injected_drops = injected_drops - earlier.injected_drops;
    d.queue_drops = queue_drops - earlier.queue_drops;
    return d;
  }
};

}  // namespace mcmpi::net
