#include "net/fault.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace mcmpi::net::fault {

namespace {

/// 53-bit mantissa of a splitmix64 draw as a uniform [0, 1) double.
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

double hash_unit(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t state = seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  return to_unit(splitmix64(state));
}

FaultDecision FaultModel::next(sim::SchedCounters& counters) {
  // One splitmix chain keyed by (seed, link, frame index): the per-stage
  // draws are independent of each other and of every other link, and the
  // whole sequence is reproducible from the triple alone.
  std::uint64_t state = seed_ ^ (link_id_ * 0x9E3779B97F4A7C15ULL) ^
                        ((frame_index_ + 1) * 0xD1B54A32D192ED03ULL);
  ++frame_index_;
  const double u_loss = to_unit(splitmix64(state));
  const double u_ge_move = to_unit(splitmix64(state));
  const double u_ge_drop = to_unit(splitmix64(state));
  const double u_dup = to_unit(splitmix64(state));
  const double u_reorder = to_unit(splitmix64(state));
  const double u_jitter = to_unit(splitmix64(state));

  FaultDecision d;
  if (profile_.ge_good_to_bad > 0.0) {
    // The chain advances on every frame, dropped or not, so burst lengths
    // follow the configured geometry regardless of what the other stages do.
    const bool was_bad = ge_bad_;
    ge_bad_ = was_bad ? u_ge_move >= profile_.ge_bad_to_good
                      : u_ge_move < profile_.ge_good_to_bad;
    if (was_bad && u_ge_drop < profile_.ge_loss_bad) {
      d.drop = true;
    }
  }
  if (u_loss < profile_.loss) {
    d.drop = true;
  }
  if (d.drop) {
    ++counters.frames_dropped;
    return d;
  }
  if (u_dup < profile_.duplicate) {
    d.duplicate = true;
    ++counters.frames_duplicated;
  }
  if (u_reorder < profile_.reorder) {
    // (0, jitter]: never zero, so a reordered frame always lands strictly
    // later than an in-order delivery scheduled at the same instant.
    const auto ns = static_cast<std::int64_t>(
        u_jitter * static_cast<double>(profile_.reorder_jitter.count()));
    d.extra_delay = SimTime{ns > 0 ? ns : 1};
    ++counters.frames_reordered;
  }
  return d;
}

FaultModel* LinkFaultBank::model_for(std::uint64_t link_id) {
  if (plane_ == nullptr) {
    return nullptr;
  }
  const FaultProfile& profile = trunk_ ? plane_->trunk : plane_->link;
  if (!profile.active()) {
    return nullptr;
  }
  // Trunk and host-edge models of the same underlying MAC must not share a
  // draw stream; salt the link id by role.
  const std::uint64_t key = trunk_ ? link_id ^ 0x7B5BAD0000000000ULL : link_id;
  const auto [it, inserted] =
      models_.try_emplace(key, FaultModel(profile, plane_->seed, key));
  return &it->second;
}

namespace {

/// Where in the spec a malformed token sits: `MCMPI_FAULTS` typos should be
/// findable from the message alone, so every parse error names the pair
/// (1-based position plus its text) and the offending token — not just a
/// bare range-check failure.
struct PairContext {
  std::size_t pair_number = 0;  // 1-based position in the spec
  std::string pair_text;

  std::string where() const {
    std::ostringstream os;
    os << "pair " << pair_number << " ('" << pair_text << "')";
    return os.str();
  }
};

double parse_probability(const std::string& key, const std::string& value,
                         const PairContext& ctx) {
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || p < 0.0 || p > 1.0) {
    throw std::invalid_argument(
        "MCMPI_FAULTS: " + ctx.where() + ": '" + key +
        "' needs a probability in [0, 1], offending token '" + value + "'");
  }
  return p;
}

std::int64_t parse_count(const std::string& key, const std::string& value,
                         const PairContext& ctx) {
  std::size_t used = 0;
  std::int64_t n = 0;
  try {
    n = std::stoll(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || n < 0) {
    throw std::invalid_argument(
        "MCMPI_FAULTS: " + ctx.where() + ": '" + key +
        "' needs a non-negative count, offending token '" + value + "'");
  }
  return n;
}

}  // namespace

FaultConfig FaultConfig::parse(const std::string& spec) {
  FaultConfig config;
  std::stringstream pairs(spec);
  std::string pair;
  PairContext ctx;
  while (std::getline(pairs, pair, ',')) {
    const auto first = pair.find_first_not_of(" \t");
    if (first == std::string::npos) {
      continue;
    }
    pair = pair.substr(first, pair.find_last_not_of(" \t") - first + 1);
    ++ctx.pair_number;
    ctx.pair_text = pair;
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("MCMPI_FAULTS: " + ctx.where() +
                                  ": expected key=value");
    }
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "loss") {
      config.link.loss = parse_probability(key, value, ctx);
    } else if (key == "dup") {
      config.link.duplicate = parse_probability(key, value, ctx);
    } else if (key == "reorder") {
      config.link.reorder = parse_probability(key, value, ctx);
    } else if (key == "jitter_us") {
      config.link.reorder_jitter = microseconds(parse_count(key, value, ctx));
    } else if (key == "burst") {
      std::stringstream fields(value);
      std::string gb;
      std::string bg;
      std::string bad;
      if (!std::getline(fields, gb, ':') || !std::getline(fields, bg, ':') ||
          !std::getline(fields, bad)) {
        throw std::invalid_argument(
            "MCMPI_FAULTS: " + ctx.where() +
            ": burst needs P(g->b):P(b->g):loss, offending token '" + value +
            "'");
      }
      config.link.ge_good_to_bad = parse_probability("burst g->b", gb, ctx);
      config.link.ge_bad_to_good = parse_probability("burst b->g", bg, ctx);
      config.link.ge_loss_bad = parse_probability("burst loss", bad, ctx);
    } else if (key == "trunk_loss") {
      config.trunk.loss = parse_probability(key, value, ctx);
    } else if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(parse_count(key, value, ctx));
    } else if (key == "skew") {
      config.host_speed_skew = parse_probability(key, value, ctx);
    } else if (key == "xflows") {
      config.cross_flows = static_cast<int>(parse_count(key, value, ctx));
    } else if (key == "xframes") {
      config.cross_frames = static_cast<int>(parse_count(key, value, ctx));
    } else if (key == "xbytes") {
      config.cross_bytes =
          static_cast<std::size_t>(parse_count(key, value, ctx));
    } else if (key == "xinterval_us") {
      config.cross_interval = microseconds(parse_count(key, value, ctx));
    } else {
      throw std::invalid_argument("MCMPI_FAULTS: " + ctx.where() +
                                  ": unknown key '" + key + "'");
    }
  }
  return config;
}

FaultConfig FaultConfig::from_env() {
  const char* env = std::getenv("MCMPI_FAULTS");
  if (env == nullptr || *env == '\0') {
    return FaultConfig{};
  }
  return parse(env);
}

}  // namespace mcmpi::net::fault
