#pragma once
/// \file fault.hpp
/// Adversarial-network fault injection: per-link fault models.
///
/// The paper's entire reliability story (ack-mcast's ORNL ack discipline,
/// the sequencer's NACK recovery, the segmented pipeline's per-chunk
/// retransmission) exists because UDP multicast is lossy — this layer makes
/// the simulated network actually adversarial so those recovery paths are
/// exercised, tested and benchmarked instead of shipping dead.
///
/// A FaultModel sits on one LINK — one (delivery edge, receiver) pair: a
/// hub's repeater-to-station edge, a switch's egress port, or a bridge's
/// trunk hop.  It composes four stages, consulted once per frame:
///
///   * independent loss     — drop with probability `loss`;
///   * Gilbert–Elliott loss — a two-state Markov chain (good/bad) advanced
///     once per frame; in the bad state frames drop with `ge_loss_bad`
///     (bursty loss, the regime that separates NACK schemes from ACK
///     schemes);
///   * duplication          — deliver a second copy, back to back;
///   * reorder              — delay THIS delivery by a bounded jitter, so
///     it lands behind frames transmitted after it.
///
/// Determinism discipline: every decision is a pure function of
/// (fault seed, link id, per-link frame index).  The per-stage draws come
/// from a splitmix64 chain keyed by exactly that triple — no shared RNG,
/// no state outside the link — and the Gilbert–Elliott state advances once
/// per frame, so the whole drop schedule of a link is fixed by its own
/// delivery order.  Each link's deliveries are executed by the one shard
/// that owns its segment (trunk decisions by the ingress port's shard), and
/// shard event order is bit-identical across shard counts, serial/parallel
/// drivers and fiber/thread backends — therefore so is the fault schedule.
/// The frames_dropped/duplicated/reordered counters land in the executing
/// shard's SchedCounters, merging like every other scheduler counter.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/sched_counters.hpp"

namespace mcmpi::net::fault {

/// One link's fault stages; everything off by default.
struct FaultProfile {
  /// Independent per-frame drop probability.
  double loss = 0.0;
  /// Gilbert–Elliott two-state chain: P(good->bad) and P(bad->good) per
  /// frame; frames seen in the bad state drop with `ge_loss_bad`.
  double ge_good_to_bad = 0.0;
  double ge_bad_to_good = 0.0;
  double ge_loss_bad = 0.0;
  /// Per-frame duplication probability (a second copy, back to back).
  double duplicate = 0.0;
  /// Per-frame reorder probability; a reordered frame is delivered late by
  /// a uniform draw from (0, reorder_jitter].
  double reorder = 0.0;
  SimTime reorder_jitter = microseconds(50);

  bool active() const {
    return loss > 0.0 || ge_good_to_bad > 0.0 || duplicate > 0.0 ||
           reorder > 0.0;
  }
  /// May this profile drop or reorder frames?  (Duplication alone is
  /// harmless to every framed receiver — stale duplicates are skipped.)
  bool lossy() const {
    return loss > 0.0 || (ge_good_to_bad > 0.0 && ge_loss_bad > 0.0) ||
           reorder > 0.0;
  }
};

/// Immutable, cluster-wide fault configuration the delivery edges share.
/// Owned by the cluster; networks and bridges hold a const pointer.
struct FaultPlane {
  FaultProfile link;   ///< host delivery edges (hub stations, switch ports)
  FaultProfile trunk;  ///< bridge trunk hops
  std::uint64_t seed = 0;
};

/// What happens to one frame on one link.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  /// > 0: deliver this frame late by that much (reorder).
  SimTime extra_delay = kTimeZero;
};

/// Uniform [0, 1) hash of (seed, salt) — the stateless draw primitive the
/// fault stages and the per-host speed skew share.
double hash_unit(std::uint64_t seed, std::uint64_t salt);

/// One link's deterministic fault state.
class FaultModel {
 public:
  FaultModel(const FaultProfile& profile, std::uint64_t seed,
             std::uint64_t link_id)
      : profile_(profile), seed_(seed), link_id_(link_id) {}

  /// Decides the fate of the link's next frame (advancing the per-link
  /// frame index and Gilbert–Elliott state) and counts it into `counters`
  /// — pass the executing shard's counters.
  FaultDecision next(sim::SchedCounters& counters);

  std::uint64_t frames_seen() const { return frame_index_; }

 private:
  FaultProfile profile_;
  std::uint64_t seed_ = 0;
  std::uint64_t link_id_ = 0;
  std::uint64_t frame_index_ = 0;
  bool ge_bad_ = false;
};

/// Per-owner bank of link models.  Each Network (and each bridge port)
/// owns its own bank, so the lazily grown map is only ever touched by the
/// one shard executing that component — no cross-shard mutation exists.
class LinkFaultBank {
 public:
  /// (Re)binds the bank to a plane; `trunk` selects which profile applies.
  void reset(const FaultPlane* plane, bool trunk) {
    plane_ = plane;
    trunk_ = trunk;
    models_.clear();
  }

  /// The link's model, created on first use; nullptr when no plane is
  /// attached or the selected profile is entirely off (the zero-overhead
  /// default: delivery code skips the fault path completely).
  FaultModel* model_for(std::uint64_t link_id);

 private:
  const FaultPlane* plane_ = nullptr;
  bool trunk_ = false;
  std::unordered_map<std::uint64_t, FaultModel> models_;
};

/// Cluster-level fault configuration: the link/trunk profiles plus the
/// adversarial environment knobs (background cross traffic, per-host CPU
/// speed skew).  Parsed from the MCMPI_FAULTS environment variable when the
/// ClusterConfig does not set one explicitly.
struct FaultConfig {
  FaultProfile link;
  FaultProfile trunk;
  /// 0 derives the fault seed from the cluster seed.
  std::uint64_t seed = 0;
  /// ±fraction applied to each host's cpu_mhz via a deterministic per-host
  /// draw (0.1 = hosts run up to 10% faster or slower than spec'd).
  double host_speed_skew = 0.0;
  /// Background cross-traffic generator: `cross_flows` sender processes
  /// (flow i starts at host i mod N, targets another host's unused UDP
  /// port), each pacing `cross_frames` datagrams of `cross_bytes` at a
  /// jittered `cross_interval` — pure wire load that contends with the
  /// collectives under test.
  int cross_flows = 0;
  int cross_frames = 0;
  std::size_t cross_bytes = 512;
  SimTime cross_interval = microseconds(500);

  bool enabled() const {
    return link.active() || trunk.active() || host_speed_skew > 0.0 ||
           cross_flows > 0;
  }
  /// May frames be dropped or reordered anywhere?  Gates kAuto away from
  /// loss-intolerant algorithms (Proc::network_lossy).
  bool lossy() const { return link.lossy() || trunk.lossy(); }

  /// Parses the MCMPI_FAULTS syntax: comma-separated key=value pairs.
  ///   loss=0.01           independent link loss probability
  ///   burst=GB:BG:L       Gilbert–Elliott (P(g->b), P(b->g), loss in bad)
  ///   dup=0.001           duplication probability
  ///   reorder=0.01        reorder probability
  ///   jitter_us=50        reorder delay bound (microseconds)
  ///   trunk_loss=0.01     independent loss on bridge trunks
  ///   seed=7              fault seed (default: derived from cluster seed)
  ///   skew=0.1            per-host cpu speed skew fraction
  ///   xflows=4            background cross-traffic flows
  ///   xframes=200         datagrams per flow
  ///   xbytes=512          payload bytes per datagram
  ///   xinterval_us=500    mean inter-datagram gap (microseconds)
  /// Throws std::invalid_argument on unknown keys or malformed values.
  static FaultConfig parse(const std::string& spec);

  /// MCMPI_FAULTS from the environment; a disabled config when unset/empty.
  static FaultConfig from_env();
};

}  // namespace mcmpi::net::fault
