#include "net/frame.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace mcmpi::net {

std::string MacAddr::to_string() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(17);
  for (int octet = 5; octet >= 0; --octet) {
    const auto byte = static_cast<std::uint8_t>(bits_ >> (8 * octet));
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
    if (octet != 0) {
      out.push_back(':');
    }
  }
  return out;
}

std::int64_t Frame::frame_bytes() const {
  MC_EXPECTS_MSG(l3_bytes() <= kMaxPayloadBytes,
                 "frame payload exceeds Ethernet MTU");
  const std::int64_t raw = kHeaderBytes + l3_bytes() + kFcsBytes;
  return std::max(raw, kMinFrameBytes);
}

std::int64_t Frame::wire_bytes() const {
  return kPreambleBytes + frame_bytes() + kInterFrameGapBytes;
}

SimTime Frame::wire_time(std::int64_t bits_per_second) const {
  return transmission_time(wire_bytes(), bits_per_second);
}

}  // namespace mcmpi::net
