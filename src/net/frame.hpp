#pragma once
/// \file frame.hpp
/// Ethernet frame model with exact wire accounting.
///
/// Latency fidelity depends on byte-exact frame sizes: 14 B MAC header +
/// 4 B FCS, 46 B minimum payload (64 B minimum frame), plus 8 B preamble/SFD
/// and 12 B inter-frame gap of wire occupancy per frame.  The paper's "scout
/// messages with no data" are minimum-size frames; a 1472 B UDP payload fills
/// exactly one maximum-size frame.

#include <cstdint>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "net/mac.hpp"

namespace mcmpi::net {

/// Instrumentation tag: which protocol role this frame plays.  Does not
/// affect behaviour; lets tests and benches reproduce the paper's frame
/// counts (which, like the paper, ignore transport acknowledgements).
enum class FrameKind : std::uint8_t {
  kData = 0,     // carries application payload
  kControl = 1,  // scout / barrier / rendezvous control
  kAck = 2,      // transport-level acknowledgement
  kOther = 3,
};

struct Frame {
  MacAddr src;
  MacAddr dst;
  std::uint16_t ethertype = kEtherTypeIpv4;
  FrameKind kind = FrameKind::kData;
  /// Segment the frame was originally transmitted on (stamped by the host
  /// NIC's send; preserved by bridges).  Split-horizon rule of the
  /// multi-segment topologies: a bridge only forwards frames originating on
  /// its own segment, so a flooded frame crosses each trunk exactly once.
  /// Out-of-band bookkeeping, not wire bytes (real bridges infer this from
  /// the ingress port).
  std::uint16_t origin_segment = 0;
  /// L3 header bytes for this frame (e.g. the per-fragment IP header).
  /// Small and built once per frame; separate from `payload` so the payload
  /// can stay a zero-copy slice of the original datagram.
  PayloadRef header;
  /// L3 payload bytes.  A ref-counted slice: hub/switch fan-out, egress
  /// queues and receiver-side reassembly all share the sender's single
  /// allocation — copying a Frame never copies payload bytes.
  PayloadRef payload;

  static constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

  static constexpr std::int64_t kHeaderBytes = 14;    // dst+src+type
  static constexpr std::int64_t kFcsBytes = 4;
  static constexpr std::int64_t kMinFrameBytes = 64;  // header..fcs inclusive
  static constexpr std::int64_t kMaxPayloadBytes = 1500;  // MTU
  static constexpr std::int64_t kPreambleBytes = 8;
  static constexpr std::int64_t kInterFrameGapBytes = 12;

  /// L3 bytes carried by this frame (header + payload views).
  std::int64_t l3_bytes() const {
    return static_cast<std::int64_t>(header.size() + payload.size());
  }

  /// Frame size on the segment (header + padded payload + FCS), excluding
  /// preamble and IFG.
  std::int64_t frame_bytes() const;

  /// Total wire occupancy including preamble/SFD and inter-frame gap — what
  /// the medium is busy for.
  std::int64_t wire_bytes() const;

  /// Wire occupancy time at `bits_per_second`.
  SimTime wire_time(std::int64_t bits_per_second) const;
};

}  // namespace mcmpi::net
