#include "net/hub.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace mcmpi::net {

Hub::Hub(sim::Simulator& sim) : Hub(sim, Params{}) {}

Hub::Hub(sim::Simulator& sim, Params params) : sim_(sim), params_(params) {}

void Hub::seed_backoff_stream(std::uint64_t seed, std::uint64_t device_id) {
  // Same keying idiom as the fault plane's per-link streams: one splitmix64
  // mix of (seed, device id) seeds an independent xoshiro stream, so the
  // slots a collision domain draws are a pure function of the topology —
  // never of the shard layout executing it.
  std::uint64_t mix = seed ^ (0x9E3779B97F4A7C15ULL * (device_id + 1));
  backoff_rng_.emplace(splitmix64(mix));
}

void Hub::attach(Nic& nic) {
  auto station = std::make_unique<Station>();
  station->nic = &nic;
  stations_.push_back(std::move(station));
}

Hub::Station& Hub::station_for(Nic& nic) {
  for (auto& s : stations_) {
    if (s->nic == &nic) {
      return *s;
    }
  }
  MC_ASSERT_MSG(false, "NIC not attached to this hub");
  __builtin_unreachable();
}

void Hub::nic_has_frames(Nic& nic) {
  Station& s = station_for(nic);
  // The NIC signals only on the empty->non-empty transition; if the station
  // is mid-backoff or already contending, the pending frame will be found
  // when that resolves.
  if (s.state == StationState::kIdle) {
    station_ready(s);
  }
}

void Hub::station_ready(Station& s) {
  MC_ASSERT(s.nic->has_pending());
  switch (medium_) {
    case MediumState::kIdle:
      MC_ASSERT(deferring_.empty());
      begin_transmission(s);
      return;
    case MediumState::kTransmitting:
      if (sim_.now() - tx_start_ <= params_.sense_window) {
        collide_with_current(s);
      } else {
        s.state = StationState::kDeferring;
        deferring_.push_back(&s);
      }
      return;
    case MediumState::kJamming:
      s.state = StationState::kDeferring;
      deferring_.push_back(&s);
      return;
  }
}

void Hub::begin_transmission(Station& s) {
  MC_ASSERT(medium_ == MediumState::kIdle);
  s.state = StationState::kTransmitting;
  medium_ = MediumState::kTransmitting;
  transmitter_ = &s;
  tx_start_ = sim_.now();
  const SimTime duration = s.nic->head().wire_time(params_.bits_per_second);
  tx_complete_event_ =
      sim_.schedule_after(duration, [this] { finish_transmission(); });
}

void Hub::finish_transmission() {
  MC_ASSERT(medium_ == MediumState::kTransmitting && transmitter_ != nullptr);
  Station& sender = *transmitter_;
  Frame frame = sender.nic->pop_head();
  counters_.count_host_tx(frame);
  sender.attempts = 0;
  sender.state = StationState::kIdle;
  transmitter_ = nullptr;
  medium_ = MediumState::kIdle;

  // Deliver to every other station after the repeater latency.  The
  // repeater reaches everyone simultaneously, so this is already the
  // batched same-tick form Simulator::schedule_batch_at exists for — one
  // event, one heap entry, all deliveries back to back (the switch, whose
  // per-port queues forced one event per egress port, needed the explicit
  // batch API; see Switch::fan_out).  The frame is captured by value: the
  // medium may already carry the next frame when the delivery callback
  // runs.  The capture is cheap — Frame's header/payload are ref-counted
  // views, and the lambda fits the event queue's inline storage, so
  // repeating a frame to N stations costs no payload copies.
  sim_.schedule_after(params_.repeater_latency,
                      [this, frame = std::move(frame), sender = &sender] {
                        for (auto& s : stations_) {
                          if (s.get() == sender) {
                            continue;
                          }
                          deliver_through_faults(sim_, frame, *s->nic);
                        }
                      });

  // Contention at end of carrier: every deferring station plus the sender
  // (if it has more frames) starts after the IFG, which is already folded
  // into wire_time.
  std::vector<Station*> contenders = std::move(deferring_);
  deferring_.clear();
  if (sender.nic->has_pending()) {
    contenders.push_back(&sender);
  }
  arbitrate(std::move(contenders));
}

void Hub::arbitrate(std::vector<Station*> contenders) {
  MC_ASSERT(medium_ == MediumState::kIdle);
  if (contenders.empty()) {
    return;
  }
  if (contenders.size() == 1) {
    begin_transmission(*contenders.front());
    return;
  }
  collision(std::move(contenders));
}

void Hub::collide_with_current(Station& late) {
  MC_ASSERT(medium_ == MediumState::kTransmitting && transmitter_ != nullptr);
  Station& current = *transmitter_;
  const bool cancelled = sim_.cancel(tx_complete_event_);
  MC_ASSERT(cancelled);
  tx_complete_event_ = sim::kInvalidEvent;
  // The aborted frame stays at the head of the transmitter's queue.
  transmitter_ = nullptr;
  medium_ = MediumState::kIdle;
  collision({&current, &late});
}

void Hub::collision(std::vector<Station*> participants) {
  MC_ASSERT(participants.size() >= 2);
  ++counters_.collisions;
  medium_ = MediumState::kJamming;
  sim_.schedule_after(params_.jam_time, [this] { medium_idle(); });
  for (Station* s : participants) {
    ++s->attempts;
    if (s->attempts > params_.max_attempts) {
      // Excessive collisions: the interface gives up on this frame.
      ++counters_.excessive_collision_drops;
      (void)s->nic->pop_head();
      s->attempts = 0;
      if (!s->nic->has_pending()) {
        s->state = StationState::kIdle;
        continue;
      }
    }
    schedule_backoff(*s);
  }
}

void Hub::schedule_backoff(Station& s) {
  ++counters_.backoffs;
  s.state = StationState::kBackoff;
  const int k = std::min(std::max(s.attempts, 1), params_.max_backoff_exponent);
  const std::uint64_t slots = backoff_rng_.has_value()
                                  ? backoff_rng_->below(1ULL << k)
                                  : sim_.rng().below(1ULL << k);
  const SimTime delay =
      params_.jam_time + params_.slot_time * static_cast<std::int64_t>(slots);
  Station* target = &s;
  sim_.schedule_after(delay, [this, target] {
    MC_ASSERT(target->state == StationState::kBackoff);
    target->state = StationState::kIdle;
    if (target->nic->has_pending()) {
      station_ready(*target);
    }
  });
}

void Hub::medium_idle() {
  MC_ASSERT(medium_ == MediumState::kJamming);
  medium_ = MediumState::kIdle;
  std::vector<Station*> contenders = std::move(deferring_);
  deferring_.clear();
  arbitrate(std::move(contenders));
}

}  // namespace mcmpi::net
