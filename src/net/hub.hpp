#pragma once
/// \file hub.hpp
/// Half-duplex shared Fast Ethernet segment (repeater hub) with CSMA/CD.
///
/// This models the 3Com SuperStack II hub of the paper's testbed.  All
/// stations share one collision domain:
///   * a station transmits only when the medium is idle; otherwise it defers;
///   * stations that become ready within `sense_window` of a transmission
///     start collide with it (signal has not propagated yet);
///   * all stations deferring when the medium goes idle start simultaneously
///     — two or more of them collide;
///   * colliding stations jam, then back off by a uniformly random number of
///     slot times with a truncated binary-exponential exponent (IEEE 802.3),
///     drawn from the simulator's deterministic RNG.
///
/// Collisions are the paper's explanation for run-to-run variance over the
/// hub (Figs. 7, 9) and for MPICH's poor large-message hub performance
/// (Fig. 11); this model reproduces both effects.

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/network.hpp"
#include "net/nic.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::net {

class Hub : public Network {
 public:
  struct Params {
    std::int64_t bits_per_second = 100'000'000;
    /// Repeater + propagation latency applied to deliveries.
    SimTime repeater_latency = microseconds_f(1.0);
    /// 512 bit-times at 100 Mb/s.
    SimTime slot_time = microseconds_f(5.12);
    /// Jam signal + recovery occupancy after a collision.
    SimTime jam_time = microseconds_f(3.2);
    /// A second sender starting within this window of a transmission start
    /// has not seen the carrier yet and collides with it.
    SimTime sense_window = microseconds_f(0.7);
    int max_attempts = 16;        // excessive-collision drop threshold
    int max_backoff_exponent = 10;
  };

  explicit Hub(sim::Simulator& sim);
  Hub(sim::Simulator& sim, Params params);

  void attach(Nic& nic) override;
  void nic_has_frames(Nic& nic) override;
  bool is_shared_medium() const override { return true; }

  const Params& params() const { return params_; }

  /// Gives this collision domain its own splitmix64-seeded backoff stream,
  /// keyed by (seed, device id) the way the fault plane keys its per-link
  /// streams.  Without it backoff slots come from the executing shard's
  /// RNG, so multi-segment timings would depend on which shard happens to
  /// own the segment — the cluster layer seeds every hub of a multi-segment
  /// topology and leaves single-segment hubs on the legacy shard-0 stream
  /// (whose draws the committed single-segment baselines pin).
  void seed_backoff_stream(std::uint64_t seed, std::uint64_t device_id);

 private:
  enum class StationState { kIdle, kDeferring, kTransmitting, kBackoff };
  struct Station {
    Nic* nic = nullptr;
    StationState state = StationState::kIdle;
    int attempts = 0;
  };
  enum class MediumState { kIdle, kTransmitting, kJamming };

  Station& station_for(Nic& nic);
  /// A station acquired a frame (or finished backoff) and contends for the
  /// medium.
  void station_ready(Station& s);
  void begin_transmission(Station& s);
  void finish_transmission();
  /// A late sender collided with the in-progress transmission.
  void collide_with_current(Station& late);
  void collision(std::vector<Station*> participants);
  void medium_idle();
  /// Resolves contention when the medium becomes free.
  void arbitrate(std::vector<Station*> contenders);
  void schedule_backoff(Station& s);

  sim::Simulator& sim_;
  Params params_;
  /// Private per-device backoff stream (seed_backoff_stream); when absent,
  /// backoff slots draw from the executing shard's stream (legacy
  /// single-segment behavior).
  std::optional<Rng> backoff_rng_;
  std::vector<std::unique_ptr<Station>> stations_;
  std::vector<Station*> deferring_;
  MediumState medium_ = MediumState::kIdle;
  Station* transmitter_ = nullptr;
  SimTime tx_start_{};
  sim::EventId tx_complete_event_ = sim::kInvalidEvent;
};

}  // namespace mcmpi::net
