#pragma once
/// \file mac.hpp
/// 48-bit Ethernet MAC addresses.
///
/// Hosts get locally-administered unicast addresses derived from their index;
/// IP multicast groups map to 01:00:5e:xx:xx:xx exactly as RFC 1112
/// prescribes (low 23 bits of the group address).

#include <compare>
#include <cstdint>
#include <string>

namespace mcmpi::net {

class MacAddr {
 public:
  constexpr MacAddr() = default;
  explicit constexpr MacAddr(std::uint64_t bits) : bits_(bits & kMask) {}

  constexpr std::uint64_t bits() const { return bits_; }

  /// I/G bit of the first octet: set for multicast (and broadcast).
  constexpr bool is_multicast() const {
    return (bits_ & (1ULL << 40)) != 0;
  }
  constexpr bool is_broadcast() const { return bits_ == kMask; }

  friend constexpr auto operator<=>(const MacAddr&, const MacAddr&) = default;

  /// ff:ff:ff:ff:ff:ff
  static constexpr MacAddr broadcast() { return MacAddr(kMask); }

  /// Locally administered unicast address for host `index`:
  /// 02:00:00:00:00:<index>.
  static constexpr MacAddr host(std::uint32_t index) {
    return MacAddr((0x02ULL << 40) | index);
  }

  /// RFC 1112 mapping: 01:00:5e + low 23 bits of the IPv4 group address.
  static constexpr MacAddr ip_multicast(std::uint32_t group_ipv4) {
    return MacAddr((0x01005eULL << 24) | (group_ipv4 & 0x7FFFFFULL));
  }

  std::string to_string() const;

 private:
  static constexpr std::uint64_t kMask = 0xFFFFFFFFFFFFULL;
  std::uint64_t bits_ = 0;
};

}  // namespace mcmpi::net

template <>
struct std::hash<mcmpi::net::MacAddr> {
  std::size_t operator()(const mcmpi::net::MacAddr& mac) const noexcept {
    return std::hash<std::uint64_t>{}(mac.bits());
  }
};
