#include "net/network.hpp"

#include "net/nic.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::net {

void Network::deliver_through_faults(sim::Simulator& sim, const Frame& frame,
                                     Nic& receiver) {
  if (should_drop(frame, receiver)) {
    return;
  }
  fault::FaultModel* model = fault_bank_.model_for(receiver.mac().bits());
  if (model == nullptr) {
    receiver.deliver(frame);
    return;
  }
  const fault::FaultDecision d = model->next(sim.counters());
  if (d.drop) {
    ++counters_.injected_drops;
    return;
  }
  if (d.extra_delay > kTimeZero) {
    // Reorder: this delivery lands behind frames transmitted after it.  A
    // duplicate of a reordered frame still arrives with it (back to back at
    // the delayed instant) — duplication models the link repeating a frame,
    // not a second independent transit.
    Nic* nic = &receiver;
    const bool duplicate = d.duplicate;
    sim.schedule_after(d.extra_delay, [nic, frame, duplicate] {
      nic->deliver(frame);
      if (duplicate) {
        nic->deliver(frame);
      }
    });
    return;
  }
  receiver.deliver(frame);
  if (d.duplicate) {
    receiver.deliver(frame);
  }
}

}  // namespace mcmpi::net
