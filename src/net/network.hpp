#pragma once
/// \file network.hpp
/// Abstract L2 network a set of NICs attaches to.
///
/// Two concrete models exist, matching the paper's testbed:
///   Hub    — half-duplex shared medium with CSMA/CD (3Com SuperStack hub)
///   Switch — full-duplex store-and-forward with IGMP snooping (HP ProCurve)

#include <functional>

#include "net/counters.hpp"
#include "net/fault.hpp"
#include "net/frame.hpp"

namespace mcmpi::sim {
class Simulator;
}  // namespace mcmpi::sim

namespace mcmpi::net {

class Nic;

class Network {
 public:
  virtual ~Network() = default;

  /// Registers a NIC.  Attach order defines deterministic delivery order.
  virtual void attach(Nic& nic) = 0;

  /// Called by a NIC when its TX queue becomes non-empty.
  virtual void nic_has_frames(Nic& nic) = 0;

  /// True for shared-medium (half-duplex) networks.
  virtual bool is_shared_medium() const = 0;

  NetCounters& counters() { return counters_; }
  const NetCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = NetCounters{}; }

  /// Fault injection: return true to drop this frame for this receiver.
  /// Called once per (frame, receiver) at delivery time.
  using DropHook = std::function<bool(const Frame&, const Nic& receiver)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// Attaches the cluster's fault plane: every (frame, receiver) delivery
  /// edge consults a per-link FaultModel.  nullptr (the default) keeps the
  /// delivery path byte-identical to a fault-free network.
  void set_fault_plane(const fault::FaultPlane* plane) {
    fault_bank_.reset(plane, /*trunk=*/false);
  }

 protected:
  /// Applies the drop hook; counts injected drops.
  bool should_drop(const Frame& frame, const Nic& receiver) {
    if (drop_hook_ && drop_hook_(frame, receiver)) {
      ++counters_.injected_drops;
      return true;
    }
    return false;
  }

  /// The delivery edge shared by hub and switch: drop hook first (test
  /// instrumentation), then the receiver link's fault model — dropping,
  /// duplicating, or delaying (reorder) the delivery.  With no fault plane
  /// attached this is exactly `if (!should_drop(...)) receiver.deliver(...)`
  /// — no extra events, no behavior change.
  void deliver_through_faults(sim::Simulator& sim, const Frame& frame,
                              Nic& receiver);

  NetCounters counters_;

 private:
  DropHook drop_hook_;
  fault::LinkFaultBank fault_bank_;
};

}  // namespace mcmpi::net
