#include "net/nic.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::net {

Nic::Nic(sim::Simulator& sim, MacAddr mac, std::string name)
    : sim_(sim), mac_(mac), name_(std::move(name)) {
  MC_EXPECTS_MSG(!mac.is_multicast(), "NIC address must be unicast");
}

void Nic::attach_to(Network& network) {
  MC_EXPECTS_MSG(network_ == nullptr, "NIC already attached");
  network_ = &network;
  network.attach(*this);
}

void Nic::send(Frame frame) {
  frame.src = mac_;
  frame.origin_segment = segment_;
  forward(std::move(frame));
}

void Nic::forward(Frame frame) {
  MC_EXPECTS_MSG(network_ != nullptr, "NIC not attached to a network");
  tx_queue_.push_back(std::move(frame));
  if (tx_queue_.size() == 1) {
    network_->nic_has_frames(*this);
  }
}

void Nic::join_multicast(MacAddr group) {
  MC_EXPECTS(group.is_multicast());
  ++multicast_refs_[group];
}

void Nic::leave_multicast(MacAddr group) {
  const auto it = multicast_refs_.find(group);
  MC_EXPECTS_MSG(it != multicast_refs_.end(), "leave without matching join");
  if (--it->second == 0) {
    multicast_refs_.erase(it);
  }
}

bool Nic::accepts_multicast(MacAddr group) const {
  return promiscuous_ || multicast_refs_.contains(group);
}

bool Nic::accepts(MacAddr dst) const {
  if (promiscuous_ || dst == mac_ || dst.is_broadcast()) {
    return true;
  }
  return dst.is_multicast() && accepts_multicast(dst);
}

void Nic::deliver(const Frame& frame) {
  MC_ASSERT(network_ != nullptr);
  if (!accepts(frame.dst)) {
    ++network_->counters().filtered;
    return;
  }
  ++network_->counters().deliveries;
  if (rx_handler_) {
    rx_handler_(frame);
  }
}

const Frame& Nic::head() const {
  MC_EXPECTS(!tx_queue_.empty());
  return tx_queue_.front();
}

Frame Nic::pop_head() {
  MC_EXPECTS(!tx_queue_.empty());
  Frame f = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  return f;
}

}  // namespace mcmpi::net
