#pragma once
/// \file nic.hpp
/// Host network adapter.
///
/// The NIC owns the transmit queue (frames leave in FIFO order at whatever
/// pace the attached network permits) and the receive-side address filter:
/// its own unicast address, broadcast, and any multicast groups the host has
/// joined.  A frame passing the filter is handed synchronously to the
/// registered receive handler (the host's IP stack).

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/frame.hpp"
#include "net/network.hpp"

namespace mcmpi::sim {
class Simulator;
}

namespace mcmpi::net {

class Nic {
 public:
  using RxHandler = std::function<void(const Frame&)>;

  Nic(sim::Simulator& sim, MacAddr mac, std::string name);
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  MacAddr mac() const { return mac_; }
  const std::string& name() const { return name_; }
  sim::Simulator& simulator() { return sim_; }

  void attach_to(Network& network);
  Network* network() { return network_; }

  /// Network segment this NIC lives on (set by the cluster layer when it
  /// builds a multi-segment topology; stamps Frame::origin_segment).
  void set_segment(std::uint16_t segment) { segment_ = segment; }
  std::uint16_t segment() const { return segment_; }

  /// Promiscuous mode: accept every frame regardless of destination — how a
  /// bridge port listens to its whole segment (and why IGMP-snooping
  /// switches treat it as a member of every multicast group).
  void set_promiscuous(bool on) { promiscuous_ = on; }
  bool promiscuous() const { return promiscuous_; }

  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }

  /// Queues a frame for transmission.  The source address and origin
  /// segment are stamped here.
  void send(Frame frame);

  /// Queues a frame for transmission WITHOUT restamping source or origin —
  /// transparent bridging: the trunk re-injects the original host's frame
  /// onto the far segment.
  void forward(Frame frame);

  /// Multicast filter management (driven by the IGMP layer).  Joins are
  /// reference-counted so two sockets in one host can share a group.
  void join_multicast(MacAddr group);
  void leave_multicast(MacAddr group);
  bool accepts_multicast(MacAddr group) const;

  /// Full receive filter: unicast-to-me, broadcast, or joined multicast.
  bool accepts(MacAddr dst) const;

  /// Delivery from the network; applies the filter, then the RX handler.
  void deliver(const Frame& frame);

  // --- transmit-queue interface used by Network implementations ---
  bool has_pending() const { return !tx_queue_.empty(); }
  const Frame& head() const;
  /// Removes the head frame (after the network finished transmitting it).
  Frame pop_head();

 private:
  sim::Simulator& sim_;
  MacAddr mac_;
  std::string name_;
  Network* network_ = nullptr;
  RxHandler rx_handler_;
  std::deque<Frame> tx_queue_;
  std::unordered_map<MacAddr, int> multicast_refs_;
  std::uint16_t segment_ = 0;
  bool promiscuous_ = false;
};

}  // namespace mcmpi::net
