#include "net/switch.hpp"

#include "common/assert.hpp"

namespace mcmpi::net {

Switch::Switch(sim::Simulator& sim) : Switch(sim, Params{}) {}

Switch::Switch(sim::Simulator& sim, Params params)
    : sim_(sim), params_(params) {}

void Switch::attach(Nic& nic) {
  auto port = std::make_unique<Port>();
  port->nic = &nic;
  port->index = ports_.size();
  ports_.push_back(std::move(port));
}

Switch::Port& Switch::port_for(Nic& nic) {
  for (auto& p : ports_) {
    if (p->nic == &nic) {
      return *p;
    }
  }
  MC_ASSERT_MSG(false, "NIC not attached to this switch");
  __builtin_unreachable();
}

void Switch::nic_has_frames(Nic& nic) {
  Port& port = port_for(nic);
  if (!port.uplink_busy) {
    start_uplink(port);
  }
}

void Switch::start_uplink(Port& port) {
  MC_ASSERT(port.nic->has_pending());
  port.uplink_busy = true;
  const SimTime duration =
      port.nic->head().wire_time(params_.bits_per_second) +
      params_.port_latency;
  Port* target = &port;
  sim_.schedule_after(duration, [this, target] { uplink_done(*target); });
}

void Switch::uplink_done(Port& port) {
  Frame frame = port.nic->pop_head();
  counters_.count_host_tx(frame);
  fdb_[frame.src] = port.index;  // learn / refresh
  const std::size_t ingress = port.index;
  sim_.schedule_after(params_.forwarding_latency,
                      [this, frame = std::move(frame), ingress]() mutable {
                        forward(std::move(frame), ingress);
                      });
  if (port.nic->has_pending()) {
    start_uplink(port);
  } else {
    port.uplink_busy = false;
  }
}

// Fan-out duplicates the Frame per egress port, but Frame::header/payload
// are ref-counted views: all ports (and all receivers' stacks downstream)
// share the sender's single payload allocation.
void Switch::forward(Frame frame, std::size_t ingress) {
  const MacAddr dst = frame.dst;
  if (dst.is_broadcast()) {
    for (auto& p : ports_) {
      if (p->index != ingress) {
        enqueue_egress(*p, frame);
      }
    }
    return;
  }
  if (dst.is_multicast()) {
    // IGMP snooping: copy only to ports whose host joined the group.
    for (auto& p : ports_) {
      if (p->index != ingress && p->nic->accepts_multicast(dst)) {
        enqueue_egress(*p, frame);
      }
    }
    return;
  }
  const auto learned = fdb_.find(dst);
  if (learned == fdb_.end()) {
    // Unknown unicast: flood.
    for (auto& p : ports_) {
      if (p->index != ingress) {
        enqueue_egress(*p, frame);
      }
    }
    return;
  }
  if (learned->second != ingress) {
    enqueue_egress(*ports_[learned->second], std::move(frame));
  }
  // dst lives on the ingress segment: nothing to do.
}

void Switch::enqueue_egress(Port& port, Frame frame) {
  if (port.egress.size() >= params_.max_queue_frames) {
    ++counters_.queue_drops;
    return;
  }
  port.egress.push_back(std::move(frame));
  if (!port.egress_busy) {
    start_egress(port);
  }
}

void Switch::start_egress(Port& port) {
  MC_ASSERT(!port.egress.empty());
  port.egress_busy = true;
  const SimTime duration =
      port.egress.front().wire_time(params_.bits_per_second) +
      params_.port_latency;
  Port* target = &port;
  sim_.schedule_after(duration, [this, target] { egress_done(*target); });
}

void Switch::egress_done(Port& port) {
  MC_ASSERT(!port.egress.empty());
  Frame frame = std::move(port.egress.front());
  port.egress.pop_front();
  if (!should_drop(frame, *port.nic)) {
    port.nic->deliver(frame);
  }
  if (!port.egress.empty()) {
    start_egress(port);
  } else {
    port.egress_busy = false;
  }
}

}  // namespace mcmpi::net
