#include "net/switch.hpp"

#include "common/assert.hpp"

namespace mcmpi::net {

Switch::Switch(sim::Simulator& sim) : Switch(sim, Params{}) {}

Switch::Switch(sim::Simulator& sim, Params params)
    : sim_(sim), params_(params) {}

void Switch::attach(Nic& nic) {
  auto port = std::make_unique<Port>();
  port->nic = &nic;
  port->index = ports_.size();
  ports_.push_back(std::move(port));
}

Switch::Port& Switch::port_for(Nic& nic) {
  for (auto& p : ports_) {
    if (p->nic == &nic) {
      return *p;
    }
  }
  MC_ASSERT_MSG(false, "NIC not attached to this switch");
  __builtin_unreachable();
}

void Switch::nic_has_frames(Nic& nic) {
  Port& port = port_for(nic);
  if (!port.uplink_busy) {
    start_uplink(port);
  }
}

void Switch::start_uplink(Port& port) {
  MC_ASSERT(port.nic->has_pending());
  port.uplink_busy = true;
  const SimTime duration =
      port.nic->head().wire_time(params_.bits_per_second) +
      params_.port_latency;
  Port* target = &port;
  sim_.schedule_after(duration, [this, target] { uplink_done(*target); });
}

void Switch::uplink_done(Port& port) {
  Frame frame = port.nic->pop_head();
  counters_.count_host_tx(frame);
  fdb_[frame.src] = port.index;  // learn / refresh
  const std::size_t ingress = port.index;
  sim_.schedule_after(params_.forwarding_latency,
                      [this, frame = std::move(frame), ingress]() mutable {
                        forward(std::move(frame), ingress);
                      });
  if (port.nic->has_pending()) {
    start_uplink(port);
  } else {
    port.uplink_busy = false;
  }
}

// Fan-out duplicates the Frame per egress port, but Frame::header/payload
// are ref-counted views: all ports (and all receivers' stacks downstream)
// share the sender's single payload allocation.
void Switch::forward(Frame frame, std::size_t ingress) {
  const MacAddr dst = frame.dst;
  if (!dst.is_broadcast() && !dst.is_multicast()) {
    const auto learned = fdb_.find(dst);
    if (learned != fdb_.end()) {
      if (learned->second != ingress) {
        enqueue_egress(*ports_[learned->second], std::move(frame));
      }
      // else: dst lives on the ingress segment, nothing to do.
      return;
    }
    // Unknown unicast: flood like a broadcast.
  }
  // Broadcast and unknown unicast go to every other port; multicast only to
  // ports whose host joined the group (IGMP snooping).
  std::vector<Port*>& targets = fan_out_scratch_;
  targets.clear();
  for (auto& p : ports_) {
    if (p->index == ingress) {
      continue;
    }
    if (dst.is_multicast() && !p->nic->accepts_multicast(dst)) {
      continue;
    }
    targets.push_back(p.get());
  }
  fan_out(frame, targets);
}

void Switch::fan_out(const Frame& frame, const std::vector<Port*>& targets) {
  if (targets.size() <= 1) {
    if (!targets.empty()) {
      enqueue_egress(*targets.front(), frame);
    }
    return;
  }
  // Enqueue a (ref-counted) copy per port.  Every port that was idle starts
  // serializing this frame now and finishes after the same wire time, so all
  // their completions share one timestamp — schedule them as one event
  // instead of one heap entry per port.
  std::vector<sim::EventFn> batch;
  batch.reserve(targets.size());
  for (Port* port : targets) {
    if (port->egress.size() >= params_.max_queue_frames) {
      ++counters_.queue_drops;
      continue;
    }
    const bool was_idle = !port->egress_busy;
    port->egress.push_back(frame);
    if (was_idle) {
      port->egress_busy = true;
      batch.push_back([this, port] { egress_done(*port); });
    }
    // A busy port finishes its current frame first; its completion event is
    // already scheduled and will chain to this frame via egress_done().
  }
  if (batch.empty()) {
    return;
  }
  const SimTime duration =
      frame.wire_time(params_.bits_per_second) + params_.port_latency;
  sim_.schedule_batch_after(duration, std::move(batch));
}

void Switch::enqueue_egress(Port& port, Frame frame) {
  if (port.egress.size() >= params_.max_queue_frames) {
    ++counters_.queue_drops;
    return;
  }
  port.egress.push_back(std::move(frame));
  if (!port.egress_busy) {
    start_egress(port);
  }
}

void Switch::start_egress(Port& port) {
  MC_ASSERT(!port.egress.empty());
  port.egress_busy = true;
  const SimTime duration =
      port.egress.front().wire_time(params_.bits_per_second) +
      params_.port_latency;
  Port* target = &port;
  sim_.schedule_after(duration, [this, target] { egress_done(*target); });
}

void Switch::egress_done(Port& port) {
  MC_ASSERT(!port.egress.empty());
  Frame frame = std::move(port.egress.front());
  port.egress.pop_front();
  deliver_through_faults(sim_, frame, *port.nic);
  if (!port.egress.empty()) {
    start_egress(port);
  } else {
    port.egress_busy = false;
  }
}

}  // namespace mcmpi::net
