#pragma once
/// \file switch.hpp
/// Full-duplex store-and-forward Ethernet switch with IGMP snooping.
///
/// Models the HP ProCurve managed switch of the paper's testbed:
///   * each host has a dedicated full-duplex 100 Mb/s link — no collisions;
///   * a frame is received in full on the ingress port (store-and-forward),
///     looked up after `forwarding_latency`, then serialized onto each
///     egress port (per-port FIFO output queues, tail-drop);
///   * unicast destinations are learned from source addresses; unknown
///     unicast floods; multicast is forwarded only to ports whose host has
///     joined the group (snooping, modeled with instant convergence);
///   * a multicast frame is duplicated once per member egress port — the
///     paper's "the message is not duplicated unless it has to travel to
///     different parts of the network through switches".
///
/// The store-and-forward latency is why the paper measures the hub *faster*
/// than the switch for multicast (Fig. 11).

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "net/network.hpp"
#include "net/nic.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::net {

class Switch : public Network {
 public:
  struct Params {
    std::int64_t bits_per_second = 100'000'000;
    /// Address lookup + fabric transfer, applied after full-frame reception.
    SimTime forwarding_latency = microseconds_f(10.0);
    /// Per-link propagation + PHY latency, each direction.
    SimTime port_latency = microseconds_f(0.5);
    /// Egress queue capacity in frames (tail drop beyond).
    std::size_t max_queue_frames = 512;
  };

  explicit Switch(sim::Simulator& sim);
  Switch(sim::Simulator& sim, Params params);

  void attach(Nic& nic) override;
  void nic_has_frames(Nic& nic) override;
  bool is_shared_medium() const override { return false; }

  const Params& params() const { return params_; }

  /// Learned-address count (tests verify learning behaviour).
  std::size_t fdb_size() const { return fdb_.size(); }

 private:
  struct Port {
    Nic* nic = nullptr;
    std::size_t index = 0;
    bool uplink_busy = false;   // host -> switch direction
    std::deque<Frame> egress;   // switch -> host queue
    bool egress_busy = false;
  };

  Port& port_for(Nic& nic);
  void start_uplink(Port& port);
  void uplink_done(Port& port);
  void forward(Frame frame, std::size_t ingress);
  /// Copies `frame` into every target port's egress queue; ports that were
  /// idle all finish serializing it simultaneously, so their completions are
  /// scheduled as ONE batch event (tail-drops and busy ports excepted).
  void fan_out(const Frame& frame, const std::vector<Port*>& targets);
  void enqueue_egress(Port& port, Frame frame);
  void start_egress(Port& port);
  void egress_done(Port& port);

  sim::Simulator& sim_;
  Params params_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<MacAddr, std::size_t> fdb_;
  std::vector<Port*> fan_out_scratch_;  // reused per forward() call
};

}  // namespace mcmpi::net
