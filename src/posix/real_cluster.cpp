#include "posix/real_cluster.hpp"

#include <exception>
#include <thread>

#include "common/assert.hpp"
#include "common/bytes.hpp"

namespace mcmpi::posix {

namespace {
// p2p frame: u32 src rank, payload.
// multicast frame: u32 sender rank, u64 sequence, payload.
//
// Headers are built into small stack buffers and handed to the kernel
// TOGETHER with the user payload via RealUdpSocket::send_parts (sendmsg +
// iovec): the datagram is gathered in kernel space, so the send path never
// copies the payload into an assembly buffer — the real-backend mirror of
// the simulated stack's zero-copy gather-send.

Buffer p2p_header(int src) {
  Buffer header;
  header.reserve(4);
  ByteWriter w(header);
  w.u32(static_cast<std::uint32_t>(src));
  return header;
}

Buffer mcast_header(int sender, std::uint64_t seq) {
  Buffer header;
  header.reserve(12);
  ByteWriter w(header);
  w.u32(static_cast<std::uint32_t>(sender));
  w.u64(seq);
  return header;
}
}  // namespace

RealCluster::RealCluster(RealClusterConfig config)
    : config_(std::move(config)) {
  MC_EXPECTS(config_.num_ranks >= 1);
}

std::uint16_t RealCluster::p2p_port(int rank) const {
  return p2p_ports_.at(static_cast<std::size_t>(rank));
}

RealRank::RealRank(RealCluster& cluster, int rank)
    : cluster_(cluster), rank_(rank) {
  p2p_ = std::make_unique<RealUdpSocket>(0);
  mcast_ = std::make_unique<RealUdpSocket>(cluster.mcast_port());
  mcast_->join_multicast(cluster.config().mcast_group);
}

int RealRank::size() const { return cluster_.config().num_ranks; }

std::optional<ReceivedDatagram> RealRank::next_datagram(
    RealUdpSocket& socket, std::deque<ReceivedDatagram>& pending) {
  if (pending.empty()) {
    for (auto& datagram : socket.recv_batch(cluster_.config().timeout)) {
      pending.push_back(std::move(datagram));
    }
  }
  if (pending.empty()) {
    return std::nullopt;
  }
  ReceivedDatagram next = std::move(pending.front());
  pending.pop_front();
  return next;
}

void RealRank::send_p2p(int dst, std::span<const std::uint8_t> data) {
  MC_EXPECTS(dst >= 0 && dst < size());
  const Buffer header = p2p_header(rank_);
  const std::span<const std::uint8_t> parts[] = {header, data};
  p2p_->send_parts(0, cluster_.p2p_port(dst), parts);
}

std::vector<std::uint8_t> RealRank::recv_p2p(int src) {
  MC_EXPECTS(src >= 0 && src < size());
  for (;;) {
    auto& queue = p2p_queues_[src];
    if (!queue.empty()) {
      std::vector<std::uint8_t> data = std::move(queue.front());
      queue.pop_front();
      return data;
    }
    auto datagram = next_datagram(*p2p_, p2p_pending_);
    if (!datagram.has_value()) {
      throw std::runtime_error("rank " + std::to_string(rank_) +
                               ": timeout waiting for p2p message from rank " +
                               std::to_string(src));
    }
    ByteReader r(datagram->data);
    const int from = static_cast<int>(r.u32());
    auto rest = r.rest();
    p2p_queues_[from].emplace_back(rest.begin(), rest.end());
  }
}

void RealRank::mcast_send(std::span<const std::uint8_t> data) {
  const Buffer header = mcast_header(rank_, mcast_seq_);
  const std::span<const std::uint8_t> parts[] = {header, data};
  mcast_->send_parts(cluster_.config().mcast_group, cluster_.mcast_port(),
                     parts);
  ++mcast_seq_;
}

std::vector<std::uint8_t> RealRank::mcast_recv() {
  for (;;) {
    auto datagram = next_datagram(*mcast_, mcast_pending_);
    if (!datagram.has_value()) {
      throw std::runtime_error("rank " + std::to_string(rank_) +
                               ": timeout waiting for multicast");
    }
    ByteReader r(datagram->data);
    const int sender = static_cast<int>(r.u32());
    const std::uint64_t seq = r.u64();
    if (sender == rank_) {
      continue;  // our own loopback copy (IP_MULTICAST_LOOP)
    }
    if (seq < mcast_seq_) {
      continue;  // stale
    }
    ++mcast_seq_;
    auto rest = r.rest();
    return {rest.begin(), rest.end()};
  }
}

void RealRank::scout_gather_binary(int root) {
  const int size = this->size();
  const int rel = (rank_ - root + size) % size;
  int mask = 1;
  while (mask < size) {
    if (rel & mask) {
      send_p2p(((rel - mask) + root) % size, {});
      return;
    }
    if (rel + mask < size) {
      (void)recv_p2p(((rel + mask) + root) % size);
    }
    mask <<= 1;
  }
}

void RealRank::scout_gather_linear(int root) {
  if (rank_ != root) {
    send_p2p(root, {});
    return;
  }
  // Scouts can arrive in any order; recv_p2p queues per source, so simply
  // collect one from each peer.
  for (int r = 0; r < size(); ++r) {
    if (r != root) {
      (void)recv_p2p(r);
    }
  }
}

void RealRank::bcast_binary(std::vector<std::uint8_t>& data, int root) {
  if (size() == 1) {
    return;
  }
  scout_gather_binary(root);
  if (rank_ == root) {
    mcast_send(data);
  } else {
    data = mcast_recv();
  }
}

void RealRank::bcast_linear(std::vector<std::uint8_t>& data, int root) {
  if (size() == 1) {
    return;
  }
  scout_gather_linear(root);
  if (rank_ == root) {
    mcast_send(data);
  } else {
    data = mcast_recv();
  }
}

void RealRank::barrier() {
  if (size() == 1) {
    return;
  }
  scout_gather_binary(0);
  if (rank_ == 0) {
    mcast_send({});
  } else {
    const auto release = mcast_recv();
    MC_ASSERT(release.empty());
  }
}

void RealCluster::run(const std::function<void(RealRank&)>& rank_main) {
  // Build all rank endpoints on this thread so every port is known before
  // any rank code runs (the cluster's "hostfile").
  {
    RealUdpSocket probe(0);
    mcast_port_ = config_.mcast_port != 0 ? config_.mcast_port : probe.port();
  }
  std::vector<std::unique_ptr<RealRank>> ranks;
  p2p_ports_.clear();
  for (int r = 0; r < config_.num_ranks; ++r) {
    ranks.push_back(std::unique_ptr<RealRank>(new RealRank(*this, r)));
    p2p_ports_.push_back(ranks.back()->p2p_->port());
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(config_.num_ranks));
  for (int r = 0; r < config_.num_ranks; ++r) {
    RealRank* rank = ranks[static_cast<std::size_t>(r)].get();
    std::exception_ptr* slot = &errors[static_cast<std::size_t>(r)];
    threads.emplace_back([rank, slot, &rank_main] {
      try {
        rank_main(*rank);
      } catch (...) {
        *slot = std::current_exception();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (auto& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
}

}  // namespace mcmpi::posix
