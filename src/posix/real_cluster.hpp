#pragma once
/// \file real_cluster.hpp
/// The paper's mechanism on real sockets: N ranks as threads, point-to-point
/// UDP unicast on per-rank loopback ports, broadcast via genuine IP
/// multicast to a class-D group — with the binary/linear scout
/// synchronization protocols implemented verbatim.
///
/// This backend exists to demonstrate that the algorithms are plain
/// Berkeley-socket code (the repro hint: "same socket APIs; easy
/// reimplementation"); the measured figures come from the simulator, where
/// hub/switch topology is controllable.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "posix/socket.hpp"

namespace mcmpi::posix {

struct RealClusterConfig {
  int num_ranks = 4;
  /// Class-D group for the collective channel (host byte order).
  std::uint32_t mcast_group = 0xEF0101FEu;  // 239.1.1.254
  std::uint16_t mcast_port = 0;             // 0 = pick ephemeral on rank 0
  std::chrono::milliseconds timeout{2000};
};

class RealCluster;

/// Handle passed to each rank thread.
class RealRank {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Point-to-point (unicast UDP on loopback).
  void send_p2p(int dst, std::span<const std::uint8_t> data);
  /// Receives the next message from `src`; throws std::runtime_error on
  /// timeout.
  std::vector<std::uint8_t> recv_p2p(int src);

  /// Raw multicast to the whole cluster (sender included via loopback; the
  /// sender's receive path filters its own frames out).
  void mcast_send(std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> mcast_recv();

  // --- the paper's collective operations ---
  /// Binary-tree scout sync, then one multicast (paper Fig. 3).
  void bcast_binary(std::vector<std::uint8_t>& data, int root);
  /// Linear scout sync, then one multicast (paper Fig. 4).
  void bcast_linear(std::vector<std::uint8_t>& data, int root);
  /// Scout reduction to rank 0 + multicast release (paper §3.2).
  void barrier();

 private:
  friend class RealCluster;
  RealRank(RealCluster& cluster, int rank);
  void scout_gather_binary(int root);
  void scout_gather_linear(int root);
  /// Pops the next datagram for `socket`, refilling `pending` with one
  /// batched recvmmsg when it runs dry (the hot receive loops drain bursts
  /// one syscall at a time instead of one datagram at a time).
  std::optional<ReceivedDatagram> next_datagram(
      RealUdpSocket& socket, std::deque<ReceivedDatagram>& pending);

  RealCluster& cluster_;
  int rank_;
  std::unique_ptr<RealUdpSocket> p2p_;
  std::unique_ptr<RealUdpSocket> mcast_;
  std::map<int, std::deque<std::vector<std::uint8_t>>> p2p_queues_;
  std::deque<ReceivedDatagram> p2p_pending_;    // batched, not yet demuxed
  std::deque<ReceivedDatagram> mcast_pending_;  // batched, not yet consumed
  std::uint64_t mcast_seq_ = 0;  // per-rank expected collective sequence
};

/// Runs an SPMD function on `num_ranks` OS threads sharing a loopback
/// "network".  Exceptions from rank threads are collected and the first one
/// rethrown from run().
class RealCluster {
 public:
  explicit RealCluster(RealClusterConfig config);

  const RealClusterConfig& config() const { return config_; }
  std::uint16_t p2p_port(int rank) const;
  std::uint16_t mcast_port() const { return mcast_port_; }

  void run(const std::function<void(RealRank&)>& rank_main);

 private:
  friend class RealRank;
  RealClusterConfig config_;
  std::vector<std::uint16_t> p2p_ports_;
  std::uint16_t mcast_port_ = 0;
};

}  // namespace mcmpi::posix
