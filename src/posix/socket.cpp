#include "posix/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "common/assert.hpp"

namespace mcmpi::posix {

namespace {
[[noreturn]] void raise_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}
}  // namespace

Fd::~Fd() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

RealUdpSocket::RealUdpSocket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    raise_errno("socket");
  }
  fd_ = Fd(fd);
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0) {
    raise_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    raise_errno("bind");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    raise_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

void RealUdpSocket::join_multicast(std::uint32_t group) {
  ip_mreq mreq{};
  mreq.imr_multiaddr.s_addr = htonl(group);
  mreq.imr_interface.s_addr = htonl(INADDR_LOOPBACK);
  if (::setsockopt(fd_.get(), IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq,
                   sizeof mreq) != 0) {
    raise_errno("setsockopt(IP_ADD_MEMBERSHIP)");
  }
  in_addr iface{};
  iface.s_addr = htonl(INADDR_LOOPBACK);
  if (::setsockopt(fd_.get(), IPPROTO_IP, IP_MULTICAST_IF, &iface,
                   sizeof iface) != 0) {
    raise_errno("setsockopt(IP_MULTICAST_IF)");
  }
  const unsigned char loop = 1;
  if (::setsockopt(fd_.get(), IPPROTO_IP, IP_MULTICAST_LOOP, &loop,
                   sizeof loop) != 0) {
    raise_errno("setsockopt(IP_MULTICAST_LOOP)");
  }
}

void RealUdpSocket::send_to(std::uint32_t addr, std::uint16_t port,
                            std::span<const std::uint8_t> data) {
  const std::span<const std::uint8_t> one[] = {data};
  send_parts(addr, port, one);
}

void RealUdpSocket::send_parts(
    std::uint32_t addr, std::uint16_t port,
    std::span<const std::span<const std::uint8_t>> parts) {
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr =
      htonl((addr >> 28) == 0xE ? addr : INADDR_LOOPBACK);
  dst.sin_port = htons(port);

  // The kernel gathers the iovec into one datagram: header + payload leave
  // in a single sendmsg with no user-space assembly buffer — the real
  // backend's analogue of the simulated gather-send.
  constexpr std::size_t kMaxParts = 8;
  iovec iov[kMaxParts];
  MC_EXPECTS_MSG(parts.size() <= kMaxParts, "too many datagram parts");
  std::size_t total = 0;
  std::size_t used = 0;
  for (const auto& part : parts) {
    if (part.empty()) {
      continue;  // zero-length iovec entries are legal but pointless
    }
    iov[used].iov_base = const_cast<std::uint8_t*>(part.data());
    iov[used].iov_len = part.size();
    total += part.size();
    ++used;
  }
  msghdr msg{};
  msg.msg_name = &dst;
  msg.msg_namelen = sizeof dst;
  msg.msg_iov = iov;
  msg.msg_iovlen = used;
  const ssize_t sent = ::sendmsg(fd_.get(), &msg, 0);
  if (sent < 0 || static_cast<std::size_t>(sent) != total) {
    raise_errno("sendmsg");
  }
}

std::optional<ReceivedDatagram> RealUdpSocket::recv(
    std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    raise_errno("setsockopt(SO_RCVTIMEO)");
  }
  std::vector<std::uint8_t> buffer(65536);
  sockaddr_in src{};
  socklen_t src_len = sizeof src;
  const ssize_t n =
      ::recvfrom(fd_.get(), buffer.data(), buffer.size(), 0,
                 reinterpret_cast<sockaddr*>(&src), &src_len);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return std::nullopt;
    }
    raise_errno("recvfrom");
  }
  buffer.resize(static_cast<std::size_t>(n));
  return ReceivedDatagram{std::move(buffer), ntohl(src.sin_addr.s_addr),
                          ntohs(src.sin_port)};
}

std::vector<ReceivedDatagram> RealUdpSocket::recv_batch(
    std::chrono::milliseconds timeout, std::size_t max_batch) {
  MC_EXPECTS(max_batch >= 1);
#if defined(__linux__)
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    raise_errno("setsockopt(SO_RCVTIMEO)");
  }
  constexpr std::size_t kMaxBatch = 16;
  constexpr std::size_t kDatagramCap = 65536;
  const std::size_t count = std::min(max_batch, kMaxBatch);
  std::vector<std::vector<std::uint8_t>> buffers(
      count, std::vector<std::uint8_t>(kDatagramCap));
  mmsghdr msgs[kMaxBatch]{};
  iovec iovs[kMaxBatch];
  sockaddr_in srcs[kMaxBatch]{};
  for (std::size_t i = 0; i < count; ++i) {
    iovs[i].iov_base = buffers[i].data();
    iovs[i].iov_len = buffers[i].size();
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
    msgs[i].msg_hdr.msg_name = &srcs[i];
    msgs[i].msg_hdr.msg_namelen = sizeof srcs[i];
  }
  // MSG_WAITFORONE: block (bounded by SO_RCVTIMEO) until one datagram is
  // readable, then return it plus whatever else is already queued —
  // exactly the "one wake-up drains the burst" shape the hot loop wants.
  const int got = ::recvmmsg(fd_.get(), msgs, static_cast<unsigned>(count),
                             MSG_WAITFORONE, nullptr);
  if (got < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return {};
    }
    raise_errno("recvmmsg");
  }
  std::vector<ReceivedDatagram> out;
  out.reserve(static_cast<std::size_t>(got));
  for (int i = 0; i < got; ++i) {
    auto& buffer = buffers[static_cast<std::size_t>(i)];
    buffer.resize(msgs[i].msg_len);
    out.push_back(ReceivedDatagram{std::move(buffer),
                                   ntohl(srcs[i].sin_addr.s_addr),
                                   ntohs(srcs[i].sin_port)});
  }
  return out;
#else
  std::vector<ReceivedDatagram> out;
  if (auto one = recv(timeout); one.has_value()) {
    out.push_back(std::move(*one));
  }
  return out;
#endif
}

bool RealUdpSocket::loopback_multicast_available() {
  try {
    constexpr std::uint32_t kProbeGroup = 0xEFFF00FDu;  // 239.255.0.253
    RealUdpSocket receiver(0);
    receiver.join_multicast(kProbeGroup);
    RealUdpSocket sender(0);
    sender.join_multicast(kProbeGroup);  // sets IP_MULTICAST_IF to loopback
    const std::uint8_t probe[] = {0x5a, 0xa5};
    sender.send_to(kProbeGroup, receiver.port(), probe);
    const auto got = receiver.recv(std::chrono::milliseconds(300));
    return got.has_value() && got->data.size() == 2 && got->data[0] == 0x5a;
  } catch (const std::system_error&) {
    return false;
  }
}

}  // namespace mcmpi::posix
