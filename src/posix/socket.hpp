#pragma once
/// \file socket.hpp
/// RAII wrappers over the real Berkeley socket API.
///
/// This is the same API surface the paper's implementation used (UDP
/// sockets, IP_ADD_MEMBERSHIP, class-D destination addresses), pointed at
/// the loopback interface so the whole "cluster" fits in one process.
/// Errors throw std::system_error; receive timeouts return std::nullopt.

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mcmpi::posix {

/// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

struct ReceivedDatagram {
  std::vector<std::uint8_t> data;
  std::uint32_t src_addr = 0;  // host byte order
  std::uint16_t src_port = 0;
};

/// A real UDP socket bound to 127.0.0.1.
class RealUdpSocket {
 public:
  /// Creates and binds to `port` on loopback (0 = ephemeral); enables
  /// SO_REUSEADDR so several multicast members can share a port.
  explicit RealUdpSocket(std::uint16_t port);

  std::uint16_t port() const { return port_; }

  /// Joins `group` (class-D, host byte order) on the loopback interface and
  /// routes our own multicast transmissions through loopback too.
  void join_multicast(std::uint32_t group);

  /// Sends to 127.0.0.1:`port` (unicast) or to `addr`:`port` if `addr` is a
  /// class-D group.
  void send_to(std::uint32_t addr, std::uint16_t port,
               std::span<const std::uint8_t> data);

  /// Gather-send: one datagram assembled by the KERNEL from `parts`
  /// (sendmsg + iovec), mirroring the simulated stack's zero-copy
  /// gather-send — a protocol header and its payload go out as one
  /// datagram without the user-space concatenation copy.
  void send_parts(std::uint32_t addr, std::uint16_t port,
                  std::span<const std::span<const std::uint8_t>> parts);

  /// Blocking receive with timeout; nullopt on timeout.
  std::optional<ReceivedDatagram> recv(std::chrono::milliseconds timeout);

  /// Batched receive (recvmmsg): blocks up to `timeout` for the FIRST
  /// datagram, then drains everything else already queued on the socket in
  /// the same syscall — up to `max_batch` datagrams.  Under bursty load
  /// (a multicast fan-in, a flurry of scout messages) this turns N
  /// syscalls on the hot receive loop into one.  Returns an empty vector
  /// on timeout.  Falls back to a single recvfrom on platforms without
  /// recvmmsg.
  std::vector<ReceivedDatagram> recv_batch(std::chrono::milliseconds timeout,
                                           std::size_t max_batch = 8);

  /// Probes whether loopback multicast works in this environment (some
  /// sandboxes forbid IP_ADD_MEMBERSHIP).  Cheap one-shot self-test.
  static bool loopback_multicast_available();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

}  // namespace mcmpi::posix
