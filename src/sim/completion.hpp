#pragma once
/// \file completion.hpp
/// Completion — a one-shot "done" handle for work another simulated
/// process performs on a caller's behalf.
///
/// The producer runs to completion and calls finish(); consumers park on
/// wait_queue() until complete() (virtual time is global, so the notify is
/// the entire completion semantics — no charge or clock adjustment).
/// Carries an optional result buffer for value-returning work.  This is
/// the sim-level primitive under coll::CollRequest (nonblocking
/// collectives), kept here so layers below coll can complete requests
/// without depending on the collective layer.

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "sim/wait.hpp"

namespace mcmpi::sim {

class Completion {
 public:
  bool complete() const { return complete_; }
  sim::WaitQueue& wait_queue() { return wq_; }

  /// Result of value-returning work; valid once complete().
  Buffer& result() { return result_; }

  /// Result of block-returning work (e.g. a nonblocking gather: one block
  /// per rank); valid once complete().
  std::vector<Buffer>& blocks() { return blocks_; }

  /// Virtual instant the work finished; valid once complete().
  SimTime finished_at() const { return finished_at_; }

  /// Producer side: marks the work done at `at` and wakes every waiter.
  /// Call exactly once, after any result() bytes are in place.
  void finish(SimTime at) {
    complete_ = true;
    finished_at_ = at;
    wq_.notify_all();
  }

 private:
  bool complete_ = false;
  Buffer result_;
  std::vector<Buffer> blocks_;
  SimTime finished_at_ = kTimeZero;
  sim::WaitQueue wq_;
};

}  // namespace mcmpi::sim
