#include "sim/event_queue.hpp"

#include "common/assert.hpp"

namespace mcmpi::sim {

EventId EventQueue::schedule(SimTime t, std::function<void()> fn) {
  MC_EXPECTS(fn != nullptr);
  const EventId id = next_seq_++;
  heap_.push(Entry{t, id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_seq_) {
    return false;
  }
  // Only pending events can be cancelled; fired events have been popped, so
  // inserting their id here would leak.  We cannot tell fired from pending
  // cheaply, so we track cancelled ids and validate on pop; double-cancel is
  // caught by the insert result.
  const bool inserted = cancelled_.insert(id).second;
  if (inserted && live_count_ > 0) {
    --live_count_;
    return true;
  }
  return false;
}

void EventQueue::skim() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  skim();
  return heap_.empty() ? kTimeInfinity : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  MC_EXPECTS_MSG(!heap_.empty(), "pop() on empty EventQueue");
  // priority_queue::top() is const&; the function object must be moved out,
  // so we const_cast the known-mutable underlying entry (standard idiom).
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, std::move(top.fn)};
  heap_.pop();
  --live_count_;
  return fired;
}

}  // namespace mcmpi::sim
