#include "sim/event_queue.hpp"

#include "common/assert.hpp"

namespace mcmpi::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    ++pool_hits_;
    return index;
  }
  MC_ASSERT_MSG(slots_.size() < 0xFFFFFFFFu, "event slot table exhausted");
  slots_.emplace_back();
  ++pool_misses_;
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn.reset();
  slot.live = false;
  ++slot.generation;  // invalidates outstanding ids and stale heap entries
  free_slots_.push_back(index);
}

EventId EventQueue::schedule(SimTime t, EventFn fn) {
  return schedule_keyed(t, allocate_remote_key(), std::move(fn));
}

EventId EventQueue::schedule_keyed(SimTime t, OrderKey key, EventFn fn) {
  MC_EXPECTS(static_cast<bool>(fn));
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.live = true;
  slot.fn = std::move(fn);
  heap_.push(Entry{t, key, index, slot.generation});
  ++live_count_;
  ++total_scheduled_;
  return (static_cast<EventId>(slot.generation) << 32) |
         (static_cast<EventId>(index) + 1);
}

bool EventQueue::cancel(EventId id) {
  const auto biased = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  if (biased == 0 || biased > slots_.size()) {
    return false;
  }
  const std::uint32_t index = biased - 1;
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  Slot& slot = slots_[index];
  if (!slot.live || slot.generation != generation) {
    return false;  // already fired, already cancelled, or a recycled slot
  }
  release_slot(index);
  --live_count_;
  return true;
}

void EventQueue::skim() const {
  while (!heap_.empty() && stale(heap_.top())) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  skim();
  return heap_.empty() ? kTimeInfinity : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  MC_EXPECTS_MSG(!heap_.empty(), "pop() on empty EventQueue");
  const Entry top = heap_.top();
  heap_.pop();
  Slot& slot = slots_[top.slot];
  Fired fired{top.time, std::move(slot.fn)};
  release_slot(top.slot);
  --live_count_;
  return fired;
}

std::optional<EventQueue::Fired> EventQueue::pop_if_at(SimTime t) {
  skim();
  if (heap_.empty() || heap_.top().time != t) {
    return std::nullopt;
  }
  const Entry top = heap_.top();
  heap_.pop();
  Slot& slot = slots_[top.slot];
  Fired fired{top.time, std::move(slot.fn)};
  release_slot(top.slot);
  --live_count_;
  return fired;
}

}  // namespace mcmpi::sim
