#pragma once
/// \file event_queue.hpp
/// Pending-event set for the discrete-event simulator.
///
/// Events are ordered by (time, insertion sequence): two events at the same
/// virtual time fire in the order they were scheduled, which makes every run
/// with the same seed bit-identical.  Cancellation is lazy (tombstones) so
/// schedule/cancel are both O(log n).

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace mcmpi::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `t`.  Returns a handle for cancel().
  EventId schedule(SimTime t, std::function<void()> fn);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or the id is invalid.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; kTimeInfinity when empty.
  SimTime next_time() const;

  struct Fired {
    SimTime time;
    std::function<void()> fn;
  };

  /// Removes and returns the earliest live event.  Precondition: !empty().
  Fired pop();

  /// Total events ever scheduled (monotone; used by the micro benches).
  std::uint64_t total_scheduled() const { return next_seq_ - 1; }

 private:
  struct Entry {
    SimTime time;
    EventId id;  // doubles as insertion sequence
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  /// Drops cancelled entries from the top of the heap.
  void skim() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::size_t live_count_ = 0;
  EventId next_seq_ = 1;
};

}  // namespace mcmpi::sim
