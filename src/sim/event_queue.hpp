#pragma once
/// \file event_queue.hpp
/// Pending-event set for the discrete-event simulator.
///
/// Events are ordered by (time, shard tag, insertion sequence): two events
/// at the same virtual time fire in the order they were scheduled, which
/// makes every run with the same seed bit-identical.  The shard tag folds
/// into the ordering key so a sharded simulator (sim/simulator.hpp) stays
/// deterministic: a cross-shard delivery is inserted with the SENDER's
/// (shard, seq) key, assigned at send time by the sender's deterministic
/// execution — so its order against the receiver's own same-tick events is
/// a pure function of the simulation, never of thread timing.  A
/// single-shard queue tags everything 0 and the order degenerates to the
/// classic (time, seq).
///
/// Hot-path design (this queue is the simulator's inner loop):
///   * Heap entries are small PODs — (time, seq, slot, generation) — so
///     sift-up/down moves 24 bytes, never a callable.
///   * Callables live in a slot table addressed by index; a slot is recycled
///     through a generation-counted free list, so cancel() and the staleness
///     check in skim() are O(1) array accesses with no hashing and no
///     tombstone set.
///   * EventFn stores small callables (up to kInlineBytes, which covers every
///     lambda the simulator schedules, frames included) inline — scheduling
///     an event performs no heap allocation once the slot table is warm.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace mcmpi::sim {

/// Move-only callable wrapper with inline storage for small callables.
/// Replaces std::function<void()> on the event hot path: delivery lambdas
/// that capture a Frame (two payload refs plus addressing) fit inline, so
/// schedule/fire performs no per-event allocation.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 128;

  EventFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for lambdas
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      auto* heap = new D(std::forward<F>(f));
      std::memcpy(storage_, &heap, sizeof(heap));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    MC_EXPECTS_MSG(ops_ != nullptr, "invoking an empty EventFn");
    ops_->invoke(storage_);
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        if constexpr (std::is_trivially_copyable_v<D> &&
                      std::is_trivially_destructible_v<D>) {
          // Covers most scheduled lambdas ([], [this], [this, ptr]...):
          // relocation is a small memcpy, no constructor calls.
          std::memcpy(dst, src, sizeof(D));
        } else {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        }
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) {
        D* heap;
        std::memcpy(&heap, p, sizeof(heap));
        (*heap)();
      },
      [](void* dst, void* src) { std::memcpy(dst, src, sizeof(D*)); },
      [](void* p) {
        D* heap;
        std::memcpy(&heap, p, sizeof(heap));
        delete heap;
      },
  };

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

/// Handle for cancel(): low 32 bits address the slot (biased by one so the
/// zero id stays invalid), high 32 bits carry the slot's generation at
/// schedule time.  A recycled slot has a new generation, so stale handles
/// can never cancel somebody else's event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Shard-major ordering key: the owning shard's id in the high 16 bits,
  /// a monotone per-shard sequence below.  Comparing keys of one shard
  /// yields schedule order; across shards the shard id breaks time ties
  /// deterministically (the sharded simulator's (time, shard, seq) rule).
  using OrderKey = std::uint64_t;
  static constexpr OrderKey make_key(std::uint16_t shard, std::uint64_t seq) {
    return (static_cast<OrderKey>(shard) << kSeqBits) | seq;
  }

  /// Tags every locally scheduled event (and every allocate_remote_key())
  /// with `shard`.  Set once at shard construction, before any scheduling.
  void set_shard_tag(std::uint16_t shard) { shard_tag_ = shard; }

  /// Schedules `fn` at absolute time `t`.  Returns a handle for cancel().
  EventId schedule(SimTime t, EventFn fn);

  /// Inserts an event carrying an explicit ordering key — how a cross-shard
  /// delivery lands in the receiving shard's queue with the sender's
  /// (shard, seq) identity.  Not cancellable from the sending side; the
  /// returned handle is valid on this queue like any other.
  EventId schedule_keyed(SimTime t, OrderKey key, EventFn fn);

  /// Claims the next local (shard, seq) key without scheduling anything —
  /// the sender-side half of a cross-shard push.  Monotone per queue.
  OrderKey allocate_remote_key() { return make_key(shard_tag_, next_seq_++); }

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or the id is invalid.  O(1): the slot is freed
  /// immediately; the heap entry goes stale and is skimmed lazily.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; kTimeInfinity when empty.
  SimTime next_time() const;

  struct Fired {
    SimTime time;
    EventFn fn;
  };

  /// Removes and returns the earliest live event.  Precondition: !empty().
  Fired pop();

  /// Same-tick drain step: pops the earliest live event only if it fires at
  /// exactly `t`, else leaves the queue untouched and returns nullopt.  The
  /// simulator uses this to fire every event of one timestamp back to back
  /// — entries stay in the heap until their individual pop, so a callback
  /// fired earlier in the tick can still cancel() a later one.
  std::optional<Fired> pop_if_at(SimTime t);

  /// Total events ever inserted into THIS queue (monotone; used by the
  /// micro benches).  A cross-shard delivery counts once, on the receiving
  /// queue, where it actually becomes an event.
  std::uint64_t total_scheduled() const { return total_scheduled_; }

  /// Slot-pool receipts: schedules served by recycling a freed slot vs.
  /// those that grew the slot table.  Feeds SchedCounters::event_pool_*.
  std::uint64_t pool_hits() const { return pool_hits_; }
  std::uint64_t pool_misses() const { return pool_misses_; }

 private:
  static constexpr int kSeqBits = 48;  // 2^48 events per shard is plenty

  struct Slot {
    std::uint32_t generation = 0;
    bool live = false;
    EventFn fn;
  };
  /// POD heap entry; the callable stays in its slot.
  struct Entry {
    SimTime time;
    OrderKey key;  // (shard, seq) — FIFO within one time and shard
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.key > b.key;
    }
  };

  bool stale(const Entry& e) const {
    const Slot& s = slots_[e.slot];
    return !s.live || s.generation != e.generation;
  }

  /// Drops cancelled (stale) entries from the top of the heap.
  void skim() const;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  /// Deque, not vector: slots must stay put when the table grows, so a
  /// growth episode never relocates every stored callable.
  std::deque<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t total_scheduled_ = 0;
  std::uint64_t pool_hits_ = 0;
  std::uint64_t pool_misses_ = 0;
  std::uint16_t shard_tag_ = 0;
};

}  // namespace mcmpi::sim
