#include "sim/execution_context.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <thread>

#include "common/assert.hpp"

#if !defined(__x86_64__)
#include <ucontext.h>
#endif

// ASan must be told about every stack switch or it misattributes frames and
// (with fake stacks) reports false use-after-return.  The annotations are
// no-ops in ordinary builds.  Run fiber builds with
// ASAN_OPTIONS=detect_stack_use_after_return=0 (docs/ARCHITECTURE.md).
#if defined(__SANITIZE_ADDRESS__)
#define MCMPI_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MCMPI_ASAN_FIBERS 1
#endif
#endif
#ifdef MCMPI_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace mcmpi::sim {
namespace {

/// Usable fiber stack.  Rank bodies run user code (collectives, tests,
/// logging) but nothing deeply recursive; 512 KiB leaves an order of
/// magnitude of headroom, and the guard page below turns an overflow into a
/// clean fault instead of silent corruption.
constexpr std::size_t kFiberStackBytes = 512 * 1024;

void asan_start_switch(void** fake_stack_save, const void* bottom,
                       std::size_t size) {
#ifdef MCMPI_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

void asan_finish_switch(void* fake_stack_save, const void** bottom_old,
                        std::size_t* size_old) {
#ifdef MCMPI_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
  (void)fake_stack_save;
  (void)bottom_old;
  (void)size_old;
#endif
}

/// Guard-paged stack allocation shared by both fiber flavours.
struct FiberStack {
  FiberStack() {
    const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    map_bytes = kFiberStackBytes + page;
    void* map = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    MC_ASSERT_MSG(map != MAP_FAILED, "fiber stack allocation failed");
    base = map;
    // Guard page at the low end: stacks grow down, so running off the end
    // faults loudly instead of scribbling over a neighbouring allocation.
    const int guarded = ::mprotect(base, page, PROT_NONE);
    MC_ASSERT(guarded == 0);
    stack = static_cast<unsigned char*>(base) + page;
  }
  ~FiberStack() {
    if (base != nullptr) {
      ::munmap(base, map_bytes);
    }
  }
  FiberStack(const FiberStack&) = delete;
  FiberStack& operator=(const FiberStack&) = delete;

  void* base = nullptr;
  std::size_t map_bytes = 0;
  unsigned char* stack = nullptr;  // usable low end (above the guard page)
};

}  // namespace

#if defined(__x86_64__)

// ---------------------------------------------------------- x86-64 fibers
//
// Hand-rolled System V context switch: save the callee-saved registers and
// the FP control words on the current stack, swap stack pointers, restore,
// return.  ~20 instructions and no kernel involvement — unlike glibc's
// swapcontext, which performs an rt_sigprocmask syscall on every switch and
// would dominate the cost of a fiber handoff.

extern "C" {
void mcmpi_ctx_swap(void** save_sp, void* restore_sp);
void mcmpi_ctx_trampoline();
/// C entry invoked by the trampoline with the fiber object in %rdi.
void mcmpi_fiber_entry(void* fiber);
}

// clang-format off
asm(R"(
  .text
  .globl mcmpi_ctx_swap
  .type mcmpi_ctx_swap, @function
mcmpi_ctx_swap:
  lea -0x38(%rsp), %rsp
  mov %rbp, 0x30(%rsp)
  mov %rbx, 0x28(%rsp)
  mov %r12, 0x20(%rsp)
  mov %r13, 0x18(%rsp)
  mov %r14, 0x10(%rsp)
  mov %r15, 0x08(%rsp)
  stmxcsr 0x04(%rsp)
  fnstcw  0x00(%rsp)
  mov %rsp, (%rdi)
  mov %rsi, %rsp
  fldcw   0x00(%rsp)
  ldmxcsr 0x04(%rsp)
  mov 0x08(%rsp), %r15
  mov 0x10(%rsp), %r14
  mov 0x18(%rsp), %r13
  mov 0x20(%rsp), %r12
  mov 0x28(%rsp), %rbx
  mov 0x30(%rsp), %rbp
  lea 0x38(%rsp), %rsp
  ret
  .size mcmpi_ctx_swap, .-mcmpi_ctx_swap

  .globl mcmpi_ctx_trampoline
  .type mcmpi_ctx_trampoline, @function
mcmpi_ctx_trampoline:
  /* first switch into a new fiber lands here; %r12 carries the object */
  mov %r12, %rdi
  call mcmpi_fiber_entry
  ud2
  .size mcmpi_ctx_trampoline, .-mcmpi_ctx_trampoline
)");
// clang-format on

namespace {

class FiberContext final : public ExecutionContext {
 public:
  explicit FiberContext(std::function<void()> entry)
      : entry_(std::move(entry)) {
    // Craft the initial frame mcmpi_ctx_swap restores from: FP control
    // words, six callee-saved slots (%r12 = this), and the trampoline as
    // the return address.  The 16-byte-aligned top keeps the System V
    // stack-alignment contract once the trampoline issues its call.
    auto top = reinterpret_cast<std::uintptr_t>(stack_.stack) +
               kFiberStackBytes;
    top &= ~static_cast<std::uintptr_t>(0xF);
    auto* frame = reinterpret_cast<std::uint64_t*>(top) - 8;
    std::uint32_t mxcsr = 0;
    std::uint16_t fcw = 0;
    asm volatile("stmxcsr %0" : "=m"(mxcsr));
    asm volatile("fnstcw %0" : "=m"(fcw));
    frame[0] = (static_cast<std::uint64_t>(mxcsr) << 32) | fcw;
    frame[1] = 0;                                         // %r15
    frame[2] = 0;                                         // %r14
    frame[3] = 0;                                         // %r13
    frame[4] = reinterpret_cast<std::uint64_t>(this);     // %r12
    frame[5] = 0;                                         // %rbx
    frame[6] = 0;                                         // %rbp
    frame[7] =
        reinterpret_cast<std::uint64_t>(&mcmpi_ctx_trampoline);  // ret
    fiber_sp_ = frame;
  }

  void resume() override {
    MC_ASSERT_MSG(!done_, "resume() on a finished context");
    void* fake = nullptr;
    asan_start_switch(&fake, stack_.stack, kFiberStackBytes);
    mcmpi_ctx_swap(&sched_sp_, fiber_sp_);
    asan_finish_switch(fake, nullptr, nullptr);
  }

  void suspend() override {
    void* fake = nullptr;
    asan_start_switch(&fake, sched_stack_, sched_stack_size_);
    mcmpi_ctx_swap(&fiber_sp_, sched_sp_);
    asan_finish_switch(fake, &sched_stack_, &sched_stack_size_);
  }

  void fiber_main() {
    // First entry: complete the scheduler->fiber switch and learn the
    // scheduler's stack bounds for the switches back.
    asan_finish_switch(nullptr, &sched_stack_, &sched_stack_size_);
    entry_();
    done_ = true;
    // Final switch out; nullptr fake-stack-save tells ASan this fiber is
    // dying so its fake frames can be released.  Never resumed again.
    asan_start_switch(nullptr, sched_stack_, sched_stack_size_);
    mcmpi_ctx_swap(&fiber_sp_, sched_sp_);
    MC_ASSERT_MSG(false, "a finished fiber was resumed");
  }

 private:
  std::function<void()> entry_;
  FiberStack stack_;
  void* fiber_sp_ = nullptr;
  void* sched_sp_ = nullptr;
  const void* sched_stack_ = nullptr;
  std::size_t sched_stack_size_ = 0;
  bool done_ = false;
};

}  // namespace

extern "C" void mcmpi_fiber_entry(void* fiber) {
  static_cast<FiberContext*>(fiber)->fiber_main();
}

#else  // !__x86_64__

// --------------------------------------------------------- ucontext fibers
//
// Portable fallback: glibc ucontext.  Each switch pays an rt_sigprocmask
// syscall, still far cheaper than an OS thread handoff.

namespace {

class FiberContext final : public ExecutionContext {
 public:
  explicit FiberContext(std::function<void()> entry)
      : entry_(std::move(entry)) {
    const int rc = ::getcontext(&fiber_);
    MC_ASSERT(rc == 0);
    fiber_.uc_stack.ss_sp = stack_.stack;
    fiber_.uc_stack.ss_size = kFiberStackBytes;
    fiber_.uc_link = nullptr;  // a finished fiber switches out explicitly
    ::makecontext(&fiber_, trampoline, 0);
  }

  void resume() override {
    MC_ASSERT_MSG(!done_, "resume() on a finished context");
    if (!started_) {
      // makecontext() can only pass ints; hand `this` to the trampoline
      // through a thread-local instead.  Safe: the switch below runs the
      // trampoline before any other fiber on this thread can start.
      started_ = true;
      entering_ = this;
    }
    void* fake = nullptr;
    asan_start_switch(&fake, stack_.stack, kFiberStackBytes);
    const int rc = ::swapcontext(&sched_, &fiber_);
    MC_ASSERT(rc == 0);
    asan_finish_switch(fake, nullptr, nullptr);
  }

  void suspend() override {
    void* fake = nullptr;
    asan_start_switch(&fake, sched_stack_, sched_stack_size_);
    const int rc = ::swapcontext(&fiber_, &sched_);
    MC_ASSERT(rc == 0);
    asan_finish_switch(fake, &sched_stack_, &sched_stack_size_);
  }

 private:
  static void trampoline() {
    FiberContext* self = entering_;
    entering_ = nullptr;
    self->fiber_main();
  }

  void fiber_main() {
    asan_finish_switch(nullptr, &sched_stack_, &sched_stack_size_);
    entry_();
    done_ = true;
    asan_start_switch(nullptr, sched_stack_, sched_stack_size_);
    const int rc = ::swapcontext(&fiber_, &sched_);
    MC_ASSERT(rc == 0);
    MC_ASSERT_MSG(false, "a finished fiber was resumed");
  }

  static thread_local FiberContext* entering_;

  std::function<void()> entry_;
  FiberStack stack_;
  ucontext_t sched_{};
  ucontext_t fiber_{};
  const void* sched_stack_ = nullptr;
  std::size_t sched_stack_size_ = 0;
  bool started_ = false;
  bool done_ = false;
};

thread_local FiberContext* FiberContext::entering_ = nullptr;

}  // namespace

#endif  // __x86_64__

namespace {

class ThreadContext final : public ExecutionContext {
 public:
  explicit ThreadContext(std::function<void()> entry)
      : entry_(std::move(entry)) {
    thread_ = std::thread([this] {
      wait_for_turn(true);  // parked until the first resume()
      entry_();
      pass_turn(false);
    });
  }

  /// Precondition (guaranteed by Simulator teardown): the entry function
  /// has returned, so the thread is joinable without a further hand-off.
  ~ThreadContext() override {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  // The rendezvous is a mutex + condvar turn flag rather than a semaphore
  // pair: functionally identical (exactly one side runnable), but the
  // lock ordering is visible to ThreadSanitizer, so the tsan preset can
  // verify the sharded drivers on this backend without false positives
  // (libstdc++ semaphores wait on bare futexes TSan cannot see through).

  void resume() override {
    pass_turn(true);
    wait_for_turn(false);
  }

  void suspend() override {
    pass_turn(false);
    wait_for_turn(true);
  }

 private:
  void pass_turn(bool to_context) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      context_turn_ = to_context;
    }
    turn_cv_.notify_one();
  }

  void wait_for_turn(bool context_side) {
    std::unique_lock<std::mutex> lock(mutex_);
    turn_cv_.wait(lock, [&] { return context_turn_ == context_side; });
  }

  std::function<void()> entry_;
  std::mutex mutex_;
  std::condition_variable turn_cv_;
  bool context_turn_ = false;  // false: host/scheduler side runs
  std::thread thread_;
};

}  // namespace

const char* to_string(ExecutionBackend backend) {
  return backend == ExecutionBackend::kFiber ? "fiber" : "thread";
}

ExecutionBackend default_execution_backend() {
  static const ExecutionBackend cached = [] {
    const char* env = std::getenv("MCMPI_SIM_BACKEND");
    if (env != nullptr && std::string_view(env) == "thread") {
      return ExecutionBackend::kThread;
    }
    return ExecutionBackend::kFiber;
  }();
  return cached;
}

std::unique_ptr<ExecutionContext> ExecutionContext::create(
    ExecutionBackend backend, std::function<void()> entry) {
  if (backend == ExecutionBackend::kThread) {
    return std::make_unique<ThreadContext>(std::move(entry));
  }
  return std::make_unique<FiberContext>(std::move(entry));
}

}  // namespace mcmpi::sim
