#pragma once
/// \file execution_context.hpp
/// Suspendable execution contexts — the mechanism under SimProcess.
///
/// A simulated process needs a private call stack it can park in the middle
/// of (blocking MPI code must read straight-line), plus a way to hand
/// control to and from the scheduler.  Two interchangeable backends provide
/// that:
///
///   * kFiber  — stackful user-level fibers (ucontext): block/resume is an
///     in-process `swapcontext`, no kernel involvement.  The default.
///   * kThread — one OS thread per context, handed control through a pair of
///     binary semaphores.  The original implementation, kept as a fallback
///     and as a determinism oracle: both backends must produce bit-identical
///     simulations (tests/sim_test.cpp asserts this), and the thread backend
///     is the one to run under sanitizers that dislike stack switching (see
///     docs/ARCHITECTURE.md).
///
/// Control discipline (both backends): exactly one side is ever runnable.
/// resume() and suspend() are a synchronous rendezvous, so the scheduler and
/// its processes never race even in the thread backend.

#include <functional>
#include <memory>

namespace mcmpi::sim {

enum class ExecutionBackend { kFiber, kThread };

const char* to_string(ExecutionBackend backend);

/// Process-wide default backend: the MCMPI_SIM_BACKEND environment variable
/// ("fiber" or "thread"); kFiber when unset or unrecognised.  Read once and
/// cached.
ExecutionBackend default_execution_backend();

class ExecutionContext {
 public:
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;
  virtual ~ExecutionContext() = default;

  /// Transfers control into the context (called from the scheduler side).
  /// Returns when the context calls suspend() or its entry function returns.
  /// Must not be called again once the entry function has returned.
  virtual void resume() = 0;

  /// Transfers control back to the last resumer (called from inside the
  /// context).  Returns when the context is resumed again.
  virtual void suspend() = 0;

  /// Creates a parked context.  `entry` starts on the first resume() and
  /// must not let exceptions escape (SimProcess::run_body catches them all).
  static std::unique_ptr<ExecutionContext> create(ExecutionBackend backend,
                                                  std::function<void()> entry);

 protected:
  ExecutionContext() = default;
};

}  // namespace mcmpi::sim
