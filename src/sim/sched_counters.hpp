#pragma once
/// \file sched_counters.hpp
/// Scheduler-level instrumentation, kept in a dependency-free header so the
/// network layer (net/counters.hpp) and the benches can re-export it next to
/// the frame and payload counters without pulling in the whole simulator.

#include <algorithm>
#include <cstdint>

namespace mcmpi::sim {

/// Per-Simulator counters for the costs the fiber scheduler exists to
/// minimise.  BENCH_<name>.json records handoffs alongside events and
/// payload copies, so the scheduling cost of a collective is tracked across
/// PRs the same way its copy cost is.
struct SchedCounters {
  /// Scheduler -> process control transfers (one per SimProcess resume).
  /// Fibers make each handoff cheap; coalescing makes them rare.
  std::uint64_t handoffs = 0;

  /// delay() calls that advanced the clock in place — no timer event, no
  /// block/resume pair — because nothing else could run in the window.
  std::uint64_t coalesced_delays = 0;

  /// Callbacks folded into a previously scheduled batch event instead of
  /// costing their own heap entry (schedule_batch_at fan-outs).
  std::uint64_t batched_callbacks = 0;

  /// Events fired (a batch of N callbacks counts once — it is one event).
  std::uint64_t events_executed = 0;

  /// Allocation-pool receipts: schedule/cross-send requests served from a
  /// free list (a recycled event slot or cross-shard inbox node) vs. those
  /// that had to grow the backing store.  Deterministic — reuse depends only
  /// on each shard's execution order, never on thread timing — so the split
  /// is gated in bench JSON like every other counter.
  std::uint64_t event_pool_hits = 0;
  std::uint64_t event_pool_misses = 0;

  /// Segmented-collective pipeline instrumentation (coll/segmented.cpp).
  /// chunk_sent counts first transmissions, chunk_retried the
  /// timeout-driven re-multicasts, chunk_acked every per-chunk ack the
  /// root consumed; chunk_peak_window is the high-water mark of
  /// simultaneously in-flight (sent, not yet fully acked) chunks — the
  /// direct evidence that pipelining actually overlapped transmissions
  /// (lockstep pins it at 1).
  std::uint64_t chunk_sent = 0;
  std::uint64_t chunk_acked = 0;
  std::uint64_t chunk_retried = 0;
  std::uint64_t chunk_peak_window = 0;

  /// Fault-injection layer (net/fault.hpp): frames the per-link models
  /// dropped, duplicated, or delayed out of order at delivery edges.
  /// Counted on the shard executing the delivery, so the totals merge like
  /// every other scheduler counter and are bit-identical across shard
  /// counts and drivers.
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_reordered = 0;

  /// Reliable-multicast recovery instrumentation: receiver-side NACKs
  /// sent, root-side NACKs suppressed by the aggregation window
  /// (coll/nack_mcast.cpp), and protocol-level payload re-multicasts
  /// (ack-mcast timeouts + NACK-served resends).
  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_suppressed = 0;
  std::uint64_t retransmits = 0;

  /// FEC-coded multicast instrumentation (coll/fec.cpp + the segmented
  /// pipeline's FEC recovery mode): parity frames multicast by roots,
  /// parity rows actually consumed by receiver-side reconstructions,
  /// windows reconstructed (fec_decodes), and windows that lost more than
  /// their parity could absorb and fell back to a NACK round
  /// (fec_fallbacks).  parity_sent - parity_used is the bandwidth the
  /// protocol burned for nothing — the measurable cost of its zero-RTT
  /// recovery.
  std::uint64_t parity_sent = 0;
  std::uint64_t parity_used = 0;
  std::uint64_t fec_decodes = 0;
  std::uint64_t fec_fallbacks = 0;

  /// Fieldwise accumulate — how the sharded simulator merges its per-shard
  /// counters into the figures the benches record.  chunk_peak_window is a
  /// high-water mark, so it merges by max, not sum.
  SchedCounters& operator+=(const SchedCounters& other) {
    handoffs += other.handoffs;
    coalesced_delays += other.coalesced_delays;
    batched_callbacks += other.batched_callbacks;
    events_executed += other.events_executed;
    event_pool_hits += other.event_pool_hits;
    event_pool_misses += other.event_pool_misses;
    chunk_sent += other.chunk_sent;
    chunk_acked += other.chunk_acked;
    chunk_retried += other.chunk_retried;
    chunk_peak_window = std::max(chunk_peak_window, other.chunk_peak_window);
    frames_dropped += other.frames_dropped;
    frames_duplicated += other.frames_duplicated;
    frames_reordered += other.frames_reordered;
    nacks_sent += other.nacks_sent;
    nacks_suppressed += other.nacks_suppressed;
    retransmits += other.retransmits;
    parity_sent += other.parity_sent;
    parity_used += other.parity_used;
    fec_decodes += other.fec_decodes;
    fec_fallbacks += other.fec_fallbacks;
    return *this;
  }
};

}  // namespace mcmpi::sim
