#include "sim/simulator.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "sim/wait.hpp"

namespace mcmpi::sim {

// ---------------------------------------------------------------- SimProcess

SimProcess::SimProcess(Simulator& sim, std::size_t index, std::string name,
                       std::function<void(SimProcess&)> body, Rng rng)
    : sim_(sim),
      index_(index),
      name_(std::move(name)),
      body_(std::move(body)),
      rng_(rng) {
  context_ =
      ExecutionContext::create(sim.backend_, [this] { run_body(); });
}

SimProcess::~SimProcess() = default;

void SimProcess::run_body() {
  if (!cancelled_) {
    try {
      body_(*this);
    } catch (const detail::ProcessKilled&) {
      // normal teardown unwind
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  state_ = State::kFinished;
  sim_.on_process_finished();
  // Returning hands control back to the scheduler for good.
}

void SimProcess::block() {
  context_->suspend();
  if (cancelled_) {
    throw detail::ProcessKilled{};
  }
}

SimTime SimProcess::now() const { return sim_.now(); }

void SimProcess::delay(SimTime d) {
  MC_EXPECTS(d >= kTimeZero);
  if (d == kTimeZero) {
    return;
  }
  // Coalesced fast path: with no other process ready and no event strictly
  // inside [now, now+d], nothing could run in the window — advance the
  // clock in place.  An event at exactly now+d must still win the tick
  // (its seq predates the timer this delay would have scheduled), hence
  // the strict comparison.
  if (sim_.ready_.empty() && sim_.events_.next_time() > sim_.now_ + d) {
    sim_.now_ += d;
    ++sim_.sched_.coalesced_delays;
    return;
  }
  state_ = State::kBlocked;
  sim_.schedule_after(d, [this] { sim_.make_ready(*this); });
  block();
}

void SimProcess::yield() {
  state_ = State::kReady;
  sim_.ready_.push_back(this);
  block();
}

// ----------------------------------------------------------------- Simulator

Simulator::Simulator(std::uint64_t seed, ExecutionBackend backend)
    : rng_(seed), backend_(backend) {}

Simulator::~Simulator() {
  // Wake every unfinished process so it unwinds (ProcessKilled) while the
  // objects its stack references are still alive.  Each resume hands control
  // to exactly one context, preserving the one-runnable invariant.
  for (auto& owned : processes_) {
    SimProcess& p = *owned;
    if (p.state_ != SimProcess::State::kFinished) {
      p.cancelled_ = true;
      p.context_->resume();
      MC_ASSERT(p.state_ == SimProcess::State::kFinished);
    }
  }
}

EventId Simulator::schedule_at(SimTime t, EventFn fn) {
  MC_EXPECTS_MSG(t >= now_, "cannot schedule an event in the past");
  return events_.schedule(t, std::move(fn));
}

EventId Simulator::schedule_after(SimTime delay, EventFn fn) {
  MC_EXPECTS(delay >= kTimeZero);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_batch_at(SimTime t, std::vector<EventFn> batch) {
  MC_EXPECTS_MSG(!batch.empty(), "empty event batch");
  if (batch.size() == 1) {
    return schedule_at(t, std::move(batch.front()));
  }
  sched_.batched_callbacks += batch.size() - 1;
  return schedule_at(t, [batch = std::move(batch)]() mutable {
    for (EventFn& fn : batch) {
      fn();
    }
  });
}

EventId Simulator::schedule_batch_after(SimTime delay,
                                        std::vector<EventFn> batch) {
  MC_EXPECTS(delay >= kTimeZero);
  return schedule_batch_at(now_ + delay, std::move(batch));
}

bool Simulator::cancel(EventId id) { return events_.cancel(id); }

SimProcess& Simulator::spawn(std::string name,
                             std::function<void(SimProcess&)> body) {
  const std::size_t index = processes_.size();
  Rng child = rng_.fork(index + 0x517E);
  // Constructor is private; construct via `new` under unique_ptr ownership.
  processes_.emplace_back(std::unique_ptr<SimProcess>(
      new SimProcess(*this, index, std::move(name), std::move(body), child)));
  SimProcess& p = *processes_.back();
  p.state_ = SimProcess::State::kReady;
  ready_.push_back(&p);
  ++live_processes_;
  return p;
}

void Simulator::make_ready(SimProcess& p) {
  MC_ASSERT(p.state_ == SimProcess::State::kBlocked);
  p.state_ = SimProcess::State::kReady;
  ready_.push_back(&p);
}

void Simulator::on_process_finished() {
  MC_ASSERT(live_processes_ > 0);
  --live_processes_;
}

void Simulator::run_process(SimProcess& p) {
  MC_ASSERT(current_ == nullptr);
  MC_ASSERT(p.state_ == SimProcess::State::kReady);
  current_ = &p;
  p.state_ = SimProcess::State::kRunning;
  ++sched_.handoffs;
  p.context_->resume();
  current_ = nullptr;
  if (p.state_ == SimProcess::State::kFinished && p.error_) {
    std::exception_ptr e = p.error_;
    p.error_ = nullptr;
    std::rethrow_exception(e);
  }
}

bool Simulator::step() {
  if (!ready_.empty()) {
    SimProcess* p = ready_.front();
    ready_.pop_front();
    run_process(*p);
    return true;
  }
  const SimTime t = events_.next_time();
  if (t == kTimeInfinity) {
    return false;
  }
  MC_ASSERT(t >= now_);
  now_ = t;
  // Batched same-tick drain: fire every event of this timestamp back to
  // back, pausing whenever a callback makes a process ready so the FIFO
  // process interleave is exactly what per-event stepping produced.
  while (auto fired = events_.pop_if_at(t)) {
    ++sched_.events_executed;
    fired->fn();
    if (!ready_.empty()) {
      break;
    }
  }
  return true;
}

void Simulator::run() {
  MC_EXPECTS_MSG(!running_, "Simulator::run is not reentrant");
  running_ = true;
  try {
    while (step()) {
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  check_deadlock();
}

void Simulator::run_until_processes_done() {
  MC_EXPECTS_MSG(!running_, "Simulator::run is not reentrant");
  running_ = true;
  try {
    while (live_processes_ > 0 && step()) {
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  if (live_processes_ > 0) {
    check_deadlock();
  }
}

void Simulator::check_deadlock() const {
  if (live_processes_ == 0) {
    return;
  }
  std::ostringstream os;
  os << "simulation deadlock at t=" << now_.count() << "ns; blocked:";
  for (const auto& p : processes_) {
    if (p->state_ != SimProcess::State::kFinished) {
      os << ' ' << p->name();
    }
  }
  throw DeadlockError(os.str());
}

}  // namespace mcmpi::sim
