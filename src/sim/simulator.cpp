#include "sim/simulator.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "sim/wait.hpp"

namespace mcmpi::sim {

// ---------------------------------------------------------------- SimProcess

SimProcess::SimProcess(Simulator& sim, std::size_t index, std::string name,
                       std::function<void(SimProcess&)> body, Rng rng)
    : sim_(sim),
      index_(index),
      name_(std::move(name)),
      body_(std::move(body)),
      rng_(rng) {
  thread_ = std::thread([this] { thread_main(); });
}

SimProcess::~SimProcess() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void SimProcess::thread_main() {
  resume_.acquire();  // parked until the scheduler first runs us
  if (!cancelled_) {
    try {
      body_(*this);
    } catch (const detail::ProcessKilled&) {
      // normal teardown unwind
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  state_ = State::kFinished;
  sim_.sched_sem_.release();
}

void SimProcess::block() {
  sim_.sched_sem_.release();
  resume_.acquire();
  if (cancelled_) {
    throw detail::ProcessKilled{};
  }
}

SimTime SimProcess::now() const { return sim_.now(); }

void SimProcess::delay(SimTime d) {
  MC_EXPECTS(d >= kTimeZero);
  if (d == kTimeZero) {
    return;
  }
  state_ = State::kBlocked;
  sim_.schedule_after(d, [this] { sim_.make_ready(*this); });
  block();
}

void SimProcess::yield() {
  state_ = State::kReady;
  sim_.ready_.push_back(this);
  block();
}

// ----------------------------------------------------------------- Simulator

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

Simulator::~Simulator() {
  // Wake every unfinished process so it unwinds (ProcessKilled) while the
  // objects its stack references are still alive.  Each wake hands control
  // to exactly one thread, preserving the one-runnable-thread invariant.
  for (auto& owned : processes_) {
    SimProcess& p = *owned;
    if (p.state_ != SimProcess::State::kFinished) {
      p.cancelled_ = true;
      p.resume_.release();
      sched_sem_.acquire();
      MC_ASSERT(p.state_ == SimProcess::State::kFinished);
    }
  }
}

EventId Simulator::schedule_at(SimTime t, EventFn fn) {
  MC_EXPECTS_MSG(t >= now_, "cannot schedule an event in the past");
  return events_.schedule(t, std::move(fn));
}

EventId Simulator::schedule_after(SimTime delay, EventFn fn) {
  MC_EXPECTS(delay >= kTimeZero);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) { return events_.cancel(id); }

SimProcess& Simulator::spawn(std::string name,
                             std::function<void(SimProcess&)> body) {
  const std::size_t index = processes_.size();
  Rng child = rng_.fork(index + 0x517E);
  // Constructor is private; construct via `new` under unique_ptr ownership.
  processes_.emplace_back(std::unique_ptr<SimProcess>(
      new SimProcess(*this, index, std::move(name), std::move(body), child)));
  SimProcess& p = *processes_.back();
  p.state_ = SimProcess::State::kReady;
  ready_.push_back(&p);
  return p;
}

void Simulator::make_ready(SimProcess& p) {
  MC_ASSERT(p.state_ == SimProcess::State::kBlocked);
  p.state_ = SimProcess::State::kReady;
  ready_.push_back(&p);
}

void Simulator::run_process(SimProcess& p) {
  MC_ASSERT(current_ == nullptr);
  MC_ASSERT(p.state_ == SimProcess::State::kReady);
  current_ = &p;
  p.state_ = SimProcess::State::kRunning;
  p.resume_.release();
  sched_sem_.acquire();
  current_ = nullptr;
  if (p.state_ == SimProcess::State::kFinished && p.error_) {
    std::exception_ptr e = p.error_;
    p.error_ = nullptr;
    std::rethrow_exception(e);
  }
}

bool Simulator::step() {
  if (!ready_.empty()) {
    SimProcess* p = ready_.front();
    ready_.pop_front();
    run_process(*p);
    return true;
  }
  if (!events_.empty()) {
    EventQueue::Fired fired = events_.pop();
    MC_ASSERT(fired.time >= now_);
    now_ = fired.time;
    ++events_executed_;
    fired.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  MC_EXPECTS_MSG(!running_, "Simulator::run is not reentrant");
  running_ = true;
  try {
    while (step()) {
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  check_deadlock();
}

void Simulator::run_until_processes_done() {
  MC_EXPECTS_MSG(!running_, "Simulator::run is not reentrant");
  running_ = true;
  try {
    while (live_processes() > 0 && step()) {
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  if (live_processes() > 0) {
    check_deadlock();
  }
}

std::size_t Simulator::live_processes() const {
  std::size_t n = 0;
  for (const auto& p : processes_) {
    if (p->state_ != SimProcess::State::kFinished) {
      ++n;
    }
  }
  return n;
}

void Simulator::check_deadlock() const {
  if (live_processes() == 0) {
    return;
  }
  std::ostringstream os;
  os << "simulation deadlock at t=" << now_.count() << "ns; blocked:";
  for (const auto& p : processes_) {
    if (p->state_ != SimProcess::State::kFinished) {
      os << ' ' << p->name();
    }
  }
  throw DeadlockError(os.str());
}

}  // namespace mcmpi::sim
