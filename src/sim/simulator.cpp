#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string_view>
#include <thread>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "sim/wait.hpp"

namespace mcmpi::sim {

namespace {

/// The shard whose scheduler (or process) the calling thread is currently
/// executing.  Set around every window/run/teardown so that Simulator's
/// routed API (now / rng / schedule / spawn / current) resolves to the
/// executing shard from rank code, event callbacks and network models
/// alike.  Null outside any simulation.
thread_local Shard* tls_shard = nullptr;

class TlsShardGuard {
 public:
  explicit TlsShardGuard(Shard* shard)
      : prev_(tls_shard),
        pool_scope_(shard != nullptr ? shard->payload_pool() : nullptr) {
    tls_shard = shard;
  }
  ~TlsShardGuard() { tls_shard = prev_; }
  TlsShardGuard(const TlsShardGuard&) = delete;
  TlsShardGuard& operator=(const TlsShardGuard&) = delete;

 private:
  Shard* prev_;
  /// Routes payload-buffer leases and releases during this shard's
  /// execution to the shard's own pool (no-op when pooling is off).
  PayloadPoolScope pool_scope_;
};

/// Independent, reproducible per-shard seed.  Shard 0 keeps the simulator
/// seed itself so a single-shard simulator is bit-identical to the classic
/// unsharded one (same RNG stream for process forks and hub backoffs).
std::uint64_t shard_seed(std::uint64_t seed, unsigned id) {
  if (id == 0) {
    return seed;
  }
  std::uint64_t mix = seed ^ (0x9E3779B97F4A7C15ULL * (id + 1));
  return splitmix64(mix);
}

/// min + lookahead without overflowing the kTimeInfinity sentinel.
SimTime saturating_add(SimTime t, SimTime d) {
  if (t >= kTimeInfinity - d) {
    return kTimeInfinity;
  }
  return t + d;
}

}  // namespace

const char* to_string(ShardDriver driver) {
  return driver == ShardDriver::kSerial ? "serial" : "parallel";
}

ShardDriver default_shard_driver() {
  static const ShardDriver cached = [] {
    const char* env = std::getenv("MCMPI_SIM_SHARD_DRIVER");
    if (env != nullptr && std::string_view(env) == "serial") {
      return ShardDriver::kSerial;
    }
    return ShardDriver::kParallel;
  }();
  return cached;
}

// ---------------------------------------------------------------- SimProcess

SimProcess::SimProcess(Shard& shard, std::size_t index, std::string name,
                       std::function<void(SimProcess&)> body, Rng rng)
    : shard_(shard),
      index_(index),
      name_(std::move(name)),
      body_(std::move(body)),
      rng_(rng) {
  context_ =
      ExecutionContext::create(shard.sim_.backend_, [this] { run_body(); });
}

SimProcess::~SimProcess() = default;

Simulator& SimProcess::simulator() { return shard_.sim_; }

void SimProcess::run_body() {
  // Pin the executing thread's shard routing to this process's home shard
  // for the body's whole lifetime.  Under the fiber backend this is a
  // no-op (the body runs on the shard's own driver thread, whose guard
  // already points here); under the THREAD backend the body runs on its
  // dedicated OS thread, whose thread-local would otherwise fall back to
  // the root shard and misroute every schedule/now/rng call of a rank
  // living on another shard.
  const TlsShardGuard guard(&shard_);
  if (!cancelled_) {
    try {
      body_(*this);
    } catch (const detail::ProcessKilled&) {
      // normal teardown unwind
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  state_ = State::kFinished;
  MC_ASSERT(shard_.live_processes_ > 0);
  --shard_.live_processes_;
  // Returning hands control back to the scheduler for good.
}

void SimProcess::block() {
  context_->suspend();
  if (cancelled_) {
    throw detail::ProcessKilled{};
  }
}

SimTime SimProcess::now() const { return shard_.now_; }

void SimProcess::delay(SimTime d) {
  MC_EXPECTS(d >= kTimeZero);
  if (d == kTimeZero) {
    return;
  }
  // Coalesced fast path: with no other process ready and no event strictly
  // inside [now, now+d], nothing could run in the window — advance the
  // clock in place.  An event at exactly now+d must still win the tick
  // (its seq predates the timer this delay would have scheduled), hence
  // the strict comparison.  In a sharded run the jump must additionally
  // stay strictly inside the conservative round window: past it, a peer
  // shard may still deliver, so the slow path schedules a timer that waits
  // for a later round instead.
  Shard& sh = shard_;
  if (sh.ready_.empty() && sh.events_.next_time() > sh.now_ + d &&
      sh.now_ + d < sh.window_end_) {
    sh.now_ += d;
    ++sh.sched_.coalesced_delays;
    return;
  }
  state_ = State::kBlocked;
  sh.schedule_after(d, [this] { shard_.make_ready(*this); });
  block();
}

void SimProcess::yield() {
  state_ = State::kReady;
  shard_.ready_.push_back(this);
  block();
}

// --------------------------------------------------------------------- Shard

Shard::Shard(Simulator& sim, unsigned id, std::uint64_t seed,
             bool payload_pool)
    : sim_(sim), id_(id), rng_(shard_seed(seed, id)) {
  events_.set_shard_tag(static_cast<std::uint16_t>(id));
  if (payload_pool) {
    payload_pool_ = std::make_unique<PayloadPool>();
  }
}

Shard::~Shard() { drop_inbox(); }

EventId Shard::schedule_at(SimTime t, EventFn fn) {
  MC_EXPECTS_MSG(t >= now_, "cannot schedule an event in the past");
  return events_.schedule(t, std::move(fn));
}

SimProcess& Shard::spawn(std::string name,
                         std::function<void(SimProcess&)> body, Rng rng) {
  const std::size_t index = processes_.size();
  // Constructor is private; construct via `new` under unique_ptr ownership.
  processes_.emplace_back(std::unique_ptr<SimProcess>(
      new SimProcess(*this, index, std::move(name), std::move(body), rng)));
  SimProcess& p = *processes_.back();
  p.state_ = SimProcess::State::kReady;
  ready_.push_back(&p);
  ++live_processes_;
  return p;
}

void Shard::make_ready(SimProcess& p) {
  MC_ASSERT(p.state_ == SimProcess::State::kBlocked);
  MC_ASSERT(&p.shard_ == this);
  p.state_ = SimProcess::State::kReady;
  ready_.push_back(&p);
}

void Shard::run_process(SimProcess& p) {
  MC_ASSERT(current_ == nullptr);
  MC_ASSERT(p.state_ == SimProcess::State::kReady);
  current_ = &p;
  p.state_ = SimProcess::State::kRunning;
  ++sched_.handoffs;
  p.context_->resume();
  current_ = nullptr;
  if (p.state_ == SimProcess::State::kFinished && p.error_) {
    std::exception_ptr e = p.error_;
    p.error_ = nullptr;
    std::rethrow_exception(e);
  }
}

bool Shard::step() {
  if (!ready_.empty()) {
    SimProcess* p = ready_.front();
    ready_.pop_front();
    run_process(*p);
    return true;
  }
  const SimTime t = events_.next_time();
  if (t >= window_end_) {
    // Covers the empty queue too: kTimeInfinity >= any window.
    return false;
  }
  MC_ASSERT(t >= now_);
  now_ = t;
  // Batched same-tick drain: fire every event of this timestamp back to
  // back, pausing whenever a callback makes a process ready so the FIFO
  // process interleave is exactly what per-event stepping produced.
  while (auto fired = events_.pop_if_at(t)) {
    ++sched_.events_executed;
    fired->fn();
    if (!ready_.empty()) {
      break;
    }
  }
  return true;
}

void Shard::run_window(bool stop_at_local_quiescence) {
  if (stop_at_local_quiescence) {
    while (live_processes_ > 0 && step()) {
    }
  } else {
    while (step()) {
    }
  }
}

void Shard::merge_inbox() {
  // Take-all drain: the acquire exchange synchronizes with every release
  // CAS push, so each node's contents are fully visible here.  The stack
  // yields nodes newest-first, which is fine — the event queue totally
  // orders entries by (time, sender key), so heap insertion order never
  // affects what fires when.
  CrossNode* node = inbox_head_.exchange(nullptr, std::memory_order_acquire);
  while (node != nullptr) {
    CrossNode* next = node->next;
    MC_ASSERT_MSG(node->time >= now_,
                  "cross-shard delivery arrived in the past");
    events_.schedule_keyed(node->time, node->key, std::move(node->fn));
    recycle_cross_node(node);
    node = next;
  }
  if (payload_pool_ != nullptr) {
    payload_pool_->drain_remote();
  }
}

void Shard::push_cross(CrossNode* node) {
  CrossNode* head = inbox_head_.load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!inbox_head_.compare_exchange_weak(head, node,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
}

Shard::CrossNode* Shard::take_cross_node() {
  if (!node_cache_.empty()) {
    CrossNode* node = node_cache_.back();
    node_cache_.pop_back();
    ++sched_.event_pool_hits;
    return node;
  }
  ++sched_.event_pool_misses;
  return new CrossNode;
}

void Shard::recycle_cross_node(CrossNode* node) {
  constexpr std::size_t kNodeCacheCap = 256;
  if (node_cache_.size() >= kNodeCacheCap) {
    delete node;
    return;
  }
  node->fn.reset();
  node->next = nullptr;
  node_cache_.push_back(node);
}

void Shard::drop_inbox() {
  // Undelivered cross-shard callbacks (and the frames they captured) are
  // dropped with the simulation.
  CrossNode* node = inbox_head_.exchange(nullptr, std::memory_order_acquire);
  while (node != nullptr) {
    CrossNode* next = node->next;
    delete node;
    node = next;
  }
  for (CrossNode* cached : node_cache_) {
    delete cached;
  }
  node_cache_.clear();
}

// ----------------------------------------------------------------- Simulator

Simulator::Simulator(std::uint64_t seed, ExecutionBackend backend,
                     ShardingConfig sharding)
    : backend_(backend),
      driver_(sharding.driver),
      lookahead_(sharding.lookahead),
      payload_pool_(sharding.payload_pool) {
  MC_EXPECTS_MSG(sharding.shards >= 1, "need at least one shard");
  MC_EXPECTS_MSG(sharding.shards <= 0xFFFF, "shard id must fit 16 bits");
  const std::size_t n = sharding.shards;
  MC_EXPECTS_MSG(
      sharding.lookahead_matrix.empty() ||
          sharding.lookahead_matrix.size() == n * n,
      "lookahead matrix must be empty or shards x shards entries");
  // Close the per-pair delivery bounds over indirect paths (Floyd–Warshall):
  // shard i can influence shard k through j no earlier than the sum of the
  // two hops, so the conservative bound between any pair is the shortest
  // path, not the direct channel alone.  A uniform configuration (empty
  // matrix) closes to `lookahead` for every distinct pair because paths
  // only add hops.
  closure_.assign(n * n, kTimeInfinity);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        closure_[i * n + j] = kTimeZero;
      } else if (sharding.lookahead_matrix.empty()) {
        closure_[i * n + j] = sharding.lookahead;
      } else {
        closure_[i * n + j] = sharding.lookahead_matrix[i * n + j];
      }
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const SimTime via = saturating_add(closure_[i * n + k],
                                           closure_[k * n + j]);
        closure_[i * n + j] = std::min(closure_[i * n + j], via);
      }
    }
  }
  // Zero lookahead between two shards would plan zero-width windows the
  // moment their next-event times tie — a livelock, not an error the
  // drivers can detect later.  Require positive closed bounds up front
  // (an infinite bound is fine: those pairs simply never gate each other).
  SimTime min_pair = kTimeInfinity;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        MC_EXPECTS_MSG(closure_[i * n + j] > kTimeZero,
                       "a multi-shard simulator needs positive lookahead");
        min_pair = std::min(min_pair, closure_[i * n + j]);
      }
    }
  }
  if (!sharding.lookahead_matrix.empty() && min_pair != kTimeInfinity) {
    lookahead_ = min_pair;
  }
  workers_ = sharding.workers == 0
                 ? sharding.shards
                 : std::min(sharding.workers, sharding.shards);
  shards_.reserve(sharding.shards);
  for (unsigned i = 0; i < sharding.shards; ++i) {
    shards_.push_back(std::unique_ptr<Shard>(
        new Shard(*this, i, seed, sharding.payload_pool)));
  }
}

Simulator::~Simulator() {
  // Wake every unfinished process so it unwinds (ProcessKilled) while the
  // objects its stack references are still alive.  Each resume hands control
  // to exactly one context, preserving the one-runnable invariant; the TLS
  // guard keeps any scheduling the unwind performs routed to the home shard.
  for (auto& owned_shard : shards_) {
    Shard& shard = *owned_shard;
    const TlsShardGuard guard(&shard);
    for (auto& owned : shard.processes_) {
      SimProcess& p = *owned;
      if (p.state_ != SimProcess::State::kFinished) {
        p.cancelled_ = true;
        p.context_->resume();
        MC_ASSERT(p.state_ == SimProcess::State::kFinished);
      }
    }
    shard.drop_inbox();
  }
}

Shard& Simulator::current_shard() {
  if (tls_shard != nullptr && &tls_shard->sim_ == this) {
    return *tls_shard;
  }
  return *shards_.front();
}

const Shard& Simulator::current_shard() const {
  if (tls_shard != nullptr && &tls_shard->sim_ == this) {
    return *tls_shard;
  }
  return *shards_.front();
}

SimTime Simulator::now() const {
  if (tls_shard != nullptr && &tls_shard->sim_ == this) {
    return tls_shard->now_;
  }
  SimTime latest = kTimeZero;
  for (const auto& shard : shards_) {
    latest = std::max(latest, shard->now_);
  }
  return latest;
}

Rng& Simulator::rng() { return current_shard().rng_; }

EventId Simulator::schedule_at(SimTime t, EventFn fn) {
  return current_shard().schedule_at(t, std::move(fn));
}

EventId Simulator::schedule_after(SimTime delay, EventFn fn) {
  MC_EXPECTS(delay >= kTimeZero);
  Shard& shard = current_shard();
  return shard.schedule_at(shard.now_ + delay, std::move(fn));
}

EventId Simulator::schedule_batch_at(SimTime t, std::vector<EventFn> batch) {
  MC_EXPECTS_MSG(!batch.empty(), "empty event batch");
  if (batch.size() == 1) {
    return schedule_at(t, std::move(batch.front()));
  }
  Shard& shard = current_shard();
  shard.sched_.batched_callbacks += batch.size() - 1;
  return shard.schedule_at(t, [batch = std::move(batch)]() mutable {
    for (EventFn& fn : batch) {
      fn();
    }
  });
}

EventId Simulator::schedule_batch_after(SimTime delay,
                                        std::vector<EventFn> batch) {
  MC_EXPECTS(delay >= kTimeZero);
  return schedule_batch_at(current_shard().now_ + delay, std::move(batch));
}

bool Simulator::cancel(EventId id) { return current_shard().cancel(id); }

void Simulator::schedule_cross(unsigned target_shard, SimTime t, EventFn fn) {
  Shard& src = current_shard();
  Shard& dst = *shards_.at(target_shard);
  if (&src == &dst || !running_) {
    // Same shard, or single-threaded setup between runs: an ordinary event
    // with the receiving shard's own (deterministic) key.
    dst.schedule_at(t, std::move(fn));
    return;
  }
  const SimTime out_bound = lookahead(src.id_, dst.id_);
  MC_EXPECTS_MSG(out_bound != kTimeInfinity,
                 "cross-shard delivery to a shard the lookahead matrix "
                 "declares unreachable");
  MC_EXPECTS_MSG(
      t >= saturating_add(src.now_, out_bound),
      "cross-shard delivery violates the conservative lookahead bound");
  Shard::CrossNode* node = src.take_cross_node();
  node->time = t;
  node->key = src.events_.allocate_remote_key();
  node->fn = std::move(fn);
  dst.push_cross(node);
  // Causal-response horizon: the receiver can react one outbound hop from
  // now and its reply lands after the return bound, so this shard must not
  // execute past now + lookahead(src, dst) + lookahead(dst, src) this
  // round.  Deterministic — the clamp depends only on the shard's own
  // execution — and monotone within the round (later sends clamp no lower).
  const SimTime back_bound = lookahead(dst.id_, src.id_);
  if (back_bound != kTimeInfinity) {
    src.window_end_ = std::min(
        src.window_end_,
        saturating_add(src.now_, saturating_add(out_bound, back_bound)));
  }
}

EventId Simulator::schedule_on_shard_at(unsigned shard, SimTime t,
                                        EventFn fn) {
  MC_EXPECTS_MSG(!running_,
                 "schedule_on_shard_at is a pre-run setup primitive");
  return shards_.at(shard)->schedule_at(t, std::move(fn));
}

SimProcess& Simulator::spawn(std::string name,
                             std::function<void(SimProcess&)> body) {
  Shard& shard = current_shard();
  if (!running_) {
    return spawn_on(shard.id(), std::move(name), std::move(body));
  }
  // In-run spawn (a nonblocking-collective helper): fork from the SPAWNING
  // shard's stream — race-free under the parallel driver, and identical to
  // the classic global-stream fork whenever there is one shard.
  Rng child = shard.rng_.fork(shard.processes_.size() + 0x517E);
  return shard.spawn(std::move(name), std::move(body), child);
}

SimProcess& Simulator::spawn_on(unsigned shard, std::string name,
                                std::function<void(SimProcess&)> body) {
  MC_EXPECTS_MSG(!running_, "spawn_on is a pre-run setup primitive");
  // Pre-run spawns fork from the ROOT shard's stream, salted by the global
  // spawn count: the per-process streams (and therefore e.g. experiment
  // start skews) depend only on spawn order — never on how many shards the
  // processes end up spread across — and a single-shard simulator remains
  // bit-identical to the classic unsharded fork sequence.
  std::size_t total = 0;
  for (const auto& s : shards_) {
    total += s->processes_.size();
  }
  Rng child = shards_.front()->rng_.fork(total + 0x517E);
  return shards_.at(shard)->spawn(std::move(name), std::move(body), child);
}

std::size_t Simulator::live_processes() const {
  std::size_t live = 0;
  for (const auto& shard : shards_) {
    live += shard->live_processes_;
  }
  return live;
}

SimProcess* Simulator::current() { return current_shard().current_; }

SchedCounters& Simulator::counters() { return current_shard().counters(); }

SchedCounters Simulator::sched_counters() const {
  SchedCounters merged;
  for (const auto& shard : shards_) {
    merged += shard->sched_counters();
  }
  return merged;
}

std::uint64_t Simulator::events_scheduled() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->events_.total_scheduled();
  }
  return total;
}

Simulator::RoundPlan Simulator::plan_round(bool until_processes_done) {
  const std::size_t n = shards_.size();
  std::vector<SimTime> next(n);
  std::size_t total_live = 0;
  bool any_work = false;
  for (std::size_t i = 0; i < n; ++i) {
    next[i] = shards_[i]->next_ready_time();
    total_live += shards_[i]->live_processes_;
    any_work = any_work || next[i] != kTimeInfinity;
  }
  RoundPlan plan;
  if (!any_work) {
    plan.done = true;
    return plan;
  }
  plan.window.resize(n);
  plan.stop_at_local_quiescence.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    SimTime window = kTimeInfinity;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) {
        // Nothing peer j could execute before next[j], so nothing it could
        // deliver here before next[j] + lookahead(j, i): shard i may run
        // everything strictly below the minimum over its peers.  With no
        // active peer (or only unreachable ones) the window is unbounded
        // and the shard behaves exactly like a classic unsharded simulator.
        window = std::min(window,
                          saturating_add(next[j], closure_[j * n + i]));
      }
    }
    plan.window[i] = window;
    // run_until_processes_done parity: when every live process sits on this
    // shard, its own live count IS the global one, and stepping may stop
    // the instant it reaches zero (the classic per-step check).  With live
    // processes elsewhere the round runs its full window and the global
    // check happens at the next barrier.
    plan.stop_at_local_quiescence[i] =
        until_processes_done &&
        total_live == shards_[i]->live_processes_ ? 1 : 0;
  }
  return plan;
}

void Simulator::run_windows_serial(bool until_processes_done) {
  for (;;) {
    for (auto& shard : shards_) {
      shard->merge_inbox();
    }
    if (until_processes_done && live_processes() == 0) {
      return;
    }
    const RoundPlan plan = plan_round(until_processes_done);
    if (plan.done) {
      return;
    }
    bool failed = false;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = *shards_[i];
      const TlsShardGuard guard(&shard);
      shard.window_end_ = plan.window[i];
      try {
        shard.run_window(plan.stop_at_local_quiescence[i] != 0);
      } catch (...) {
        shard.error_ = std::current_exception();
        failed = true;
      }
      shard.window_end_ = kTimeInfinity;
    }
    if (failed) {
      return;
    }
  }
}

namespace {

/// Cyclic sense-reversing barrier with a completion hook the last arriver
/// runs before releasing anyone — two uncontended atomic ops per arrival
/// instead of a mutex/condvar round trip, which is what dominates per-round
/// sync cost at small lookahead windows.  Memory ordering (all C++ atomics,
/// so ThreadSanitizer models every edge exactly): each arrival's
/// fetch_sub(acq_rel) joins the release sequence on `remaining_`, so the
/// last arriver observes every earlier thread's window writes; its
/// release-store of `sense_` then publishes those plus the completion's own
/// writes (the round plan) to every spinner's acquire-load.  Waiters spin
/// briefly, then yield — worker counts are at most the shard count, so
/// oversubscribed hosts degrade to yield loops instead of burning a core.
class RoundBarrier {
 public:
  RoundBarrier(std::size_t parties, std::function<void()> completion)
      : parties_(parties),
        remaining_(parties),
        completion_(std::move(completion)) {}

  /// `my_sense` is the calling thread's phase flag for THIS barrier,
  /// flipped here on every arrival; start every thread at false.
  void arrive_and_wait(bool& my_sense) {
    const bool want = !my_sense;
    my_sense = want;
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Reset before the sense flip: peers of the NEXT round cannot reach
      // their fetch_sub until they observe the flip below.
      remaining_.store(parties_, std::memory_order_relaxed);
      if (completion_) {
        completion_();
      }
      sense_.store(want, std::memory_order_release);
      return;
    }
    int spins = 0;
    while (sense_.load(std::memory_order_acquire) != want) {
      if (++spins >= kSpinLimit) {
        std::this_thread::yield();
      }
    }
  }

 private:
  static constexpr int kSpinLimit = 1024;

  std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::function<void()> completion_;
  std::atomic<bool> sense_{false};
};

}  // namespace

void Simulator::run_windows_parallel(bool until_processes_done) {
  RoundPlan plan;
  bool stop = false;
  // Worker w owns shards {i : i % W == w} and runs them in ascending id
  // order within every round.  The round schedule is identical for every
  // worker count (each shard's window depends only on the plan, and shards
  // within one round are independent by the conservative-window invariant),
  // so counters and timings are a pure function of the simulation — W only
  // decides how much of a round runs concurrently.
  const std::size_t parties = std::min<std::size_t>(workers_, shards_.size());
  // Two phases per round.  `quiesce` separates window execution from inbox
  // merging, so every cross push of round R is visible to its receiver's
  // merge; the completion of `ready` then plans round R+1 on the last
  // arriving thread while every other worker spins on the barrier's sense
  // flag — the plan is published before any worker resumes.
  RoundBarrier quiesce(parties, {});
  RoundBarrier ready(parties, [this, &plan, &stop, until_processes_done] {
    for (const auto& shard : shards_) {
      if (shard->error_) {
        stop = true;
        return;
      }
    }
    if (until_processes_done && live_processes() == 0) {
      stop = true;
      return;
    }
    plan = plan_round(until_processes_done);
    stop = plan.done;
  });

  auto worker = [&](std::size_t w) {
    bool quiesce_sense = false;
    bool ready_sense = false;
    for (;;) {
      quiesce.arrive_and_wait(quiesce_sense);
      for (std::size_t i = w; i < shards_.size(); i += parties) {
        shards_[i]->merge_inbox();
      }
      ready.arrive_and_wait(ready_sense);
      if (stop) {
        return;
      }
      for (std::size_t i = w; i < shards_.size(); i += parties) {
        Shard& shard = *shards_[i];
        const TlsShardGuard guard(&shard);
        shard.window_end_ = plan.window[i];
        try {
          shard.run_window(plan.stop_at_local_quiescence[i] != 0);
        } catch (...) {
          shard.error_ = std::current_exception();
        }
        shard.window_end_ = kTimeInfinity;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(parties - 1);
  for (std::size_t w = 1; w < parties; ++w) {
    threads.emplace_back(worker, w);
  }
  worker(0);
  for (std::thread& t : threads) {
    t.join();
  }
}

void Simulator::run_driver(bool until_processes_done) {
  // A single worker runs the shards in id order with nobody to synchronize
  // with — exactly the serial driver, minus the barrier spins.
  if (driver_ == ShardDriver::kSerial || workers_ <= 1) {
    run_windows_serial(until_processes_done);
  } else {
    run_windows_parallel(until_processes_done);
  }
  rethrow_shard_error();
}

void Simulator::rethrow_shard_error() {
  for (auto& shard : shards_) {
    if (shard->error_) {
      std::exception_ptr e = shard->error_;
      shard->error_ = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void Simulator::run() {
  MC_EXPECTS_MSG(!running_, "Simulator::run is not reentrant");
  running_ = true;
  try {
    if (shards_.size() == 1) {
      // Classic unsharded loop: one shard, unbounded window.  The merge is
      // for the payload pool: leases released outside any run (between
      // measurement loops) sit on the remote-return stack until here.
      Shard& shard = *shards_.front();
      const TlsShardGuard guard(&shard);
      shard.merge_inbox();
      while (shard.step()) {
      }
    } else {
      run_driver(/*until_processes_done=*/false);
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  check_deadlock();
}

void Simulator::run_until_processes_done() {
  MC_EXPECTS_MSG(!running_, "Simulator::run is not reentrant");
  running_ = true;
  try {
    if (shards_.size() == 1) {
      Shard& shard = *shards_.front();
      const TlsShardGuard guard(&shard);
      shard.merge_inbox();
      while (shard.live_processes_ > 0 && shard.step()) {
      }
    } else {
      run_driver(/*until_processes_done=*/true);
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  if (live_processes() > 0) {
    check_deadlock();
  }
}

void Simulator::check_deadlock() const {
  if (live_processes() == 0) {
    return;
  }
  std::ostringstream os;
  os << "simulation deadlock at t=" << now().count() << "ns; blocked:";
  for (const auto& shard : shards_) {
    for (const auto& p : shard->processes_) {
      if (p->state_ != SimProcess::State::kFinished) {
        os << ' ' << p->name();
      }
    }
  }
  throw DeadlockError(os.str());
}

}  // namespace mcmpi::sim
