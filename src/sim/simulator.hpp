#pragma once
/// \file simulator.hpp
/// The discrete-event simulator and its cooperative process model.
///
/// Design: SPMD rank code must read like ordinary blocking MPI code, so each
/// simulated process runs on its own ExecutionContext — by default a
/// stackful fiber inside the simulator's address space, so a block/resume is
/// an in-process context switch; optionally (MCMPI_SIM_BACKEND=thread, or a
/// constructor argument) a dedicated OS thread handed off through binary
/// semaphores, kept as a fallback and as a determinism oracle.  In both
/// backends *exactly one* context (a process or the scheduler) is ever
/// runnable: execution is deterministic and data-race-free by construction,
/// and the ready queue plus the event queue impose a total order.  The two
/// backends produce bit-identical simulations.
///
/// The scheduler loop:
///   1. while processes are ready, run them in FIFO order;
///   2. otherwise advance the clock to the earliest event time and fire the
///      events of that tick back to back (pausing whenever a callback makes
///      a process ready, so the FIFO interleave is preserved);
///   3. when neither exists: done (or deadlock if processes are still alive).
///
/// Scheduling-cost fast paths (see SchedCounters for the receipts):
///   * delay() advances the clock in place — no timer event, no handoff —
///     when no other process is ready and no event falls inside the window;
///     nothing could have run in the meantime anyway.
///   * schedule_batch_at() folds N same-tick callbacks (a switch fanning a
///     frame to N egress ports) into one heap entry and one event slot.
///
/// Determinism guarantees (unchanged from the thread-per-rank design, and
/// guarded by tests): FIFO ready order, per-process RNG streams forked from
/// the simulator seed, DeadlockError naming every blocked process, exception
/// propagation out of process bodies, and ProcessKilled unwind of
/// still-parked processes at teardown.

#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"
#include "sim/execution_context.hpp"
#include "sim/sched_counters.hpp"

namespace mcmpi::sim {

class Simulator;
class WaitQueue;

/// Thrown by Simulator::run() when live processes remain but no event or
/// ready process can make progress (e.g. a barrier entered by only N-1
/// ranks).  The message lists every blocked process.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// Internal unwind signal delivered to blocked processes at teardown.
struct ProcessKilled {};
}  // namespace detail

/// A simulated process.  The body runs on its own execution context (fiber
/// or thread) and interacts with virtual time only through this handle
/// (delay / WaitQueue::wait / yield).
class SimProcess {
 public:
  SimProcess(const SimProcess&) = delete;
  SimProcess& operator=(const SimProcess&) = delete;
  ~SimProcess();

  const std::string& name() const { return name_; }
  std::size_t index() const { return index_; }
  Simulator& simulator() { return sim_; }

  /// Per-process deterministic stream (forked from the simulator seed).
  Rng& rng() { return rng_; }

  /// Current virtual time.
  SimTime now() const;

  /// Advances virtual time by `d` (models compute / software overhead).
  /// Other processes and events run in the meantime.  When nothing else
  /// could run — no ready process, no event inside the window — the clock
  /// advances in place and adjacent charges coalesce with no handoff at all.
  void delay(SimTime d);

  /// Sleeps until absolute virtual time `t` (no-op if already past).
  void delay_until(SimTime t) {
    if (t > now()) {
      delay(t - now());
    }
  }

  /// Re-queues this process behind every currently ready process without
  /// advancing time.
  void yield();

  bool finished() const { return state_ == State::kFinished; }

 private:
  friend class Simulator;
  friend class WaitQueue;

  enum class State { kNew, kReady, kRunning, kBlocked, kFinished };

  SimProcess(Simulator& sim, std::size_t index, std::string name,
             std::function<void(SimProcess&)> body, Rng rng);

  /// Entry point on the execution context: runs the body, catches teardown
  /// unwinds and stray exceptions, marks the process finished.
  void run_body();
  /// Hands control back to the scheduler; returns when rescheduled.
  void block();

  Simulator& sim_;
  std::size_t index_;
  std::string name_;
  std::function<void(SimProcess&)> body_;
  Rng rng_;

  State state_ = State::kNew;
  bool cancelled_ = false;
  std::exception_ptr error_;
  WaitQueue* waiting_on_ = nullptr;  // set while parked in a WaitQueue
  bool timed_out_ = false;           // result channel for wait_until
  /// While parked via WaitQueue::wait_charged: the notifier-side hook that
  /// prices this process's wake-up (points into the parked stack frame).
  const std::function<SimTime()>* wake_charge_ = nullptr;
  std::unique_ptr<ExecutionContext> context_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1,
                     ExecutionBackend backend = default_execution_backend());
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }
  ExecutionBackend backend() const { return backend_; }

  /// Schedules a callback at absolute virtual time `t` (>= now()).  Small
  /// callables are stored inline in the event queue (no allocation).
  EventId schedule_at(SimTime t, EventFn fn);
  /// Schedules a callback `delay` after now().
  EventId schedule_after(SimTime delay, EventFn fn);

  /// Schedules `batch` to run consecutively, in order, as ONE event at time
  /// `t` — one heap entry and one slot for a whole fan-out.  Cancelling the
  /// returned id cancels the entire batch.
  EventId schedule_batch_at(SimTime t, std::vector<EventFn> batch);
  EventId schedule_batch_after(SimTime delay, std::vector<EventFn> batch);

  bool cancel(EventId id);

  /// Creates a process; it starts running when run() is called (processes
  /// start in FIFO spawn order at the current virtual time).
  SimProcess& spawn(std::string name, std::function<void(SimProcess&)> body);

  /// Runs until every process has finished and the event queue is empty.
  /// Rethrows the first exception raised inside a process.  Throws
  /// DeadlockError if live processes remain but nothing can run.
  void run();

  /// Runs until every process has finished; pending pure-timer events are
  /// allowed to remain (they are discarded by the destructor).
  void run_until_processes_done();

  /// Number of spawned processes that have not finished.  O(1): maintained
  /// on spawn/finish (this sits in the hot deadlock-check loop).
  std::size_t live_processes() const { return live_processes_; }

  /// The process currently executing, or nullptr when the scheduler (an
  /// event callback, or code outside run()) is in control.  Lets facades
  /// that serve several processes of one logical rank (the nonblocking
  /// collective helpers) resolve "which process am I".
  SimProcess* current() { return current_; }

  /// Scheduler-cost instrumentation (handoffs, coalesced delays, batched
  /// callbacks); exported into BENCH_<name>.json by the benches.
  const SchedCounters& sched_counters() const { return sched_; }

  /// Scheduler -> process control transfers so far (micro-bench shorthand).
  std::uint64_t handoffs() const { return sched_.handoffs; }

  /// Total events executed so far (micro-bench instrumentation).
  std::uint64_t events_executed() const { return sched_.events_executed; }

  /// Total events ever scheduled, including later-cancelled ones (the
  /// scheduler-load figure the bench JSON records).
  std::uint64_t events_scheduled() const { return events_.total_scheduled(); }

 private:
  friend class SimProcess;
  friend class WaitQueue;

  void make_ready(SimProcess& p);
  /// Transfers control to `p` until it blocks, yields or finishes.
  void run_process(SimProcess& p);
  /// One scheduler step; returns false when no work remains.
  bool step();
  void on_process_finished();
  void check_deadlock() const;

  SimTime now_ = kTimeZero;
  Rng rng_;
  ExecutionBackend backend_;
  EventQueue events_;
  std::deque<SimProcess*> ready_;
  std::vector<std::unique_ptr<SimProcess>> processes_;
  SimProcess* current_ = nullptr;
  std::size_t live_processes_ = 0;
  SchedCounters sched_;
  bool running_ = false;
};

}  // namespace mcmpi::sim
