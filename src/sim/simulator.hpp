#pragma once
/// \file simulator.hpp
/// The discrete-event simulator and its cooperative process model.
///
/// Design: SPMD rank code must read like ordinary blocking MPI code, so each
/// simulated process runs on a dedicated OS thread — but *exactly one* thread
/// (a process or the scheduler) is ever runnable, handed off through binary
/// semaphores.  Execution is therefore deterministic and data-race-free by
/// construction: the handoff gives sequenced-before across threads, and the
/// ready queue and event queue impose a total order.
///
/// The scheduler loop:
///   1. while processes are ready, run them in FIFO order;
///   2. otherwise pop the earliest event, advance the clock, fire it;
///   3. when neither exists: done (or deadlock if processes are still alive).

#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace mcmpi::sim {

class Simulator;
class WaitQueue;

/// Thrown by Simulator::run() when live processes remain but no event or
/// ready process can make progress (e.g. a barrier entered by only N-1
/// ranks).  The message lists every blocked process.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// Internal unwind signal delivered to blocked processes at teardown.
struct ProcessKilled {};
}  // namespace detail

/// A simulated process.  The body runs on its own thread and interacts with
/// virtual time only through this handle (delay / WaitQueue::wait / yield).
class SimProcess {
 public:
  SimProcess(const SimProcess&) = delete;
  SimProcess& operator=(const SimProcess&) = delete;
  ~SimProcess();

  const std::string& name() const { return name_; }
  std::size_t index() const { return index_; }
  Simulator& simulator() { return sim_; }

  /// Per-process deterministic stream (forked from the simulator seed).
  Rng& rng() { return rng_; }

  /// Current virtual time.
  SimTime now() const;

  /// Advances virtual time by `d` (models compute / software overhead).
  /// Other processes and events run in the meantime.
  void delay(SimTime d);

  /// Sleeps until absolute virtual time `t` (no-op if already past).
  void delay_until(SimTime t) {
    if (t > now()) {
      delay(t - now());
    }
  }

  /// Re-queues this process behind every currently ready process without
  /// advancing time.
  void yield();

  bool finished() const { return state_ == State::kFinished; }

 private:
  friend class Simulator;
  friend class WaitQueue;

  enum class State { kNew, kReady, kRunning, kBlocked, kFinished };

  SimProcess(Simulator& sim, std::size_t index, std::string name,
             std::function<void(SimProcess&)> body, Rng rng);

  void thread_main();
  /// Hands control back to the scheduler; returns when rescheduled.
  void block();

  Simulator& sim_;
  std::size_t index_;
  std::string name_;
  std::function<void(SimProcess&)> body_;
  Rng rng_;

  State state_ = State::kNew;
  bool cancelled_ = false;
  std::exception_ptr error_;
  std::binary_semaphore resume_{0};
  WaitQueue* waiting_on_ = nullptr;  // set while parked in a WaitQueue
  bool timed_out_ = false;           // result channel for wait_until
  std::thread thread_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules a callback at absolute virtual time `t` (>= now()).  Small
  /// callables are stored inline in the event queue (no allocation).
  EventId schedule_at(SimTime t, EventFn fn);
  /// Schedules a callback `delay` after now().
  EventId schedule_after(SimTime delay, EventFn fn);
  bool cancel(EventId id);

  /// Creates a process; it starts running when run() is called (processes
  /// start in FIFO spawn order at the current virtual time).
  SimProcess& spawn(std::string name, std::function<void(SimProcess&)> body);

  /// Runs until every process has finished and the event queue is empty.
  /// Rethrows the first exception raised inside a process.  Throws
  /// DeadlockError if live processes remain but nothing can run.
  void run();

  /// Runs until every process has finished; pending pure-timer events are
  /// allowed to remain (they are discarded by the destructor).
  void run_until_processes_done();

  /// Number of spawned processes that have not finished.
  std::size_t live_processes() const;

  /// Total events executed so far (micro-bench instrumentation).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Total events ever scheduled, including later-cancelled ones (the
  /// scheduler-load figure the bench JSON records).
  std::uint64_t events_scheduled() const { return events_.total_scheduled(); }

 private:
  friend class SimProcess;
  friend class WaitQueue;

  void make_ready(SimProcess& p);
  /// Transfers control to `p` until it blocks, yields or finishes.
  void run_process(SimProcess& p);
  /// One scheduler step; returns false when no work remains.
  bool step();
  void check_deadlock() const;

  SimTime now_ = kTimeZero;
  Rng rng_;
  EventQueue events_;
  std::deque<SimProcess*> ready_;
  std::vector<std::unique_ptr<SimProcess>> processes_;
  std::binary_semaphore sched_sem_{0};
  SimProcess* current_ = nullptr;
  std::uint64_t events_executed_ = 0;
  bool running_ = false;
};

}  // namespace mcmpi::sim
