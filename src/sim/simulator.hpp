#pragma once
/// \file simulator.hpp
/// The discrete-event simulator and its cooperative process model.
///
/// Design: SPMD rank code must read like ordinary blocking MPI code, so each
/// simulated process runs on its own ExecutionContext — by default a
/// stackful fiber inside the simulator's address space, so a block/resume is
/// an in-process context switch; optionally (MCMPI_SIM_BACKEND=thread, or a
/// constructor argument) a dedicated OS thread handed off through binary
/// semaphores, kept as a fallback and as a determinism oracle.  Within one
/// shard *exactly one* context (a process or the scheduler) is ever
/// runnable: execution is deterministic and data-race-free by construction,
/// and the ready queue plus the event queue impose a total order.  The two
/// backends produce bit-identical simulations.
///
/// Sharding (conservative parallel DES): the simulator can be partitioned
/// into SHARDS — one per network segment — each with its own clock, event
/// queue, ready list, RNG stream and SchedCounters.  Shards interact only
/// through schedule_cross(), whose deliveries are bounded below by a
/// configured LOOKAHEAD: either one uniform bound (the minimum
/// cross-segment link latency) or a per-pair matrix of direct channel
/// latencies, closed over indirect paths, so a shard is gated only by the
/// trunks that can actually reach it.  Execution proceeds in conservative
/// windows: each round, shard i may run every event strictly before
/// W_i = min_{j != i} (next_j + lookahead(j, i)), because no peer can
/// deliver anything earlier.  Cross deliveries carry the SENDER's
/// (shard, seq) ordering key, so their order against the receiver's own
/// same-tick events is the deterministic tie-break (time, shard, seq) —
/// never thread timing.  Two drivers execute the same rounds:
///
///   kSerial   — one thread runs the shards' windows in shard order; the
///               determinism REFERENCE.
///   kParallel — worker threads (one per shard by default; fewer when
///               ShardingConfig::workers caps them, each then running its
///               shards in ascending id order), two sense-reversing atomic
///               barrier phases per round (quiesce, then merge + plan).
///               Bit-identical to the serial driver — and to every worker
///               count — by construction.
///
/// A 1-shard simulator (the default) skips all of this and runs the classic
/// loop; a K-shard simulator whose work all lands on one shard (every
/// segment mapped to shard 0) plans unbounded windows for it and is
/// bit-identical to the classic loop too, counters included.
///
/// The per-shard scheduler loop:
///   1. while processes are ready, run them in FIFO order;
///   2. otherwise advance the clock to the earliest event time inside the
///      window and fire the events of that tick back to back (pausing
///      whenever a callback makes a process ready, so the FIFO interleave is
///      preserved);
///   3. when neither exists below the window bound: the round is over (with
///      an unbounded window: done, or deadlock if processes are still
///      alive).
///
/// Scheduling-cost fast paths (see SchedCounters for the receipts):
///   * delay() advances the clock in place — no timer event, no handoff —
///     when no other process is ready and no event falls inside the window;
///     nothing could have run in the meantime anyway.  (In a sharded run the
///     jump is additionally bounded by the round window, so a shard can
///     never advance past a time at which a peer may still deliver.)
///   * schedule_batch_at() folds N same-tick callbacks (a switch fanning a
///     frame to N egress ports) into one heap entry and one event slot.
///
/// Determinism guarantees (unchanged from the thread-per-rank design, and
/// guarded by tests): FIFO ready order, per-process RNG streams forked from
/// the owning shard's stream (itself forked from the simulator seed),
/// DeadlockError naming every blocked process, exception propagation out of
/// process bodies, and ProcessKilled unwind of still-parked processes at
/// teardown.

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"
#include "sim/execution_context.hpp"
#include "sim/sched_counters.hpp"

namespace mcmpi {
class PayloadPool;
}

namespace mcmpi::sim {

class Shard;
class Simulator;
class WaitQueue;

/// Thrown by Simulator::run() when live processes remain but no event or
/// ready process can make progress (e.g. a barrier entered by only N-1
/// ranks).  The message lists every blocked process.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// Internal unwind signal delivered to blocked processes at teardown.
struct ProcessKilled {};
}  // namespace detail

/// Which thread model executes a multi-shard simulation's rounds.
enum class ShardDriver { kSerial, kParallel };

const char* to_string(ShardDriver driver);

/// Process-wide default driver: the MCMPI_SIM_SHARD_DRIVER environment
/// variable ("serial" or "parallel"); kParallel when unset or unrecognised.
/// Read once and cached.  Irrelevant for 1-shard simulators.
ShardDriver default_shard_driver();

/// Partitioning configuration.  `lookahead` must be positive when
/// `shards > 1` and any cross-shard traffic exists: it is the promise that
/// every schedule_cross() delivery lies at least that far in the sender's
/// future (the cluster layer passes its minimum trunk latency).
struct ShardingConfig {
  unsigned shards = 1;
  SimTime lookahead = kTimeZero;
  ShardDriver driver = default_shard_driver();
  /// Install a per-shard size-classed payload buffer pool (common/bytes.hpp)
  /// for the duration of each shard's execution, so datagram assembly
  /// recycles backing buffers instead of allocating.  Off by default: the
  /// pool changes the payload_allocs figures the committed bench baselines
  /// pin, so only throughput-mode runs opt in.  Deterministic either way —
  /// remote returns are drained at round boundaries, so pool hits are a
  /// pure function of the simulation, identical across drivers.
  bool payload_pool = false;
  /// Optional flattened shards×shards matrix of DIRECT cross-shard channel
  /// latencies: entry [i*shards + j] is the minimum latency of any channel
  /// from shard i to shard j (kTimeInfinity when no direct channel exists;
  /// the diagonal is ignored).  Empty = the uniform `lookahead` between
  /// every pair.  The simulator closes the matrix over indirect paths
  /// (all-pairs shortest path), so each shard's conservative window is
  /// bounded only by the trunks that can actually reach it — a pair joined
  /// by a slow trunk no longer throttles the whole topology to the global
  /// minimum.
  std::vector<SimTime> lookahead_matrix;
  /// Worker threads the parallel driver multiplexes the shards onto: shard
  /// i runs on worker i % workers, and each worker executes its shards in
  /// ascending id order within every round — so the round schedule (and
  /// every counter) is a pure function of the simulation, independent of
  /// the worker count.  0 = one worker per shard; 1 collapses to the
  /// serial driver.
  unsigned workers = 0;
};

/// A simulated process.  The body runs on its own execution context (fiber
/// or thread) and interacts with virtual time only through this handle
/// (delay / WaitQueue::wait / yield).  A process is pinned to the shard it
/// was spawned on for its whole life.
class SimProcess {
 public:
  SimProcess(const SimProcess&) = delete;
  SimProcess& operator=(const SimProcess&) = delete;
  ~SimProcess();

  const std::string& name() const { return name_; }
  std::size_t index() const { return index_; }
  Simulator& simulator();
  Shard& shard() { return shard_; }

  /// Per-process deterministic stream (forked from the home shard's stream).
  Rng& rng() { return rng_; }

  /// Current virtual time (the home shard's clock).
  SimTime now() const;

  /// Advances virtual time by `d` (models compute / software overhead).
  /// Other processes and events run in the meantime.  When nothing else
  /// could run — no ready process, no event inside the window, and the
  /// whole interval inside the shard's conservative window — the clock
  /// advances in place and adjacent charges coalesce with no handoff at all.
  void delay(SimTime d);

  /// Sleeps until absolute virtual time `t` (no-op if already past).
  void delay_until(SimTime t) {
    if (t > now()) {
      delay(t - now());
    }
  }

  /// Re-queues this process behind every currently ready process without
  /// advancing time.
  void yield();

  bool finished() const { return state_ == State::kFinished; }

 private:
  friend class Shard;
  friend class Simulator;
  friend class WaitQueue;

  enum class State { kNew, kReady, kRunning, kBlocked, kFinished };

  SimProcess(Shard& shard, std::size_t index, std::string name,
             std::function<void(SimProcess&)> body, Rng rng);

  /// Entry point on the execution context: runs the body, catches teardown
  /// unwinds and stray exceptions, marks the process finished.
  void run_body();
  /// Hands control back to the scheduler; returns when rescheduled.
  void block();

  Shard& shard_;
  std::size_t index_;
  std::string name_;
  std::function<void(SimProcess&)> body_;
  Rng rng_;

  State state_ = State::kNew;
  bool cancelled_ = false;
  std::exception_ptr error_;
  WaitQueue* waiting_on_ = nullptr;  // set while parked in a WaitQueue
  bool timed_out_ = false;           // result channel for wait_until
  /// While parked via WaitQueue::wait_charged: the notifier-side hook that
  /// prices this process's wake-up (points into the parked stack frame).
  const std::function<SimTime()>* wake_charge_ = nullptr;
  std::unique_ptr<ExecutionContext> context_;
};

/// One partition of the simulation: a clock, an event queue, a ready list,
/// an RNG stream, counters, and the processes pinned to it.  All mutation
/// happens from the shard's own execution (its driver thread of the current
/// round) except the cross-shard inbox — a lock-free MPSC intrusive stack
/// peers CAS-push nodes onto; the owner takes the whole stack at round
/// boundaries and merges it into the event queue.
class Shard {
 public:
  ~Shard();
  unsigned id() const { return id_; }
  SimTime now() const { return now_; }
  Simulator& simulator() { return sim_; }
  /// Scheduler counters including the event-slot pool receipts kept inside
  /// the event queue (merged on read; the struct is tiny).
  SchedCounters sched_counters() const {
    SchedCounters merged = sched_;
    merged.event_pool_hits += events_.pool_hits();
    merged.event_pool_misses += events_.pool_misses();
    return merged;
  }
  /// Mutable access for instrumented protocol code (segmented collectives
  /// bump their chunk_* counters here).  Shard state is owner-execution-only,
  /// so a process may write through this during its own run without racing.
  SchedCounters& counters() { return sched_; }
  std::uint64_t events_scheduled() const { return events_.total_scheduled(); }
  std::size_t live_processes() const { return live_processes_; }
  /// This shard's payload buffer pool; null unless the simulator was
  /// configured with ShardingConfig::payload_pool.
  PayloadPool* payload_pool() const { return payload_pool_.get(); }

 private:
  friend class SimProcess;
  friend class Simulator;
  friend class WaitQueue;

  Shard(Simulator& sim, unsigned id, std::uint64_t seed, bool payload_pool);

  EventId schedule_at(SimTime t, EventFn fn);
  EventId schedule_after(SimTime d, EventFn fn) {
    return schedule_at(now_ + d, std::move(fn));
  }
  bool cancel(EventId id) { return events_.cancel(id); }

  SimProcess& spawn(std::string name, std::function<void(SimProcess&)> body,
                    Rng rng);

  void make_ready(SimProcess& p);
  /// Transfers control to `p` until it blocks, yields or finishes.
  void run_process(SimProcess& p);
  /// One scheduler step strictly below window_end_; false when none
  /// remains.  window_end_ is consulted per step because a cross-shard
  /// send shrinks it mid-round (see schedule_cross).
  bool step();
  /// Runs steps below the (dynamic) window.  When
  /// `stop_at_local_quiescence` is set (run_until_processes_done with no
  /// live process on any peer), stepping also stops the moment this
  /// shard's live-process count reaches zero — the classic semantics.
  void run_window(bool stop_at_local_quiescence);
  /// Earliest time this shard could execute (or send) anything: its clock
  /// while processes are ready, else its next event time.
  SimTime next_ready_time() const {
    return ready_.empty() ? events_.next_time() : now_;
  }
  /// One cross-shard delivery, an intrusive node of the MPSC inbox stack.
  /// Nodes are recycled through the owner's node_cache_ (owner-thread-only,
  /// so hit counts stay deterministic) and counted as event-pool traffic.
  struct CrossNode {
    SimTime time = kTimeZero;
    EventQueue::OrderKey key = 0;
    EventFn fn;
    CrossNode* next = nullptr;
  };

  /// Moves every pending cross delivery into the event queue (keyed with
  /// the sender's identity) and drains the payload pool's remote returns.
  /// Round-boundary only — no peer touches the stack between rounds, so
  /// exchange + walk is race-free.
  void merge_inbox();
  /// Lock-free MPSC push, called by PEER shards (any worker thread).
  void push_cross(CrossNode* node);
  /// Sender-side node allocation from this shard's own cache.
  CrossNode* take_cross_node();
  void recycle_cross_node(CrossNode* node);
  /// Frees undelivered inbox nodes and the cache (teardown).
  void drop_inbox();

  Simulator& sim_;
  unsigned id_;
  SimTime now_ = kTimeZero;
  Rng rng_;
  EventQueue events_;
  std::deque<SimProcess*> ready_;
  std::vector<std::unique_ptr<SimProcess>> processes_;
  SimProcess* current_ = nullptr;
  std::size_t live_processes_ = 0;
  SchedCounters sched_;
  /// Exclusive upper bound on this round's execution (kTimeInfinity when
  /// unconstrained); also caps the in-place delay coalesce.  Dynamic: the
  /// round plan seeds it, and the shard's own first cross-shard send of
  /// the round lowers it to send time + 2*lookahead — the earliest instant
  /// a CAUSAL response (peer reacts after one trunk hop, replies after
  /// another) could come back.  Without that clamp a shard with currently
  /// idle peers would run unboundedly ahead and then meet its own
  /// consequences in the past.
  SimTime window_end_ = kTimeInfinity;
  std::exception_ptr error_;

  /// Head of the MPSC inbox stack (Treiber push; owner exchanges to drain).
  std::atomic<CrossNode*> inbox_head_{nullptr};
  /// Recycled CrossNodes, touched only by this shard's own execution.
  std::vector<CrossNode*> node_cache_;
  /// Per-shard payload buffer pool (null unless ShardingConfig requested
  /// one); installed as the thread-local pool around this shard's windows.
  std::unique_ptr<PayloadPool> payload_pool_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1,
                     ExecutionBackend backend = default_execution_backend(),
                     ShardingConfig sharding = ShardingConfig{});
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The calling context's virtual time: inside a run this is the executing
  /// shard's clock; outside it is the latest clock any shard has reached
  /// (identical notions for a single-shard simulator).
  SimTime now() const;
  /// The calling shard's RNG stream (the root shard's outside a run).
  Rng& rng();
  ExecutionBackend backend() const { return backend_; }

  unsigned num_shards() const { return static_cast<unsigned>(shards_.size()); }
  ShardDriver shard_driver() const { return driver_; }
  SimTime lookahead() const { return lookahead_; }
  /// Closed (shortest-path) delivery bound from shard `src` to shard `dst`:
  /// no execution on `src` at time t can influence `dst` before
  /// t + lookahead(src, dst).  Uniform configurations return `lookahead`
  /// for every distinct pair; kTimeInfinity when `dst` is unreachable.
  SimTime lookahead(unsigned src, unsigned dst) const {
    return closure_[src * shards_.size() + dst];
  }
  /// Worker threads the parallel driver uses (<= num_shards()).
  unsigned workers() const { return workers_; }
  bool payload_pool_enabled() const { return payload_pool_; }
  Shard& shard(unsigned index) { return *shards_.at(index); }

  /// Schedules a callback at absolute virtual time `t` (>= now()) on the
  /// calling shard.  Small callables are stored inline in the event queue
  /// (no allocation).
  EventId schedule_at(SimTime t, EventFn fn);
  /// Schedules a callback `delay` after now().
  EventId schedule_after(SimTime delay, EventFn fn);

  /// Schedules `batch` to run consecutively, in order, as ONE event at time
  /// `t` — one heap entry and one slot for a whole fan-out.  Cancelling the
  /// returned id cancels the entire batch.
  EventId schedule_batch_at(SimTime t, std::vector<EventFn> batch);
  EventId schedule_batch_after(SimTime delay, std::vector<EventFn> batch);

  /// Cancels an event scheduled from this shard (event ids are shard-local;
  /// every in-tree caller cancels events it scheduled itself).
  bool cancel(EventId id);

  /// Schedules `fn` at absolute time `t` on `target_shard`.  Same-shard (or
  /// pre-run) calls collapse to a plain schedule; a genuine cross-shard call
  /// inside a run requires  t >= sender now() + lookahead  and delivers the
  /// callback with the sender's deterministic (shard, seq) ordering key.
  void schedule_cross(unsigned target_shard, SimTime t, EventFn fn);

  /// Pre-run scheduling on an explicit shard (instrumentation snapshots the
  /// experiment layer plants before starting the simulation).
  EventId schedule_on_shard_at(unsigned shard, SimTime t, EventFn fn);

  /// Creates a process on the calling shard (the executing shard inside a
  /// run — a helper spawned by rank code lands next to that rank — and
  /// shard 0 outside).  Processes start running when run() is called, in
  /// FIFO spawn order per shard, at their shard's current virtual time.
  SimProcess& spawn(std::string name, std::function<void(SimProcess&)> body);

  /// Creates a process pinned to `shard` (how the cluster layer places each
  /// rank on its segment's shard).  Pre-run only.
  SimProcess& spawn_on(unsigned shard, std::string name,
                       std::function<void(SimProcess&)> body);

  /// Runs until every process has finished and every event queue is empty.
  /// Rethrows the first exception raised inside a process (lowest shard
  /// first when several shards fail in one round).  Throws DeadlockError if
  /// live processes remain but nothing can run.
  void run();

  /// Runs until every process has finished; pending pure-timer events are
  /// allowed to remain (they are discarded by the destructor).  With
  /// several concurrently active shards the stop is at round granularity.
  void run_until_processes_done();

  /// Number of spawned processes that have not finished, across all shards.
  /// O(shards): each shard maintains its count on spawn/finish.
  std::size_t live_processes() const;

  /// The process currently executing on the calling shard, or nullptr when
  /// a scheduler (an event callback, or code outside run()) is in control.
  /// Lets facades that serve several processes of one logical rank (the
  /// nonblocking collective helpers) resolve "which process am I".
  SimProcess* current();

  /// Scheduler-cost instrumentation (handoffs, coalesced delays, batched
  /// callbacks), merged across shards; exported into BENCH_<name>.json by
  /// the benches.  Per-shard values via shard(i).sched_counters().
  SchedCounters sched_counters() const;

  /// Scheduler -> process control transfers so far (micro-bench shorthand).
  std::uint64_t handoffs() const { return sched_counters().handoffs; }

  /// Total events executed so far (micro-bench instrumentation).
  std::uint64_t events_executed() const {
    return sched_counters().events_executed;
  }

  /// Total events ever scheduled, including later-cancelled ones (the
  /// scheduler-load figure the bench JSON records).  Summed over shards; a
  /// cross-shard delivery counts once, on its receiving shard.
  std::uint64_t events_scheduled() const;

  /// The calling shard's mutable counters (the root shard's outside a run).
  /// Owner-execution-only, like Shard::counters(): bump only from code
  /// executing on the shard the counter belongs to.
  SchedCounters& counters();

 private:
  friend class Shard;
  friend class SimProcess;
  friend class WaitQueue;

  /// The shard owning the calling thread's execution, or the root shard
  /// when no shard of THIS simulator is executing (setup / teardown code).
  Shard& current_shard();
  const Shard& current_shard() const;

  /// One conservative round: per-shard window bounds plus driver flags.
  struct RoundPlan {
    bool done = false;
    std::vector<SimTime> window;
    std::vector<char> stop_at_local_quiescence;
  };
  RoundPlan plan_round(bool until_processes_done);
  void run_windows_serial(bool until_processes_done);
  void run_windows_parallel(bool until_processes_done);
  void run_driver(bool until_processes_done);
  void rethrow_shard_error();
  void check_deadlock() const;

  ExecutionBackend backend_;
  ShardDriver driver_;
  SimTime lookahead_ = kTimeZero;
  /// Flattened shards×shards all-pairs shortest-path closure of the direct
  /// lookahead matrix (uniform `lookahead_` when none was configured).
  std::vector<SimTime> closure_;
  unsigned workers_ = 1;
  bool payload_pool_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool running_ = false;
};

}  // namespace mcmpi::sim
