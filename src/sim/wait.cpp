#include "sim/wait.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace mcmpi::sim {

void WaitQueue::wait(SimProcess& self) {
  self.state_ = SimProcess::State::kBlocked;
  self.waiting_on_ = this;
  waiters_.push_back(&self);
  try {
    self.block();
  } catch (...) {
    remove(self);  // teardown unwind: leave no dangling waiter entry
    self.waiting_on_ = nullptr;
    throw;
  }
  self.waiting_on_ = nullptr;
}

void WaitQueue::wait_charged(SimProcess& self, const WakeCharge& charge) {
  self.wake_charge_ = &charge;  // points into the caller's parked frame
  try {
    wait(self);
  } catch (...) {
    self.wake_charge_ = nullptr;
    throw;
  }
  self.wake_charge_ = nullptr;
}

bool WaitQueue::wait_until_charged(SimProcess& self, SimTime deadline,
                                   const WakeCharge& charge) {
  self.wake_charge_ = &charge;  // points into the caller's parked frame
  bool notified = false;
  try {
    notified = wait_until(self, deadline);
  } catch (...) {
    self.wake_charge_ = nullptr;
    throw;
  }
  self.wake_charge_ = nullptr;
  return notified;
}

bool WaitQueue::wait_until(SimProcess& self, SimTime deadline) {
  if (deadline == kTimeInfinity) {
    wait(self);
    return true;
  }
  // All timer traffic stays on the waiter's home shard: a WaitQueue belongs
  // to per-host state (sockets, requests), and notifier and waiter always
  // share that shard.
  Shard& shard = self.shard_;
  self.timed_out_ = false;
  self.state_ = SimProcess::State::kBlocked;
  self.waiting_on_ = this;
  waiters_.push_back(&self);
  const SimTime fire_at = std::max(deadline, shard.now_);
  SimProcess* target = &self;
  const EventId timer = shard.schedule_at(fire_at, [this, target] {
    if (remove(*target)) {
      target->timed_out_ = true;
      target->shard_.make_ready(*target);
    }
  });
  try {
    self.block();
  } catch (...) {
    remove(self);
    shard.cancel(timer);
    self.waiting_on_ = nullptr;
    throw;
  }
  self.waiting_on_ = nullptr;
  if (!self.timed_out_) {
    shard.cancel(timer);
    return true;
  }
  return false;
}

void WaitQueue::notify_one() {
  if (waiters_.empty()) {
    return;
  }
  SimProcess* p = waiters_.front();
  waiters_.pop_front();
  if (p->wake_charge_ != nullptr) {
    const SimTime lag = (*p->wake_charge_)();
    if (lag > kTimeZero) {
      // Charged wake: resume the process `lag` later in one step.  It stays
      // kBlocked until the timer fires; teardown still unwinds it cleanly
      // (the destructor never runs pending events).
      p->shard_.schedule_after(lag, [p] { p->shard_.make_ready(*p); });
      return;
    }
  }
  p->shard_.make_ready(*p);
}

void WaitQueue::notify_all() {
  while (!waiters_.empty()) {
    notify_one();
  }
}

bool WaitQueue::remove(SimProcess& p) {
  const auto it = std::find(waiters_.begin(), waiters_.end(), &p);
  if (it == waiters_.end()) {
    return false;
  }
  waiters_.erase(it);
  return true;
}

}  // namespace mcmpi::sim
