#pragma once
/// \file wait.hpp
/// Blocking primitives for simulated processes.
///
/// WaitQueue is the condition-variable analogue: processes park in FIFO
/// order; notify_one()/notify_all() move them to the ready queue.  As with
/// condition variables, callers guard waits with a predicate loop:
///
///   while (!mailbox.has_message()) queue.wait(self);
///
/// wait_until() adds a virtual-time deadline, used for retransmit timers and
/// deadlock-free receives with timeout.

#include <deque>
#include <functional>

#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::sim {

class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Parks the calling process until notified.
  void wait(SimProcess& self);

  /// Computes the virtual-time charge a woken process owes before it may
  /// continue (e.g. the receive overhead of the datagram that woke it).
  /// Runs in the *notifier's* context, so it must only read state and must
  /// not throw.  Returning kTimeZero means "wake immediately" (ordinary
  /// notify semantics).
  using WakeCharge = std::function<SimTime()>;

  /// Parks like wait(), but folds a post-wake time charge into the wake-up
  /// itself: when notified, the process is resumed `charge()` later instead
  /// of waking now only to sleep the charge — one handoff instead of two.
  /// The process behaves as if blocked for the whole interval; everything
  /// it would have done in between must be free of simulation side effects.
  void wait_charged(SimProcess& self, const WakeCharge& charge);

  /// Parks until notified or until virtual time reaches `deadline`.
  /// Returns true if notified, false on timeout.
  bool wait_until(SimProcess& self, SimTime deadline);

  /// Deadline variant of wait_charged: a notify folds `charge()` into the
  /// wake-up (the process resumes charge() later, even past the deadline —
  /// once the wake is priced, the message is taken); a timeout wakes
  /// uncharged.  Returns true if notified, false on timeout.
  bool wait_until_charged(SimProcess& self, SimTime deadline,
                          const WakeCharge& charge);

  /// Wakes the longest-waiting process, if any.
  void notify_one();

  /// Wakes every waiting process (in FIFO order).
  void notify_all();

  bool empty() const { return waiters_.empty(); }
  std::size_t size() const { return waiters_.size(); }

 private:
  friend class Simulator;
  /// Removes a specific process (timeout or teardown path).
  bool remove(SimProcess& p);

  std::deque<SimProcess*> waiters_;
};

/// Waits on `queue` until `pred()` is true.  The notifier must make the
/// predicate true *before* calling notify.
template <typename Pred>
void wait_for(SimProcess& self, WaitQueue& queue, Pred&& pred) {
  while (!pred()) {
    queue.wait(self);
  }
}

/// wait_for with a charged wake (see WaitQueue::wait_charged): if the
/// process parks and is then notified with the predicate true, `charge()`
/// is folded into the wake-up.  Returns true when the charge was absorbed
/// that way; false when the predicate was already true (or a wake found it
/// true without pricing it), in which case the caller still owes the
/// charge and must delay() it itself.
template <typename Pred>
bool wait_for_charged(SimProcess& self, WaitQueue& queue, Pred&& pred,
                      const WaitQueue::WakeCharge& charge) {
  bool absorbed = false;
  const WaitQueue::WakeCharge priced = [&]() -> SimTime {
    if (!pred()) {
      return kTimeZero;  // spurious notify: wake now, re-park
    }
    const SimTime lag = charge();
    absorbed = lag > kTimeZero;
    return lag;
  };
  while (!pred()) {
    queue.wait_charged(self, priced);
  }
  return absorbed;
}

/// Deadline variant; returns false if the deadline passed with the predicate
/// still false.
template <typename Pred>
bool wait_for_until(SimProcess& self, WaitQueue& queue, SimTime deadline,
                    Pred&& pred) {
  while (!pred()) {
    if (!queue.wait_until(self, deadline)) {
      return pred();
    }
  }
  return true;
}

/// Outcome of a charged deadline wait (see wait_for_until_charged).
struct ChargedWaitResult {
  bool satisfied = false;  ///< predicate true (possibly right at timeout)
  bool absorbed = false;   ///< charge folded into the wake-up
};

/// wait_for_until with a charged wake: combines wait_for_charged (a notify
/// with the predicate true prices `charge()` into the wake-up — one handoff)
/// and the deadline (timeout wakes uncharged).  When `satisfied && !absorbed`
/// the caller still owes the charge and must delay() it itself.
template <typename Pred>
ChargedWaitResult wait_for_until_charged(SimProcess& self, WaitQueue& queue,
                                         SimTime deadline, Pred&& pred,
                                         const WaitQueue::WakeCharge& charge) {
  ChargedWaitResult result;
  const WaitQueue::WakeCharge priced = [&]() -> SimTime {
    if (!pred()) {
      return kTimeZero;  // spurious notify: wake now, re-park
    }
    const SimTime lag = charge();
    result.absorbed = lag > kTimeZero;
    return lag;
  };
  while (!pred()) {
    if (!queue.wait_until_charged(self, deadline, priced)) {
      result.satisfied = pred();
      return result;
    }
  }
  result.satisfied = true;
  return result;
}

}  // namespace mcmpi::sim
