#pragma once
/// \file wait.hpp
/// Blocking primitives for simulated processes.
///
/// WaitQueue is the condition-variable analogue: processes park in FIFO
/// order; notify_one()/notify_all() move them to the ready queue.  As with
/// condition variables, callers guard waits with a predicate loop:
///
///   while (!mailbox.has_message()) queue.wait(self);
///
/// wait_until() adds a virtual-time deadline, used for retransmit timers and
/// deadlock-free receives with timeout.

#include <deque>

#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace mcmpi::sim {

class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Parks the calling process until notified.
  void wait(SimProcess& self);

  /// Parks until notified or until virtual time reaches `deadline`.
  /// Returns true if notified, false on timeout.
  bool wait_until(SimProcess& self, SimTime deadline);

  /// Wakes the longest-waiting process, if any.
  void notify_one();

  /// Wakes every waiting process (in FIFO order).
  void notify_all();

  bool empty() const { return waiters_.empty(); }
  std::size_t size() const { return waiters_.size(); }

 private:
  friend class Simulator;
  /// Removes a specific process (timeout or teardown path).
  bool remove(SimProcess& p);

  std::deque<SimProcess*> waiters_;
};

/// Waits on `queue` until `pred()` is true.  The notifier must make the
/// predicate true *before* calling notify.
template <typename Pred>
void wait_for(SimProcess& self, WaitQueue& queue, Pred&& pred) {
  while (!pred()) {
    queue.wait(self);
  }
}

/// Deadline variant; returns false if the deadline passed with the predicate
/// still false.
template <typename Pred>
bool wait_for_until(SimProcess& self, WaitQueue& queue, SimTime deadline,
                    Pred&& pred) {
  while (!pred()) {
    if (!queue.wait_until(self, deadline)) {
      return pred();
    }
  }
  return true;
}

}  // namespace mcmpi::sim
