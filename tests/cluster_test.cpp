// Tests for the testbed builder and the measurement harness: calibrated
// costs, heterogeneous hosts, experiment methodology and determinism.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"

namespace mcmpi {
namespace {

using cluster::CalibratedCosts;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::CostParams;
using cluster::ExperimentConfig;
using cluster::NetworkType;

TEST(Calibration, OverheadScalesWithBytesAndCpu) {
  CostParams params;
  params.jitter_frac = 0;  // deterministic for this test
  CalibratedCosts fast(params, 500.0, Rng(1));
  CalibratedCosts slow(params, 450.0, Rng(1));

  const SimTime fast_small = fast.send_overhead(0, mpi::CostTier::kMpi);
  const SimTime fast_large = fast.send_overhead(5000, mpi::CostTier::kMpi);
  EXPECT_EQ(fast_small, params.mpi_send_base);
  EXPECT_EQ((fast_large - fast_small).count(),
            static_cast<std::int64_t>(params.per_byte_ns * 5000));
  // 450 MHz machine is 500/450 slower.
  EXPECT_GT(slow.send_overhead(0, mpi::CostTier::kMpi).count(),
            fast_small.count());
}

TEST(Calibration, TiersReflectThePapersLayerBypass) {
  CostParams params;
  params.jitter_frac = 0;
  CalibratedCosts costs(params, 500.0, Rng(1));
  const SimTime mpi = costs.send_overhead(0, mpi::CostTier::kMpi);
  const SimTime raw = costs.send_overhead(0, mpi::CostTier::kRaw);
  const SimTime data = costs.send_overhead(0, mpi::CostTier::kMcastData);
  EXPECT_LT(raw.count(), mpi.count())
      << "bypassing the MPICH layers must be cheaper";
  EXPECT_GT(data.count(), mpi.count())
      << "the multicast data path carries its own heavy per-message cost";
}

TEST(Calibration, JitterStaysWithinBounds) {
  CostParams params;  // default ±10%
  CalibratedCosts costs(params, 500.0, Rng(7));
  for (int i = 0; i < 1000; ++i) {
    const double us =
        to_microseconds(costs.recv_overhead(0, mpi::CostTier::kMpi));
    EXPECT_GE(us, to_microseconds(params.mpi_recv_base) * 0.9 - 1e-9);
    EXPECT_LE(us, to_microseconds(params.mpi_recv_base) * 1.1 + 1e-9);
  }
}

TEST(ClusterBuild, RejectsMoreProcsThanHosts) {
  ClusterConfig config;
  config.num_procs = 10;  // the eagle cluster has 9 machines
  EXPECT_THROW(Cluster cluster(config), ContractViolation);
}

TEST(ClusterBuild, NetworkTypeNamesRoundTrip) {
  EXPECT_EQ(cluster::to_string(NetworkType::kHub), "hub");
  EXPECT_EQ(cluster::parse_network("switch"), NetworkType::kSwitch);
  EXPECT_THROW(cluster::parse_network("token-ring"), std::invalid_argument);
}

TEST(Experiment, ProducesRequestedRepetitions) {
  ClusterConfig config;
  config.num_procs = 4;
  config.network = NetworkType::kSwitch;
  Cluster cluster(config);
  ExperimentConfig exp;
  exp.reps = 10;
  const auto result = cluster::measure_collective(
      cluster, exp, [](mpi::Proc& p, int) {
        Buffer data;
        if (p.rank() == 0) {
          data = pattern_payload(1, 1000);
        }
        p.comm_world().coll().bcast(data, 0, "mcast-binary");
      });
  EXPECT_EQ(result.latencies_us.size(), 10u);
  EXPECT_GT(result.latencies_us.min(), 0.0);
  // 10 measured reps of (3 scouts + 1 data frame): counters reflect only
  // the measured window.
  EXPECT_EQ(result.net_delta.formula_frames(), 10u * 4u);
}

TEST(Experiment, LatencyIsLongestCompletionTime) {
  // With one rank artificially slowed, the measured latency must reflect
  // the slow rank, not the fast ones.
  ClusterConfig config;
  config.num_procs = 3;
  config.network = NetworkType::kSwitch;
  Cluster cluster(config);
  ExperimentConfig exp;
  exp.reps = 3;
  const auto result = cluster::measure_collective(
      cluster, exp, [](mpi::Proc& p, int) {
        if (p.rank() == 2) {
          p.self().delay(milliseconds(2));
        }
        p.comm_world().coll().barrier("mcast");
      });
  EXPECT_GE(result.latencies_us.min(), 2000.0);
}

TEST(Experiment, DeterministicForSameSeed) {
  auto run = [] {
    ClusterConfig config;
    config.num_procs = 5;
    config.network = NetworkType::kHub;
    config.seed = 99;
    Cluster cluster(config);
    ExperimentConfig exp;
    exp.reps = 5;
    return cluster::measure_collective(
               cluster, exp,
               [](mpi::Proc& p, int) {
                 Buffer data;
                 if (p.rank() == 0) {
                   data = pattern_payload(1, 2000);
                 }
                 p.comm_world().coll().bcast(data, 0, "mcast-linear");
               })
        .latencies_us.values();
  };
  EXPECT_EQ(run(), run());
}

TEST(Experiment, DifferentSeedsChangeTheScatter) {
  auto run = [](std::uint64_t seed) {
    ClusterConfig config;
    config.num_procs = 6;
    config.network = NetworkType::kHub;
    config.seed = seed;
    Cluster cluster(config);
    ExperimentConfig exp;
    exp.reps = 5;
    return cluster::measure_collective(
               cluster, exp,
               [](mpi::Proc& p, int) {
                 Buffer data;
                 if (p.rank() == 0) {
                   data = pattern_payload(1, 2000);
                 }
                 p.comm_world().coll().bcast(data, 0, "mcast-binary");
               })
        .latencies_us.values();
  };
  EXPECT_NE(run(1), run(2));
}

TEST(Experiment, CountFramesIsolatesTheMeasuredOp) {
  ClusterConfig config;
  config.num_procs = 4;
  config.network = NetworkType::kSwitch;
  Cluster cluster(config);
  auto op = [](mpi::Proc& p) {
    p.comm_world().coll().barrier("mcast");
  };
  const auto counters = cluster::count_frames(cluster, op, op);
  // Exactly (N-1) scouts + 1 release multicast, nothing from the warmup.
  EXPECT_EQ(counters.formula_frames(), 4u);
}

}  // namespace
}  // namespace mcmpi
