// Tests for the extension features: many-to-many multicast allgather
// (lockstep and blast pacing, §5 future work), MPI_Scan, and MPI_Probe.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

ClusterConfig config_for(int procs, NetworkType net = NetworkType::kSwitch) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = net;
  config.seed = 11;
  return config;
}

// ------------------------------------------------- multicast allgather

struct AllgatherCase {
  std::string algo;  // registry name
  NetworkType net;
  int procs;
  int block;
};

class McastAllgather : public ::testing::TestWithParam<AllgatherCase> {};

TEST_P(McastAllgather, EveryRankGetsEveryBlock) {
  const AllgatherCase c = GetParam();
  Cluster cluster(config_for(c.procs, c.net));
  std::vector<int> ok(static_cast<std::size_t>(c.procs), 0);

  cluster.world().run([&](mpi::Proc& p) {
    const Buffer mine = pattern_payload(static_cast<std::uint64_t>(p.rank()),
                                        static_cast<std::size_t>(c.block));
    const auto blocks = p.comm_world().coll().allgather(mine, c.algo);
    bool good = blocks.size() == static_cast<std::size_t>(c.procs);
    for (int r = 0; good && r < c.procs; ++r) {
      good = check_pattern(static_cast<std::uint64_t>(r),
                           blocks[static_cast<std::size_t>(r)]) &&
             blocks[static_cast<std::size_t>(r)].size() ==
                 static_cast<std::size_t>(c.block);
    }
    ok[static_cast<std::size_t>(p.rank())] = good;
  });
  for (int r = 0; r < c.procs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSizes, McastAllgather,
    ::testing::Values(
        AllgatherCase{"mcast-lockstep", NetworkType::kSwitch, 4, 100},
        AllgatherCase{"mcast-lockstep", NetworkType::kSwitch, 8, 2000},
        AllgatherCase{"mcast-lockstep", NetworkType::kHub, 5, 1472},
        AllgatherCase{"mcast-lockstep", NetworkType::kSwitch, 1, 64},
        AllgatherCase{"mcast-lockstep", NetworkType::kSwitch, 9, 0},
        AllgatherCase{"ring", NetworkType::kSwitch, 5, 700},
        AllgatherCase{"mcast-blast", NetworkType::kSwitch, 4, 100},
        AllgatherCase{"mcast-blast", NetworkType::kSwitch, 8, 2000},
        AllgatherCase{"mcast-blast", NetworkType::kHub, 5, 1472},
        AllgatherCase{"mcast-blast", NetworkType::kSwitch, 9, 0}),
    [](const auto& info) {
      const AllgatherCase& c = info.param;
      std::string name = c.algo + "_" + cluster::to_string(c.net) + "_p" +
                         std::to_string(c.procs) + "_b" +
                         std::to_string(c.block);
      for (char& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

TEST(McastAllgatherFrames, EachBlockCrossesTheWireOnce) {
  constexpr int kProcs = 6;
  constexpr int kBlock = 3000;  // 3 frames per block
  Cluster cluster(config_for(kProcs));
  auto op = [](mpi::Proc& p) {
    const Buffer mine = pattern_payload(1, kBlock);
    (void)p.comm_world().coll().allgather(mine, "mcast-lockstep");
  };
  const auto counters = cluster::count_frames(cluster, op, op);
  // Data frames: N blocks x 3 frames, each multicast once.
  EXPECT_EQ(counters.host_tx_data_frames,
            static_cast<std::uint64_t>(kProcs) * 3u);
}

TEST(McastAllgatherOverrun, BlastDropsWithTinyBufferLockstepDoesNot) {
  constexpr int kProcs = 8;
  auto run = [&](const std::string& algo) {
    ClusterConfig config = config_for(kProcs);
    config.mcast_rcvbuf_bytes = 1024;  // one small datagram's worth
    Cluster cluster(config);
    std::vector<int> missing(kProcs, 0);
    cluster.world().run([&](mpi::Proc& p) {
      const Buffer mine =
          pattern_payload(static_cast<std::uint64_t>(p.rank()), 512);
      // A lossy pacing leaves undelivered blocks empty.
      for (const Buffer& b : p.comm_world().coll().allgather(mine, algo)) {
        if (b.empty()) {
          ++missing[static_cast<std::size_t>(p.rank())];
        }
      }
    });
    int total = 0;
    for (int m : missing) {
      total += m;
    }
    return total;
  };
  EXPECT_GT(run("mcast-blast"), 0)
      << "blast into a tiny buffer must overrun (paper §5 hazard)";
  EXPECT_EQ(run("mcast-lockstep"), 0)
      << "lockstep pacing is safe at any buffer >= one datagram";
}

TEST(McastAllgatherOverrun, GroupStaysUsableAfterBlastLoss) {
  // After a lossy blast, the trailing barrier resynchronizes the group and
  // later collectives work normally.
  constexpr int kProcs = 6;
  ClusterConfig config = config_for(kProcs);
  config.mcast_rcvbuf_bytes = 1024;
  Cluster cluster(config);
  std::vector<int> ok(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    const Buffer mine =
        pattern_payload(static_cast<std::uint64_t>(p.rank()), 512);
    (void)comm.coll().allgather(mine, "mcast-blast");
    // The channel must still be coherent: an ordinary broadcast succeeds.
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(77, 600);
    }
    comm.coll().bcast(data, 0, "mcast-binary");
    ok[static_cast<std::size_t>(p.rank())] = check_pattern(77, data);
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// ------------------------------------- van de Geijn scatter+allgather

struct VdgCase {
  int procs;
  int payload;
  int root;
};

class ScatterAllgatherBcast : public ::testing::TestWithParam<VdgCase> {};

TEST_P(ScatterAllgatherBcast, DeliversExactPayload) {
  const VdgCase c = GetParam();
  Cluster cluster(config_for(c.procs));
  std::vector<int> ok(static_cast<std::size_t>(c.procs), 0);
  cluster.world().run([&](mpi::Proc& p) {
    Buffer data;
    if (p.rank() == c.root) {
      data = pattern_payload(55, static_cast<std::size_t>(c.payload));
    }
    p.comm_world().coll().bcast(data, c.root, "scatter-allgather");
    ok[static_cast<std::size_t>(p.rank())] =
        data.size() == static_cast<std::size_t>(c.payload) &&
        check_pattern(55, data);
  });
  for (int r = 0; r < c.procs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScatterAllgatherBcast,
    ::testing::Values(VdgCase{1, 1000, 0}, VdgCase{2, 1000, 0},
                      VdgCase{2, 1000, 1}, VdgCase{3, 10, 0},
                      VdgCase{4, 0, 0},      // tiny: falls back to the tree
                      VdgCase{4, 3, 0},      // fewer bytes than ranks
                      VdgCase{4, 4096, 2},   // non-zero root
                      VdgCase{5, 5000, 0},   // non-power-of-two
                      VdgCase{7, 9999, 3},   // odd everything
                      VdgCase{8, 65536, 0},  // power of two, long
                      VdgCase{9, 50001, 8}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.procs) + "_b" +
             std::to_string(info.param.payload) + "_r" +
             std::to_string(info.param.root);
    });

TEST(ScatterAllgatherBcastFrames, TradesTotalTrafficForLinkParallelism) {
  // van de Geijn does NOT reduce total traffic — the ring stage alone moves
  // (N-1)/N * M per rank, so total frames EXCEED the binomial tree's.  Its
  // win is critical-path: every byte crosses each *link* at most ~2x and
  // the ring runs on N disjoint full-duplex links in parallel (the latency
  // comparison lives in abl_long_bcast).  One multicast still moves each
  // byte exactly once in total — the paper's structural advantage.
  constexpr int kProcs = 8;
  constexpr int kPayload = 58880;  // 40 full frames
  Cluster cluster(config_for(kProcs));
  auto op = [](mpi::Proc& p) {
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(1, kPayload);
    }
    p.comm_world().coll().bcast(data, 0, "scatter-allgather");
  };
  const auto counters = cluster::count_frames(cluster, op, op);
  const std::uint64_t tree_frames = 40u * (kProcs - 1);  // 280
  const std::uint64_t mcast_frames = 40u + (kProcs - 1);
  EXPECT_GT(counters.host_tx_data_frames, tree_frames)
      << "scatter+allgather moves more total frames than the tree";
  EXPECT_GT(counters.host_tx_data_frames, 4 * mcast_frames)
      << "and far more than one multicast";
}

// --------------------------------------------------------------- scan

TEST(Scan, InclusivePrefixSums) {
  constexpr int kProcs = 7;
  Cluster cluster(config_for(kProcs));
  std::vector<std::int64_t> results(kProcs, -1);
  cluster.world().run([&](mpi::Proc& p) {
    const std::int64_t mine = p.rank() + 1;
    Buffer bytes(sizeof mine);
    std::memcpy(bytes.data(), &mine, sizeof mine);
    const Buffer out = p.comm_world().coll().scan(
        bytes, mpi::Op::kSum, mpi::Datatype::kInt64, "mpich");
    std::memcpy(&results[static_cast<std::size_t>(p.rank())], out.data(),
                sizeof(std::int64_t));
  });
  for (int r = 0; r < kProcs; ++r) {
    // 1 + 2 + ... + (r+1)
    EXPECT_EQ(results[static_cast<std::size_t>(r)], (r + 1) * (r + 2) / 2)
        << "rank " << r;
  }
}

TEST(Scan, VectorMax) {
  constexpr int kProcs = 4;
  Cluster cluster(config_for(kProcs));
  std::vector<std::vector<std::int32_t>> results(kProcs);
  cluster.world().run([&](mpi::Proc& p) {
    // Rank r contributes {r, 3-r}: prefix max is {r, 3}.
    const std::int32_t values[2] = {p.rank(), 3 - p.rank()};
    Buffer bytes(sizeof values);
    std::memcpy(bytes.data(), values, sizeof values);
    const Buffer out = p.comm_world().coll().scan(
        bytes, mpi::Op::kMax, mpi::Datatype::kInt32, "mpich");
    results[static_cast<std::size_t>(p.rank())].resize(2);
    std::memcpy(results[static_cast<std::size_t>(p.rank())].data(), out.data(),
                out.size());
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)][0], r);
    EXPECT_EQ(results[static_cast<std::size_t>(r)][1], 3);
  }
}

// -------------------------------------------------------------- probe

TEST(Probe, IprobeSeesUnreceivedMessage) {
  Cluster cluster(config_for(2));
  std::optional<mpi::Status> before;
  std::optional<mpi::Status> after;
  bool payload_ok = false;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      p.send(comm, 1, 42, pattern_payload(1, 321));
    } else {
      before = p.iprobe(comm, 0, 42);  // nothing has arrived yet
      p.self().delay(milliseconds(5));
      after = p.iprobe(comm, 0, 42);
      payload_ok = check_pattern(1, p.recv(comm, 0, 42));
    }
  });
  EXPECT_FALSE(before.has_value());
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->source, 0);
  EXPECT_EQ(after->tag, 42);
  EXPECT_EQ(after->count, 321u);
  EXPECT_TRUE(payload_ok);
}

TEST(Probe, BlockingProbeWaitsForArrival) {
  Cluster cluster(config_for(2));
  mpi::Status status;
  SimTime probed_at{};
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      p.self().delay(milliseconds(2));
      p.send(comm, 1, 9, pattern_payload(2, 100));
    } else {
      status = p.probe(comm, 0, 9);
      probed_at = p.self().now();
      (void)p.recv(comm, 0, 9);
    }
  });
  EXPECT_EQ(status.count, 100u);
  EXPECT_GE(probed_at.count(), milliseconds(2).count());
}

TEST(Probe, ReportsRendezvousLengthFromRts) {
  ClusterConfig config = config_for(2);
  config.eager_threshold = 256;  // force rendezvous
  Cluster cluster(config);
  std::optional<mpi::Status> probed;
  bool payload_ok = false;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      p.send(comm, 1, 5, pattern_payload(3, 9000));
    } else {
      probed = p.iprobe(comm, 0, 5);
      while (!probed.has_value()) {
        p.self().delay(microseconds(100));
        probed = p.iprobe(comm, 0, 5);
      }
      payload_ok = check_pattern(3, p.recv(comm, 0, 5));
    }
  });
  ASSERT_TRUE(probed.has_value());
  EXPECT_EQ(probed->count, 9000u)
      << "probe must report the full payload size from the RTS envelope";
  EXPECT_TRUE(payload_ok);
}

TEST(Probe, WildcardProbeIdentifiesSender) {
  Cluster cluster(config_for(3));
  mpi::Status status;
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 2) {
      p.send(comm, 0, 13, pattern_payload(1, 50));
    } else if (p.rank() == 0) {
      status = p.probe(comm, mpi::kAnySource, mpi::kAnyTag);
      (void)p.recv(comm, status.source, status.tag);
    }
  });
  EXPECT_EQ(status.source, 2);
  EXPECT_EQ(status.tag, 13);
}

}  // namespace
}  // namespace mcmpi
