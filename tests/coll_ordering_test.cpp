// Reduction-order conformance: every reduce and scan algorithm must apply
// operands in communicator rank order (MPI's canonical evaluation order).
// A commutative op cannot observe the order, so these tests register a
// non-commutative Op::kCustom — a 2x2 integer matrix product — and check
// the exact product M_0 · M_1 · ... · M_{N-1} lands at the root, at
// non-power-of-two rank counts (5 and 7) that exercise the binomial trees'
// ragged edges, with non-zero roots (the relative-rank rotation trap).
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

ClusterConfig config_for(int procs) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = NetworkType::kSwitch;
  config.seed = 23;
  return config;
}

// --------------------------------------------------------- the custom op
// 2x2 row-major int64 matrices; combining groups of 4 elements.  The op
// computes inout = in · inout — `in` is the lower-ranked partial, per the
// apply_op convention — so a reduction over ranks yields the left-to-right
// matrix product.

using Mat = std::array<std::int64_t, 4>;

Mat matmul(const Mat& a, const Mat& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

void matrix_product_op(mpi::Datatype type, std::span<const std::uint8_t> in,
                       std::span<std::uint8_t> inout, std::size_t count) {
  MC_ASSERT(type == mpi::Datatype::kInt64);
  MC_ASSERT(count % 4 == 0);
  for (std::size_t g = 0; g < count / 4; ++g) {
    Mat a;
    Mat b;
    std::memcpy(a.data(), in.data() + g * sizeof(Mat), sizeof(Mat));
    std::memcpy(b.data(), inout.data() + g * sizeof(Mat), sizeof(Mat));
    const Mat r = matmul(a, b);
    std::memcpy(inout.data() + g * sizeof(Mat), r.data(), sizeof(Mat));
  }
}

/// Rank r's operand: kMatrices copies of the shear-and-scale matrix
/// [[1, r+1], [0, 2]] (plus a per-matrix twist) whose products do not
/// commute: M_a · M_b = [[1, b + 2a], [0, 4]] but M_b · M_a =
/// [[1, a + 2b], [0, 4]].
constexpr std::size_t kMatrices = 3;

Mat rank_matrix(int rank, std::size_t which) {
  return {1, rank + 1 + static_cast<std::int64_t>(which), 0, 2};
}

Buffer rank_operand(int rank) {
  Buffer out(kMatrices * sizeof(Mat));
  for (std::size_t m = 0; m < kMatrices; ++m) {
    const Mat mat = rank_matrix(rank, m);
    std::memcpy(out.data() + m * sizeof(Mat), mat.data(), sizeof(Mat));
  }
  return out;
}

/// Left-to-right product over ranks lo..hi (inclusive), per matrix slot.
Buffer expected_product(int lo, int hi) {
  Buffer out(kMatrices * sizeof(Mat));
  for (std::size_t m = 0; m < kMatrices; ++m) {
    Mat acc = rank_matrix(lo, m);
    for (int r = lo + 1; r <= hi; ++r) {
      acc = matmul(acc, rank_matrix(r, m));
    }
    std::memcpy(out.data() + m * sizeof(Mat), acc.data(), sizeof(Mat));
  }
  return out;
}

TEST(MatrixOp, IsActuallyNonCommutative) {
  const Mat ab = matmul(rank_matrix(0, 0), rank_matrix(1, 0));
  const Mat ba = matmul(rank_matrix(1, 0), rank_matrix(0, 0));
  EXPECT_NE(ab, ba) << "a commutative op cannot observe reduction order";
}

// ------------------------------------------------- reduce in rank order

class ReduceOrdering
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(ReduceOrdering, AppliesOperandsInRankOrder) {
  const auto [algo, procs, root] = GetParam();
  const mpi::CustomOpGuard guard(matrix_product_op, /*group_elements=*/4);
  Cluster cluster(config_for(procs));
  Buffer at_root;
  cluster.world().run([&](mpi::Proc& p) {
    const Buffer out = p.comm_world().coll().reduce(
        rank_operand(p.rank()), mpi::Op::kCustom, mpi::Datatype::kInt64, root,
        algo);
    if (p.rank() == root) {
      at_root = out;
    } else {
      EXPECT_TRUE(out.empty()) << "rank " << p.rank();
    }
  });
  EXPECT_EQ(at_root, expected_product(0, procs - 1))
      << algo << " must combine M_0 ... M_" << procs - 1 << " left to right";
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ReduceOrdering,
    ::testing::Combine(::testing::ValuesIn(coll::Registry::instance().names(
                           coll::CollOp::kReduce)),
                       ::testing::Values(5, 7),  // non-powers of two
                       ::testing::Values(0, 3)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_p" +
                         std::to_string(std::get<1>(info.param)) + "_r" +
                         std::to_string(std::get<2>(info.param));
      for (char& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

// --------------------------------------------------- scan in rank order

class ScanOrdering
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ScanOrdering, EveryPrefixIsInRankOrder) {
  const auto [algo, procs] = GetParam();
  const mpi::CustomOpGuard guard(matrix_product_op, /*group_elements=*/4);
  Cluster cluster(config_for(procs));
  std::vector<Buffer> results(static_cast<std::size_t>(procs));
  cluster.world().run([&](mpi::Proc& p) {
    results[static_cast<std::size_t>(p.rank())] = p.comm_world().coll().scan(
        rank_operand(p.rank()), mpi::Op::kCustom, mpi::Datatype::kInt64, algo);
  });
  for (int r = 0; r < procs; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], expected_product(0, r))
        << algo << " prefix at rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ScanOrdering,
    ::testing::Combine(::testing::ValuesIn(coll::Registry::instance().names(
                           coll::CollOp::kScan)),
                       ::testing::Values(5, 7)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// A custom op whose declared group extent does not divide the element
// count: mcast-scout cannot slice at group boundaries (and the registry
// predicate cannot see the op), so it must degrade to one full-width
// combining slice — still rank order, still exact.
TEST(ReduceOrdering, MisalignedGroupCountDegradesToOneSlice) {
  const mpi::CustomOpGuard guard(
      [](mpi::Datatype type, std::span<const std::uint8_t> in,
         std::span<std::uint8_t> inout, std::size_t count) {
        MC_ASSERT(type == mpi::Datatype::kInt64);
        for (std::size_t i = 0; i < count; ++i) {
          std::int64_t a = 0;
          std::int64_t b = 0;
          std::memcpy(&a, in.data() + i * 8, 8);
          std::memcpy(&b, inout.data() + i * 8, 8);
          const std::int64_t r = 2 * a + b;  // non-commutative
          std::memcpy(inout.data() + i * 8, &r, 8);
        }
      },
      /*group_elements=*/4);
  constexpr int kProcs = 5;
  constexpr std::size_t kCount = 5;  // not a multiple of the group extent
  Cluster cluster(config_for(kProcs));
  Buffer at_root;
  cluster.world().run([&](mpi::Proc& p) {
    std::array<std::int64_t, kCount> values;
    values.fill(p.rank() + 1);
    Buffer bytes(sizeof values);
    std::memcpy(bytes.data(), values.data(), sizeof values);
    const Buffer out = p.comm_world().coll().reduce(
        bytes, mpi::Op::kCustom, mpi::Datatype::kInt64, 0, "mcast-scout");
    if (p.rank() == 0) {
      at_root = out;
    }
  });
  // Left fold of a ∘ b = 2a + b over the per-rank values 1..5.
  std::int64_t expected = 1;
  for (int r = 1; r < kProcs; ++r) {
    expected = 2 * expected + (r + 1);
  }
  ASSERT_EQ(at_root.size(), kCount * 8);
  for (std::size_t i = 0; i < kCount; ++i) {
    std::int64_t v = 0;
    std::memcpy(&v, at_root.data() + i * 8, 8);
    EXPECT_EQ(v, expected) << "element " << i;
  }
}

// The allreduce stages sit on reduce_mpich: the custom op must survive the
// reduce-then-broadcast composition too.
TEST(AllreduceOrdering, StagedAllreduceKeepsRankOrder) {
  constexpr int kProcs = 6;
  const mpi::CustomOpGuard guard(matrix_product_op, /*group_elements=*/4);
  Cluster cluster(config_for(kProcs));
  std::vector<int> ok(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    const Buffer out = p.comm_world().coll().allreduce(
        rank_operand(p.rank()), mpi::Op::kCustom, mpi::Datatype::kInt64,
        "mcast-binary");
    ok[static_cast<std::size_t>(p.rank())] =
        out == expected_product(0, kProcs - 1);
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// --------------------- non-power-of-two regression for the binomial paths
// Plain commutative reduction at 5 and 7 ranks with non-zero roots: the
// ragged binomial tree (and the doubling scan's uneven last round) must
// still deliver exact results.

class RaggedBinomial : public ::testing::TestWithParam<int> {};

TEST_P(RaggedBinomial, ReduceAndScanAtOddRankCounts) {
  const int procs = GetParam();
  Cluster cluster(config_for(procs));
  std::vector<std::int64_t> scans(static_cast<std::size_t>(procs), -1);
  std::int64_t reduced = -1;
  const int root = procs - 1;
  cluster.world().run([&](mpi::Proc& p) {
    const std::int64_t mine = (p.rank() + 1) * 3;
    Buffer bytes(sizeof mine);
    std::memcpy(bytes.data(), &mine, sizeof mine);
    const Buffer out = p.comm_world().coll().reduce(
        bytes, mpi::Op::kSum, mpi::Datatype::kInt64, root, "mpich");
    if (p.rank() == root) {
      std::memcpy(&reduced, out.data(), sizeof reduced);
    }
    const Buffer prefix = p.comm_world().coll().scan(
        bytes, mpi::Op::kSum, mpi::Datatype::kInt64, "binomial");
    std::memcpy(&scans[static_cast<std::size_t>(p.rank())], prefix.data(),
                sizeof(std::int64_t));
  });
  EXPECT_EQ(reduced, 3 * procs * (procs + 1) / 2);
  for (int r = 0; r < procs; ++r) {
    EXPECT_EQ(scans[static_cast<std::size_t>(r)], 3 * (r + 1) * (r + 2) / 2)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(NonPowersOfTwo, RaggedBinomial,
                         ::testing::Values(5, 7), [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mcmpi
