// The communicator-scoped collective API: registry contents and dispatch,
// the auto-generated algorithm sweep (any newly registered algorithm is
// correctness-tested for free), tuned kAuto selection with its override
// chain, nonblocking collectives over the fiber scheduler, and the
// multicast-identity (group address, port) uniqueness regression.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>

#include "cluster/cluster.hpp"
#include "coll/facade.hpp"
#include "common/bytes.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;
using coll::CollOp;
using coll::Registry;

ClusterConfig config_for(int procs) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = NetworkType::kSwitch;
  config.seed = 33;
  return config;
}

// ------------------------------------------------------------- registry

TEST(Registry, CarriesTheFullAlgorithmSet) {
  Registry& r = Registry::instance();
  // The paper's set and the extensions, by name.
  for (const char* name : {"mpich", "mcast-binary", "mcast-linear",
                           "ack-mcast", "sequencer", "scatter-allgather"}) {
    EXPECT_NE(r.find(CollOp::kBcast, name), nullptr) << name;
  }
  for (const char* name : {"mpich", "mcast"}) {
    EXPECT_NE(r.find(CollOp::kBarrier, name), nullptr) << name;
  }
  for (const char* name : {"ring", "mcast-lockstep", "mcast-blast"}) {
    EXPECT_NE(r.find(CollOp::kAllgather, name), nullptr) << name;
  }
  // The widened surface: reduce / gather / scatter / scan, each with the
  // point-to-point baseline and a multicast/scout variant.
  for (const char* name : {"mpich", "mcast-scout"}) {
    EXPECT_NE(r.find(CollOp::kReduce, name), nullptr) << name;
  }
  for (const char* name : {"mpich", "scout-combining"}) {
    EXPECT_NE(r.find(CollOp::kGather, name), nullptr) << name;
  }
  for (const char* name : {"mpich", "mcast-slice"}) {
    EXPECT_NE(r.find(CollOp::kScatter, name), nullptr) << name;
  }
  for (const char* name : {"mpich", "binomial"}) {
    EXPECT_NE(r.find(CollOp::kScan, name), nullptr) << name;
  }
  for (const char* name : {"mpich", "mcast-rr"}) {
    EXPECT_NE(r.find(CollOp::kAlltoall, name), nullptr) << name;
  }
  EXPECT_GE(r.entries().size(), 24u);
  // Every entry carries the uniform metadata.
  for (const coll::CollAlgorithm& a : r.entries()) {
    EXPECT_TRUE(static_cast<bool>(a.applicable)) << a.name;
    EXPECT_TRUE(static_cast<bool>(a.cost_hint)) << a.name;
    EXPECT_GT(a.cost_hint(1024, 4), 0.0) << a.name;
  }
}

TEST(Registry, RejectsDuplicatesAndUnknownNames) {
  Registry& r = Registry::instance();
  coll::CollAlgorithm duplicate;
  duplicate.name = "mpich";
  duplicate.op = CollOp::kBcast;
  duplicate.bcast = [](mpi::Proc&, const mpi::Comm&, Buffer&, int) {};
  EXPECT_THROW(r.add(duplicate), std::invalid_argument);

  coll::CollAlgorithm no_run;
  no_run.name = "broken";
  no_run.op = CollOp::kBarrier;
  EXPECT_THROW(r.add(no_run), std::invalid_argument);

  try {
    (void)r.get(CollOp::kBcast, "no-such-algo");
    FAIL() << "unknown algorithm must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("mcast-binary"), std::string::npos)
        << "the error should list the registered names";
  }
}

TEST(Registry, PluggedInAlgorithmIsDispatchable) {
  Registry& r = Registry::instance();
  coll::CollAlgorithm noop;
  noop.name = "test-noop";
  noop.op = CollOp::kBarrier;
  noop.description = "registered by coll_registry_test";
  noop.applicable = [](const mpi::Comm&, std::size_t) { return true; };
  noop.cost_hint = [](std::size_t, int) { return 1e9; };  // never auto-picked
  noop.barrier = [](mpi::Proc&, const mpi::Comm&) {};
  r.add(noop);
  {
    Cluster cluster(config_for(3));
    cluster.world().run(
        [](mpi::Proc& p) { p.comm_world().coll().barrier("test-noop"); });
  }
  // The registry is process-wide; unregister so sibling tests (the sweep
  // in particular) see only the built-in set regardless of test order.
  EXPECT_TRUE(r.remove(CollOp::kBarrier, "test-noop"));
  EXPECT_EQ(r.find(CollOp::kBarrier, "test-noop"), nullptr);
}

// --------------------------------------------------- auto-generated sweep
//
// Satellite requirement: every registered algorithm x {1 B, 1 KiB, 64 KiB}
// payloads x {2, 3, 9} ranks x a dup- and a split-derived communicator,
// asserting payload correctness — a newly registered algorithm is swept
// here with no test changes.

void sweep_comm(mpi::Proc& p, const mpi::Comm& comm, std::size_t bytes,
                std::vector<std::string>& errors) {
  Registry& r = Registry::instance();
  coll::Coll coll = comm.coll();
  const auto note = [&](const std::string& what) {
    std::ostringstream os;
    os << what << " (ranks=" << comm.size() << ", bytes=" << bytes
       << ", rank=" << comm.rank() << ")";
    errors.push_back(os.str());
  };

  for (const std::string& algo : r.applicable_names(CollOp::kBcast, comm,
                                                    bytes)) {
    Buffer data(bytes);
    if (comm.rank() == 0) {
      data = pattern_payload(bytes, bytes);
    }
    coll.bcast(data, 0, algo);
    if (data.size() != bytes || !check_pattern(bytes, data)) {
      note("bcast/" + algo + " payload mismatch");
    }
  }

  for (const std::string& algo : r.applicable_names(CollOp::kBarrier, comm,
                                                    0)) {
    coll.barrier(algo);
  }

  for (const std::string& algo : r.applicable_names(CollOp::kAllreduce, comm,
                                                    bytes)) {
    // Elementwise max over bytes: rank r contributes (r + i) % 251; the
    // expected maximum is computable locally on every rank.
    Buffer mine(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
      mine[i] = static_cast<std::uint8_t>(
          (static_cast<std::size_t>(comm.rank()) + i) % 251);
    }
    const Buffer out =
        coll.allreduce(mine, mpi::Op::kMax, mpi::Datatype::kByte, algo);
    bool good = out.size() == bytes;
    for (std::size_t i = 0; good && i < bytes; ++i) {
      std::uint8_t expected = 0;
      for (int rank = 0; rank < comm.size(); ++rank) {
        expected = std::max(
            expected, static_cast<std::uint8_t>(
                          (static_cast<std::size_t>(rank) + i) % 251));
      }
      good = out[i] == expected;
    }
    if (!good) {
      note("allreduce/" + algo + " result mismatch");
    }
  }

  for (const std::string& algo : r.applicable_names(CollOp::kAllgather, comm,
                                                    bytes)) {
    const bool lossy = r.get(CollOp::kAllgather, algo).lossy;
    const Buffer mine =
        pattern_payload(static_cast<std::uint64_t>(comm.rank()), bytes);
    const auto blocks = coll.allgather(mine, algo);
    if (blocks.size() != static_cast<std::size_t>(comm.size())) {
      note("allgather/" + algo + " block count");
      continue;
    }
    for (int rank = 0; rank < comm.size(); ++rank) {
      const Buffer& block = blocks[static_cast<std::size_t>(rank)];
      if (lossy && block.empty() && rank != comm.rank()) {
        continue;  // lossy pacing may drop peer blocks; own block stays
      }
      if (block.size() != bytes ||
          !check_pattern(static_cast<std::uint64_t>(rank), block)) {
        note("allgather/" + algo + " block " + std::to_string(rank));
      }
    }
  }

  // ------------------------- the widened surface: reduce/gather/scatter/scan
  // Byte-wise max with rank r contributing (r + i) % 251: the reduced (and
  // every prefix) result is computable locally on every rank.
  const auto contribution = [&](int rank) {
    Buffer mine(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
      mine[i] = static_cast<std::uint8_t>(
          (static_cast<std::size_t>(rank) + i) % 251);
    }
    return mine;
  };
  const auto max_over = [&](int ranks, std::size_t i) {
    std::uint8_t expected = 0;
    for (int rank = 0; rank < ranks; ++rank) {
      expected = std::max(expected,
                          static_cast<std::uint8_t>(
                              (static_cast<std::size_t>(rank) + i) % 251));
    }
    return expected;
  };
  const int last = comm.size() - 1;

  for (const std::string& algo : r.applicable_names(CollOp::kReduce, comm,
                                                    bytes)) {
    const Buffer out = coll.reduce(contribution(comm.rank()), mpi::Op::kMax,
                                   mpi::Datatype::kByte, last, algo);
    if (comm.rank() != last) {
      if (!out.empty()) {
        note("reduce/" + algo + " non-root result not empty");
      }
      continue;
    }
    bool good = out.size() == bytes;
    for (std::size_t i = 0; good && i < bytes; ++i) {
      good = out[i] == max_over(comm.size(), i);
    }
    if (!good) {
      note("reduce/" + algo + " result mismatch");
    }
  }

  for (const std::string& algo : r.applicable_names(CollOp::kGather, comm,
                                                    bytes)) {
    const Buffer mine =
        pattern_payload(static_cast<std::uint64_t>(comm.rank()), bytes);
    const auto blocks = coll.gather(mine, /*root=*/0, algo);
    if (comm.rank() != 0) {
      if (!blocks.empty()) {
        note("gather/" + algo + " non-root blocks not empty");
      }
      continue;
    }
    bool good = blocks.size() == static_cast<std::size_t>(comm.size());
    for (int rank = 0; good && rank < comm.size(); ++rank) {
      const Buffer& block = blocks[static_cast<std::size_t>(rank)];
      good = block.size() == bytes &&
             check_pattern(static_cast<std::uint64_t>(rank), block);
    }
    if (!good) {
      note("gather/" + algo + " blocks mismatch");
    }
  }

  for (const std::string& algo : r.applicable_names(CollOp::kScatter, comm,
                                                    bytes)) {
    std::vector<Buffer> chunks;
    if (comm.rank() == last) {
      for (int rank = 0; rank < comm.size(); ++rank) {
        chunks.push_back(
            pattern_payload(static_cast<std::uint64_t>(300 + rank), bytes));
      }
    }
    const Buffer mine = coll.scatter(chunks, last, bytes, algo);
    if (mine.size() != bytes ||
        !check_pattern(static_cast<std::uint64_t>(300 + comm.rank()), mine)) {
      note("scatter/" + algo + " chunk mismatch");
    }
  }

  for (const std::string& algo : r.applicable_names(CollOp::kScan, comm,
                                                    bytes)) {
    const Buffer out = coll.scan(contribution(comm.rank()), mpi::Op::kMax,
                                 mpi::Datatype::kByte, algo);
    bool good = out.size() == bytes;
    for (std::size_t i = 0; good && i < bytes; ++i) {
      good = out[i] == max_over(comm.rank() + 1, i);
    }
    if (!good) {
      note("scan/" + algo + " prefix mismatch");
    }
  }

  for (const std::string& algo : r.applicable_names(CollOp::kAlltoall, comm,
                                                    bytes)) {
    std::vector<Buffer> to_each;
    for (int dst = 0; dst < comm.size(); ++dst) {
      to_each.push_back(pattern_payload(
          static_cast<std::uint64_t>(comm.rank() * 1000 + dst), bytes));
    }
    const auto from_each = coll.alltoall(to_each, bytes, algo);
    bool good = from_each.size() == static_cast<std::size_t>(comm.size());
    for (int src = 0; good && src < comm.size(); ++src) {
      good = check_pattern(
          static_cast<std::uint64_t>(src * 1000 + comm.rank()),
          from_each[static_cast<std::size_t>(src)]);
    }
    if (!good) {
      note("alltoall/" + algo + " blocks mismatch");
    }
  }
}

class RegistrySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RegistrySweep, EveryAlgorithmDeliversOnDerivedCommunicators) {
  const auto [procs, payload] = GetParam();
  const auto bytes = static_cast<std::size_t>(payload);
  Cluster cluster(config_for(procs));
  std::vector<std::string> errors;

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm world = p.comm_world();
    // Dup-derived: same group, fresh context (fresh multicast identity).
    const mpi::Comm dupped = p.dup(world);
    sweep_comm(p, dupped, bytes, errors);
    // Split-derived: sub-groups (even/odd world ranks), including the
    // size-1 children the 2-rank case produces.
    const mpi::Comm split = p.split(world, p.rank() % 2, p.rank());
    sweep_comm(p, split, bytes, errors);
  });

  for (const std::string& error : errors) {
    ADD_FAILURE() << error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegistrySweep,
    ::testing::Combine(::testing::Values(2, 3, 9),
                       ::testing::Values(1, 1024, 64 * 1024)),
    [](const auto& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------- tuned selection

TEST(TuningTable, DefaultsEncodeThePaperCrossovers) {
  Cluster cluster(config_for(9));
  cluster.world().run([](mpi::Proc& p) {
    coll::Coll coll = p.comm_world().coll();
    // Large-message broadcast rides multicast; tiny ones stay on MPICH.
    EXPECT_EQ(coll.resolve(CollOp::kBcast, 64 * 1024), "mcast-binary");
    EXPECT_EQ(coll.resolve(CollOp::kBcast, 8), "mpich");
    EXPECT_EQ(coll.resolve(CollOp::kBcast, 1024), "mpich");
    EXPECT_EQ(coll.resolve(CollOp::kBcast, 1025), "mcast-binary");
    // The multicast barrier wins at every N (Fig. 13).
    EXPECT_EQ(coll.resolve(CollOp::kBarrier, 0), "mcast");
    EXPECT_EQ(coll.resolve(CollOp::kAllreduce, 64 * 1024), "mcast-binary");
    EXPECT_EQ(coll.resolve(CollOp::kAllgather, 64 * 1024), "mcast-lockstep");
    EXPECT_EQ(coll.resolve(CollOp::kAllgather, 64), "ring");
    // Large-message reduce/gather/scatter ride the multicast/scout
    // variants; small messages stay on point-to-point.
    EXPECT_EQ(coll.resolve(CollOp::kReduce, 32 * 1024), "mcast-scout");
    EXPECT_EQ(coll.resolve(CollOp::kReduce, 8), "mpich");
    EXPECT_EQ(coll.resolve(CollOp::kGather, 32 * 1024), "scout-combining");
    EXPECT_EQ(coll.resolve(CollOp::kGather, 1024), "mpich");
    EXPECT_EQ(coll.resolve(CollOp::kScatter, 16 * 1024), "mcast-slice");
    EXPECT_EQ(coll.resolve(CollOp::kScatter, 64), "mpich");
    EXPECT_EQ(coll.resolve(CollOp::kScan, 32 * 1024), "binomial");
    EXPECT_EQ(coll.resolve(CollOp::kScan, 8), "mpich");
    EXPECT_EQ(coll.resolve(CollOp::kAlltoall, 16 * 1024), "mcast-rr");
    EXPECT_EQ(coll.resolve(CollOp::kAlltoall, 512), "mpich");
    // Payloads the multicast variants' predicates reject fall through to
    // the trailing rules: a 128 KiB reduce block exceeds the eager path
    // (point-to-point tail), while a 64 KiB x 9 rank scatter exceeds the
    // datagram ceiling and lands on the segmented pipeline — multicast
    // now serves every payload size for bcast/allgather/scatter.
    EXPECT_EQ(coll.resolve(CollOp::kReduce, 128 * 1024), "mpich");
    EXPECT_EQ(coll.resolve(CollOp::kScatter, 64 * 1024), "mcast-segmented");
    EXPECT_EQ(coll.resolve(CollOp::kBcast, 1 << 20), "mcast-segmented");
    EXPECT_EQ(coll.resolve(CollOp::kAllgather, 1 << 20), "mcast-segmented");
    EXPECT_EQ(coll.resolve(CollOp::kAllreduce, 1 << 20), "mpich");
    // Explicit names pass through untouched; typos throw.
    EXPECT_EQ(coll.resolve(CollOp::kBcast, 0, "sequencer"), "sequencer");
    EXPECT_THROW((void)coll.resolve(CollOp::kBcast, 0, "typo"),
                 std::invalid_argument);
  });
}

TEST(TuningTable, TwoRanksPreferPointToPointAtAnySize) {
  Cluster cluster(config_for(2));
  cluster.world().run([](mpi::Proc& p) {
    coll::Coll coll = p.comm_world().coll();
    EXPECT_EQ(coll.resolve(CollOp::kBcast, 64 * 1024), "mpich");
    EXPECT_EQ(coll.resolve(CollOp::kAllgather, 64 * 1024), "ring");
    EXPECT_EQ(coll.resolve(CollOp::kReduce, 32 * 1024), "mpich");
    EXPECT_EQ(coll.resolve(CollOp::kGather, 32 * 1024), "mpich");
    EXPECT_EQ(coll.resolve(CollOp::kScatter, 32 * 1024), "mpich");
  });
}

TEST(TuningTable, ClusterConfigOverridesTheDefaults) {
  ClusterConfig config = config_for(9);
  config.coll_tuning = "bcast,*,*,sequencer";
  Cluster cluster(config);
  cluster.world().run([](mpi::Proc& p) {
    coll::Coll coll = p.comm_world().coll();
    EXPECT_EQ(coll.resolve(CollOp::kBcast, 64 * 1024), "sequencer");
    EXPECT_EQ(coll.resolve(CollOp::kBcast, 1), "sequencer");
    // Ops the override table does not cover fall back to the cheapest
    // applicable non-lossy entry by cost hint.
    EXPECT_EQ(coll.resolve(CollOp::kBarrier, 0), "mcast");
  });
}

TEST(TuningTable, EnvironmentOverrideIsHonored) {
  ::setenv("MCMPI_COLL_TUNING", "bcast,*,*,mcast-linear", 1);
  Cluster cluster(config_for(4));
  ::unsetenv("MCMPI_COLL_TUNING");
  cluster.world().run([](mpi::Proc& p) {
    EXPECT_EQ(p.comm_world().coll().resolve(CollOp::kBcast, 64 * 1024),
              "mcast-linear");
  });

  // ClusterConfig beats the environment.
  ::setenv("MCMPI_COLL_TUNING", "bcast,*,*,mcast-linear", 1);
  ClusterConfig config = config_for(4);
  config.coll_tuning = "bcast,*,*,mpich";
  Cluster override_cluster(config);
  ::unsetenv("MCMPI_COLL_TUNING");
  override_cluster.world().run([](mpi::Proc& p) {
    EXPECT_EQ(p.comm_world().coll().resolve(CollOp::kBcast, 64 * 1024),
              "mpich");
  });
}

TEST(TuningTable, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(coll::TuningTable::parse("bcast,*,*"), std::invalid_argument);
  EXPECT_THROW(coll::TuningTable::parse("frobnicate,*,*,mpich"),
               std::invalid_argument);
  EXPECT_THROW(coll::TuningTable::parse("bcast,xyz,*,mpich"),
               std::invalid_argument);
  EXPECT_THROW(coll::TuningTable::parse("bcast,*,*,no-such-algo"),
               std::invalid_argument);
  // Round-trip of a valid table.
  const coll::TuningTable table =
      coll::TuningTable::parse("bcast, 1024, *, mpich; bcast,*,*,mcast-binary");
  EXPECT_EQ(table.to_string(), "bcast,1024,*,mpich; bcast,*,*,mcast-binary");
}

TEST(TuningTable, ParseErrorsNameTheRuleFieldAndToken) {
  // MCMPI_COLL_TUNING typos must be findable from the message alone: every
  // parse error names the rule (1-based, with its text), the field, and
  // the offending token.
  const auto message = [](const std::string& spec) {
    try {
      (void)coll::TuningTable::parse(spec);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  const std::string bound = message("bcast,*,*,mpich; bcast,xyz,*,mpich");
  EXPECT_NE(bound.find("tuning rule 2 ('bcast,xyz,*,mpich'), field 2"),
            std::string::npos)
      << bound;
  EXPECT_NE(bound.find("offending token 'xyz'"), std::string::npos) << bound;
  const std::string op = message("frobnicate,*,*,mpich");
  EXPECT_NE(op.find("field 1"), std::string::npos) << op;
  EXPECT_NE(op.find("unknown collective op 'frobnicate'"), std::string::npos)
      << op;
  const std::string count = message("bcast,*,*");
  EXPECT_NE(count.find("tuning rule 1"), std::string::npos) << count;
  EXPECT_NE(count.find("got 3 fields"), std::string::npos) << count;
  const std::string gate = message("bcast,*,*,mpich,0,sloppy");
  EXPECT_NE(gate.find("field 6"), std::string::npos) << gate;
  EXPECT_NE(gate.find("offending token 'sloppy'"), std::string::npos) << gate;
  const std::string algo = message("bcast,*,*,no-such-algo");
  EXPECT_NE(algo.find("field 4"), std::string::npos) << algo;
}

TEST(TuningTable, LossyGatedRulesRoundTrip) {
  const coll::TuningTable table = coll::TuningTable::parse(
      "bcast,*,*,sequencer,0,lossy; bcast,*,*,mcast-binary");
  EXPECT_EQ(table.to_string(),
            "bcast,*,*,sequencer,0,lossy; bcast,*,*,mcast-binary");
}

TEST(TuningAuto, AutoBcastDeliversForSmallAndLarge) {
  // End-to-end through kAuto on both sides of the crossover (receivers
  // pre-size their buffers — the kAuto size rule).
  for (const std::size_t bytes : {std::size_t{16}, std::size_t{8192}}) {
    constexpr int kProcs = 5;
    Cluster cluster(config_for(kProcs));
    std::vector<int> ok(kProcs, 0);
    cluster.world().run([&](mpi::Proc& p) {
      Buffer data(bytes);
      if (p.rank() == 0) {
        data = pattern_payload(9, bytes);
      }
      p.comm_world().coll().bcast(data, 0);
      ok[static_cast<std::size_t>(p.rank())] =
          data.size() == bytes && check_pattern(9, data);
    });
    for (int r = 0; r < kProcs; ++r) {
      EXPECT_TRUE(ok[static_cast<std::size_t>(r)])
          << bytes << " B, rank " << r;
    }
  }
}

// --------------------------------------------------------- nonblocking

TEST(Nonblocking, IbcastDeliversBitIdenticalPayloads) {
  constexpr int kProcs = 6;
  constexpr std::size_t kBytes = 40000;
  Cluster cluster(config_for(kProcs));
  std::vector<int> ok(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    Buffer data(kBytes);
    if (p.rank() == 0) {
      data = pattern_payload(0xD00D, kBytes);
    }
    auto request = comm.coll().ibcast(data, 0);
    p.self().delay(milliseconds(3));  // overlapped compute
    p.wait(request);
    ok[static_cast<std::size_t>(p.rank())] =
        request->complete() && data.size() == kBytes &&
        check_pattern(0xD00D, data);
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

TEST(Nonblocking, IbcastOverlapsWithCompute) {
  // compute + broadcast back to back vs overlapped: the overlapped run
  // must finish earlier, and never earlier than the compute alone.
  constexpr int kProcs = 6;
  constexpr std::size_t kBytes = 64 * 1024;
  const SimTime compute = milliseconds(8);
  auto run = [&](bool nonblocking) {
    Cluster cluster(config_for(kProcs));
    SimTime finished{};
    cluster.world().run([&](mpi::Proc& p) {
      const mpi::Comm comm = p.comm_world();
      Buffer data(kBytes);
      if (p.rank() == 0) {
        data = pattern_payload(4, kBytes);
      }
      if (nonblocking) {
        auto request = comm.coll().ibcast(data, 0, "mcast-binary");
        p.self().delay(compute);
        p.wait(request);
      } else {
        p.self().delay(compute);
        comm.coll().bcast(data, 0, "mcast-binary");
      }
      EXPECT_TRUE(check_pattern(4, data)) << "rank " << p.rank();
      finished = std::max(finished, p.self().now());
    });
    return finished;
  };
  const SimTime blocking = run(false);
  const SimTime overlapped = run(true);
  EXPECT_LT(overlapped.count(), blocking.count())
      << "the broadcast must hide behind the compute";
  EXPECT_GE(overlapped.count(), compute.count());
}

TEST(Nonblocking, IbarrierHoldsUntilEveryoneEnters) {
  constexpr int kProcs = 5;
  Cluster cluster(config_for(kProcs));
  std::vector<SimTime> entered(kProcs);
  std::vector<SimTime> exited(kProcs);
  cluster.world().run([&](mpi::Proc& p) {
    p.self().delay(microseconds(400) * p.rank());
    entered[static_cast<std::size_t>(p.rank())] = p.self().now();
    auto request = p.comm_world().coll().ibarrier();
    p.wait(request);
    exited[static_cast<std::size_t>(p.rank())] = p.self().now();
  });
  const SimTime last_entry = *std::max_element(entered.begin(), entered.end());
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_GE(exited[static_cast<std::size_t>(r)].count(), last_entry.count())
        << "rank " << r;
  }
}

TEST(Nonblocking, IallreduceReturnsTheReducedVector) {
  constexpr int kProcs = 4;
  Cluster cluster(config_for(kProcs));
  std::vector<std::int64_t> results(kProcs, -1);
  cluster.world().run([&](mpi::Proc& p) {
    const std::int64_t mine = (p.rank() + 1) * 3;
    Buffer bytes(sizeof mine);
    std::memcpy(bytes.data(), &mine, sizeof mine);
    auto request = p.comm_world().coll().iallreduce(
        bytes, mpi::Op::kSum, mpi::Datatype::kInt64, "mcast-binary");
    p.self().delay(milliseconds(1));
    const Buffer out = p.wait(request);
    std::memcpy(&results[static_cast<std::size_t>(p.rank())], out.data(),
                sizeof(std::int64_t));
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], 3 + 6 + 9 + 12)
        << "rank " << r;
  }
}

TEST(Nonblocking, IreduceDeliversAtRootOnly) {
  constexpr int kProcs = 5;
  Cluster cluster(config_for(kProcs));
  std::vector<std::int64_t> results(kProcs, -1);
  cluster.world().run([&](mpi::Proc& p) {
    const std::int64_t mine = (p.rank() + 1) * 5;
    Buffer bytes(sizeof mine);
    std::memcpy(bytes.data(), &mine, sizeof mine);
    auto request = p.comm_world().coll().ireduce(
        bytes, mpi::Op::kSum, mpi::Datatype::kInt64, /*root=*/2, "mpich");
    p.self().delay(milliseconds(1));
    const Buffer out = p.wait(request);
    if (p.rank() == 2) {
      ASSERT_EQ(out.size(), sizeof(std::int64_t));
      std::memcpy(&results[2], out.data(), sizeof(std::int64_t));
    } else {
      EXPECT_TRUE(out.empty()) << "rank " << p.rank();
    }
  });
  EXPECT_EQ(results[2], 5 + 10 + 15 + 20 + 25);
}

TEST(Nonblocking, IgatherAndIscatterRoundTrip) {
  constexpr int kProcs = 4;
  constexpr std::size_t kBytes = 600;
  Cluster cluster(config_for(kProcs));
  std::vector<int> ok(kProcs, 0);
  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    const Buffer mine =
        pattern_payload(static_cast<std::uint64_t>(p.rank()), kBytes);
    auto gather_request = comm.coll().igather(mine, /*root=*/1, "mpich");
    p.self().delay(milliseconds(1));  // overlapped compute
    (void)p.wait(gather_request);
    std::vector<Buffer>& blocks = gather_request->blocks();
    if (p.rank() == 1) {
      ASSERT_EQ(blocks.size(), static_cast<std::size_t>(kProcs));
      for (int r = 0; r < kProcs; ++r) {
        EXPECT_TRUE(check_pattern(static_cast<std::uint64_t>(r),
                                  blocks[static_cast<std::size_t>(r)]))
            << "block " << r;
      }
    } else {
      EXPECT_TRUE(blocks.empty()) << "rank " << p.rank();
    }
    // Scatter the gathered blocks straight back: every rank must get its
    // own contribution bit-identically.
    auto scatter_request =
        comm.coll().iscatter(blocks, /*root=*/1, kBytes, "mpich");
    p.self().delay(milliseconds(1));
    const Buffer back = p.wait(scatter_request);
    ok[static_cast<std::size_t>(p.rank())] =
        back.size() == kBytes &&
        check_pattern(static_cast<std::uint64_t>(p.rank()), back);
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

TEST(Nonblocking, WaitAfterCompletionReturnsImmediately) {
  // The helper can finish long before the rank waits; wait() then just
  // collects the result.
  Cluster cluster(config_for(3));
  cluster.world().run([](mpi::Proc& p) {
    Buffer data(128);
    if (p.rank() == 0) {
      data = pattern_payload(2, 128);
    }
    auto request = p.comm_world().coll().ibcast(data, 0, "mcast-binary");
    p.self().delay(milliseconds(50));  // far past completion
    EXPECT_TRUE(request->complete());
    const SimTime before = p.self().now();
    p.wait(request);
    EXPECT_EQ(p.self().now().count(), before.count());
    EXPECT_TRUE(check_pattern(2, data));
  });
}

// ----------------------------------------- multicast identity uniqueness

TEST(McastIdentity, DistinctContextsNeverShareAddressAndPort) {
  // Regression for the `% 40000` port wrap: context ids above the wrap
  // boundary must still map to unique (group address, port) pairs.
  const std::vector<std::uint32_t> contexts = {
      0,          1,         39999,     40000,      40001,
      65535,      65536,     65537,     105536,     2 * 65536 + 7,
      40000 * 2,  999999,    12345678,  123456789,  1000000007};
  std::set<std::pair<std::uint32_t, std::uint16_t>> identities;
  for (std::uint32_t context : contexts) {
    mpi::CommInfo info(context, mpi::Group::world(2));
    const auto identity =
        std::make_pair(info.mcast_addr().bits(), info.mcast_port());
    EXPECT_TRUE(identities.insert(identity).second)
        << "context " << context << " collides on "
        << info.mcast_addr().to_string() << ":" << info.mcast_port();
  }
}

TEST(McastIdentity, LowContextsKeepTheHistoricalMapping) {
  // Below 65536 the remap is the identity transformation: the wire
  // behaviour of every existing configuration is unchanged.
  for (std::uint32_t context : {0U, 1U, 7U, 39999U, 40000U, 65535U}) {
    mpi::CommInfo info(context, mpi::Group::world(2));
    EXPECT_EQ(info.mcast_addr().bits(),
              inet::IpAddr::multicast_group(
                  static_cast<std::uint16_t>(context)).bits());
    EXPECT_EQ(info.mcast_port(), 20000 + (context % 40000));
  }
}

TEST(McastIdentity, ContextBeyondTheIdentitySpaceIsRejected) {
  mpi::CommInfo info(0, mpi::Group::world(2));
  info.context_id = static_cast<std::uint32_t>(
      mpi::CommInfo::kMaxMcastContexts);  // 40000 * 65536 fits in 32 bits
  EXPECT_THROW((void)info.mcast_port(), ContractViolation);
}

}  // namespace
}  // namespace mcmpi
