// Collective-operation correctness across every algorithm, process count
// and payload size, plus the paper-specific semantics: frame-count
// formulas, ordering (§4), and scout-protocol readiness.
#include <gtest/gtest.h>

#include "coll/ack_mcast.hpp"
#include "coll/facade.hpp"
#include "coll/mcast.hpp"
#include "coll/mpich.hpp"
#include "cluster/cluster.hpp"
#include "cluster/experiment.hpp"
#include "common/bytes.hpp"

namespace mcmpi {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::NetworkType;

ClusterConfig quiet_config(int procs, NetworkType net) {
  ClusterConfig config;
  config.num_procs = procs;
  config.network = net;
  config.seed = 42;
  return config;
}

/// True when `algo` may be dispatched on this communicator — the registry
/// applicability predicate (the hierarchical algorithms reject
/// single-segment topologies; sweeps over Registry::names() skip those
/// combinations instead of tripping the facade's precondition).
bool algo_applicable(coll::CollOp op, const std::string& algo,
                     const mpi::Comm& comm, std::size_t bytes) {
  const coll::CollAlgorithm& a = coll::Registry::instance().get(op, algo);
  return !a.applicable || a.applicable(comm, bytes);
}

// ---------------------------------------------------------------------
// Broadcast correctness: every algorithm delivers the root's exact bytes
// to every rank, over both network types, several sizes and roots.

struct BcastCase {
  std::string algo;  // registry name
  NetworkType net;
  int procs;
  int payload;
  int root;
};

class BcastCorrectness : public ::testing::TestWithParam<BcastCase> {};

TEST_P(BcastCorrectness, DeliversExactPayloadToAllRanks) {
  const BcastCase c = GetParam();
  Cluster cluster(quiet_config(c.procs, c.net));
  std::vector<int> ok(static_cast<std::size_t>(c.procs), 0);
  bool applicable = true;

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (!algo_applicable(coll::CollOp::kBcast, c.algo, comm,
                         static_cast<std::size_t>(c.payload))) {
      applicable = false;  // every rank computes the same verdict
      return;
    }
    Buffer data;
    if (comm.rank() == c.root) {
      data = pattern_payload(99, static_cast<std::size_t>(c.payload));
    }
    comm.coll().bcast(data, c.root, c.algo);
    ok[static_cast<std::size_t>(p.rank())] =
        data.size() == static_cast<std::size_t>(c.payload) &&
        check_pattern(99, data);
  });
  if (!applicable) {
    GTEST_SKIP() << c.algo << " is not applicable on this topology";
  }

  for (int r = 0; r < c.procs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

std::vector<BcastCase> all_bcast_cases() {
  // Every registered broadcast algorithm: a newly added registry entry is
  // correctness-swept here for free.
  std::vector<BcastCase> cases;
  for (const std::string& algo :
       coll::Registry::instance().names(coll::CollOp::kBcast)) {
    for (NetworkType net : {NetworkType::kHub, NetworkType::kSwitch}) {
      for (int procs : {1, 2, 4, 7, 9}) {
        for (int payload : {0, 1, 1000, 1472, 1473, 5000}) {
          cases.push_back({algo, net, procs, payload, 0});
        }
        // Non-zero root exercises the relative-rank arithmetic.
        cases.push_back({algo, net, procs, 512, procs - 1});
      }
    }
  }
  return cases;
}

std::string bcast_case_name(
    const ::testing::TestParamInfo<BcastCase>& info) {
  const BcastCase& c = info.param;
  std::string name = c.algo + "_" +
                     cluster::to_string(c.net) + "_p" +
                     std::to_string(c.procs) + "_b" +
                     std::to_string(c.payload) + "_r" + std::to_string(c.root);
  for (char& ch : name) {
    if (ch == '-') {
      ch = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BcastCorrectness,
                         ::testing::ValuesIn(all_bcast_cases()),
                         bcast_case_name);

// ---------------------------------------------------------------------
// Barrier semantics: no rank may leave before the last rank has entered.

class BarrierSemantics
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(BarrierSemantics, NobodyExitsBeforeLastEntry) {
  const auto [algo, procs] = GetParam();
  Cluster cluster(quiet_config(procs, NetworkType::kSwitch));
  std::vector<SimTime> entered(static_cast<std::size_t>(procs));
  std::vector<SimTime> exited(static_cast<std::size_t>(procs));
  bool applicable = true;

  cluster.world().run([&](mpi::Proc& p) {
    if (!algo_applicable(coll::CollOp::kBarrier, algo, p.comm_world(), 0)) {
      applicable = false;
      return;
    }
    // Stagger entries hard: rank r arrives 300us * r late.
    p.self().delay(microseconds(300) * p.rank());
    entered[static_cast<std::size_t>(p.rank())] = p.self().now();
    p.comm_world().coll().barrier(algo);
    exited[static_cast<std::size_t>(p.rank())] = p.self().now();
  });
  if (!applicable) {
    GTEST_SKIP() << algo << " is not applicable on this topology";
  }

  const SimTime last_entry = *std::max_element(entered.begin(), entered.end());
  for (int r = 0; r < procs; ++r) {
    EXPECT_GE(exited[static_cast<std::size_t>(r)].count(),
              last_entry.count())
        << "rank " << r << " escaped the barrier early";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, BarrierSemantics,
    ::testing::Combine(::testing::ValuesIn(coll::Registry::instance().names(
                           coll::CollOp::kBarrier)),
                       ::testing::Values(2, 3, 4, 7, 8, 9)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// §3.1 frame-count formulas, verified against simulator counters.

struct FrameCase {
  int procs;
  int payload;
};

class BcastFrameCounts : public ::testing::TestWithParam<FrameCase> {};

// Paper: MPICH needs (floor(M/T)+1)*(N-1) frames; multicast needs
// (N-1) scouts + floor(M/T)+1 data frames.  T = 1472 payload bytes/frame.
TEST_P(BcastFrameCounts, MatchesPaperFormulas) {
  const auto [procs, payload] = GetParam();
  const std::uint64_t frames_per_message =
      static_cast<std::uint64_t>(payload) / 1472 + 1;
  const auto n = static_cast<std::uint64_t>(procs);

  auto run_bcast = [&](const std::string& algo) {
    Cluster cluster(quiet_config(procs, NetworkType::kSwitch));
    auto op = [&, algo](mpi::Proc& p) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(7, static_cast<std::size_t>(payload));
      }
      p.comm_world().coll().bcast(data, 0, algo);
    };
    return cluster::count_frames(cluster, op, op);
  };

  const auto mpich = run_bcast("mpich");
  EXPECT_EQ(mpich.formula_frames(), frames_per_message * (n - 1))
      << "MPICH bcast frame count";

  for (const std::string algo : {"mcast-binary", "mcast-linear"}) {
    const auto mcast = run_bcast(algo);
    EXPECT_EQ(mcast.formula_frames(), (n - 1) + frames_per_message)
        << algo << " frame count";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BcastFrameCounts,
    ::testing::Values(FrameCase{2, 0}, FrameCase{4, 0}, FrameCase{4, 1000},
                      FrameCase{4, 1472}, FrameCase{4, 5000}, FrameCase{7, 100},
                      FrameCase{9, 5000}, FrameCase{9, 0}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.procs) + "_b" +
             std::to_string(info.param.payload);
    });

// §3.2 barrier message counts: MPICH 2(N-K)+K*log2(K); multicast (N-1)+1.
class BarrierFrameCounts : public ::testing::TestWithParam<int> {};

TEST_P(BarrierFrameCounts, MatchesPaperFormulas) {
  const int procs = GetParam();
  const auto n = static_cast<std::uint64_t>(procs);
  std::uint64_t k = 1;
  std::uint64_t log2k = 0;
  while (k * 2 <= n) {
    k *= 2;
    ++log2k;
  }

  auto run_barrier = [&](const std::string& algo) {
    Cluster cluster(quiet_config(procs, NetworkType::kSwitch));
    auto op = [&algo](mpi::Proc& p) { p.comm_world().coll().barrier(algo); };
    return cluster::count_frames(cluster, op, op);
  };

  const auto mpich = run_barrier("mpich");
  EXPECT_EQ(mpich.formula_frames(), 2 * (n - k) + k * log2k)
      << "MPICH barrier message count";

  const auto mcast = run_barrier("mcast");
  EXPECT_EQ(mcast.formula_frames(), (n - 1) + 1)
      << "multicast barrier message count";
}

INSTANTIATE_TEST_SUITE_P(Sweep, BarrierFrameCounts,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// §4 ordering: consecutive broadcasts from different roots on the same
// communicator (same multicast group) arrive in program order.

TEST(McastOrdering, SequentialBroadcastsFromDifferentRootsStayOrdered) {
  constexpr int kProcs = 4;
  Cluster cluster(quiet_config(kProcs, NetworkType::kSwitch));
  // Each rank records the payload tag sequence it observed.
  std::vector<std::vector<std::uint8_t>> seen(kProcs);

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    // The paper's example: broadcasts rooted at 1, then 2, then 3.
    for (int root = 1; root <= 3; ++root) {
      Buffer data;
      if (p.rank() == root) {
        data = {static_cast<std::uint8_t>(root)};
      }
      comm.coll().bcast(data, root, "mcast-binary");
      seen[static_cast<std::size_t>(p.rank())].push_back(data.at(0));
    }
  });

  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(seen[static_cast<std::size_t>(r)],
              (std::vector<std::uint8_t>{1, 2, 3}))
        << "rank " << r;
  }
}

// Mixed algorithms on the same communicator share the sequence space.
TEST(McastOrdering, MixedMcastAlgorithmsShareOneSequence) {
  constexpr int kProcs = 5;
  Cluster cluster(quiet_config(kProcs, NetworkType::kHub));
  std::vector<int> failures(kProcs, 0);

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    for (int i = 0; i < 3; ++i) {
      Buffer data;
      if (p.rank() == 0) {
        data = pattern_payload(static_cast<std::uint64_t>(i), 64);
      }
      comm.coll().bcast(data, 0,
                        i % 2 == 0 ? "mcast-binary" : "mcast-linear");
      if (!check_pattern(static_cast<std::uint64_t>(i), data)) {
        failures[static_cast<std::size_t>(p.rank())] = 1;
      }
      comm.coll().barrier("mcast");
    }
  });

  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(failures[static_cast<std::size_t>(r)], 0) << "rank " << r;
  }
}

// ---------------------------------------------------------------------
// The readiness hazard itself: a *naive* multicast broadcast (no scouts)
// loses data when a receiver has not created its channel yet — proving
// the problem the paper's protocols solve exists in this model.

TEST(ReadinessHazard, NaiveMulticastLosesDataForLateReceiver) {
  // On the hub: the late receiver's NIC hears the frame but filters it
  // (group not joined).  On a switch the loss is even earlier (IGMP
  // snooping forwards no copy).  Either way, the data never arrives.
  constexpr int kProcs = 3;
  Cluster cluster(quiet_config(kProcs, NetworkType::kHub));
  std::vector<int> got(kProcs, 0);

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 0) {
      // Root multicasts immediately: no scout synchronization.
      coll::mcast_send_framed(p, comm, pattern_payload(1, 256), 0,
                              net::FrameKind::kData);
      got[0] = 1;
      return;
    }
    if (p.rank() == 1) {
      // Ready receiver: channel exists before the datagram lands.
      (void)p.mcast_channel(comm);
      got[1] = check_pattern(1, coll::mcast_recv_framed(p, comm, 0));
      return;
    }
    // Rank 2 sleeps through the broadcast; its channel does not exist when
    // the datagram arrives, so the message is gone forever.
    p.self().delay(milliseconds(20));
    auto& ch = p.mcast_channel(comm);
    auto datagram =
        ch.socket().recv_until(p.self(), p.self().now() + milliseconds(20));
    got[2] = datagram.has_value() ? 1 : 0;
  });

  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 1) << "ready receiver must get the multicast";
  EXPECT_EQ(got[2], 0) << "late receiver must have lost the multicast";
  EXPECT_GT(cluster.network().counters().filtered, 0u)
      << "the loss should be visible as a NIC filter drop on the hub";
}

// With scouts, the same late receiver loses nothing.
TEST(ReadinessHazard, ScoutSynchronizationToleratesLateReceiver) {
  constexpr int kProcs = 3;
  Cluster cluster(quiet_config(kProcs, NetworkType::kSwitch));
  std::vector<int> ok(kProcs, 0);

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 2) {
      p.self().delay(milliseconds(20));  // same lateness as above
    }
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(1, 256);
    }
    comm.coll().bcast(data, 0, "mcast-binary");
    ok[static_cast<std::size_t>(p.rank())] = check_pattern(1, data);
  });

  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// The ACK-based protocol also recovers, but only by re-multicasting.
TEST(ReadinessHazard, AckMcastRecoversViaRetransmission) {
  constexpr int kProcs = 3;
  Cluster cluster(quiet_config(kProcs, NetworkType::kSwitch));
  std::vector<int> ok(kProcs, 0);
  std::uint64_t retransmissions = 0;

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    if (p.rank() == 2) {
      p.self().delay(milliseconds(20));
    }
    Buffer data;
    if (p.rank() == 0) {
      data = pattern_payload(1, 256);
    }
    coll::bcast_ack_mcast(p, comm, data, 0);
    ok[static_cast<std::size_t>(p.rank())] = check_pattern(1, data);
    if (p.rank() == 0) {
      retransmissions = coll::ack_mcast_stats(p, comm).retransmissions;
    }
  });

  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
  EXPECT_GE(retransmissions, 1u)
      << "the late receiver should have forced at least one re-multicast";
}

// ---------------------------------------------------------------------
// Wider collective set.

TEST(MpichCollectives, ReduceSumsOnRoot) {
  constexpr int kProcs = 6;
  Cluster cluster(quiet_config(kProcs, NetworkType::kSwitch));
  std::int64_t result = -1;

  cluster.world().run([&](mpi::Proc& p) {
    const mpi::Comm comm = p.comm_world();
    const std::int64_t mine = (p.rank() + 1) * 10;
    Buffer data(sizeof mine);
    std::memcpy(data.data(), &mine, sizeof mine);
    const Buffer out = comm.coll().reduce(data, mpi::Op::kSum,
                                          mpi::Datatype::kInt64, 0, "mpich");
    if (p.rank() == 0) {
      std::memcpy(&result, out.data(), sizeof result);
    }
  });
  EXPECT_EQ(result, 10 + 20 + 30 + 40 + 50 + 60);
}

TEST(MpichCollectives, GatherCollectsInRankOrder) {
  constexpr int kProcs = 5;
  Cluster cluster(quiet_config(kProcs, NetworkType::kHub));
  std::vector<Buffer> gathered;

  cluster.world().run([&](mpi::Proc& p) {
    const Buffer mine = pattern_payload(static_cast<std::uint64_t>(p.rank()),
                                        16 + static_cast<std::size_t>(p.rank()));
    auto out = p.comm_world().coll().gather(mine, /*root=*/2, "mpich");
    if (p.rank() == 2) {
      gathered = std::move(out);
    }
  });

  ASSERT_EQ(gathered.size(), static_cast<std::size_t>(kProcs));
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(check_pattern(static_cast<std::uint64_t>(r),
                              gathered[static_cast<std::size_t>(r)]))
        << "rank " << r;
    EXPECT_EQ(gathered[static_cast<std::size_t>(r)].size(),
              16 + static_cast<std::size_t>(r));
  }
}

TEST(MpichCollectives, ScatterDeliversPerRankChunks) {
  constexpr int kProcs = 4;
  Cluster cluster(quiet_config(kProcs, NetworkType::kSwitch));
  std::vector<int> ok(kProcs, 0);

  cluster.world().run([&](mpi::Proc& p) {
    std::vector<Buffer> chunks;
    if (p.rank() == 1) {
      for (int r = 0; r < kProcs; ++r) {
        chunks.push_back(
            pattern_payload(static_cast<std::uint64_t>(100 + r), 32));
      }
    }
    const Buffer mine =
        p.comm_world().coll().scatter(chunks, /*root=*/1, 32, "mpich");
    ok[static_cast<std::size_t>(p.rank())] =
        check_pattern(static_cast<std::uint64_t>(100 + p.rank()), mine);
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

TEST(MpichCollectives, AllgatherGivesEveryoneEverything) {
  constexpr int kProcs = 5;
  Cluster cluster(quiet_config(kProcs, NetworkType::kSwitch));
  std::vector<int> ok(kProcs, 1);

  cluster.world().run([&](mpi::Proc& p) {
    const Buffer mine =
        pattern_payload(static_cast<std::uint64_t>(p.rank()), 40);
    const auto all = p.comm_world().coll().allgather(mine, "ring");
    for (int r = 0; r < kProcs; ++r) {
      if (!check_pattern(static_cast<std::uint64_t>(r),
                         all[static_cast<std::size_t>(r)])) {
        ok[static_cast<std::size_t>(p.rank())] = 0;
      }
    }
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// alltoall on the facade: the registry completes the collective set, so
// the exchange goes through comm.coll() like every other operation —
// the tuned pick, both explicit algorithms, and the nonblocking variant.
TEST(MpichCollectives, AlltoallExchangesPairwisePayloads) {
  constexpr int kProcs = 4;
  Cluster cluster(quiet_config(kProcs, NetworkType::kSwitch));
  std::vector<int> ok(kProcs, 1);

  cluster.world().run([&](mpi::Proc& p) {
    for (const std::string algo :
         {std::string(coll::kAuto), std::string("mpich"),
          std::string("mcast-rr")}) {
      std::vector<Buffer> to_each;
      for (int dst = 0; dst < kProcs; ++dst) {
        to_each.push_back(pattern_payload(
            static_cast<std::uint64_t>(p.rank() * 100 + dst), 24));
      }
      const auto from_each =
          p.comm_world().coll().alltoall(to_each, 24, algo);
      for (int src = 0; src < kProcs; ++src) {
        if (!check_pattern(static_cast<std::uint64_t>(src * 100 + p.rank()),
                           from_each[static_cast<std::size_t>(src)])) {
          ok[static_cast<std::size_t>(p.rank())] = 0;
        }
      }
    }
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

// ialltoall: the exchange runs on a helper fiber and completes via
// Proc::wait, with the received blocks delivered in request->blocks().
TEST(MpichCollectives, IalltoallDeliversBlocksThroughTheRequest) {
  constexpr int kProcs = 3;
  Cluster cluster(quiet_config(kProcs, NetworkType::kSwitch));
  std::vector<int> ok(kProcs, 1);

  cluster.world().run([&](mpi::Proc& p) {
    std::vector<Buffer> to_each;
    for (int dst = 0; dst < kProcs; ++dst) {
      to_each.push_back(pattern_payload(
          static_cast<std::uint64_t>(p.rank() * 31 + dst), 512));
    }
    auto request = p.comm_world().coll().ialltoall(to_each, 512, "mpich");
    p.self().delay(microseconds(500));  // overlap with "compute"
    (void)p.wait(request);
    const auto& from_each = request->blocks();
    for (int src = 0; src < kProcs; ++src) {
      if (!check_pattern(static_cast<std::uint64_t>(src * 31 + p.rank()),
                         from_each[static_cast<std::size_t>(src)])) {
        ok[static_cast<std::size_t>(p.rank())] = 0;
      }
    }
  });
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

class AllreduceAcrossBcasts
    : public ::testing::TestWithParam<std::string> {};

TEST_P(AllreduceAcrossBcasts, MaxReachesEveryRank) {
  constexpr int kProcs = 6;
  Cluster cluster(quiet_config(kProcs, NetworkType::kHub));
  std::vector<std::int32_t> results(kProcs, -1);
  bool applicable = true;

  cluster.world().run([&](mpi::Proc& p) {
    const std::int32_t mine = 7 * (p.rank() + 1);
    if (!algo_applicable(coll::CollOp::kAllreduce, GetParam(),
                         p.comm_world(), sizeof mine)) {
      applicable = false;
      return;
    }
    Buffer data(sizeof mine);
    std::memcpy(data.data(), &mine, sizeof mine);
    const Buffer out = p.comm_world().coll().allreduce(
        data, mpi::Op::kMax, mpi::Datatype::kInt32, GetParam());
    std::memcpy(&results[static_cast<std::size_t>(p.rank())], out.data(),
                sizeof(std::int32_t));
  });
  if (!applicable) {
    GTEST_SKIP() << GetParam() << " is not applicable on this topology";
  }
  for (int r = 0; r < kProcs; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], 7 * kProcs) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BcastStage, AllreduceAcrossBcasts,
    ::testing::ValuesIn(
        coll::Registry::instance().names(coll::CollOp::kAllreduce)),
    [](const auto& info) {
      std::string n = info.param;
      for (char& ch : n) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return n;
    });

}  // namespace
}  // namespace mcmpi
